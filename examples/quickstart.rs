//! Quickstart: assemble a program, boot MOSS, attach the ATUM tracer,
//! and look at the first records of a complete-system address trace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use atum::core::Tracer;
use atum::machine::Machine;
use atum::os::BootImage;

fn main() {
    // A tiny user program: sum 1..=10, print the result digit, exit.
    let program = "
start:  clrl    r1
        movl    #10, r2
loop:   addl2   r2, r1
        sobgtr  r2, loop
        movl    #'0', r0        ; 55 -> prints 'U' + newline-ish demo
        addl2   r1, r0
        chmk    #1              ; putc
        chmk    #0              ; exit
";

    // The boot loader assembles the kernel + program and lays out memory.
    let image = BootImage::builder()
        .user_program(program)
        .build()
        .expect("boot image");
    let mut machine = Machine::new(image.memory_layout());
    image.load_into(&mut machine).expect("load");

    // Attach ATUM: this *patches the control store* — after this call the
    // machine's microcode logs every reference to hidden physical memory.
    let tracer = Tracer::attach(&mut machine).expect("attach");
    println!(
        "patch installed: {} micro-words appended to the control store",
        tracer.patches().words()
    );
    tracer.set_pid(&mut machine, 0);
    tracer.set_enabled(&mut machine, true);

    machine.run_until_halt(50_000_000).expect("run to halt");
    println!(
        "console: {:?}",
        String::from_utf8_lossy(&machine.take_console_output())
    );

    let trace = tracer.extract(&machine).expect("extract");
    println!("\nfirst 25 trace records:");
    for r in trace.iter().take(25) {
        println!("  {r}");
    }

    let stats = trace.stats();
    println!("\n{stats}");
    println!(
        "\nnote the kernel-mode ('k') references: boot, the CHMK system\n\
         calls and the scheduler are all in the trace — that is the thing\n\
         user-level tracers could not see."
    );
}
