//! Multiprogramming capture: the standard mix under MOSS with preemptive
//! scheduling, traced end to end — the paper's headline capability.
//!
//! ```text
//! cargo run --release --example multiprogramming
//! ```

use atum::core::{CaptureSession, RecordKind, Tracer};
use atum::machine::Machine;
use atum::os::BootImage;

fn main() {
    let mix = atum::workloads::mix_std();
    println!("workloads in the mix:");
    for w in &mix {
        println!("  {} (expects checksum {})", w.name, w.expected_output);
    }

    let mut builder = BootImage::builder().quantum(15_000);
    for w in &mix {
        builder = builder.user_program(&w.source);
    }
    let image = builder.build().expect("boot image");
    let mut machine = Machine::new(image.memory_layout());
    image.load_into(&mut machine).expect("load");

    let tracer = Tracer::attach(&mut machine).expect("attach");
    tracer.set_pid(&mut machine, 0);
    let capture = CaptureSession::new(&tracer, 100_000_000_000)
        .run(&mut machine)
        .expect("capture");

    println!(
        "\nconsole: {:?} (each process prints its 2-digit checksum)",
        String::from_utf8_lossy(&machine.take_console_output())
    );
    println!(
        "captured {} records in {} segment(s) ({} buffer drains)",
        capture.trace.len(),
        capture.trace.segments(),
        capture.drains
    );

    let stats = capture.trace.stats();
    println!("\n{stats}");
    println!("\nper-process reference counts:");
    for (pid, refs) in &stats.refs_by_pid {
        let label = match pid {
            0 => "kernel boot".to_string(),
            p => format!("pid {p}"),
        };
        println!("  {label:>12}: {refs}");
    }

    // Show a context switch in situ: the records around the first marker.
    let records = capture.trace.records();
    if let Some(pos) = records
        .iter()
        .position(|r| r.kind() == RecordKind::CtxSwitch)
    {
        println!("\naround the first context switch:");
        let lo = pos.saturating_sub(3);
        for r in &records[lo..(pos + 4).min(records.len())] {
            println!("  {r}");
        }
    }

    println!(
        "\nOS fraction {:.1}% with {} context switches — a user-only trace\n\
         of any single process would have shown none of this.",
        100.0 * stats.os_fraction(),
        stats.ctx_switches
    );
}
