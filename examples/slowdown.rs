//! Slowdown measurement, live: the same workload run untraced, under
//! both ATUM patch styles, and under T-bit software tracing — the T1
//! technique comparison as a runnable demo.
//!
//! ```text
//! cargo run --release --example slowdown
//! ```

use atum::baselines::TbitTracer;
use atum::core::{CaptureSession, PatchStyle, Tracer};
use atum::machine::{Machine, RunExit};
use atum::os::BootImage;

fn boot(source: &str) -> Machine {
    let image = BootImage::builder()
        .user_program(source)
        .quantum(1_000_000)
        .build()
        .expect("boot image");
    let mut m = Machine::new(image.memory_layout());
    image.load_into(&mut m).expect("load");
    m
}

fn main() {
    let w = atum::workloads::list_chase("probe", 256, 20_000);
    println!("workload: {} (checksum {})\n", w.name, w.expected_output);

    // Untraced reference.
    let mut m = boot(&w.source);
    assert_eq!(m.run(50_000_000_000), RunExit::Halted);
    let base = m.cycles();
    let refs = m.counts().total_refs();
    println!(
        "untraced:             {base:>12} cycles  ({:.1} cycles/ref, {refs} refs)",
        base as f64 / refs as f64
    );

    for (name, style) in [
        ("ATUM scratch patch: ", PatchStyle::Scratch),
        ("ATUM spill patch:   ", PatchStyle::Spill),
    ] {
        let mut m = boot(&w.source);
        let tracer = Tracer::attach_with_style(&mut m, style).expect("attach");
        let capture = CaptureSession::new(&tracer, 100_000_000_000)
            .run(&mut m)
            .expect("capture");
        assert_eq!(capture.exit, RunExit::Halted);
        println!(
            "{name} {:>12} cycles  ({:.1}x, {} records)",
            m.cycles(),
            m.cycles() as f64 / base as f64,
            capture.trace.len()
        );
    }

    // T-bit trap tracing for comparison.
    let result = TbitTracer::default().measure(&w.source).expect("tbit");
    println!(
        "T-bit trap tracer:    {:>12} cycles  ({:.0}x, {} PCs — and PCs are all it gets)",
        result.traced_cycles,
        result.slowdown(),
        result.pcs.len()
    );

    println!(
        "\nmicrocode tracing pays a small constant per reference; trap-driven\n\
         tracing pays an exception round-trip per *instruction* — the order-\n\
         of-magnitude gap is the paper's Table 1."
    );
}
