//! Cache study: drive the cache simulator from a captured complete-system
//! trace and reproduce the F1/F2 story — what including the OS and the
//! context switches does to miss rates.
//!
//! ```text
//! cargo run --release --example cache_study
//! ```

use atum::cache::{simulate_many, CacheConfig, SwitchPolicy};
use atum::core::{CaptureSession, Tracer};
use atum::machine::Machine;
use atum::os::BootImage;

fn main() {
    // Capture the standard multiprogramming mix.
    let mix = atum::workloads::mix_std();
    let mut builder = BootImage::builder().quantum(15_000);
    for w in &mix {
        builder = builder.user_program(&w.source);
    }
    let image = builder.build().expect("boot image");
    let mut machine = Machine::new(image.memory_layout());
    image.load_into(&mut machine).expect("load");
    let tracer = Tracer::attach(&mut machine).expect("attach");
    tracer.set_pid(&mut machine, 0);
    let capture = CaptureSession::new(&tracer, 100_000_000_000)
        .run(&mut machine)
        .expect("capture");
    let _ = machine.take_console_output();

    let trace = capture.trace;
    let user_only = trace.user_only();
    println!(
        "trace: {} refs total, {} user-only\n",
        trace.ref_count(),
        user_only.ref_count()
    );

    // Each sweep is a single pass over the trace: every size here is
    // LRU write-back, so `simulate_many` folds the whole sweep into one
    // stack-distance walk instead of one replay per configuration.
    let sizes = [1u32 << 10, 4 << 10, 16 << 10, 64 << 10];

    // F1: complete vs user-only, direct-mapped.
    println!("miss rate vs size — complete-system vs user-only trace:");
    println!("{:>8} {:>12} {:>12}", "size", "complete", "user-only");
    let base = CacheConfig::builder().block(16).assoc(1).build().unwrap();
    let cfgs: Vec<CacheConfig> = sizes.iter().map(|&s| base.with_size(s)).collect();
    let full = simulate_many(&trace, &cfgs);
    let user = simulate_many(&user_only, &cfgs);
    for (i, size) in sizes.iter().enumerate() {
        println!(
            "{:>7}K {:>11.2}% {:>11.2}%",
            size / 1024,
            100.0 * full[i].miss_rate(),
            100.0 * user[i].miss_rate()
        );
    }

    // F2: context-switch policies — both policies of every size in one
    // call; the engine splits them into one stack group per policy.
    println!("\nmiss rate vs size — context-switch policy (2-way):");
    println!("{:>8} {:>12} {:>12}", "size", "flush", "pid-tagged");
    let base = CacheConfig::builder().block(16).assoc(2).build().unwrap();
    let cfgs: Vec<CacheConfig> = sizes
        .iter()
        .flat_map(|&s| {
            [
                base.with_size(s).with_switch(SwitchPolicy::Flush),
                base.with_size(s).with_switch(SwitchPolicy::PidTag),
            ]
        })
        .collect();
    let stats = simulate_many(&trace, &cfgs);
    for (i, size) in sizes.iter().enumerate() {
        println!(
            "{:>7}K {:>11.2}% {:>11.2}%",
            size / 1024,
            100.0 * stats[2 * i].miss_rate(),
            100.0 * stats[2 * i + 1].miss_rate()
        );
    }

    println!(
        "\nthe flush column stops improving with size — an untagged cache\n\
         restarts cold on every quantum, which is exactly the effect the\n\
         paper's multiprogrammed traces made visible for the first time."
    );
}
