//! Shared implementation of the `mculist` subcommands, so the golden
//! tests pin the exact bytes the binary prints.

use atum_core::{PatchSet, PatchStyle, Tracer};
use atum_machine::{EngineTier, Machine, MemLayout};
use atum_mclint::atomicity::{self, StatePartition};
use atum_mclint::cost::{Bounds, RefProfile};
use atum_mclint::{cost, error_count, lint, lowering, svx, Finding, Pass};
use atum_os::kernel::{self, KernelOptions};
use atum_os::TbitMode;
use atum_ucode::stock;
use std::fmt::Write as _;

/// The `mculist patches` report: the ATUM patch region as a listing.
pub fn patches_report() -> String {
    let mut cs = stock::build();
    let ps = PatchSet::install(&mut cs).expect("install on a fresh stock store cannot fail");
    format!(
        ";; ATUM patch region: {} micro-words\n{}",
        ps.words(),
        cs.listing(cs.stock_len(), cs.len())
    )
}

/// One verified artifact and its findings.
pub struct Subject {
    /// What was verified (e.g. `patched store (scratch style)`).
    pub title: String,
    /// The findings, sorted the way the passes emit them.
    pub findings: Vec<Finding>,
    /// For control-store subjects: the register/memory state partition
    /// the atomicity pass extracted (surfaced in `--format json`).
    pub partition: Option<StatePartition>,
}

/// Result of running the full static-verification suite.
pub struct VerifyReport {
    /// Every artifact verified, with its findings.
    pub subjects: Vec<Subject>,
    /// Total findings across all subjects.
    pub findings: usize,
    /// Error-severity findings.
    pub errors: usize,
}

/// Runs every verifier pass over every artifact this repository builds:
/// the stock control store, the patched store in both styles, the MOSS
/// kernel in both T-bit modes, and every standard workload image.
pub fn verify() -> VerifyReport {
    verify_pass(None)
}

/// [`verify`] restricted to a single pass (`mculist verify --pass NAME`).
///
/// `None` runs everything. `Some(pass)` runs just that pass over the
/// subjects it applies to: the control-store passes see the stock and
/// both patched stores; [`Pass::Svx`] sees the kernel and workload
/// images. The state partition is attached to control-store subjects
/// whenever the atomicity pass runs.
pub fn verify_pass(pass: Option<Pass>) -> VerifyReport {
    let mut subjects = Vec::new();
    let store_pass = !matches!(pass, Some(Pass::Svx));
    let image_pass = matches!(pass, None | Some(Pass::Svx));
    let partition_pass = matches!(pass, None | Some(Pass::Atomicity));

    if store_pass {
        let run = |cs: &_| match pass {
            None => lint::run(cs),
            Some(p) => lint::run_pass(cs, p),
        };
        let cs = stock::build();
        subjects.push(Subject {
            title: "stock control store".into(),
            findings: run(&cs),
            partition: partition_pass.then(|| atomicity::partition(&cs)),
        });

        for (style, name) in [
            (PatchStyle::Scratch, "patched store (scratch style)"),
            (PatchStyle::Spill, "patched store (spill style)"),
        ] {
            let mut cs = stock::build();
            PatchSet::install_with_style(&mut cs, style).expect("install");
            subjects.push(Subject {
                title: name.into(),
                findings: run(&cs),
                partition: partition_pass.then(|| atomicity::partition(&cs)),
            });
        }
    }

    if image_pass {
        for (tbit, name) in [
            (TbitMode::Ignore, "MOSS kernel (tbit ignored)"),
            (TbitMode::LogPc, "MOSS kernel (tbit software trace)"),
        ] {
            let opts = KernelOptions {
                tbit,
                ..KernelOptions::default()
            };
            let img = atum_asm::assemble(&kernel::source(&opts)).expect("kernel assembles");
            subjects.push(Subject {
                title: name.into(),
                findings: svx::check_image(&img, svx::ImageKind::Kernel),
                partition: None,
            });
        }

        for w in atum_workloads::suite_standard() {
            let src = format!(".org {:#x}\n{}\n", atum_os::USER_BASE_VA, w.source);
            let img = atum_asm::assemble(&src).expect("workload assembles");
            subjects.push(Subject {
                title: format!("workload '{}'", w.name),
                findings: svx::check_image(&img, svx::ImageKind::User),
                partition: None,
            });
        }
    }

    let findings = subjects.iter().map(|s| s.findings.len()).sum();
    let errors = subjects.iter().map(|s| error_count(&s.findings)).sum();
    VerifyReport {
        subjects,
        findings,
        errors,
    }
}

impl VerifyReport {
    /// The human-readable report, one section per subject.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.subjects {
            if s.findings.is_empty() {
                let _ = writeln!(out, "{:<42} ok", s.title);
            } else {
                let _ = writeln!(out, "{:<42} {} finding(s)", s.title, s.findings.len());
                for f in &s.findings {
                    let _ = writeln!(out, "    {f}");
                }
            }
        }
        let _ = writeln!(
            out,
            "\nverify: {} finding(s), {} error(s)",
            self.findings, self.errors
        );
        out
    }

    /// The machine-readable report (`--format json`). Control-store
    /// subjects carry the atomicity pass's state partition under a
    /// `"partition"` key whenever that pass ran.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"subjects\": [\n");
        for (i, s) in self.subjects.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"title\": \"{}\", \"findings\": [",
                json_escape(&s.title)
            );
            for (j, f) in s.findings.iter().enumerate() {
                let _ = write!(out, "{}{}", if j > 0 { ", " } else { "" }, finding_json(f));
            }
            let _ = write!(out, "]");
            if let Some(p) = &s.partition {
                let _ = write!(out, ", \"partition\": {}", p.to_json());
            }
            let _ = write!(out, "}}");
            let _ = writeln!(
                out,
                "{}",
                if i + 1 < self.subjects.len() { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "  ],\n  \"findings\": {},\n  \"errors\": {}\n}}\n",
            self.findings, self.errors
        );
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"pass\": \"{}\", \"severity\": \"{}\", \"symbol\": \"{}\", \
         \"addr\": {}, \"message\": \"{}\"}}",
        f.pass,
        f.severity,
        json_escape(&f.symbol),
        f.addr,
        json_escape(&f.message)
    )
}

// ── `mculist cost`: the static slowdown-band gate ────────────────────

/// The paper's slowdown band: traced runs are 10–20× slower.
const BAND: (f64, f64) = (10.0, 20.0);

/// Result of the cost analysis and its gates.
pub struct CostReport {
    /// Deterministic section (golden-pinned): per-hook bounds, aggregate
    /// dilation vs the band, and the simulated tight check.
    pub static_report: String,
    /// Host-dependent section: measured `BENCH_capture.json` rates
    /// checked against the static envelope, and the superblock tier
    /// checked against the fast-engine rate floor.
    pub bench_report: String,
    /// Machine-readable form of everything (`--format json`).
    pub json: String,
    /// Machine-readable form of the deterministic half only
    /// (`cost-static --format json`) — golden-pinnable, since nothing
    /// in it depends on host speed.
    pub json_static: String,
    /// Lint findings from the cost and lowering passes.
    pub findings: usize,
    /// Error findings plus failed gates.
    pub errors: usize,
}

/// The bench workload (`list_chase`, syscalls stubbed out), identical to
/// the one `benches/engine.rs` measures — so the static envelope and the
/// measured rates describe the same run.
fn bench_image() -> atum_asm::Image {
    let w = atum_workloads::list_chase("bench", 256, 4_000);
    let src = w
        .source
        .replace("chmk    #1", "nop")
        .replace("chmk    #0", "halt");
    atum_asm::assemble(&format!(".org 0x1000\n{src}\n")).expect("bench program")
}

fn bench_machine(img: &atum_asm::Image) -> Machine {
    let mut m = Machine::new(MemLayout::small());
    for (a, b) in img.segments() {
        m.write_phys(*a, b).expect("image fits in memory");
    }
    m.set_gpr(14, 0x8000);
    m.set_pc(img.symbol("start").expect("bench program has a start"));
    m
}

fn fmt_bounds(b: Option<Bounds>) -> String {
    match b {
        Some(b) => b.to_string(),
        None => "unbounded".into(),
    }
}

fn json_bounds(b: Option<Bounds>) -> String {
    match b {
        Some(b) => format!("[{}, {}]", b.min, b.max),
        None => "null".into(),
    }
}

/// Runs the cost pass over both patch styles, gates the aggregate
/// dilation against the paper band, re-runs the bench workload on the
/// simulator to check the bound *contains the actual added cycles*, and
/// checks the measured host rates in `BENCH_capture.json` against the
/// envelope.
pub fn cost_report() -> CostReport {
    let mut stat = String::new();
    let mut json = String::from("{\n");
    let mut findings_total = 0;
    let mut errors = 0;

    // The standard-mix reference profile: the bench workload's
    // architectural reference counts, measured once untraced. This is
    // simulator-deterministic, so everything derived from it is
    // golden-pinnable.
    let img = bench_image();
    let mut base = bench_machine(&img);
    base.run(u64::MAX);
    let base_cycles = base.cycles();
    let bc = *base.counts();
    let profile = RefProfile {
        ifetch: bc.ifetch,
        data_reads: bc.data_reads,
        data_writes: bc.data_writes,
        exceptions: 0,
        ctx_switches: 0,
    };
    let _ = writeln!(
        stat,
        "cost: static micro-cycle analysis of the ATUM patches\n\
         reference profile (untraced bench run): {} insns, {} ifetch, \
         {} reads, {} writes, {} cycles\n",
        base.insns(),
        bc.ifetch,
        bc.data_reads,
        bc.data_writes,
        base_cycles
    );
    let _ = write!(
        json,
        "  \"profile\": {{\"insns\": {}, \"ifetch\": {}, \"data_reads\": {}, \
         \"data_writes\": {}, \"cycles\": {}}},\n  \"styles\": {{\n",
        base.insns(),
        bc.ifetch,
        bc.data_reads,
        bc.data_writes,
        base_cycles
    );

    let mut max_dilations = Vec::new();
    for (si, (style, name)) in [
        (PatchStyle::Scratch, "scratch"),
        (PatchStyle::Spill, "spill"),
    ]
    .into_iter()
    .enumerate()
    {
        let mut cs = stock::build();
        PatchSet::install_with_style(&mut cs, style).expect("install");
        let rep = cost::analyze(&cs);
        let mut fs = rep.findings.clone();
        fs.extend(lowering::check(&cs));
        findings_total += fs.len();
        errors += error_count(&fs);

        let _ = writeln!(stat, "patched store ({name} style)");
        for f in &fs {
            let _ = writeln!(stat, "    {f}");
        }
        let _ = write!(json, "    \"{name}\": {{\n      \"hooks\": [\n");
        for (hi, h) in rep.hooks.iter().enumerate() {
            let dil = h.dilation();
            let _ = writeln!(
                stat,
                "  {:<18} {:<12} stock {:<9} added on {:<9} off {:<3} dilation {}",
                h.hook.desc,
                h.symbol,
                fmt_bounds(h.stock),
                format!("+{}", fmt_bounds(h.added_on)),
                format!("+{}", fmt_bounds(h.added_off)),
                match dil {
                    Some((lo, hi)) => format!("{lo:.2}..{hi:.2}"),
                    None => "-".into(),
                },
            );
            let _ = writeln!(
                json,
                "        {{\"slot\": \"{}\", \"symbol\": \"{}\", \"stock\": {}, \
                 \"added_on\": {}, \"added_off\": {}, \"dilation\": {}}}{}",
                json_escape(&h.hook.desc),
                json_escape(&h.symbol),
                json_bounds(h.stock),
                json_bounds(h.added_on),
                json_bounds(h.added_off),
                match dil {
                    Some((lo, hi)) => format!("[{lo:.4}, {hi:.4}]"),
                    None => "null".into(),
                },
                if hi + 1 < rep.hooks.len() { "," } else { "" },
            );
        }
        let _ = writeln!(json, "      ],");

        // Gate: aggregate dilation vs the paper band. The scratch style
        // must land inside it; the spill style's slow stores put it
        // above the band (EXPERIMENTS.md, known deviation 1), so it
        // gates only on the floor.
        let agg = rep.aggregate_dilation(&profile);
        let band_ok = match (style, agg) {
            (PatchStyle::Scratch, Some((lo, hi))) => lo >= BAND.0 && hi <= BAND.1,
            (PatchStyle::Spill, Some((lo, _))) => lo >= BAND.0,
            (_, None) => false,
        };
        if !band_ok {
            errors += 1;
        }
        let agg_str = match agg {
            Some((lo, hi)) => format!("{lo:.2}..{hi:.2}"),
            None => "unbounded".into(),
        };
        let band_desc = match style {
            PatchStyle::Scratch => format!("within {:.0}..{:.0}x band", BAND.0, BAND.1),
            PatchStyle::Spill => {
                format!("above {:.0}x band floor (above band: slow stores)", BAND.0)
            }
        };
        let _ = writeln!(
            stat,
            "  aggregate dilation (standard mix): {agg_str}  {band_desc}: {}",
            if band_ok { "ok" } else { "FAIL" }
        );

        // Gate: the tight deterministic check, run on every engine
        // tier. Each tier re-runs the same workload traced; the added
        // simulated cycles must be identical across tiers — the
        // superblock tier's fused block accounting in particular must
        // reproduce the per-op count exactly — and land inside the
        // statically proved interval, and the architectural reference
        // counts must be untouched (transparency, dynamically).
        let mut added_by_tier = Vec::new();
        let mut transparent = true;
        for (tier, tname) in [
            (EngineTier::Reference, "reference"),
            (EngineTier::Fast, "fast"),
            (EngineTier::Superblock, "superblock"),
        ] {
            let mut m = bench_machine(&img);
            m.set_engine_tier(tier);
            let tracer = Tracer::attach_with_style(&mut m, style).expect("attach");
            tracer.set_enabled(&mut m, true);
            m.run(u64::MAX);
            let tc = *m.counts();
            transparent &= (tc.ifetch, tc.data_reads, tc.data_writes)
                == (bc.ifetch, bc.data_reads, bc.data_writes)
                && tc.exceptions == bc.exceptions;
            added_by_tier.push((tname, m.cycles().saturating_sub(base_cycles)));
        }
        let added = added_by_tier[0].1;
        let tiers_agree = added_by_tier.iter().all(|&(_, a)| a == added);
        let bound = rep.added_interval(&profile);
        let tight_ok =
            transparent && tiers_agree && bound.is_some_and(|b| added >= b.min && added <= b.max);
        if !tight_ok {
            errors += 1;
        }
        let _ = writeln!(
            stat,
            "  simulated traced run: +{added} cycles ({}), static bound {}: {}",
            if tiers_agree {
                "reference/fast/superblock agree"
            } else {
                "TIERS DISAGREE"
            },
            fmt_bounds(bound),
            if tight_ok { "ok" } else { "FAIL" }
        );
        let _ = writeln!(
            stat,
            "  reference counts unchanged under tracing: {}\n",
            if transparent { "ok" } else { "FAIL" }
        );

        max_dilations.push((name, rep.max_dilation()));
        let _ = write!(
            json,
            "      \"aggregate_dilation\": {},\n      \"band_ok\": {band_ok},\n      \
             \"simulated_added_cycles\": {added},\n      \"tier_added_cycles\": {{{}}},\n      \
             \"tiers_agree\": {tiers_agree},\n      \"added_bound\": {},\n      \
             \"tight_ok\": {tight_ok},\n      \"max_dilation\": {},\n      \
             \"findings\": [",
            match agg {
                Some((lo, hi)) => format!("[{lo:.4}, {hi:.4}]"),
                None => "null".into(),
            },
            added_by_tier
                .iter()
                .map(|(t, a)| format!("\"{t}\": {a}"))
                .collect::<Vec<_>>()
                .join(", "),
            json_bounds(bound),
            match rep.max_dilation() {
                Some(d) => format!("{d:.4}"),
                None => "null".into(),
            },
        );
        for (j, f) in fs.iter().enumerate() {
            let _ = write!(json, "{}{}", if j > 0 { ", " } else { "" }, finding_json(f));
        }
        let _ = writeln!(json, "]\n    }}{}", if si == 0 { "," } else { "" });
    }
    // Everything written so far is simulator-deterministic; snapshot it
    // as the golden-pinnable `cost-static --format json` document before
    // the host-dependent bench section is appended.
    let json_static = format!("{json}  }}\n}}\n");
    let _ = write!(json, "  }},\n  \"bench\": {{\n");

    // Gate: measured host rates against the static envelope. Whole-run
    // slowdown cannot exceed the worst per-invocation dilation (every
    // untraced reference already pays its stock transfer cost, so the
    // traced/untraced cycle ratio is a mediant of per-class dilations),
    // and it cannot fall below 1.
    let mut bench = String::new();
    let _ = writeln!(
        bench,
        "measured rates (BENCH_capture.json) vs the static envelope"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_capture.json");
    match std::fs::read_to_string(path) {
        Err(e) => {
            errors += 1;
            let _ = writeln!(bench, "  cannot read BENCH_capture.json: {e}  FAIL");
            let _ = writeln!(json, "    \"error\": \"unreadable\"");
        }
        Ok(text) => {
            for (si, (cfg, name)) in [("atum_scratch", "scratch"), ("atum_spill", "spill")]
                .into_iter()
                .enumerate()
            {
                let envelope = max_dilations
                    .iter()
                    .find(|(n, _)| *n == name)
                    .and_then(|(_, d)| *d);
                let _ = write!(json, "    \"{name}\": {{");
                for (ei, engine) in ["fast", "superblock", "reference"].into_iter().enumerate() {
                    let key = format!("{engine}_insns_per_sec");
                    let slow = match (
                        bench_rate(&text, "untraced", &key),
                        bench_rate(&text, cfg, &key),
                    ) {
                        (Some(u), Some(t)) if t > 0.0 => Some(u / t),
                        _ => None,
                    };
                    let ok = match (slow, envelope) {
                        (Some(s), Some(d)) => s >= 1.0 && s <= d,
                        _ => false,
                    };
                    if !ok {
                        errors += 1;
                    }
                    let _ = writeln!(
                        bench,
                        "  {name:<8} {engine:<10} engine: measured {}x, envelope 1.00..{}: {}",
                        slow.map_or("?".into(), |s| format!("{s:.2}")),
                        envelope.map_or("?".into(), |d| format!("{d:.2}")),
                        if ok { "ok" } else { "FAIL" }
                    );
                    let _ = write!(
                        json,
                        "{}\"{engine}_slowdown\": {}, \"{engine}_ok\": {ok}",
                        if ei > 0 { ", " } else { "" },
                        slow.map_or("null".into(), |s| format!("{s:.4}")),
                    );
                }
                let _ = writeln!(json, "}}{}", if si <= 1 { "," } else { "" });
            }

            // Gate: the superblock tier must not regress below the fast
            // engine on the capture configs — the tier exists for the
            // patched capture path, whose long straight-line logging
            // flows are what block dispatch accelerates. The untraced
            // config is reported but not gated: that path is
            // dispatch-bound (blocks end at every opcode/specifier
            // dispatch), so the tier statistically ties the fast engine
            // there. Both rates come from the same interleaved best-of
            // run, so host drift largely cancels; a 3% floor allowance
            // absorbs what remains.
            const SB_FLOOR: f64 = 0.97;
            let _ = write!(json, "    \"superblock_floor\": {{");
            for (ci, (cfg, gated)) in [
                ("untraced", false),
                ("atum_scratch", true),
                ("atum_spill", true),
            ]
            .into_iter()
            .enumerate()
            {
                let ratio = match (
                    bench_rate(&text, cfg, "superblock_insns_per_sec"),
                    bench_rate(&text, cfg, "fast_insns_per_sec"),
                ) {
                    (Some(s), Some(f)) if f > 0.0 => Some(s / f),
                    _ => None,
                };
                let ok = if gated {
                    ratio.is_some_and(|r| r >= SB_FLOOR)
                } else {
                    ratio.is_some()
                };
                if !ok {
                    errors += 1;
                }
                let _ = writeln!(
                    bench,
                    "  {cfg:<14} superblock at {} the fast rate{}: {}",
                    ratio.map_or("?".into(), |r| format!("{r:.2}x")),
                    if gated {
                        format!(", floor {SB_FLOOR:.2}")
                    } else {
                        " (informational)".into()
                    },
                    if ok { "ok" } else { "FAIL" }
                );
                let _ = write!(
                    json,
                    "{}\"{cfg}\": {}, \"{cfg}_ok\": {ok}",
                    if ci > 0 { ", " } else { "" },
                    ratio.map_or("null".into(), |r| format!("{r:.4}")),
                );
            }
            let _ = writeln!(json, "}}");
        }
    }
    let _ = writeln!(
        bench,
        "\ncost: {findings_total} finding(s), {errors} error(s)"
    );
    let _ = write!(
        json,
        "  }},\n  \"findings\": {findings_total},\n  \"errors\": {errors}\n}}\n"
    );

    CostReport {
        static_report: stat,
        bench_report: bench,
        json,
        json_static,
        findings: findings_total,
        errors,
    }
}

/// Minimal extraction of `"key": <number>` inside the `"config"` object
/// of `BENCH_capture.json` (fixed, known shape — not a JSON parser).
fn bench_rate(text: &str, config: &str, key: &str) -> Option<f64> {
    let start = text.find(&format!("\"{config}\""))?;
    let body = &text[start..];
    let body = &body[..body.find('}')?];
    let ki = body.find(&format!("\"{key}\""))?;
    let after = &body[ki..];
    let val = after[after.find(':')? + 1..].trim_start();
    let end = val
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(val.len());
    val[..end].parse().ok()
}

// ── `mculist trace`: segment trace file inspection ───────────────────

/// One segment's row in a `mculist trace info` report.
pub struct TraceSegmentInfo {
    /// Segment header as stored in the file.
    pub header: atum_core::SegmentHeader,
    /// Encoded payload plus header bytes.
    pub encoded_bytes: u64,
    /// I/D reference records in the segment.
    pub refs: u64,
}

/// Decode-only throughput of the batched pull path (`trace info
/// --batch`): the file read end to end through
/// [`atum_core::SegmentFileSource`] batches, best time of several
/// passes.
pub struct BatchTiming {
    /// Timed passes over the file (best one reported).
    pub passes: u32,
    /// Records decoded per pass.
    pub records: u64,
    /// Batches the pass yielded.
    pub batches: u64,
    /// Best wall-clock seconds for one full pass.
    pub best_secs: f64,
}

impl BatchTiming {
    /// Decode rate of the best pass.
    pub fn records_per_sec(&self) -> f64 {
        if self.best_secs > 0.0 {
            self.records as f64 / self.best_secs
        } else {
            0.0
        }
    }
}

/// The `mculist trace info` report: per-segment headers plus the
/// file-level compression statistics.
pub struct TraceInfoReport {
    /// The inspected file path (as given).
    pub path: String,
    /// Per-segment rows, in file order.
    pub segments: Vec<TraceSegmentInfo>,
    /// Total records across segments.
    pub records: u64,
    /// Total I/D references.
    pub refs: u64,
    /// File size in bytes.
    pub file_bytes: u64,
    /// Batched decode timing (`--batch` only).
    pub batch: Option<BatchTiming>,
}

impl TraceInfoReport {
    /// Raw size of the records in the 8-byte in-buffer form.
    pub fn raw_bytes(&self) -> u64 {
        self.records * 8
    }

    /// Raw-to-encoded compression ratio.
    pub fn compression_ratio(&self) -> f64 {
        if self.file_bytes == 0 {
            0.0
        } else {
            self.raw_bytes() as f64 / self.file_bytes as f64
        }
    }

    /// The human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace file: {}", self.path);
        let _ = writeln!(
            out,
            "{:>4}  {:>10}  {:>10}  {:>12}  {:>4}  {:>6}  {:>10}",
            "seg", "records", "refs", "cycle", "pid", "mode", "bytes"
        );
        for (i, s) in self.segments.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>4}  {:>10}  {:>10}  {:>12}  {:>4}  {:>6}  {:>10}",
                i,
                s.header.records,
                s.refs,
                s.header.cycle,
                s.header.pid,
                if s.header.kernel { "kern" } else { "user" },
                s.encoded_bytes,
            );
        }
        let _ = writeln!(
            out,
            "\n{} segment(s), {} record(s) ({} refs)\n\
             encoded {} bytes vs {} raw ({:.2} bytes/record, {:.2}x compression)",
            self.segments.len(),
            self.records,
            self.refs,
            self.file_bytes,
            self.raw_bytes(),
            self.file_bytes as f64 / self.records.max(1) as f64,
            self.compression_ratio(),
        );
        if let Some(b) = &self.batch {
            let _ = writeln!(
                out,
                "batched decode: {} records in {} batches, best of {} passes \
                 {:.4}s ({:.3e} records/s)",
                b.records,
                b.batches,
                b.passes,
                b.best_secs,
                b.records_per_sec(),
            );
        }
        out
    }

    /// The machine-readable report (`--format json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"path\": \"{}\",", json_escape(&self.path));
        let _ = writeln!(out, "  \"segments\": [");
        for (i, s) in self.segments.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"records\": {}, \"refs\": {}, \"cycle\": {}, \"pid\": {}, \
                 \"kernel\": {}, \"encoded_bytes\": {}}}{}",
                s.header.records,
                s.refs,
                s.header.cycle,
                s.header.pid,
                s.header.kernel,
                s.encoded_bytes,
                if i + 1 < self.segments.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"records\": {},", self.records);
        let _ = writeln!(out, "  \"refs\": {},", self.refs);
        let _ = writeln!(out, "  \"file_bytes\": {},", self.file_bytes);
        let _ = writeln!(out, "  \"raw_bytes\": {},", self.raw_bytes());
        let _ = writeln!(
            out,
            "  \"compression_ratio\": {:.4}{}",
            self.compression_ratio(),
            if self.batch.is_some() { "," } else { "" }
        );
        if let Some(b) = &self.batch {
            let _ = writeln!(
                out,
                "  \"batch\": {{\"passes\": {}, \"records\": {}, \"batches\": {}, \
                 \"best_secs\": {:.6}, \"records_per_sec\": {:.1}}}",
                b.passes,
                b.records,
                b.batches,
                b.best_secs,
                b.records_per_sec(),
            );
        }
        out.push_str("}\n");
        out
    }
}

/// Inspects a segment trace file: walks every segment with the buffered
/// reader (O(segment) memory however large the file) and tallies the
/// compression statistics.
///
/// # Errors
///
/// Any [`atum_core::TraceStreamError`] — unreadable file, bad header,
/// or a corrupt segment.
pub fn trace_info(path: &str) -> Result<TraceInfoReport, atum_core::TraceStreamError> {
    let file_bytes = std::fs::metadata(path)?.len();
    let mut rd = atum_core::SegmentReader::open(path)?;
    let mut segments = Vec::new();
    let mut records = 0u64;
    let mut refs = 0u64;
    // File header, then header+payload per segment; per-segment encoded
    // size is reconstructed from consecutive payload offsets at render
    // time — simpler: recompute header size from the parsed fields.
    while let Some((h, recs)) = rd.next_segment()? {
        let seg_refs = recs.iter().filter(|r| r.is_ref()).count() as u64;
        records += h.records;
        refs += seg_refs;
        let header_bytes =
            1 + varint_len(h.records) + varint_len(h.payload_len) + varint_len(h.cycle) + 2;
        segments.push(TraceSegmentInfo {
            header: h,
            encoded_bytes: header_bytes + h.payload_len,
            refs: seg_refs,
        });
    }
    Ok(TraceInfoReport {
        path: path.to_string(),
        segments,
        records,
        refs,
        file_bytes,
        batch: None,
    })
}

/// [`trace_info`] plus a decode-only timing of the batched pull path
/// (`mculist trace info --batch`): reads the file end to end through
/// [`atum_core::SegmentFileSource::next_batch`] several times and
/// reports the best pass — the ceiling any batch-fed analysis can
/// reach on this file.
///
/// # Errors
///
/// Any [`atum_core::TraceStreamError`].
pub fn trace_info_batch(path: &str) -> Result<TraceInfoReport, atum_core::TraceStreamError> {
    use atum_core::TraceSource;
    const PASSES: u32 = 3;
    let mut report = trace_info(path)?;
    let mut src = atum_core::SegmentFileSource::new(path);
    let mut best = f64::MAX;
    let mut records = 0u64;
    let mut batches = 0u64;
    for _ in 0..PASSES {
        src.rewind()?;
        let t0 = std::time::Instant::now();
        let mut recs = 0u64;
        let mut bats = 0u64;
        while let Some(b) = src.next_batch()? {
            recs += b.len() as u64;
            bats += 1;
        }
        best = best.min(t0.elapsed().as_secs_f64());
        records = recs;
        batches = bats;
    }
    report.batch = Some(BatchTiming {
        passes: PASSES,
        records,
        batches,
        best_secs: best,
    });
    Ok(report)
}

fn varint_len(v: u64) -> u64 {
    (64 - v.max(1).leading_zeros() as u64).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_is_clean_on_shipped_artifacts() {
        let v = verify();
        assert_eq!(v.errors, 0, "{}", v.render());
        assert_eq!(v.findings, 0, "{}", v.render());
    }

    #[test]
    fn verify_json_is_well_formed_enough() {
        let j = verify().render_json();
        assert!(j.starts_with("{\n"));
        assert!(j.contains("\"subjects\""));
        assert!(j.trim_end().ends_with('}'));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces:\n{j}"
        );
    }

    #[test]
    fn cost_gates_pass_on_shipped_patches() {
        let c = cost_report();
        assert_eq!(
            c.errors, 0,
            "{}{}\n{}",
            c.static_report, c.bench_report, c.json
        );
        assert_eq!(c.findings, 0, "{}", c.static_report);
        assert_eq!(
            c.json.matches('{').count(),
            c.json.matches('}').count(),
            "unbalanced braces:\n{}",
            c.json
        );
    }

    #[test]
    fn bench_rate_extracts_known_shape() {
        let text = "{\n  \"configs\": {\n    \"untraced\": {\n      \
                    \"insns\": 15223,\n      \"fast_insns_per_sec\": 2585469.3,\n      \
                    \"reference_insns_per_sec\": 1272682.0\n    }\n  }\n}\n";
        assert_eq!(
            bench_rate(text, "untraced", "fast_insns_per_sec"),
            Some(2585469.3)
        );
        assert_eq!(
            bench_rate(text, "untraced", "reference_insns_per_sec"),
            Some(1272682.0)
        );
        assert_eq!(bench_rate(text, "missing", "fast_insns_per_sec"), None);
    }

    #[test]
    fn trace_info_reports_segments_and_ratio() {
        use atum_core::{RecordKind, SegmentWriter, Trace, TraceRecord};
        let mut t = Trace::new();
        let mut seg = Trace::new();
        for i in 0..256u32 {
            seg.push(TraceRecord::new(
                RecordKind::IFetch,
                0x1000 + i * 4,
                4,
                1,
                false,
            ));
        }
        t.stitch(seg);
        let mut seg = Trace::new();
        seg.push(TraceRecord::new(RecordKind::CtxSwitch, 0, 0, 2, true));
        for i in 0..32u32 {
            seg.push(TraceRecord::new(RecordKind::Write, 0x9000 + i, 1, 2, true));
        }
        t.stitch(seg);

        let path = std::env::temp_dir().join(format!(
            "atum-mculist-trace-info-{}.atrace",
            std::process::id()
        ));
        let mut w = SegmentWriter::create(&path).unwrap();
        w.write_trace(&t).unwrap();
        w.finish().unwrap();

        let r = trace_info(path.to_str().unwrap()).unwrap();
        assert_eq!(r.segments.len(), t.segments());
        assert_eq!(r.records, t.len() as u64);
        assert_eq!(r.refs, t.iter().filter(|rec| rec.is_ref()).count() as u64);
        // Header bytes reconstructed from parsed fields must tile the
        // file exactly: 5-byte file header + per-segment encoded sizes.
        let sum: u64 = r.segments.iter().map(|s| s.encoded_bytes).sum();
        assert_eq!(5 + sum, r.file_bytes, "{}", r.render());
        assert!(r.compression_ratio() > 3.0, "{}", r.render());
        assert!(r.render().contains("compression"));
        let j = r.render_json();
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces:\n{j}"
        );
        assert!(j.contains("\"compression_ratio\""));

        // The --batch form decodes every record through the batched
        // pull reader and reports a rate, in both output formats.
        let rb = trace_info_batch(path.to_str().unwrap()).unwrap();
        let b = rb.batch.as_ref().expect("batch timing present");
        assert_eq!(b.records, t.len() as u64);
        assert!(b.batches >= t.segments() as u64 - 1);
        assert!(rb.render().contains("batched decode"));
        let jb = rb.render_json();
        assert!(jb.contains("\"batch\""), "{jb}");
        assert_eq!(
            jb.matches('{').count(),
            jb.matches('}').count(),
            "unbalanced braces:\n{jb}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_info_rejects_garbage_files() {
        let path = std::env::temp_dir().join(format!(
            "atum-mculist-trace-bad-{}.atrace",
            std::process::id()
        ));
        std::fs::write(&path, b"not a trace").unwrap();
        assert!(trace_info(path.to_str().unwrap()).is_err());
        std::fs::remove_file(&path).ok();
        assert!(trace_info(path.to_str().unwrap()).is_err()); // missing file
    }
}
