//! Shared implementation of the `mculist` subcommands, so the golden
//! tests pin the exact bytes the binary prints.

use atum_core::{PatchSet, PatchStyle};
use atum_mclint::{error_count, lint, svx, Finding};
use atum_os::kernel::{self, KernelOptions};
use atum_os::TbitMode;
use atum_ucode::stock;
use std::fmt::Write as _;

/// The `mculist patches` report: the ATUM patch region as a listing.
pub fn patches_report() -> String {
    let mut cs = stock::build();
    let ps = PatchSet::install(&mut cs).expect("install on a fresh stock store cannot fail");
    format!(
        ";; ATUM patch region: {} micro-words\n{}",
        ps.words(),
        cs.listing(cs.stock_len(), cs.len())
    )
}

/// Result of running the full static-verification suite.
pub struct VerifyReport {
    /// Human-readable report, one section per subject.
    pub report: String,
    /// Total findings across all subjects.
    pub findings: usize,
    /// Error-severity findings (the CI gate fails on any).
    pub errors: usize,
}

fn section(out: &mut String, title: &str, findings: &[Finding]) -> (usize, usize) {
    if findings.is_empty() {
        let _ = writeln!(out, "{title:<42} ok");
    } else {
        let _ = writeln!(out, "{title:<42} {} finding(s)", findings.len());
        for f in findings {
            let _ = writeln!(out, "    {f}");
        }
    }
    (findings.len(), error_count(findings))
}

/// Runs every verifier pass over every artifact this repository builds:
/// the stock control store, the patched store in both styles, the MOSS
/// kernel in both T-bit modes, and every standard workload image.
pub fn verify() -> VerifyReport {
    let mut out = String::new();
    let mut findings = 0;
    let mut errors = 0;
    let mut add = |out: &mut String, title: &str, fs: &[Finding]| {
        let (f, e) = section(out, title, fs);
        findings += f;
        errors += e;
    };

    let cs = stock::build();
    add(&mut out, "stock control store", &lint::run(&cs));

    for (style, name) in [
        (PatchStyle::Scratch, "patched store (scratch style)"),
        (PatchStyle::Spill, "patched store (spill style)"),
    ] {
        let mut cs = stock::build();
        PatchSet::install_with_style(&mut cs, style).expect("install");
        add(&mut out, name, &lint::run(&cs));
    }

    for (tbit, name) in [
        (TbitMode::Ignore, "MOSS kernel (tbit ignored)"),
        (TbitMode::LogPc, "MOSS kernel (tbit software trace)"),
    ] {
        let opts = KernelOptions {
            tbit,
            ..KernelOptions::default()
        };
        let img = atum_asm::assemble(&kernel::source(&opts)).expect("kernel assembles");
        add(
            &mut out,
            name,
            &svx::check_image(&img, svx::ImageKind::Kernel),
        );
    }

    for w in atum_workloads::suite_standard() {
        let src = format!(".org {:#x}\n{}\n", atum_os::USER_BASE_VA, w.source);
        let img = atum_asm::assemble(&src).expect("workload assembles");
        let title = format!("workload '{}'", w.name);
        add(
            &mut out,
            &title,
            &svx::check_image(&img, svx::ImageKind::User),
        );
    }

    let _ = writeln!(out, "\nverify: {findings} finding(s), {errors} error(s)");
    VerifyReport {
        report: out,
        findings,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_is_clean_on_shipped_artifacts() {
        let v = verify();
        assert_eq!(v.errors, 0, "{}", v.report);
        assert_eq!(v.findings, 0, "{}", v.report);
    }
}
