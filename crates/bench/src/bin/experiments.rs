//! Regenerates every table and figure of the reconstructed ATUM
//! evaluation.
//!
//! ```text
//! cargo run -p atum-bench --release --bin experiments            # full, all
//! cargo run -p atum-bench --release --bin experiments -- quick   # small instances
//! cargo run -p atum-bench --release --bin experiments -- full f1 f2
//! cargo run -p atum-bench --release --bin experiments -- quick --csv f1
//! ```
//!
//! `--csv` additionally emits each table as CSV after its report.

use atum_analysis::{experiments, Report, Scale};
use std::process::ExitCode;

fn run_one(id: &str, scale: Scale) -> Result<Report, String> {
    let shared_needed = matches!(id, "f1" | "f2" | "f3" | "f4" | "f5" | "f6" | "e1" | "e2" | "e3" | "e4");
    let shared = if shared_needed {
        Some(experiments::capture_standard_mix(scale).map_err(|e| e.to_string())?)
    } else {
        None
    };
    let shared = shared.as_ref();
    let report = match id {
        "t1" => experiments::t1_technique_comparison(scale),
        "t2" => experiments::t2_trace_characteristics(scale),
        "f1" => experiments::f1_os_vs_user(scale, shared.unwrap()),
        "f2" => experiments::f2_switch_policy(scale, shared.unwrap()),
        "f3" => experiments::f3_block_size(scale, shared.unwrap()),
        "f4" => experiments::f4_associativity(scale, shared.unwrap()),
        "f5" => experiments::f5_tlb(scale, shared.unwrap()),
        "f6" => experiments::f6_organisation(scale, shared.unwrap()),
        "e1" => experiments::e1_cold_start(scale, shared.unwrap()),
        "e2" => experiments::e2_compaction(scale, shared.unwrap()),
        "e3" => experiments::e3_os_breakdown(scale, shared.unwrap()),
        "e4" => experiments::e4_working_set(scale, shared.unwrap()),
        "a1" => experiments::a1_patch_cost(scale),
        other => return Err(format!("unknown experiment id '{other}'")),
    };
    report.map_err(|e| e.to_string())
}

fn print_report(r: &Report, csv: bool) {
    println!("{r}\n");
    if csv {
        for (caption, table) in &r.tables {
            println!("csv: {} — {caption}\n{}", r.id, table.to_csv());
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    args.retain(|a| a != "--csv");
    let (scale, ids): (Scale, Vec<String>) = match args.split_first() {
        Some((first, rest)) if first == "quick" => (Scale::Quick, rest.to_vec()),
        Some((first, rest)) if first == "full" => (Scale::Full, rest.to_vec()),
        Some(_) => (Scale::Full, args.clone()),
        None => (Scale::Full, Vec::new()),
    };

    eprintln!(
        "# ATUM reproduction — experiment harness ({:?} scale)",
        scale
    );

    if ids.is_empty() {
        match experiments::run_all(scale) {
            Ok(reports) => {
                for r in reports {
                    print_report(&r, csv);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("experiment run failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let mut ok = true;
        for id in &ids {
            match run_one(&id.to_lowercase(), scale) {
                Ok(r) => print_report(&r, csv),
                Err(e) => {
                    eprintln!("{id}: {e}");
                    ok = false;
                }
            }
        }
        if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}
