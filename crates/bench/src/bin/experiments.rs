//! Regenerates every table and figure of the reconstructed ATUM
//! evaluation.
//!
//! ```text
//! cargo run -p atum-bench --release --bin experiments            # full, all
//! cargo run -p atum-bench --release --bin experiments -- quick   # small instances
//! cargo run -p atum-bench --release --bin experiments -- full f1 f2
//! cargo run -p atum-bench --release --bin experiments -- quick --csv f1
//! cargo run -p atum-bench --release --bin experiments -- full --jobs 4
//! ```
//!
//! `--csv` additionally emits each table as CSV after its report.
//! `--jobs N` fans independent experiments (and their internal capture
//! runs) over N threads; output is byte-identical for every N. The
//! standard mix is captured once and shared across all experiments that
//! analyse it.

use atum_analysis::{experiments, Report, Scale};
use std::process::ExitCode;

fn print_report(r: &Report, csv: bool) {
    println!("{r}\n");
    if csv {
        for (caption, table) in &r.tables {
            println!("csv: {} — {caption}\n{}", r.id, table.to_csv());
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    args.retain(|a| a != "--csv");
    let mut jobs = atum_analysis::parallel::jobs();
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        let Some(n) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) else {
            eprintln!("--jobs needs a positive integer");
            return ExitCode::FAILURE;
        };
        if n == 0 {
            eprintln!("--jobs needs a positive integer");
            return ExitCode::FAILURE;
        }
        jobs = n;
        args.drain(pos..pos + 2);
    }
    atum_analysis::set_jobs(jobs);
    let (scale, ids): (Scale, Vec<String>) = match args.split_first() {
        Some((first, rest)) if first == "quick" => (Scale::Quick, rest.to_vec()),
        Some((first, rest)) if first == "full" => (Scale::Full, rest.to_vec()),
        Some(_) => (Scale::Full, args.clone()),
        None => (Scale::Full, Vec::new()),
    };

    eprintln!(
        "# ATUM reproduction — experiment harness ({:?} scale, {} jobs)",
        scale, jobs
    );

    let ids = if ids.is_empty() {
        experiments::ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };
    let mut ok = true;
    for (id, result) in experiments::run_selected(scale, &ids, jobs) {
        match result {
            Ok(r) => print_report(&r, csv),
            Err(e) => {
                eprintln!("{id}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
