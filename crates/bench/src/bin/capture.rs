//! Capture an ATUM trace from named workloads and write the archival
//! trace file — the downstream-user tool.
//!
//! ```text
//! capture list matrix            # 2-process mix of named workloads
//! capture mix                    # the standard multiprogramming mix
//! capture lexer -q 8000 -o t.atum --dump 20
//! ```
//!
//! Workload names: matrix, list, lexer, sort, copy, fib, bsearch, queue,
//! heap — or `mix` for the standard mix. `-q` sets the scheduling quantum in
//! microcycles, `-o` writes the compact trace file, `--dump N` prints the
//! first N records.

use atum_core::{CaptureSession, Tracer};
use atum_machine::{Machine, RunExit};
use atum_os::BootImage;
use atum_workloads::Workload;
use std::process::ExitCode;

fn preset(name: &str) -> Option<Workload> {
    Some(match name {
        "matrix" => atum_workloads::matrix("matrix", 16),
        "list" => atum_workloads::list_chase("list", 1_024, 40_000),
        "lexer" => atum_workloads::lexer("lexer", 8_192, 3),
        "sort" => atum_workloads::sort("sort", 1_024),
        "copy" => atum_workloads::block_copy("copy", 8_192, 24),
        "fib" => atum_workloads::fib_recursive("fib", 18),
        "bsearch" => atum_workloads::binary_search("bsearch", 2_048, 15_000),
        "queue" => atum_workloads::queue_sim("queue", 48, 30_000),
        "heap" => atum_workloads::heap_walk("heap", 30, 400),
        _ => return None,
    })
}

struct Args {
    workloads: Vec<Workload>,
    quantum: u32,
    out: Option<String>,
    dump: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workloads: Vec::new(),
        quantum: 20_000,
        out: None,
        dump: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "-q" | "--quantum" => {
                args.quantum = it
                    .next()
                    .ok_or("missing value for -q")?
                    .parse()
                    .map_err(|e| format!("bad quantum: {e}"))?;
            }
            "-o" | "--out" => {
                args.out = Some(it.next().ok_or("missing value for -o")?);
            }
            "--dump" => {
                args.dump = it
                    .next()
                    .ok_or("missing value for --dump")?
                    .parse()
                    .map_err(|e| format!("bad dump count: {e}"))?;
            }
            "mix" => args.workloads.extend(atum_workloads::mix_std()),
            name => {
                args.workloads
                    .push(preset(name).ok_or_else(|| format!("unknown workload '{name}'"))?);
            }
        }
    }
    if args.workloads.is_empty() {
        return Err(
            "usage: capture <workloads…|mix> [-q quantum] [-o file.atum] [--dump N]".to_string(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let mut builder = BootImage::builder().quantum(args.quantum);
    for w in &args.workloads {
        builder = builder.user_program(&w.source);
    }
    let image = match builder.build() {
        Ok(i) => i,
        Err(e) => {
            eprintln!("boot: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut machine = Machine::new(image.memory_layout());
    if let Err(e) = image.load_into(&mut machine) {
        eprintln!("load: {e}");
        return ExitCode::FAILURE;
    }
    let tracer = match Tracer::attach(&mut machine) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("attach: {e}");
            return ExitCode::FAILURE;
        }
    };
    tracer.set_pid(&mut machine, 0);
    let capture = match CaptureSession::new(&tracer, u64::MAX / 2).run(&mut machine) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("capture: {e}");
            return ExitCode::FAILURE;
        }
    };
    if capture.exit != RunExit::Halted {
        eprintln!("machine did not halt: {}", capture.exit);
        return ExitCode::FAILURE;
    }

    let console = String::from_utf8_lossy(&machine.take_console_output()).to_string();
    eprintln!(
        "workloads: {}",
        args.workloads
            .iter()
            .map(|w| w.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    eprintln!(
        "console: {console:?} (expected checksums: {})",
        args.workloads
            .iter()
            .map(|w| w.expected_output.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    eprintln!(
        "cycles: {}  instructions: {}  drains: {}",
        machine.cycles(),
        machine.insns(),
        capture.drains
    );
    eprintln!("{}", capture.trace.stats());

    if args.dump > 0 {
        for r in capture.trace.iter().take(args.dump) {
            println!("{r}");
        }
    }
    if let Some(path) = &args.out {
        let bytes = atum_core::encode_trace(&capture.trace);
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {path}: {} bytes ({:.2} bytes/record)",
            bytes.len(),
            bytes.len() as f64 / capture.trace.len().max(1) as f64
        );
    }
    ExitCode::SUCCESS
}
