//! Microcode listing tool: dump the stock control store, a single
//! routine, the entry table, or the ATUM patch region.
//!
//! ```text
//! mculist entries            # where the patchable hooks point
//! mculist xfer.read          # one routine
//! mculist patches            # the ATUM patch region (installs first)
//! mculist all                # the whole store
//! ```

use atum_core::PatchSet;
use atum_ucode::stock;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "entries".to_string());
    let mut cs = stock::build();
    match arg.as_str() {
        "entries" => {
            println!("stock entry table:\n{}", cs.entry_summary());
            PatchSet::install(&mut cs).expect("install");
            println!("after installing the ATUM patches:\n{}", cs.entry_summary());
        }
        "patches" => {
            let ps = PatchSet::install(&mut cs).expect("install");
            println!(
                ";; ATUM patch region: {} micro-words\n{}",
                ps.words(),
                cs.listing(cs.stock_len(), cs.len())
            );
        }
        "all" => {
            println!("{}", cs.listing(0, cs.len()));
        }
        sym => {
            // Patch symbols (atum.*) only exist after installation.
            if cs.symbol(sym).is_none() {
                let _ = PatchSet::install(&mut cs);
            }
            match cs.listing_of(sym) {
                Some(l) => println!("{l}"),
                None => {
                    let mut names: Vec<&String> = cs.symbols().keys().collect();
                    names.sort();
                    eprintln!("unknown symbol '{sym}'. available:");
                    for chunk in names.chunks(6) {
                        eprintln!(
                            "  {}",
                            chunk
                                .iter()
                                .map(|s| s.as_str())
                                .collect::<Vec<_>>()
                                .join("  ")
                        );
                    }
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
