//! Microcode listing and verification tool: dump the stock control
//! store, a single routine, the entry table, or the ATUM patch region,
//! or run the static verifier over everything the repository builds.
//!
//! ```text
//! mculist entries            # where the patchable hooks point
//! mculist xfer.read          # one routine
//! mculist patches            # the ATUM patch region (installs first)
//! mculist all                # the whole store
//! mculist verify             # static verification; nonzero exit on errors
//! ```

use atum_bench::mculist::{patches_report, verify};
use atum_core::PatchSet;
use atum_ucode::stock;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "entries".to_string());
    let mut cs = stock::build();
    match arg.as_str() {
        "entries" => {
            println!("stock entry table:\n{}", cs.entry_summary());
            PatchSet::install(&mut cs).expect("install");
            println!("after installing the ATUM patches:\n{}", cs.entry_summary());
        }
        "patches" => {
            print!("{}", patches_report());
        }
        "all" => {
            println!("{}", cs.listing(0, cs.len()));
        }
        "verify" => {
            let v = verify();
            print!("{}", v.report);
            if v.errors > 0 {
                return ExitCode::FAILURE;
            }
        }
        sym => {
            // Patch symbols (atum.*) only exist after installation.
            if cs.symbol(sym).is_none() {
                if let Err(e) = PatchSet::install(&mut cs) {
                    eprintln!("cannot install patches to resolve '{sym}': {e}");
                    return ExitCode::FAILURE;
                }
            }
            match cs.listing_of(sym) {
                Some(l) => println!("{l}"),
                None => {
                    let mut names: Vec<&String> = cs.symbols().keys().collect();
                    names.sort();
                    eprintln!("unknown symbol '{sym}'. available:");
                    for chunk in names.chunks(6) {
                        eprintln!(
                            "  {}",
                            chunk
                                .iter()
                                .map(|s| s.as_str())
                                .collect::<Vec<_>>()
                                .join("  ")
                        );
                    }
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
