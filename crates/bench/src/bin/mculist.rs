//! Microcode listing and verification tool: dump the stock control
//! store, a single routine, the entry table, or the ATUM patch region,
//! or run the static verifier over everything the repository builds.
//!
//! ```text
//! mculist entries            # where the patchable hooks point
//! mculist xfer.read          # one routine
//! mculist patches            # the ATUM patch region (installs first)
//! mculist all                # the whole store
//! mculist verify             # static verification; nonzero exit on findings
//! mculist verify --pass atomicity  # one verifier pass only
//! mculist cost               # static slowdown-band gate; nonzero exit on findings
//! mculist trace info F.atrace  # segment headers + compression stats of a trace file
//! mculist trace info F.atrace --batch  # plus decode-only batched read timing
//! ```
//!
//! `verify`, `cost` and `trace info` accept `--format json` for
//! machine-readable output; `verify` accepts `--pass <name>` to run a
//! single verifier pass.

use atum_bench::mculist::{cost_report, patches_report, trace_info, trace_info_batch, verify_pass};
use atum_core::PatchSet;
use atum_mclint::Pass;
use atum_ucode::stock;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut batch = false;
    let mut pass_name: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--format=json"
            || a == "--format" && args.get(i + 1).map(String::as_str) == Some("json")
        {
            json = true;
            if a == "--format" {
                i += 1;
            }
        } else if a == "--batch" {
            batch = true;
        } else if let Some(v) = a.strip_prefix("--pass=") {
            pass_name = Some(v.to_string());
        } else if a == "--pass" {
            match args.get(i + 1) {
                Some(v) => {
                    pass_name = Some(v.clone());
                    i += 1;
                }
                None => {
                    eprintln!("--pass needs a pass name");
                    return ExitCode::FAILURE;
                }
            }
        } else if !a.starts_with("--") {
            positional.push(args[i].clone());
        }
        i += 1;
    }
    let pass = match &pass_name {
        None => None,
        Some(n) => match Pass::from_name(n) {
            Some(p) => Some(p),
            None => {
                eprintln!(
                    "unknown pass '{n}'. available: {}",
                    Pass::ALL
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
    };
    let arg = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "entries".to_string());
    if arg == "trace" {
        return run_trace(&positional[1..], json, batch);
    }
    let mut cs = stock::build();
    match arg.as_str() {
        "entries" => {
            println!("stock entry table:\n{}", cs.entry_summary());
            PatchSet::install(&mut cs).expect("install");
            println!("after installing the ATUM patches:\n{}", cs.entry_summary());
        }
        "patches" => {
            print!("{}", patches_report());
        }
        "all" => {
            println!("{}", cs.listing(0, cs.len()));
        }
        "verify" => {
            let v = verify_pass(pass);
            if json {
                print!("{}", v.render_json());
            } else {
                print!("{}", v.render());
            }
            if v.findings > 0 {
                return ExitCode::FAILURE;
            }
        }
        // The deterministic half of `cost` alone (no BENCH_capture.json
        // comparison): what the golden tests pin, and how to regenerate
        // `crates/bench/tests/golden/cost.txt` (text) and
        // `crates/bench/tests/golden/cost.json` (`--format json`).
        "cost-static" => {
            let c = cost_report();
            if json {
                print!("{}", c.json_static);
            } else {
                print!("{}", c.static_report);
            }
            if c.findings > 0 {
                return ExitCode::FAILURE;
            }
        }
        "cost" => {
            let c = cost_report();
            if json {
                print!("{}", c.json);
            } else {
                print!("{}{}", c.static_report, c.bench_report);
            }
            if c.findings > 0 || c.errors > 0 {
                return ExitCode::FAILURE;
            }
        }
        sym => {
            // Patch symbols (atum.*) only exist after installation.
            if cs.symbol(sym).is_none() {
                if let Err(e) = PatchSet::install(&mut cs) {
                    eprintln!("cannot install patches to resolve '{sym}': {e}");
                    return ExitCode::FAILURE;
                }
            }
            match cs.listing_of(sym) {
                Some(l) => println!("{l}"),
                None => {
                    let mut names: Vec<&String> = cs.symbols().keys().collect();
                    names.sort();
                    eprintln!("unknown symbol '{sym}'. available:");
                    for chunk in names.chunks(6) {
                        eprintln!(
                            "  {}",
                            chunk
                                .iter()
                                .map(|s| s.as_str())
                                .collect::<Vec<_>>()
                                .join("  ")
                        );
                    }
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// `mculist trace info <file>`: dump the per-segment headers and the
/// compression statistics of an on-disk segment trace. `--batch` also
/// times a decode-only pass through the batched pull reader.
fn run_trace(rest: &[String], json: bool, batch: bool) -> ExitCode {
    let (action, path) = match rest {
        [a, p] => (a.as_str(), p.as_str()),
        [p] => ("info", p.as_str()),
        _ => {
            eprintln!("usage: mculist trace info <file.atrace> [--batch] [--format json]");
            return ExitCode::FAILURE;
        }
    };
    if action != "info" {
        eprintln!("unknown trace action '{action}' (expected 'info')");
        return ExitCode::FAILURE;
    }
    let result = if batch {
        trace_info_batch(path)
    } else {
        trace_info(path)
    };
    match result {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot inspect '{path}': {e}");
            ExitCode::FAILURE
        }
    }
}
