//! # atum-bench — benchmark harness
//!
//! Two entry points:
//!
//! * the `experiments` binary (`cargo run -p atum-bench --release --bin
//!   experiments [-- quick|full] [ids…]`) regenerates every table and
//!   figure of the reconstructed evaluation and prints the reports that
//!   `EXPERIMENTS.md` records;
//! * the Criterion benches (`cargo bench -p atum-bench`) time the moving
//!   parts: machine throughput traced/untraced (the slowdown measurement
//!   itself), cache-simulation throughput, assembler and control-store
//!   build times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mculist;

pub use atum_analysis::{experiments, Report, Scale};
