//! One Criterion benchmark per reconstructed table/figure: times the
//! regeneration of each experiment at Quick scale. (The recorded numbers
//! come from the `experiments` binary at Full scale; these benches exist
//! so regressions in any experiment pipeline are caught as timing/work
//! changes.)

use atum_analysis::{experiments, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn regen(c: &mut Criterion) {
    let shared = experiments::capture_standard_mix(Scale::Quick).expect("capture");
    let mut g = c.benchmark_group("regen");
    g.sample_size(10);

    g.bench_function("t1_technique_comparison", |b| {
        b.iter(|| experiments::t1_technique_comparison(Scale::Quick).unwrap())
    });
    g.bench_function("t2_trace_characteristics", |b| {
        b.iter(|| experiments::t2_trace_characteristics(Scale::Quick).unwrap())
    });
    g.bench_function("f1_os_vs_user", |b| {
        b.iter(|| experiments::f1_os_vs_user(Scale::Quick, &shared).unwrap())
    });
    g.bench_function("f2_switch_policy", |b| {
        b.iter(|| experiments::f2_switch_policy(Scale::Quick, &shared).unwrap())
    });
    g.bench_function("f3_block_size", |b| {
        b.iter(|| experiments::f3_block_size(Scale::Quick, &shared).unwrap())
    });
    g.bench_function("f4_associativity", |b| {
        b.iter(|| experiments::f4_associativity(Scale::Quick, &shared).unwrap())
    });
    g.bench_function("f5_tlb", |b| {
        b.iter(|| experiments::f5_tlb(Scale::Quick, &shared).unwrap())
    });
    g.bench_function("f6_organisation", |b| {
        b.iter(|| experiments::f6_organisation(Scale::Quick, &shared).unwrap())
    });
    g.bench_function("e1_cold_start", |b| {
        b.iter(|| experiments::e1_cold_start(Scale::Quick, &shared).unwrap())
    });
    g.bench_function("e2_compaction", |b| {
        b.iter(|| experiments::e2_compaction(Scale::Quick, &shared).unwrap())
    });
    g.bench_function("e3_os_breakdown", |b| {
        b.iter(|| experiments::e3_os_breakdown(Scale::Quick, &shared).unwrap())
    });
    g.bench_function("e4_working_set", |b| {
        b.iter(|| experiments::e4_working_set(Scale::Quick, &shared).unwrap())
    });
    g.bench_function("a1_patch_cost", |b| {
        b.iter(|| experiments::a1_patch_cost(Scale::Quick).unwrap())
    });
    g.finish();
}

criterion_group!(benches, regen);
criterion_main!(benches);
