//! Analysis-rate benchmark: the Fenwick recency-index sweep engine and
//! the engine-parallel broadcast against the legacy linked-list walk.
//!
//! Captures the standard mix, replicates it to a few million records,
//! then runs three sweep families — the F1-style direct-mapped size
//! sweep, an associativity mix, and a purge-on-switch family — three
//! ways each: the legacy walk (`oracle` feature), the Fenwick engine
//! serially, and the Fenwick engine with batches broadcast to engine
//! shards. All three result sets must be identical per family, and the
//! best new-engine rate on the F1 family must be at least [`MIN_GAIN`]×
//! the old walk (the CI floor gate). Rates are recorded machine-readably
//! in `BENCH_analysis.json` at the workspace root.
//!
//! ```text
//! cargo bench -p atum-bench --bench analysis -- analysis
//! ```

use atum_analysis::{experiments, Scale};
use atum_cache::{simulate_many, simulate_many_oracle, CacheConfig, MultiSim, SwitchPolicy};
use atum_core::{RecordKind, Trace};
use criterion::{criterion_group, criterion_main, Criterion};

/// The raw-record budget the replicated trace must exceed — big enough
/// that the legacy walk's per-access pointer chase dominates its
/// constant costs.
const RECORD_BUDGET: u64 = 4 << 20;

/// Best-of timing rounds per variant (interleaved so host drift cancels
/// in the ratios).
const ROUNDS: usize = 3;

/// CI floor: best new-engine rate over the F1 family must beat the old
/// walk by at least this factor.
const MIN_GAIN: f64 = 2.0;

/// Re-stitches one copy of `src` onto `big`, keeping per-drain segment
/// boundaries (a plain `stitch(clone)` would flatten them).
fn stitch_replica(big: &mut Trace, src: &Trace) {
    for seg in src.segment_slices() {
        let recs = match seg.last() {
            Some(r) if r.kind() == RecordKind::SegmentMark => &seg[..seg.len() - 1],
            _ => seg,
        };
        let sub: Trace = recs.iter().copied().collect();
        big.stitch(sub);
    }
}

struct Family {
    name: &'static str,
    cfgs: Vec<CacheConfig>,
}

fn families() -> Vec<Family> {
    // F1-style: direct-mapped size sweep, 16 B blocks — the paper's
    // complete-vs-user miss-rate family and the gated workload.
    let f1: Vec<CacheConfig> = [1u32, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|kb| {
            CacheConfig::builder()
                .size(kb << 10)
                .block(16)
                .assoc(1)
                .build()
                .unwrap()
        })
        .collect();
    // Associativity mix: sizes x ways in one shared stack.
    let mut assoc = Vec::new();
    for kb in [4u32, 16, 64] {
        for ways in [1u32, 2, 4, 8] {
            assoc.push(
                CacheConfig::builder()
                    .size(kb << 10)
                    .block(16)
                    .assoc(ways)
                    .build()
                    .unwrap(),
            );
        }
    }
    // Purge-on-switch: the multiprogramming family, exercising the
    // flush path's shared resident walk.
    let flush: Vec<CacheConfig> = [2u32, 8, 32]
        .into_iter()
        .flat_map(|kb| {
            [1u32, 2].into_iter().map(move |ways| {
                CacheConfig::builder()
                    .size(kb << 10)
                    .block(16)
                    .assoc(ways)
                    .switch_policy(SwitchPolicy::Flush)
                    .build()
                    .unwrap()
            })
        })
        .collect();
    vec![
        Family {
            name: "f1_size_sweep",
            cfgs: f1,
        },
        Family {
            name: "assoc_mix",
            cfgs: assoc,
        },
        Family {
            name: "flush_switch",
            cfgs: flush,
        },
    ]
}

fn best_of<T>(rounds: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::MAX;
    let mut last = None;
    for _ in 0..rounds {
        let t0 = std::time::Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("rounds >= 1"))
}

fn analysis(_c: &mut Criterion) {
    if !criterion::filter_matches("analysis") {
        return;
    }

    let run = experiments::capture_standard_mix(Scale::Quick).expect("capture standard mix");
    let mut big = Trace::new();
    let mut replicas = 0u32;
    while (big.len() as u64) <= RECORD_BUDGET / 8 {
        stitch_replica(&mut big, &run.trace);
        replicas += 1;
    }
    let refs = big.ref_count() as f64;

    // At least 2 so the broadcast ring is always exercised, even on a
    // single-CPU host.
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8);

    let mut rows = String::new();
    let mut f1_gain = 0.0f64;
    for fam in families() {
        // Correctness first: all three paths must agree exactly.
        let want = simulate_many(&big, &fam.cfgs);
        assert_eq!(
            want,
            simulate_many_oracle(&big, &fam.cfgs),
            "{}: Fenwick engine diverged from the legacy walk",
            fam.name
        );
        assert_eq!(
            want,
            MultiSim::new(&fam.cfgs)
                .run_parallel(&mut big.source(), jobs)
                .expect("in-memory source cannot fail"),
            "{}: parallel sweep diverged from serial",
            fam.name
        );

        // Timing: interleave the variants inside each round.
        let mut t_old = f64::MAX;
        let mut t_fen = f64::MAX;
        let mut t_par = f64::MAX;
        for _ in 0..ROUNDS {
            let (t, _) = best_of(1, || simulate_many_oracle(&big, &fam.cfgs));
            t_old = t_old.min(t);
            let (t, _) = best_of(1, || simulate_many(&big, &fam.cfgs));
            t_fen = t_fen.min(t);
            let (t, _) = best_of(1, || {
                MultiSim::new(&fam.cfgs)
                    .run_parallel(&mut big.source(), jobs)
                    .expect("in-memory source cannot fail")
            });
            t_par = t_par.min(t);
        }
        let old_rate = refs / t_old;
        let fen_rate = refs / t_fen;
        let par_rate = refs / t_par;
        let gain = t_old / t_fen.min(t_par);
        if fam.name == "f1_size_sweep" {
            f1_gain = gain;
        }
        println!(
            "bench analysis[{}]: {} configs  old-walk {old_rate:.3e} refs/s  \
             fenwick {fen_rate:.3e} refs/s  parallel(x{jobs}) {par_rate:.3e} refs/s  \
             ({gain:.2}x over old walk)",
            fam.name,
            fam.cfgs.len(),
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\n      \"family\": \"{}\",\n      \"configs\": {},\n      \
             \"old_walk_refs_per_sec\": {old_rate:.1},\n      \
             \"fenwick_refs_per_sec\": {fen_rate:.1},\n      \
             \"parallel_refs_per_sec\": {par_rate:.1},\n      \
             \"gain_over_old_walk\": {gain:.3},\n      \
             \"results_identical\": true\n    }}",
            fam.name,
            fam.cfgs.len(),
        ));
    }

    assert!(
        f1_gain >= MIN_GAIN,
        "F1 sweep family must run at least {MIN_GAIN}x the legacy walk, got {f1_gain:.2}x"
    );

    let json = format!(
        "{{\n  \"workload\": \"standard mix (Quick) x{replicas} replicas\",\n  \
         \"unit\": \"memory references per second\",\n  \
         \"records\": {},\n  \"refs\": {},\n  \"jobs\": {jobs},\n  \
         \"min_gain_floor\": {MIN_GAIN},\n  \
         \"f1_gain_over_old_walk\": {f1_gain:.3},\n  \
         \"families\": [\n{rows}\n  ]\n}}\n",
        big.len(),
        big.ref_count(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json");
    std::fs::write(out, json).expect("write BENCH_analysis.json");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = analysis
}
criterion_main!(benches);
