//! Criterion benches of the moving parts: micro-engine throughput with
//! and without the ATUM patches (the slowdown measurement as a timing
//! benchmark), cache-simulation throughput, assembler and control-store
//! build times.

use atum_core::{PatchStyle, Tracer};
use atum_machine::{EngineTier, Machine, MemLayout};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn bench_program() -> atum_asm::Image {
    let w = atum_workloads::list_chase("bench", 256, 4_000);
    let src = w
        .source
        .replace("chmk    #1", "nop")
        .replace("chmk    #0", "halt");
    atum_asm::assemble(&format!(".org 0x1000\n{src}\n")).expect("bench program")
}

fn loaded_machine(img: &atum_asm::Image) -> Machine {
    let mut m = Machine::new(MemLayout::small());
    for (a, b) in img.segments() {
        m.write_phys(*a, b).unwrap();
    }
    m.set_gpr(14, 0x8000);
    m.set_pc(img.symbol("start").unwrap());
    m
}

fn engine_throughput(c: &mut Criterion) {
    let img = bench_program();
    // Count the work once for throughput units.
    let mut probe = loaded_machine(&img);
    probe.run(u64::MAX);
    let insns = probe.insns();

    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(insns));
    g.bench_function("untraced", |b| {
        b.iter_batched(
            || loaded_machine(&img),
            |mut m| m.run(u64::MAX),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("atum_scratch", |b| {
        b.iter_batched(
            || {
                let mut m = loaded_machine(&img);
                let t = Tracer::attach_with_style(&mut m, PatchStyle::Scratch).unwrap();
                t.set_enabled(&mut m, true);
                m
            },
            |mut m| m.run(u64::MAX),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("atum_spill", |b| {
        b.iter_batched(
            || {
                let mut m = loaded_machine(&img);
                let t = Tracer::attach_with_style(&mut m, PatchStyle::Spill).unwrap();
                t.set_enabled(&mut m, true);
                m
            },
            |mut m| m.run(u64::MAX),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Per-tier capture rates (reference vs fast vs superblock), written
/// machine-readably to `BENCH_capture.json` at the workspace root.
/// Trials are interleaved across the tiers and best-of so host-speed
/// drift cancels in the ratios — the speedups, not the absolute rates,
/// are the pinned result. `mculist cost` gates on this file: every
/// traced slowdown must sit inside the static envelope, and the
/// superblock rate must not regress below the fast-engine rate.
fn capture_rates(_c: &mut Criterion) {
    if !criterion::filter_matches("engine/capture_rates") {
        return;
    }
    const ROUNDS: usize = 10;
    const TIERS: [EngineTier; 3] = [
        EngineTier::Reference,
        EngineTier::Fast,
        EngineTier::Superblock,
    ];
    let img = bench_program();
    let load = |style: Option<PatchStyle>| {
        let mut m = loaded_machine(&img);
        if let Some(style) = style {
            let t = Tracer::attach_with_style(&mut m, style).unwrap();
            t.set_enabled(&mut m, true);
        }
        m
    };
    let mut entries = Vec::new();
    for (name, style) in [
        ("untraced", None),
        ("atum_scratch", Some(PatchStyle::Scratch)),
        ("atum_spill", Some(PatchStyle::Spill)),
    ] {
        let mut probe = load(style);
        probe.run(u64::MAX);
        let insns = probe.insns();
        let mut best = [f64::MAX; 3];
        for _ in 0..ROUNDS {
            for (i, &tier) in TIERS.iter().enumerate() {
                let mut m = load(style);
                m.set_engine_tier(tier);
                let t0 = std::time::Instant::now();
                m.run(u64::MAX);
                best[i] = best[i].min(t0.elapsed().as_secs_f64());
            }
        }
        let reference = insns as f64 / best[0];
        let fast = insns as f64 / best[1];
        let superblock = insns as f64 / best[2];
        println!(
            "bench engine/capture_rates/{name}: reference {reference:.3e} insn/s  \
             fast {fast:.3e} insn/s ({:.2}x)  superblock {superblock:.3e} insn/s \
             ({:.2}x, {:.2}x over fast)",
            fast / reference,
            superblock / reference,
            superblock / fast
        );
        entries.push(format!(
            "    \"{name}\": {{\n      \"insns\": {insns},\n      \
             \"fast_insns_per_sec\": {fast:.1},\n      \
             \"superblock_insns_per_sec\": {superblock:.1},\n      \
             \"reference_insns_per_sec\": {reference:.1},\n      \
             \"speedup\": {:.3},\n      \
             \"superblock_speedup\": {:.3}\n    }}",
            fast / reference,
            superblock / reference
        ));
    }
    let json = format!(
        "{{\n  \"workload\": \"list_chase nodes=256 steps=4000\",\n  \
         \"unit\": \"architectural instructions per second\",\n  \
         \"configs\": {{\n{}\n  }}\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_capture.json");
    std::fs::write(path, json).expect("write BENCH_capture.json");
}

fn cache_throughput(c: &mut Criterion) {
    // Capture one real trace to drive the simulators.
    let img = bench_program();
    let mut m = loaded_machine(&img);
    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_enabled(&mut m, true);
    m.run(u64::MAX);
    let trace = tracer.extract(&m).unwrap();
    let refs = trace.ref_count() as u64;

    let mut g = c.benchmark_group("cache_sim");
    g.throughput(Throughput::Elements(refs));
    for (name, ways) in [("direct_mapped", 1u32), ("4way", 4)] {
        let cfg = atum_cache::CacheConfig::builder()
            .size(16 << 10)
            .block(16)
            .assoc(ways)
            .build()
            .unwrap();
        g.bench_function(name, |b| b.iter(|| atum_cache::simulate(&trace, &cfg)));
    }
    g.finish();
}

fn cache_multi_throughput(c: &mut Criterion) {
    // The paper's sweeps ask the same question of many configurations at
    // once. Compare N independent `simulate` passes against one
    // `simulate_many` pass over the same N configurations (a size sweep,
    // all LRU write-back, so the stack engine takes them in one walk).
    let img = bench_program();
    let mut m = loaded_machine(&img);
    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_enabled(&mut m, true);
    m.run(u64::MAX);
    let trace = tracer.extract(&m).unwrap();
    let refs = trace.ref_count() as u64;

    let mut cfgs: Vec<atum_cache::CacheConfig> = Vec::new();
    for kb in [1u32, 2, 4, 8, 16, 32, 64] {
        for ways in [1u32, 2, 4, 8] {
            cfgs.push(
                atum_cache::CacheConfig::builder()
                    .size(kb << 10)
                    .block(16)
                    .assoc(ways)
                    .build()
                    .unwrap(),
            );
        }
    }

    let mut g = c.benchmark_group("cache_multi");
    g.throughput(Throughput::Elements(refs * cfgs.len() as u64));
    g.bench_function("replay_per_config", |b| {
        b.iter(|| {
            cfgs.iter()
                .map(|cfg| atum_cache::simulate(&trace, cfg))
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("single_pass", |b| {
        b.iter(|| atum_cache::simulate_many(&trace, &cfgs))
    });
    g.finish();
}

fn archsim_throughput(c: &mut Criterion) {
    // The architectural simulator is much faster on the host than the
    // microcoded machine — and sees nothing but one user program. Both
    // facts belong in the technique comparison.
    let img = bench_program();
    let mut probe = atum_baselines::ArchSim::new();
    probe.load_image(&img);
    probe.set_pc(img.symbol("start").unwrap());
    probe.stop_on_halt = true;
    probe.run(u64::MAX);
    let insns = probe.insns();

    let mut g = c.benchmark_group("archsim");
    g.throughput(Throughput::Elements(insns));
    g.bench_function("user_only", |b| {
        b.iter_batched(
            || {
                let mut sim = atum_baselines::ArchSim::new();
                sim.load_image(&img);
                sim.set_pc(img.symbol("start").unwrap());
                sim.stop_on_halt = true;
                sim
            },
            |mut sim| sim.run(u64::MAX),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn build_costs(c: &mut Criterion) {
    let mut g = c.benchmark_group("build");
    g.bench_function("stock_control_store", |b| b.iter(atum_ucode::stock::build));
    let kernel_src = atum_os::kernel::source(&atum_os::KernelOptions::default());
    g.bench_function("assemble_kernel", |b| {
        b.iter(|| atum_asm::assemble(&kernel_src).unwrap())
    });
    g.bench_function("install_patches", |b| {
        b.iter_batched(
            atum_ucode::stock::build,
            |mut cs| atum_core::PatchSet::install(&mut cs).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = engine_throughput, capture_rates, cache_throughput, cache_multi_throughput, archsim_throughput, build_costs
}
criterion_main!(benches);
