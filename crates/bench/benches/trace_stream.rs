//! Out-of-core trace streaming benchmark: captures the standard mix,
//! replicates it onto disk past a 16 MiB in-memory budget, then runs the
//! same stackable cache sweep three ways — in-memory `simulate_many`,
//! streamed from the segment file sequentially, and streamed with the
//! parallel per-segment reader. The three result sets must be identical;
//! the timings and the file's compression ratio are recorded
//! machine-readably in `BENCH_trace.json` at the workspace root.
//!
//! ```text
//! cargo bench -p atum-bench --bench trace_stream -- trace_stream
//! ```

use atum_analysis::{experiments, Scale};
use atum_cache::{simulate_many, simulate_many_stream, CacheConfig};
use atum_core::{RecordKind, SegmentFileSource, SegmentWriter, Trace};
use criterion::{criterion_group, criterion_main, Criterion};

/// The in-memory budget the on-disk trace must exceed: the sweep below
/// demonstrably runs against a file bigger (in raw records) than this.
const MEMORY_BUDGET: u64 = 16 << 20;

/// Best-of timing rounds per variant (interleaved so host drift cancels
/// in the ratios).
const ROUNDS: usize = 3;

/// Re-stitches one copy of `src` onto `big`, segment by segment, so the
/// replica keeps `src`'s per-drain segment boundaries (a plain
/// `stitch(clone)` would flatten them and starve the parallel reader).
fn stitch_replica(big: &mut Trace, src: &Trace) {
    for seg in src.segment_slices() {
        let recs = match seg.last() {
            // `stitch` re-adds the terminating mark itself.
            Some(r) if r.kind() == RecordKind::SegmentMark => &seg[..seg.len() - 1],
            _ => seg,
        };
        let sub: Trace = recs.iter().copied().collect();
        big.stitch(sub);
    }
}

fn sweep_configs() -> Vec<CacheConfig> {
    let mut cfgs = Vec::new();
    for kb in [1u32, 2, 4, 8, 16, 32, 64] {
        for ways in [1u32, 4] {
            cfgs.push(
                CacheConfig::builder()
                    .size(kb << 10)
                    .block(16)
                    .assoc(ways)
                    .build()
                    .unwrap(),
            );
        }
    }
    cfgs
}

fn best_of<T>(rounds: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::MAX;
    let mut last = None;
    for _ in 0..rounds {
        let t0 = std::time::Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("rounds >= 1"))
}

fn trace_stream(_c: &mut Criterion) {
    if !criterion::filter_matches("trace_stream") {
        return;
    }

    // One real capture of the standard mix; replicate it until the raw
    // record size crosses the in-memory budget.
    let run = experiments::capture_standard_mix(Scale::Quick).expect("capture standard mix");
    let mut big = Trace::new();
    let mut replicas = 0u32;
    while (big.len() as u64) * 8 <= MEMORY_BUDGET {
        stitch_replica(&mut big, &run.trace);
        replicas += 1;
    }

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/trace_stream.atrace"
    );
    let mut w = SegmentWriter::create(path).expect("create trace file");
    w.write_trace(&big).expect("write trace");
    let stats = w.finish().expect("flush trace");
    assert!(
        stats.raw_bytes() > MEMORY_BUDGET,
        "on-disk trace must exceed the {} MiB in-memory budget, got {} raw bytes",
        MEMORY_BUDGET >> 20,
        stats.raw_bytes()
    );
    assert!(
        stats.compression_ratio() >= 3.0,
        "segment format must compact the captured mix >=3x, got {:.2}",
        stats.compression_ratio()
    );

    let cfgs = sweep_configs();
    // At least 2 so the ordered-merge reader is always exercised, even
    // on a single-CPU host.
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8);

    // Correctness first: all three paths must produce identical stats.
    let baseline = simulate_many(&big, &cfgs);
    let seq = simulate_many_stream(&mut SegmentFileSource::new(path), &cfgs).expect("stream");
    let par = simulate_many_stream(&mut SegmentFileSource::with_jobs(path, jobs), &cfgs)
        .expect("parallel stream");
    assert_eq!(baseline, seq, "sequential streamed sweep diverged");
    assert_eq!(baseline, par, "parallel streamed sweep diverged");

    // Timing: interleave the variants inside each round.
    let mut t_mem = f64::MAX;
    let mut t_seq = f64::MAX;
    let mut t_par = f64::MAX;
    for _ in 0..ROUNDS {
        let (t, _) = best_of(1, || simulate_many(&big, &cfgs));
        t_mem = t_mem.min(t);
        let (t, _) = best_of(1, || {
            simulate_many_stream(&mut SegmentFileSource::new(path), &cfgs).expect("stream")
        });
        t_seq = t_seq.min(t);
        let (t, _) = best_of(1, || {
            simulate_many_stream(&mut SegmentFileSource::with_jobs(path, jobs), &cfgs)
                .expect("parallel stream")
        });
        t_par = t_par.min(t);
    }

    let refs = big.ref_count() as f64;
    let mem_rate = refs / t_mem;
    let seq_rate = refs / t_seq;
    let par_rate = refs / t_par;
    let best_streamed = t_seq.min(t_par);
    let slowdown = best_streamed / t_mem;
    println!(
        "bench trace_stream: {} records in {} segments ({} replicas of the standard mix)\n\
         bench trace_stream: {} encoded bytes vs {} raw ({:.2}x compression)\n\
         bench trace_stream: in-memory {mem_rate:.3e} refs/s  streamed {seq_rate:.3e} refs/s  \
         parallel(x{jobs}) {par_rate:.3e} refs/s  (streamed best {slowdown:.3}x of in-memory)",
        stats.records,
        stats.segments,
        replicas,
        stats.encoded_bytes,
        stats.raw_bytes(),
        stats.compression_ratio(),
    );

    let json = format!(
        "{{\n  \"workload\": \"standard mix (Quick) x{replicas} replicas\",\n  \
         \"unit\": \"memory references per second\",\n  \
         \"memory_budget_bytes\": {MEMORY_BUDGET},\n  \
         \"records\": {},\n  \"segments\": {},\n  \
         \"raw_bytes\": {},\n  \"encoded_bytes\": {},\n  \
         \"compression_ratio\": {:.3},\n  \
         \"exceeds_memory_budget\": {},\n  \
         \"configs\": {},\n  \"jobs\": {jobs},\n  \
         \"results_identical\": true,\n  \
         \"in_memory_refs_per_sec\": {mem_rate:.1},\n  \
         \"streamed_refs_per_sec\": {seq_rate:.1},\n  \
         \"parallel_refs_per_sec\": {par_rate:.1},\n  \
         \"streamed_slowdown\": {slowdown:.3}\n}}\n",
        stats.records,
        stats.segments,
        stats.raw_bytes(),
        stats.encoded_bytes,
        stats.compression_ratio(),
        stats.raw_bytes() > MEMORY_BUDGET,
        cfgs.len(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(out, json).expect("write BENCH_trace.json");
    std::fs::remove_file(path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = trace_stream
}
criterion_main!(benches);
