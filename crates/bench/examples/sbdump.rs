//! Diagnostic: dump superblock-cache shape after running the bench
//! workload — block count, element mix, and block sizes.

use atum_core::{PatchStyle, Tracer};
use atum_machine::fast::DecOp;

fn main() {
    let w = atum_workloads::list_chase("bench", 256, 4_000);
    let src = w
        .source
        .replace("chmk    #1", "nop")
        .replace("chmk    #0", "halt");
    let img = atum_asm::assemble(&format!(".org 0x1000\n{src}\n")).expect("bench program");
    for (name, style) in [
        ("untraced", None),
        ("atum_scratch", Some(PatchStyle::Scratch)),
    ] {
        let mut m = atum_machine::Machine::new(atum_machine::MemLayout::small());
        for (a, b) in img.segments() {
            m.write_phys(*a, b).unwrap();
        }
        m.set_gpr(14, 0x8000);
        m.set_pc(img.symbol("start").unwrap());
        if let Some(style) = style {
            let t = Tracer::attach_with_style(&mut m, style).unwrap();
            t.set_enabled(&mut m, true);
        }
        m.run(u64::MAX);
        let cache = m.superblock_cache();
        let mut blocks = 0usize;
        let mut elems = 0usize;
        let mut pures = 0usize;
        let mut guards = 0usize;
        let mut mems = 0usize;
        let mut bounds = 0usize;
        let mut cyc = 0u64;
        for b in cache.blocks() {
            blocks += 1;
            cyc += b.static_cycles();
            for s in &b.ops {
                elems += 1;
                match &s.op {
                    DecOp::JumpUZero(_)
                    | DecOp::JumpUNotZero(_)
                    | DecOp::JumpRegNumIsPc(_)
                    | DecOp::JumpIf { .. } => guards += 1,
                    DecOp::Read { .. }
                    | DecOp::Write { .. }
                    | DecOp::PhysRead
                    | DecOp::PhysWrite => mems += 1,
                    DecOp::DecodeNext => bounds += 1,
                    DecOp::Call(_) | DecOp::Ret => {}
                    _ => pures += 1,
                }
            }
        }
        println!(
            "{name:<14} blocks {blocks:>4}  elems {elems:>5} ({:.1}/block)  pure {pures:>4}  guards {guards:>4}  mem {mems:>4}  boundaries {bounds}  static cycles {cyc}",
            elems as f64 / blocks.max(1) as f64,
        );
    }
}
