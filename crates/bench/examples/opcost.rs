//! Per-op-class cost probe: runs straight-line streams of one micro-op
//! shape on a custom control store and times both engines. Used to aim
//! fast-engine work at the arms that actually cost something.

use atum_ucode::{AluOp, CcEffect, ControlStore, MicroOp, MicroReg, Target};

fn stream(name: &str, body: Vec<MicroOp>) -> (String, ControlStore) {
    let mut cs = ControlStore::new();
    // Repeat the body to dilute the back-edge jump, then loop forever.
    let mut ops = Vec::new();
    for _ in 0..64 {
        ops.extend(body.iter().cloned());
    }
    ops.push(MicroOp::Jump(Target::Abs(0)));
    cs.append_routine("probe", ops);
    (name.to_string(), cs)
}

fn main() {
    let cases = vec![
        stream(
            "mov_ss",
            vec![MicroOp::Mov {
                src: MicroReg::T(0),
                dst: MicroReg::T(1),
            }],
        ),
        stream(
            "alu_si",
            vec![MicroOp::Alu {
                op: AluOp::Add,
                a: MicroReg::T(0),
                b: MicroReg::Imm(1),
                dst: MicroReg::T(0),
                cc: CcEffect::None,
                size: atum_arch::DataSize::Long,
            }],
        ),
        {
            // 64 calls to a shared Ret, then the back-edge.
            let mut cs = ControlStore::new();
            let mut ops = vec![MicroOp::Call(Target::Abs(65)); 64];
            ops.push(MicroOp::Jump(Target::Abs(0)));
            ops.push(MicroOp::Ret);
            cs.append_routine("probe", ops);
            ("call_ret".to_string(), cs)
        },
        stream(
            "jumpif_nt",
            vec![
                MicroOp::Alu {
                    op: AluOp::Or,
                    a: MicroReg::Imm(1),
                    b: MicroReg::Imm(1),
                    dst: MicroReg::T(2),
                    cc: CcEffect::None,
                    size: atum_arch::DataSize::Long,
                },
                MicroOp::JumpIf {
                    cond: atum_ucode::MicroCond::UZero,
                    target: Target::Abs(0),
                },
            ],
        ),
        stream("advance_pc", vec![MicroOp::AdvancePc]),
    ];
    const CYCLES: u64 = 4_000_000;
    println!("{:<12} {:>10} {:>10}  ratio", "stream", "fast", "ref");
    for (name, cs) in cases {
        let mut best = [f64::MAX; 2];
        for _ in 0..6 {
            for (i, reference) in [(0, false), (1, true)] {
                let mut m = atum_machine::Machine::with_control_store(
                    atum_machine::MemLayout::small(),
                    cs.clone(),
                );
                m.set_reference_engine(reference);
                let t0 = std::time::Instant::now();
                m.run(CYCLES);
                best[i] = best[i].min(t0.elapsed().as_secs_f64());
            }
        }
        println!(
            "{:<12} {:>7.2}ns {:>7.2}ns  {:.2}x",
            name,
            best[0] / CYCLES as f64 * 1e9,
            best[1] / CYCLES as f64 * 1e9,
            best[1] / best[0]
        );
    }
}
