//! Quick engine-throughput probe: superblock vs fast vs reference
//! interpreter on the untraced and ATUM-patched bench workloads. Trials
//! are interleaved so host-speed drift hits all tiers equally; the
//! ratios are the numbers to watch.

use atum_core::{PatchStyle, Tracer};
use atum_machine::EngineTier;

fn main() {
    let w = atum_workloads::list_chase("bench", 256, 4_000);
    let src = w
        .source
        .replace("chmk    #1", "nop")
        .replace("chmk    #0", "halt");
    let img = atum_asm::assemble(&format!(".org 0x1000\n{src}\n")).expect("bench program");
    let load = |style: Option<PatchStyle>| {
        let mut m = atum_machine::Machine::new(atum_machine::MemLayout::small());
        for (a, b) in img.segments() {
            m.write_phys(*a, b).unwrap();
        }
        m.set_gpr(14, 0x8000);
        m.set_pc(img.symbol("start").unwrap());
        if let Some(style) = style {
            let t = Tracer::attach_with_style(&mut m, style).unwrap();
            t.set_enabled(&mut m, true);
        }
        m
    };
    const TIERS: [EngineTier; 3] = [
        EngineTier::Superblock,
        EngineTier::Fast,
        EngineTier::Reference,
    ];
    for (name, style) in [
        ("untraced", None),
        ("atum_scratch", Some(PatchStyle::Scratch)),
        ("atum_spill", Some(PatchStyle::Spill)),
    ] {
        let mut probe = load(style);
        probe.run(u64::MAX);
        let mut best = [f64::MAX; 3];
        for _ in 0..8 {
            for (i, tier) in TIERS.iter().enumerate() {
                let mut m = load(style);
                m.set_engine_tier(*tier);
                let t0 = std::time::Instant::now();
                m.run(u64::MAX);
                best[i] = best[i].min(t0.elapsed().as_secs_f64());
            }
        }
        println!(
            "{name:<14} {:>8} insns {:>9} cycles  sb {:>7.3}ms ({:.1} ns/uop)  fast {:>7.3}ms  ref {:>7.3}ms  sb/ref {:.2}x  sb/fast {:.2}x",
            probe.insns(),
            probe.cycles(),
            best[0] * 1e3,
            best[0] / probe.cycles() as f64 * 1e9,
            best[1] * 1e3,
            best[2] * 1e3,
            best[2] / best[0],
            best[1] / best[0]
        );
    }
}
