//! Three-way differential engine suite: reference vs fast vs
//! superblock.
//!
//! The predecoded fast engine (`crates/machine/src/fast.rs`) and the
//! traced-superblock tier stacked on it
//! (`crates/machine/src/superblock.rs`) must both be observationally
//! identical to the word-at-a-time reference interpreter — same
//! architectural state, same microcycle counts, same trace bytes. This
//! suite runs randomized programs on all three tiers in lockstep and
//! compares them at **every instruction boundary**, both untraced and
//! under each ATUM patch style (where the trace-buffer bytes are
//! compared raw, exactly as the microcode wrote them).
//!
//! Lockstepping at single-instruction granularity is itself part of the
//! point for the superblock tier: it exercises the insn-target exit in
//! the middle of chained blocks, while the block cache keeps heating
//! and forming across steps.

use atum_core::PatchStyle;
use atum_machine::{EngineTier, Machine, MemLayout, RunExit};
use proptest::prelude::*;

const ORG: u32 = 0x1000;
const SCRATCH: u32 = 0x4000;

/// The tiers under test, with the reference interpreter first as the
/// baseline the other two are diffed against.
const TIERS: [EngineTier; 3] = [
    EngineTier::Reference,
    EngineTier::Fast,
    EngineTier::Superblock,
];

fn reg() -> impl Strategy<Value = String> {
    (0u8..10).prop_map(|r| format!("r{r}"))
}

/// A read operand: register, literal, immediate, or scratch memory.
fn src() -> impl Strategy<Value = String> {
    prop_oneof![
        reg(),
        (0u32..64).prop_map(|v| format!("#{v}")),
        any::<i32>().prop_map(|v| format!("#{v}")),
        (0u32..32).prop_map(|o| format!("@#{:#x}", SCRATCH + o * 4)),
        (0u32..32).prop_map(|o| format!("{}(r10)", o * 4)),
    ]
}

/// A read operand for byte/word instructions (immediates must fit).
fn bsrc() -> impl Strategy<Value = String> {
    prop_oneof![
        reg(),
        (-128i32..256).prop_map(|v| format!("#{v}")),
        (0u32..32).prop_map(|o| format!("@#{:#x}", SCRATCH + o * 4)),
        (0u32..32).prop_map(|o| format!("{}(r10)", o * 4)),
    ]
}

/// A write operand: register or scratch memory.
fn dst() -> impl Strategy<Value = String> {
    prop_oneof![
        reg(),
        (0u32..32).prop_map(|o| format!("@#{:#x}", SCRATCH + o * 4)),
        (0u32..32).prop_map(|o| format!("{}(r10)", o * 4)),
    ]
}

fn insn() -> impl Strategy<Value = String> {
    prop_oneof![
        (src(), dst()).prop_map(|(a, b)| format!("movl {a}, {b}")),
        (bsrc(), dst()).prop_map(|(a, b)| format!("movb {a}, {b}")),
        (bsrc(), dst()).prop_map(|(a, b)| format!("movw {a}, {b}")),
        (src(), reg()).prop_map(|(a, b)| format!("addl2 {a}, {b}")),
        (src(), src(), dst()).prop_map(|(a, b, c)| format!("addl3 {a}, {b}, {c}")),
        (src(), src(), dst()).prop_map(|(a, b, c)| format!("subl3 {a}, {b}, {c}")),
        (src(), src(), dst()).prop_map(|(a, b, c)| format!("mull3 {a}, {b}, {c}")),
        (src(), src(), dst()).prop_map(|(a, b, c)| format!("xorl3 {a}, {b}, {c}")),
        (src(), src(), dst()).prop_map(|(a, b, c)| format!("bisl3 {a}, {b}, {c}")),
        (src(), src(), dst()).prop_map(|(a, b, c)| format!("bicl3 {a}, {b}, {c}")),
        ((-8i32..8), src(), dst()).prop_map(|(n, b, c)| format!("ashl #{n}, {b}, {c}")),
        (src(), src()).prop_map(|(a, b)| format!("cmpl {a}, {b}")),
        (bsrc(), bsrc()).prop_map(|(a, b)| format!("cmpb {a}, {b}")),
        src().prop_map(|a| format!("tstl {a}")),
        reg().prop_map(|a| format!("incl {a}")),
        reg().prop_map(|a| format!("decl {a}")),
        (bsrc(), dst()).prop_map(|(a, b)| format!("movzbl {a}, {b}")),
        (bsrc(), dst()).prop_map(|(a, b)| format!("cvtbl {a}, {b}")),
        (src(), dst()).prop_map(|(a, b)| format!("mnegl {a}, {b}")),
        (src(), dst()).prop_map(|(a, b)| format!("mcoml {a}, {b}")),
        (src(), src()).prop_map(|(a, b)| format!("bitl {a}, {b}")),
    ]
}

/// A control-flow block: straight-line, a bounded `sobgtr` loop, or a
/// conditional skip. Loops count down in `r11` (excluded from the random
/// operand pool) so termination is guaranteed.
#[derive(Debug, Clone)]
enum Block {
    Straight(Vec<String>),
    Loop {
        count: u8,
        body: Vec<String>,
    },
    Cond {
        a: String,
        b: String,
        body: Vec<String>,
    },
}

fn block() -> impl Strategy<Value = Block> {
    prop_oneof![
        4 => proptest::collection::vec(insn(), 1..8).prop_map(Block::Straight),
        1 => (1u8..6, proptest::collection::vec(insn(), 1..5))
            .prop_map(|(count, body)| Block::Loop { count, body }),
        1 => (src(), src(), proptest::collection::vec(insn(), 1..5))
            .prop_map(|(a, b, body)| Block::Cond { a, b, body }),
    ]
}

fn program() -> impl Strategy<Value = String> {
    proptest::collection::vec(block(), 1..8).prop_map(|blocks| {
        let mut src = String::from("start:\n");
        src.push_str(&format!("        movl #{SCRATCH:#x}, r10\n"));
        for (bi, b) in blocks.iter().enumerate() {
            match b {
                Block::Straight(insns) => {
                    for i in insns {
                        src.push_str(&format!("        {i}\n"));
                    }
                }
                Block::Loop { count, body } => {
                    src.push_str(&format!("        movl #{count}, r11\n"));
                    src.push_str(&format!("loop{bi}:\n"));
                    for i in body {
                        src.push_str(&format!("        {i}\n"));
                    }
                    src.push_str(&format!("        sobgtr r11, loop{bi}\n"));
                }
                Block::Cond { a, b, body } => {
                    src.push_str(&format!("        cmpl {a}, {b}\n"));
                    src.push_str(&format!("        beql skip{bi}\n"));
                    for i in body {
                        src.push_str(&format!("        {i}\n"));
                    }
                    src.push_str(&format!("skip{bi}:\n"));
                }
            }
        }
        src.push_str("        halt\n");
        src
    })
}

/// Loads a machine with the program, optionally attaching an enabled
/// tracer with the given patch style.
fn load(img: &atum_asm::Image, style: Option<PatchStyle>, tier: EngineTier) -> Machine {
    let mut m = Machine::new(MemLayout::small());
    for (a, b) in img.segments() {
        m.write_phys(*a, b).unwrap();
    }
    m.set_gpr(14, 0x8000);
    m.set_pc(ORG);
    m.set_engine_tier(tier);
    if let Some(style) = style {
        let t = atum_core::Tracer::attach_with_style(&mut m, style).unwrap();
        t.set_enabled(&mut m, true);
    }
    m
}

/// The raw trace-buffer bytes, exactly as the patch microcode wrote them.
fn trace_bytes(m: &Machine) -> Vec<u8> {
    let base = m.read_prv(atum_arch::PrivReg::Trbase);
    let ptr = m.read_prv(atum_arch::PrivReg::Trptr);
    m.read_phys(base, ptr.saturating_sub(base)).unwrap()
}

/// Runs all three tiers one instruction at a time, comparing everything
/// observable at each boundary against the reference interpreter.
/// Returns the failure case, if any.
fn lockstep(src: &str, style: Option<PatchStyle>) -> Result<(), TestCaseError> {
    let full = format!(".org {ORG:#x}\n{src}\n");
    let img = atum_asm::assemble(&full).expect("generated program assembles");
    let mut machines: Vec<Machine> = TIERS.iter().map(|&t| load(&img, style, t)).collect();
    for boundary in 0..200_000u32 {
        let exits: Vec<Option<RunExit>> = machines
            .iter_mut()
            .map(|m| m.step_insns(1, 1_000_000))
            .collect();
        let (refm, rest) = machines.split_first().unwrap();
        for (m, (&tier, exit)) in rest.iter().zip(TIERS[1..].iter().zip(&exits[1..])) {
            prop_assert_eq!(
                *exit,
                exits[0],
                "{:?}: exit differs at boundary {} after:\n{}",
                tier,
                boundary,
                src
            );
            prop_assert_eq!(
                m.cycles(),
                refm.cycles(),
                "{:?}: microcycle count differs at boundary {} after:\n{}",
                tier,
                boundary,
                src
            );
            prop_assert_eq!(
                m.insns(),
                refm.insns(),
                "{:?}: insn count differs:\n{}",
                tier,
                src
            );
            for r in 0..16u8 {
                prop_assert_eq!(
                    m.gpr(r),
                    refm.gpr(r),
                    "{:?}: r{} differs at boundary {} after:\n{}",
                    tier,
                    r,
                    boundary,
                    src
                );
            }
            prop_assert_eq!(
                m.psl(),
                refm.psl(),
                "{:?}: PSL differs at boundary {} after:\n{}",
                tier,
                boundary,
                src
            );
            prop_assert_eq!(
                m.counts(),
                refm.counts(),
                "{:?}: ref counts differ at boundary {} after:\n{}",
                tier,
                boundary,
                src
            );
            if style.is_some() {
                prop_assert_eq!(
                    trace_bytes(m),
                    trace_bytes(refm),
                    "{:?}: trace bytes differ at boundary {} after:\n{}",
                    tier,
                    boundary,
                    src
                );
            }
        }
        match exits[0] {
            None => continue,
            Some(RunExit::Halted) => break,
            Some(other) => panic!("unexpected exit {other:?} after:\n{src}"),
        }
    }
    // Scratch memory must match too.
    let (refm, rest) = machines.split_first().unwrap();
    for (m, &tier) in rest.iter().zip(&TIERS[1..]) {
        prop_assert_eq!(
            m.read_phys(SCRATCH, 128).unwrap(),
            refm.read_phys(SCRATCH, 128).unwrap(),
            "{:?}: scratch memory differs after:\n{}",
            tier,
            src
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_untraced(src in program()) {
        lockstep(&src, None)?;
    }

    #[test]
    fn engines_agree_scratch_patch(src in program()) {
        lockstep(&src, Some(PatchStyle::Scratch))?;
    }

    #[test]
    fn engines_agree_spill_patch(src in program()) {
        lockstep(&src, Some(PatchStyle::Spill))?;
    }
}

/// The bench workload (pointer-chasing with ATUM attached) run in
/// lockstep chunks across all three tiers — a deterministic deep case
/// covering the exact capture path the benchmarks measure, with runs
/// long enough for the superblock cache to heat up and dispatch blocks.
#[test]
fn bench_workload_lockstep() {
    let w = atum_workloads::list_chase("bench", 64, 500);
    let src = w
        .source
        .replace("chmk    #1", "nop")
        .replace("chmk    #0", "halt");
    let img = atum_asm::assemble(&format!(".org {ORG:#x}\n{src}\n")).expect("bench program");
    for style in [None, Some(PatchStyle::Scratch), Some(PatchStyle::Spill)] {
        let mut machines: Vec<Machine> = TIERS.iter().map(|&t| load(&img, style, t)).collect();
        for m in &mut machines {
            m.set_pc(img.symbol("start").unwrap());
        }
        loop {
            let exits: Vec<Option<RunExit>> = machines
                .iter_mut()
                .map(|m| m.step_insns(64, 10_000_000))
                .collect();
            let (refm, rest) = machines.split_first().unwrap();
            for (m, (&tier, exit)) in rest.iter().zip(TIERS[1..].iter().zip(&exits[1..])) {
                assert_eq!(*exit, exits[0], "{style:?}/{tier:?}: exit differs");
                assert_eq!(
                    m.cycles(),
                    refm.cycles(),
                    "{style:?}/{tier:?}: cycles differ"
                );
                assert_eq!(m.insns(), refm.insns(), "{style:?}/{tier:?}: insns differ");
                for r in 0..16u8 {
                    assert_eq!(m.gpr(r), refm.gpr(r), "{style:?}/{tier:?}: r{r} differs");
                }
                assert_eq!(m.psl(), refm.psl(), "{style:?}/{tier:?}: PSL differs");
                assert_eq!(
                    m.counts(),
                    refm.counts(),
                    "{style:?}/{tier:?}: counts differ"
                );
                assert_eq!(
                    trace_bytes(m),
                    trace_bytes(refm),
                    "{style:?}/{tier:?}: trace bytes differ"
                );
            }
            match exits[0] {
                None => continue,
                Some(RunExit::Halted) => break,
                Some(other) => panic!("{style:?}: unexpected exit {other:?}"),
            }
        }
    }
}
