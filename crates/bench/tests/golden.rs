//! Golden-file test pinning the `mculist patches` listing.
//!
//! The patch region is the heart of the reproduction: its exact shape —
//! symbol layout, capacity check, record stores, rejoin jumps — is what
//! both the transparency verifier and the paper's patch-size numbers
//! describe. Any change to it shows up here as a diff against
//! `tests/golden/patches.txt`; regenerate deliberately with
//! `cargo run -p atum-bench --bin mculist -- patches > crates/bench/tests/golden/patches.txt`.

use atum_bench::mculist::{cost_report, patches_report, verify};

/// Pins the full `mculist verify` report: the subject list, its order,
/// and the zero-findings state of every shipped artifact. Because
/// `lint::run` sorts findings by (pass, symbol, address), any
/// nondeterminism in a pass shows up here first. Regenerate deliberately
/// with
/// `cargo run -p atum-bench --bin mculist -- verify > crates/bench/tests/golden/verify.txt`.
#[test]
fn mculist_verify_output_matches_golden_file() {
    let expected = include_str!("golden/verify.txt");
    let actual = verify().render();
    assert!(
        actual == expected,
        "`mculist verify` output drifted from tests/golden/verify.txt.\n\
         If the change is intentional, regenerate the golden file:\n\
         cargo run -p atum-bench --bin mculist -- verify > crates/bench/tests/golden/verify.txt\n\
         \n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

/// Pins the machine-readable verify report, including the state
/// partition the atomicity pass attaches to each control-store subject.
/// Regenerate deliberately with
/// `cargo run -p atum-bench --bin mculist -- verify --format json > crates/bench/tests/golden/verify.json`.
#[test]
fn mculist_verify_json_matches_golden_file() {
    let expected = include_str!("golden/verify.json");
    let actual = verify().render_json();
    assert!(
        actual == expected,
        "`mculist verify --format json` output drifted from tests/golden/verify.json.\n\
         If the change is intentional, regenerate the golden file:\n\
         cargo run -p atum-bench --bin mculist -- verify --format json > crates/bench/tests/golden/verify.json\n\
         \n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

/// Pins the deterministic half of `mculist cost`: the per-hook cycle
/// bounds, the aggregate dilation against the paper's 10–20× band, and
/// the simulated tight check. These are pure functions of the microcode
/// and the cycle model — any drift means the patches or the model
/// changed, and the paper-band argument needs re-checking. Regenerate
/// deliberately with
/// `cargo run -p atum-bench --bin mculist -- cost-static > crates/bench/tests/golden/cost.txt`.
#[test]
fn mculist_cost_static_output_matches_golden_file() {
    let expected = include_str!("golden/cost.txt");
    let actual = cost_report().static_report;
    assert!(
        actual == expected,
        "`mculist cost-static` output drifted from tests/golden/cost.txt.\n\
         If the change is intentional, regenerate the golden file:\n\
         cargo run -p atum-bench --bin mculist -- cost-static > crates/bench/tests/golden/cost.txt\n\
         \n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

/// Pins the machine-readable form of the same deterministic half
/// (`cost-static --format json`) — what downstream tooling parses, with
/// the superblock tier's per-tier added-cycle agreement included.
/// Regenerate deliberately with
/// `cargo run -p atum-bench --bin mculist -- cost-static --format json > crates/bench/tests/golden/cost.json`.
#[test]
fn mculist_cost_static_json_matches_golden_file() {
    let expected = include_str!("golden/cost.json");
    let actual = cost_report().json_static;
    assert!(
        actual == expected,
        "`mculist cost-static --format json` output drifted from tests/golden/cost.json.\n\
         If the change is intentional, regenerate the golden file:\n\
         cargo run -p atum-bench --bin mculist -- cost-static --format json > crates/bench/tests/golden/cost.json\n\
         \n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn mculist_patches_output_matches_golden_file() {
    let expected = include_str!("golden/patches.txt");
    let actual = patches_report();
    assert!(
        actual == expected,
        "`mculist patches` output drifted from tests/golden/patches.txt.\n\
         If the change is intentional, regenerate the golden file:\n\
         cargo run -p atum-bench --bin mculist -- patches > crates/bench/tests/golden/patches.txt\n\
         \n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}
