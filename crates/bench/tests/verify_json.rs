//! Schema smoke test for `mculist verify --format json`.
//!
//! The golden test pins the exact bytes; this test pins the *shape*
//! downstream tooling depends on, by actually parsing the report (the
//! hand-rolled writer has no serializer keeping it honest). Every
//! control-store subject must carry the atomicity pass's state
//! partition, every partition entry must be fully classified, and the
//! shipped artifacts must verify clean.

use atum_bench::mculist::{verify, verify_pass};
use atum_mclint::Pass;
use serde_json::Value;

fn subjects(v: &Value) -> &Vec<Value> {
    v["subjects"].as_array().expect("subjects array")
}

/// The three control-store subjects, in report order.
const STORE_TITLES: [&str; 3] = [
    "stock control store",
    "patched store (scratch style)",
    "patched store (spill style)",
];

fn check_partition(subject: &Value) {
    let partition = &subject["partition"];
    assert!(
        partition.as_object().is_some(),
        "control-store subject without a partition block: {subject:?}"
    );
    for side in ["registers", "memory"] {
        let entries = partition[side].as_array().expect("partition side");
        assert!(!entries.is_empty(), "empty partition side '{side}'");
        for e in entries {
            assert!(e["name"].as_str().is_some_and(|n| !n.is_empty()));
            let class = e["class"].as_str().expect("class string");
            assert!(
                ["per_context", "per_cpu_candidate", "shared"].contains(&class),
                "unclassified or unknown state class '{class}' for '{}'",
                e["name"].as_str().unwrap_or("?")
            );
            assert!(e["stock"].as_bool().is_some());
            assert!(e["hooks"].as_bool().is_some());
        }
    }
}

#[test]
fn verify_json_parses_and_carries_the_partition() {
    let report = verify().render_json();
    let v = serde_json::from_str(&report).expect("verify --format json is valid JSON");
    assert_eq!(v["findings"].as_u64(), Some(0));
    assert_eq!(v["errors"].as_u64(), Some(0));

    let subs = subjects(&v);
    assert_eq!(
        subs.len(),
        14,
        "stock + 2 patched + 2 kernels + 9 workloads"
    );
    for s in subs {
        let title = s["title"].as_str().expect("subject title");
        assert_eq!(s["findings"].as_array().map(Vec::len), Some(0), "{title}");
        if STORE_TITLES.contains(&title) {
            check_partition(s);
        } else {
            assert!(
                s["partition"].is_null(),
                "image subject '{title}' should not carry a partition"
            );
        }
    }

    // The patched stores' hooks must touch the trace pointer (per-CPU
    // candidate) and no hook may touch shared state.
    for s in &subs[1..3] {
        let regs = s["partition"]["registers"].as_array().unwrap();
        let trptr = regs
            .iter()
            .find(|e| e["name"].as_str() == Some("trptr"))
            .expect("patched store touches trptr");
        assert_eq!(trptr["class"].as_str(), Some("per_cpu_candidate"));
        assert_eq!(trptr["hooks"].as_bool(), Some(true));
        for side in ["registers", "memory"] {
            for e in s["partition"][side].as_array().unwrap() {
                if e["class"].as_str() == Some("shared") {
                    assert_eq!(
                        e["hooks"].as_bool(),
                        Some(false),
                        "hook touches shared state '{}'",
                        e["name"].as_str().unwrap_or("?")
                    );
                }
            }
        }
    }
}

#[test]
fn verify_single_pass_json_parses() {
    let report = verify_pass(Some(Pass::Atomicity)).render_json();
    let v = serde_json::from_str(&report).expect("verify --pass atomicity --format json parses");
    assert_eq!(v["findings"].as_u64(), Some(0));
    let subs = subjects(&v);
    assert_eq!(subs.len(), 3, "atomicity sees only the control stores");
    for s in subs {
        check_partition(s);
    }

    // A non-atomicity pass drops the partition block entirely.
    let report = verify_pass(Some(Pass::Structural)).render_json();
    let v = serde_json::from_str(&report).expect("verify --pass structural --format json parses");
    for s in subjects(&v) {
        assert!(s["partition"].is_null());
    }

    // The svx pass sees only the images.
    let report = verify_pass(Some(Pass::Svx)).render_json();
    let v = serde_json::from_str(&report).expect("verify --pass svx --format json parses");
    assert_eq!(subjects(&v).len(), 11, "2 kernels + 9 workloads");
}
