//! Superblock-cache invalidation proptest.
//!
//! The traced-superblock tier caches stitched blocks keyed on the
//! control-store version and a TB-event epoch. This suite drives
//! randomized interleavings of the events that must invalidate (or must
//! not corrupt) that cache — control-store patches (version bumps),
//! `TBIA`/`TBIS` flushes, mapping-register writes, trace-enable
//! toggles — against a superblock-tier machine and a reference-tier
//! twin receiving the identical event stream. After every event the
//! full observable state is compared: a stale block executing even once
//! would diverge the cycle count, a register, or the trace bytes.
//!
//! As a second line of proof, each case ends by diffing the live block
//! cache against the final control store with the mclint `superblock`
//! pass: whatever survived the event stream must be re-derivable from
//! the current microcode, at the current version.

use atum_arch::PrivReg;
use atum_core::{PatchStyle, Tracer};
use atum_machine::{EngineTier, Machine, MemLayout};
use atum_ucode::MicroOp;
use proptest::prelude::*;

const ORG: u32 = 0x1000;

/// One step of the randomized interleaving.
#[derive(Debug, Clone)]
enum Event {
    /// Execute this many instructions on both machines.
    Step(u16),
    /// Single-entry TB invalidate (bumps the superblock epoch).
    Tbis(u32),
    /// Full TB invalidate (bumps the superblock epoch).
    Tbia,
    /// Mapping-register write (base/length registers; bumps the epoch).
    MapReg(u8, u32),
    /// Toggle trace capture via `TRCTL` (no invalidation required: the
    /// patched microcode tests the enable bit at runtime).
    Toggle(bool),
    /// Append a padding routine to both control stores — a
    /// `ControlStore::version()` bump, the same signal a patch install
    /// or uninstall produces.
    Patch,
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        4 => (1u16..150).prop_map(Event::Step),
        1 => any::<u32>().prop_map(Event::Tbis),
        1 => Just(Event::Tbia),
        1 => (0u8..6, any::<u32>()).prop_map(|(r, v)| Event::MapReg(r, v)),
        1 => any::<bool>().prop_map(Event::Toggle),
        1 => Just(Event::Patch),
    ]
}

/// The mapping registers an event may write. All are harmless while
/// mapping stays disabled, but every write must bump the epoch.
const MAP_REGS: [PrivReg; 6] = [
    PrivReg::P0br,
    PrivReg::P0lr,
    PrivReg::P1br,
    PrivReg::P1lr,
    PrivReg::Sbr,
    PrivReg::Slr,
];

fn load(style: Option<PatchStyle>, tier: EngineTier) -> (Machine, Option<Tracer>) {
    // A long pointer-chase: enough iterations that no randomized event
    // stream reaches the final halt, so every step executes real code.
    let w = atum_workloads::list_chase("bench", 64, 1_000_000);
    let src = w
        .source
        .replace("chmk    #1", "nop")
        .replace("chmk    #0", "halt");
    let img = atum_asm::assemble(&format!(".org {ORG:#x}\n{src}\n")).expect("bench program");
    let mut m = Machine::new(MemLayout::small());
    for (a, b) in img.segments() {
        m.write_phys(*a, b).unwrap();
    }
    m.set_gpr(14, 0x8000);
    m.set_pc(img.symbol("start").unwrap());
    m.set_engine_tier(tier);
    let t = style.map(|style| {
        let t = Tracer::attach_with_style(&mut m, style).unwrap();
        t.set_enabled(&mut m, true);
        t
    });
    (m, t)
}

fn trace_bytes(m: &Machine) -> Vec<u8> {
    let base = m.read_prv(PrivReg::Trbase);
    let ptr = m.read_prv(PrivReg::Trptr);
    m.read_phys(base, ptr.saturating_sub(base)).unwrap()
}

fn assert_same(sb: &Machine, refm: &Machine, at: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        sb.cycles(),
        refm.cycles(),
        "cycles differ after event {}",
        at
    );
    prop_assert_eq!(sb.insns(), refm.insns(), "insns differ after event {}", at);
    for r in 0..16u8 {
        prop_assert_eq!(sb.gpr(r), refm.gpr(r), "r{} differs after event {}", r, at);
    }
    prop_assert_eq!(sb.psl(), refm.psl(), "PSL differs after event {}", at);
    prop_assert_eq!(
        sb.counts(),
        refm.counts(),
        "counts differ after event {}",
        at
    );
    prop_assert_eq!(
        trace_bytes(sb),
        trace_bytes(refm),
        "trace bytes differ after event {}",
        at
    );
    Ok(())
}

fn interleave(style: Option<PatchStyle>, events: &[Event]) -> Result<(), TestCaseError> {
    let (mut sb, sb_t) = load(style, EngineTier::Superblock);
    let (mut refm, ref_t) = load(style, EngineTier::Reference);
    let mut patches = 0u32;
    for (at, ev) in events.iter().enumerate() {
        match ev {
            Event::Step(n) => {
                let es = sb.step_insns(*n as u64, u64::MAX);
                let er = refm.step_insns(*n as u64, u64::MAX);
                prop_assert_eq!(es, er, "exit differs after event {}", at);
            }
            Event::Tbis(va) => {
                sb.write_prv(PrivReg::Tbis, *va);
                refm.write_prv(PrivReg::Tbis, *va);
            }
            Event::Tbia => {
                sb.write_prv(PrivReg::Tbia, 0);
                refm.write_prv(PrivReg::Tbia, 0);
            }
            Event::MapReg(r, v) => {
                let reg = MAP_REGS[*r as usize % MAP_REGS.len()];
                sb.write_prv(reg, *v);
                refm.write_prv(reg, *v);
            }
            Event::Toggle(on) => {
                if let (Some(ts), Some(tr)) = (&sb_t, &ref_t) {
                    ts.set_enabled(&mut sb, *on);
                    tr.set_enabled(&mut refm, *on);
                }
            }
            Event::Patch => {
                patches += 1;
                let name = format!("pad.{patches}");
                sb.control_store_mut()
                    .append_routine(&name, vec![MicroOp::Halt]);
                refm.control_store_mut()
                    .append_routine(&name, vec![MicroOp::Halt]);
            }
        }
        assert_same(&sb, &refm, at)?;
    }
    // Drain a final stretch so late invalidations get re-executed over.
    let es = sb.step_insns(300, u64::MAX);
    let er = refm.step_insns(300, u64::MAX);
    prop_assert_eq!(es, er, "final exit differs");
    assert_same(&sb, &refm, events.len())?;
    // Whatever blocks survived must re-derive cleanly from the final
    // store at the final version — the static half of the proof.
    let version = sb.superblock_cache().version();
    let blocks: Vec<_> = sb.superblock_cache().blocks().cloned().collect();
    let findings = atum_mclint::superblock::check_blocks(sb.control_store(), version, &blocks);
    prop_assert!(
        findings.is_empty(),
        "live cache fails re-derivation:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn invalidation_untraced(events in proptest::collection::vec(event(), 1..24)) {
        interleave(None, &events)?;
    }

    #[test]
    fn invalidation_scratch_patch(events in proptest::collection::vec(event(), 1..24)) {
        interleave(Some(PatchStyle::Scratch), &events)?;
    }

    #[test]
    fn invalidation_spill_patch(events in proptest::collection::vec(event(), 1..24)) {
        interleave(Some(PatchStyle::Spill), &events)?;
    }
}
