//! Property tests: assembler output always decodes back cleanly, with
//! matching mnemonics and instruction boundaries, across randomly
//! generated programs using every operand form the assembler accepts.

use atum_arch::DecodedInsn;
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u8..14).prop_map(|r| format!("r{r}")),
        Just("sp".to_string()),
        Just("ap".to_string()),
        Just("fp".to_string()),
    ]
}

fn operand_src() -> impl Strategy<Value = String> {
    prop_oneof![
        reg(),
        (0i64..64).prop_map(|v| format!("#{v}")),
        any::<i32>().prop_map(|v| format!("#{v}")),
        reg().prop_map(|r| format!("({r})")),
        reg().prop_map(|r| format!("({r})+")),
        reg().prop_map(|r| format!("-({r})")),
        reg().prop_map(|r| format!("@({r})+")),
        (any::<i16>(), reg()).prop_map(|(d, r)| format!("{d}({r})")),
        (any::<i32>(), reg()).prop_map(|(d, r)| format!("{d}({r})")),
        (any::<i16>(), reg()).prop_map(|(d, r)| format!("@{d}({r})")),
        (0u32..0x10000).prop_map(|a| format!("@#{a:#x}")),
    ]
}

fn operand_dst() -> impl Strategy<Value = String> {
    prop_oneof![
        reg(),
        reg().prop_map(|r| format!("({r})")),
        reg().prop_map(|r| format!("({r})+")),
        reg().prop_map(|r| format!("-({r})")),
        (any::<i16>(), reg()).prop_map(|(d, r)| format!("{d}({r})")),
        (0u32..0x10000).prop_map(|a| format!("@#{a:#x}")),
    ]
}

fn line() -> impl Strategy<Value = (String, String)> {
    prop_oneof![
        (operand_src(), operand_dst())
            .prop_map(|(a, b)| ("movl".to_string(), format!("movl {a}, {b}"))),
        (operand_src(), operand_src(), operand_dst())
            .prop_map(|(a, b, c)| ("addl3".to_string(), format!("addl3 {a}, {b}, {c}"))),
        (operand_src(), operand_dst())
            .prop_map(|(a, b)| ("subl2".to_string(), format!("subl2 {a}, {b}"))),
        (operand_src(), operand_src())
            .prop_map(|(a, b)| ("cmpl".to_string(), format!("cmpl {a}, {b}"))),
        operand_dst().prop_map(|a| ("clrl".to_string(), format!("clrl {a}"))),
        operand_dst().prop_map(|a| ("incl".to_string(), format!("incl {a}"))),
        operand_src().prop_map(|a| ("tstl".to_string(), format!("tstl {a}"))),
        operand_src().prop_map(|a| ("pushl".to_string(), format!("pushl {a}"))),
        Just(("nop".to_string(), "nop".to_string())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn assembled_programs_decode_back(lines in proptest::collection::vec(line(), 1..30)) {
        let mut src = String::from(".org 0x1000\n");
        let mut mnemonics = Vec::new();
        for (mnem, text) in &lines {
            mnemonics.push(mnem.clone());
            src.push_str(text);
            src.push('\n');
        }
        src.push_str("halt\n");
        mnemonics.push("halt".to_string());

        let img = atum_asm::assemble(&src).expect("assembles");
        let bytes = img.flatten();
        let mut addr = 0x1000u32;
        let end = 0x1000 + bytes.len() as u32;
        let mut decoded = Vec::new();
        while addr < end {
            let insn = DecodedInsn::decode(addr, &mut |a| {
                bytes.get((a - 0x1000) as usize).copied()
            })
            .expect("decodes");
            decoded.push(insn.opcode.mnemonic().to_string());
            addr += insn.len;
        }
        prop_assert_eq!(decoded, mnemonics, "source:\n{}", src);
    }

    #[test]
    fn branch_relaxation_always_lands(pad in 0u32..600) {
        // A conditional branch across `pad` bytes must always reach its
        // target, relaxed or not. Follow the branch chain by decoding.
        let src = format!(
            ".org 0x1000\nstart: beql target\n .space {pad}\ntarget: halt\n"
        );
        let img = atum_asm::assemble(&src).expect("assembles");
        let target = img.symbol("target").unwrap();
        let bytes = img.flatten();
        let fetch = |a: u32| bytes.get((a - 0x1000) as usize).copied();

        // Walk taken branches from `start` until a non-branch lands.
        let mut pc = 0x1000u32;
        for _ in 0..4 {
            let insn = DecodedInsn::decode(pc, &mut fetch.clone()).expect("decodes");
            match insn.opcode {
                atum_arch::Opcode::Halt => break,
                op if op.is_conditional_branch() && op != atum_arch::Opcode::Beql => {
                    // Relaxed inversion: Z is set in our hypothetical, so
                    // the inverted branch (bneq) falls through.
                    pc += insn.len;
                }
                _ => {
                    // beql taken, or the unconditional brw of a relaxed
                    // form: follow the displacement.
                    match insn.operands[0] {
                        atum_arch::Operand::BranchDisp(d) => {
                            pc = (pc + insn.len).wrapping_add(d as u32);
                        }
                        ref other => prop_assert!(false, "unexpected operand {other:?}"),
                    }
                }
            }
        }
        prop_assert_eq!(pc, target, "branch chain lands on target (pad {})", pad);
    }

    #[test]
    fn data_directives_round_trip(words in proptest::collection::vec(any::<u32>(), 1..40)) {
        let mut src = String::from(".org 0x2000\ntable:\n");
        for w in &words {
            src.push_str(&format!(" .long {:#x}\n", w));
        }
        let img = atum_asm::assemble(&src).expect("assembles");
        let bytes = img.flatten();
        for (i, w) in words.iter().enumerate() {
            let got = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
            prop_assert_eq!(got, *w);
        }
    }

    #[test]
    fn symbols_resolve_to_layout(n_before in 0usize..12, n_after in 0usize..12) {
        let mut src = String::from(".org 0x1000\n");
        for _ in 0..n_before {
            src.push_str(" nop\n");
        }
        src.push_str("here:\n");
        for _ in 0..n_after {
            src.push_str(" nop\n");
        }
        src.push_str(" movl #here, r0\n halt\n");
        let img = atum_asm::assemble(&src).expect("assembles");
        prop_assert_eq!(img.symbol("here"), Some(0x1000 + n_before as u32));
    }
}
