//! # atum-asm — the SVX assembler and disassembler
//!
//! A two-pass (iterate-to-fixpoint) assembler for the SVX architecture
//! defined in [`atum_arch`]. The MOSS kernel, all workloads and every test
//! program in the reproduction are written in this assembly language, so
//! the whole stack above the ISA is exercised through real machine code.
//!
//! ## Syntax
//!
//! ```text
//! ; comments run to end of line
//! start:  movl #100, r0          ; short literal or immediate chosen
//!         movl count, r1         ; PC-relative (assembler picks width)
//!         movl (r1)+, -4(fp)     ; autoincrement, byte displacement
//!         movl @8(sp), @#0x80000200
//! loop:   sobgtr r0, loop        ; branches relax automatically when far
//!         chmk #1
//!         halt
//! count:  .long 42
//! msg:    .asciz "hello"
//!         .align 4
//! buf:    .space 64
//! PAGE    = 512                  ; symbol assignment
//!         .org 0x400             ; move the location counter
//! ```
//!
//! Numeric local labels (`1:` … referenced as `1b`/`1f`) are supported.
//! `.` is the current location counter. `popl dst` is accepted as a pseudo
//! for `movl (sp)+, dst`.
//!
//! ## Example
//!
//! ```
//! let img = atum_asm::assemble("start: movl #5, r0\n halt\n").unwrap();
//! assert_eq!(img.symbol("start"), Some(0));
//! let bytes = img.flatten();
//! assert_eq!(bytes[0], atum_arch::Opcode::Movl.to_byte());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disasm;
mod encode;
mod error;
mod expr;
mod image;
mod layout;
mod lexer;
mod parser;

pub use disasm::{disassemble, disassemble_one, Disassembly};
pub use error::AsmError;
pub use image::Image;

/// Assembles SVX source text into an [`Image`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the first offending line number for
/// syntax errors, undefined or duplicate symbols, range violations, and
/// operands that are invalid for their access type.
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    let stmts = parser::parse(source)?;
    let laid = layout::layout(stmts)?;
    encode::encode(laid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_arch::{DecodedInsn, Opcode};

    fn flat(src: &str) -> Vec<u8> {
        assemble(src).expect("assembles").flatten()
    }

    #[test]
    fn empty_source_is_empty_image() {
        let img = assemble("").unwrap();
        assert!(img.flatten().is_empty());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let img = assemble("; nothing\n\n   ; more nothing\n").unwrap();
        assert!(img.flatten().is_empty());
    }

    #[test]
    fn decodes_back_with_arch_decoder() {
        let bytes = flat("movl #100, r0\n addl3 r0, r1, 8(r2)\n halt\n");
        let mut off = 0u32;
        let mut ops = Vec::new();
        while (off as usize) < bytes.len() {
            let insn = DecodedInsn::decode(off, &mut |a| bytes.get(a as usize).copied()).unwrap();
            ops.push(insn.opcode);
            off += insn.len;
        }
        assert_eq!(ops, vec![Opcode::Movl, Opcode::Addl3, Opcode::Halt]);
    }
}

#[cfg(test)]
mod directive_tests {
    use super::assemble;

    #[test]
    fn word_directive_emits_little_endian() {
        let img = assemble(".org 0\n .word 0x1234, 0xBEEF\n").unwrap();
        assert_eq!(img.flatten(), vec![0x34, 0x12, 0xEF, 0xBE]);
    }

    #[test]
    fn space_with_fill() {
        let img = assemble(".space 3, 0xAA\n .byte 1\n").unwrap();
        assert_eq!(img.flatten(), vec![0xAA, 0xAA, 0xAA, 1]);
    }

    #[test]
    fn expressions_in_data() {
        let img = assemble("BASE = 0x100\n .long BASE + 8 * 2, BASE - 1\n").unwrap();
        let b = img.flatten();
        assert_eq!(u32::from_le_bytes(b[0..4].try_into().unwrap()), 0x110);
        assert_eq!(u32::from_le_bytes(b[4..8].try_into().unwrap()), 0xFF);
    }

    #[test]
    fn negative_byte_values_accepted() {
        let img = assemble(".byte -1, -128, 255\n").unwrap();
        assert_eq!(img.flatten(), vec![0xFF, 0x80, 0xFF]);
    }

    #[test]
    fn oversize_data_value_rejected() {
        assert!(assemble(".byte 256\n").is_err());
        assert!(assemble(".word 0x10000\n").is_err());
    }
}
