//! Instruction and data encoding.
//!
//! [`encode_insn`] is used twice: leniently during layout (undefined
//! symbols become 0, out-of-range values are truncated — only the *length*
//! matters there, and length is fully determined by the chosen
//! [`Form`]s), and strictly in the final pass, where every symbol must
//! resolve and every value must fit its encoding.

use crate::error::AsmError;
use crate::expr::{Eval, Expr};
use crate::image::Image;
use crate::layout::{BranchKind, Form, LaidProgram, Width};
use crate::parser::{InsnStmt, OperandAst, StmtKind};
use atum_arch::{Access, DataSize, Opcode};
use std::collections::HashMap;

/// Encoding context shared by the lenient and strict passes.
pub struct EncodeCtx<'a> {
    /// Symbol table (values as i64 so negative assigns work).
    pub symbols: &'a HashMap<String, i64>,
    /// Strict mode: undefined symbols and range overflows are errors.
    pub strict: bool,
    /// Source line for errors.
    pub lineno: u32,
}

impl EncodeCtx<'_> {
    fn eval(&self, e: &Expr, dot: i64) -> Result<i64, AsmError> {
        match e.eval(self.symbols, dot, self.lineno)? {
            Eval::Value(v) => Ok(v),
            Eval::Undefined(name) => {
                if self.strict {
                    Err(AsmError::new(
                        self.lineno,
                        format!("undefined symbol '{name}'"),
                    ))
                } else {
                    Ok(0)
                }
            }
        }
    }

    fn check_signed(&self, v: i64, width: Width, what: &str) -> Result<(), AsmError> {
        if !self.strict {
            return Ok(());
        }
        let (lo, hi) = width.signed_range();
        if v < lo || v > hi {
            return Err(AsmError::new(
                self.lineno,
                format!("{what} {v} does not fit in {width:?} displacement"),
            ));
        }
        Ok(())
    }

    fn check_sized_value(&self, v: i64, size: DataSize, what: &str) -> Result<(), AsmError> {
        if !self.strict {
            return Ok(());
        }
        let bits = size.bits();
        let lo = -(1i64 << (bits - 1));
        let hi = (1i64 << bits) - 1;
        if v < lo || v > hi {
            return Err(AsmError::new(
                self.lineno,
                format!("{what} {v} does not fit in {} bits", bits),
            ));
        }
        Ok(())
    }
}

fn push_sized(out: &mut Vec<u8>, v: i64, size: DataSize) {
    let v = v as u64;
    for i in 0..size.bytes() {
        out.push((v >> (8 * i)) as u8);
    }
}

/// Encodes one instruction at `addr` with the given operand forms.
pub fn encode_insn(
    insn: &InsnStmt,
    forms: &[Form],
    far: bool,
    addr: u32,
    ctx: &EncodeCtx<'_>,
) -> Result<Vec<u8>, AsmError> {
    let kind = BranchKind::of(insn.opcode);
    let specs = insn.opcode.operands();
    debug_assert_eq!(specs.len(), insn.operands.len());
    debug_assert_eq!(specs.len(), forms.len());

    let mut out = Vec::with_capacity(8);
    // Opcode byte; relaxed byte-displacement branches swap to the wide form.
    let opcode_byte = if far {
        match kind {
            BranchKind::Plain { wide: Some(w) } => w.to_byte(),
            BranchKind::Cond => insn
                .opcode
                .inverted_branch()
                .expect("conditional branch invertible")
                .to_byte(),
            _ => insn.opcode.to_byte(),
        }
    } else {
        insn.opcode.to_byte()
    };
    out.push(opcode_byte);

    for (i, ((ast, spec), form)) in insn
        .operands
        .iter()
        .zip(specs.iter())
        .zip(forms.iter())
        .enumerate()
    {
        match spec.access {
            Access::Branch(disp_size) => {
                encode_branch(insn, kind, disp_size, ast, far, addr, &mut out, ctx, i)?;
            }
            access => {
                encode_specifier(ast, access, spec.size, *form, addr, &mut out, ctx)?;
            }
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn encode_branch(
    insn: &InsnStmt,
    kind: BranchKind,
    disp_size: DataSize,
    ast: &OperandAst,
    far: bool,
    addr: u32,
    out: &mut Vec<u8>,
    ctx: &EncodeCtx<'_>,
    _index: usize,
) -> Result<(), AsmError> {
    let target = match ast {
        OperandAst::Relative {
            expr,
            deferred: false,
        } => ctx.eval(expr, addr as i64)?,
        other => {
            return Err(AsmError::new(
                ctx.lineno,
                format!("branch target must be a plain address expression, not {other:?}"),
            ))
        }
    };

    if !far {
        let pos_after = addr as i64 + out.len() as i64 + disp_size.bytes() as i64;
        let disp = target - pos_after;
        let width = match disp_size {
            DataSize::Byte => Width::B,
            DataSize::Word => Width::W,
            DataSize::Long => Width::L,
        };
        ctx.check_signed(disp, width, "branch displacement")?;
        push_sized(out, disp, disp_size);
        return Ok(());
    }

    match kind {
        // brb/bsbb relaxed: opcode already swapped to the wide form.
        BranchKind::Plain { wide: Some(_) } => {
            let pos_after = addr as i64 + out.len() as i64 + 2;
            let disp = target - pos_after;
            ctx.check_signed(disp, Width::W, "branch displacement")?;
            push_sized(out, disp, DataSize::Word);
        }
        // Inverted conditional over an unconditional wide branch:
        //   [inv][+3][brw][d16]
        BranchKind::Cond => {
            out.push(3); // skip the 3-byte brw when the inverted test is true
            out.push(Opcode::Brw.to_byte());
            let pos_after = addr as i64 + out.len() as i64 + 2;
            let disp = target - pos_after;
            ctx.check_signed(disp, Width::W, "branch displacement")?;
            push_sized(out, disp, DataSize::Word);
        }
        // Loop/bit branches keep their semantics and trampoline out:
        //   [op][specs][+2][brb +3][brw d16]
        BranchKind::Trailing => {
            out.push(2); // taken path: hop to the brw
            out.push(Opcode::Brb.to_byte());
            out.push(3); // fall-through path: hop over the brw
            out.push(Opcode::Brw.to_byte());
            let pos_after = addr as i64 + out.len() as i64 + 2;
            let disp = target - pos_after;
            ctx.check_signed(disp, Width::W, "branch displacement")?;
            push_sized(out, disp, DataSize::Word);
        }
        BranchKind::Plain { wide: None } | BranchKind::NotABranch => {
            return Err(AsmError::new(
                ctx.lineno,
                format!("internal: {} cannot be relaxed", insn.opcode),
            ))
        }
    }
    Ok(())
}

fn encode_specifier(
    ast: &OperandAst,
    access: Access,
    size: DataSize,
    form: Form,
    addr: u32,
    out: &mut Vec<u8>,
    ctx: &EncodeCtx<'_>,
) -> Result<(), AsmError> {
    let writable = matches!(access, Access::Write | Access::Modify);
    let err = |msg: String| Err(AsmError::new(ctx.lineno, msg));
    match ast {
        OperandAst::Immediate(e) => {
            if writable || access == Access::Address {
                return err("immediate operand cannot be a destination or address".into());
            }
            let v = ctx.eval(e, addr as i64)?;
            match form {
                Form::Literal => {
                    debug_assert!((0..=63).contains(&v) || !ctx.strict);
                    out.push((v & 0x3F) as u8);
                }
                _ => {
                    ctx.check_sized_value(v, size, "immediate")?;
                    out.push(0x8F);
                    push_sized(out, v, size);
                }
            }
        }
        OperandAst::Absolute(e) => {
            let v = ctx.eval(e, addr as i64)?;
            out.push(0x9F);
            push_sized(out, v, DataSize::Long);
        }
        OperandAst::Register(r) => {
            if access == Access::Address {
                return err(format!("register {r} has no address"));
            }
            if r.is_pc() {
                return err("pc is not usable in register mode".into());
            }
            out.push(0x50 | r.index());
        }
        OperandAst::RegDeferred(r) => {
            if r.is_pc() {
                return err("pc is not usable in register-deferred mode".into());
            }
            out.push(0x60 | r.index());
        }
        OperandAst::AutoDec(r) => {
            if r.is_pc() {
                return err("pc is not usable in autodecrement mode".into());
            }
            out.push(0x70 | r.index());
        }
        OperandAst::AutoInc(r) => {
            if r.is_pc() {
                return err("write immediates as #value, not (pc)+".into());
            }
            out.push(0x80 | r.index());
        }
        OperandAst::AutoIncDeferred(r) => {
            if r.is_pc() {
                return err("write absolute as @#addr, not @(pc)+".into());
            }
            out.push(0x90 | r.index());
        }
        OperandAst::Displacement {
            expr,
            reg,
            deferred,
        } => {
            let v = ctx.eval(expr, addr as i64)?;
            let width = form.width().unwrap_or(Width::L);
            ctx.check_signed(v, width, "displacement")?;
            out.push(width.mode_nibble(*deferred) << 4 | reg.index());
            push_sized(out, v, width.data_size());
        }
        OperandAst::Relative { expr, deferred } => {
            let target = ctx.eval(expr, addr as i64)?;
            let width = form.width().unwrap_or(Width::L);
            let pos_after = addr as i64 + out.len() as i64 + 1 + width.data_size().bytes() as i64;
            let disp = target - pos_after;
            ctx.check_signed(disp, width, "pc-relative displacement")?;
            out.push(width.mode_nibble(*deferred) << 4 | 0x0F);
            push_sized(out, disp, width.data_size());
        }
    }
    Ok(())
}

/// Final strict pass: turns a laid-out program into an [`Image`].
pub fn encode(laid: LaidProgram) -> Result<Image, AsmError> {
    let mut segments: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut current: Option<(u32, Vec<u8>)> = None;

    let flush = |current: &mut Option<(u32, Vec<u8>)>, segments: &mut Vec<(u32, Vec<u8>)>| {
        if let Some(seg) = current.take() {
            if !seg.1.is_empty() {
                segments.push(seg);
            }
        }
    };

    for ls in &laid.stmts {
        let ctx = EncodeCtx {
            symbols: &laid.symbols,
            strict: true,
            lineno: ls.stmt.lineno,
        };
        // Start or continue a segment at this statement's address.
        let need_new = match &current {
            Some((a, b)) => *a as u64 + b.len() as u64 != ls.addr as u64,
            None => true,
        };
        if need_new {
            flush(&mut current, &mut segments);
            current = Some((ls.addr, Vec::new()));
        }
        let buf = &mut current.as_mut().expect("segment open").1;

        match &ls.stmt.kind {
            None | Some(StmtKind::Assign(..)) | Some(StmtKind::Org(_)) => {}
            Some(StmtKind::Align(_)) | Some(StmtKind::Space(..)) => {
                let fill = match &ls.stmt.kind {
                    Some(StmtKind::Space(_, f)) => *f,
                    _ => 0,
                };
                buf.extend(std::iter::repeat_n(fill, ls.size as usize));
            }
            Some(StmtKind::Data(size, exprs)) => {
                for e in exprs {
                    let v = ctx.eval(e, ls.addr as i64)?;
                    ctx.check_sized_value(v, *size, "data value")?;
                    push_sized(buf, v, *size);
                }
            }
            Some(StmtKind::Bytes(bytes)) => buf.extend_from_slice(bytes),
            Some(StmtKind::Insn(insn)) => {
                let bytes = encode_insn(insn, &ls.forms, ls.far, ls.addr, &ctx)?;
                debug_assert_eq!(
                    bytes.len() as u32,
                    ls.size,
                    "layout/encode length disagreement at line {}",
                    ls.stmt.lineno
                );
                buf.extend_from_slice(&bytes);
            }
        }
    }
    flush(&mut current, &mut segments);

    let symbols = laid
        .symbols
        .iter()
        .map(|(k, v)| (k.clone(), *v as u32))
        .collect();
    Ok(Image::from_parts(segments, symbols))
}
