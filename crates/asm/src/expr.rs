//! Constant-expression AST and evaluation.
//!
//! Expressions combine numbers, symbols, the location counter `.`, unary
//! minus/complement and the binary operators `+ - * / & | ^ << >>` with the
//! usual precedence. Evaluation happens against the layout's symbol table;
//! a symbol may be undefined during early layout iterations, which the
//! layout treats as "assume the widest form".

use crate::error::AsmError;
use crate::lexer::Token;
use std::collections::HashMap;
use std::fmt;

/// A constant expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Symbol reference (including numeric-local references like `1b`).
    Sym(String),
    /// The location counter at the start of the operand's statement.
    Dot,
    /// Negation.
    Neg(Box<Expr>),
    /// Bitwise complement (written as unary `^`).
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Outcome of evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Eval {
    /// Fully evaluated.
    Value(i64),
    /// A symbol was not (yet) defined.
    Undefined(String),
}

impl Expr {
    /// Evaluates against `symbols`, with `dot` as the location counter.
    ///
    /// # Errors
    ///
    /// Returns an error for division by zero; undefined symbols are *not*
    /// errors here (the caller decides whether they are).
    pub fn eval(
        &self,
        symbols: &HashMap<String, i64>,
        dot: i64,
        lineno: u32,
    ) -> Result<Eval, AsmError> {
        Ok(match self {
            Expr::Num(v) => Eval::Value(*v),
            Expr::Dot => Eval::Value(dot),
            Expr::Sym(name) => match symbols.get(name) {
                Some(v) => Eval::Value(*v),
                None => Eval::Undefined(name.clone()),
            },
            Expr::Neg(e) => match e.eval(symbols, dot, lineno)? {
                Eval::Value(v) => Eval::Value(v.wrapping_neg()),
                u => u,
            },
            Expr::Not(e) => match e.eval(symbols, dot, lineno)? {
                Eval::Value(v) => Eval::Value(!v),
                u => u,
            },
            Expr::Bin(op, a, b) => {
                let a = a.eval(symbols, dot, lineno)?;
                let b = b.eval(symbols, dot, lineno)?;
                match (a, b) {
                    (Eval::Value(a), Eval::Value(b)) => Eval::Value(match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::Div => {
                            if b == 0 {
                                return Err(AsmError::new(lineno, "division by zero"));
                            }
                            a.wrapping_div(b)
                        }
                        BinOp::And => a & b,
                        BinOp::Or => a | b,
                        BinOp::Xor => a ^ b,
                        BinOp::Shl => a.wrapping_shl(b as u32),
                        BinOp::Shr => ((a as u64).wrapping_shr(b as u32)) as i64,
                    }),
                    (Eval::Undefined(s), _) | (_, Eval::Undefined(s)) => Eval::Undefined(s),
                }
            }
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(v) => write!(f, "{v}"),
            Expr::Sym(s) => f.write_str(s),
            Expr::Dot => f.write_str("."),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Not(e) => write!(f, "^({e})"),
            Expr::Bin(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::Shl => "<<",
                    BinOp::Shr => ">>",
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

/// A cursor over a token slice, shared by the expression and statement
/// parsers.
pub struct TokCursor<'a> {
    toks: &'a [Token],
    pos: usize,
    /// 1-based source line, for errors.
    pub lineno: u32,
}

impl<'a> TokCursor<'a> {
    /// Creates a cursor at the start of `toks`.
    pub fn new(toks: &'a [Token], lineno: u32) -> TokCursor<'a> {
        TokCursor {
            toks,
            pos: 0,
            lineno,
        }
    }

    /// Peeks at the current token.
    pub fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    /// Peeks `n` tokens ahead.
    pub fn peek_at(&self, n: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + n)
    }

    /// Consumes and returns the current token.
    pub fn next(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the current token if it equals `tok`.
    pub fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes `tok` or errors.
    pub fn expect(&mut self, tok: &Token, what: &str) -> Result<(), AsmError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(AsmError::new(self.lineno, format!("expected {what}")))
        }
    }

    /// Whether the cursor is exhausted.
    pub fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.lineno, msg)
    }
}

/// Parses an expression at the cursor (precedence-climbing).
pub fn parse_expr(cur: &mut TokCursor<'_>) -> Result<Expr, AsmError> {
    parse_bin(cur, 0)
}

fn prec(tok: &Token) -> Option<(BinOp, u8)> {
    Some(match tok {
        Token::Pipe => (BinOp::Or, 1),
        Token::Caret => (BinOp::Xor, 2),
        Token::Amp => (BinOp::And, 3),
        Token::Shl => (BinOp::Shl, 4),
        Token::Shr => (BinOp::Shr, 4),
        Token::Plus => (BinOp::Add, 5),
        Token::Minus => (BinOp::Sub, 5),
        Token::Star => (BinOp::Mul, 6),
        Token::Slash => (BinOp::Div, 6),
        _ => return None,
    })
}

fn parse_bin(cur: &mut TokCursor<'_>, min_prec: u8) -> Result<Expr, AsmError> {
    let mut lhs = parse_unary(cur)?;
    while let Some(tok) = cur.peek() {
        let Some((op, p)) = prec(tok) else { break };
        if p < min_prec {
            break;
        }
        cur.next();
        let rhs = parse_bin(cur, p + 1)?;
        lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_unary(cur: &mut TokCursor<'_>) -> Result<Expr, AsmError> {
    match cur.peek() {
        Some(Token::Minus) => {
            cur.next();
            Ok(Expr::Neg(Box::new(parse_unary(cur)?)))
        }
        Some(Token::Caret) => {
            cur.next();
            Ok(Expr::Not(Box::new(parse_unary(cur)?)))
        }
        Some(Token::Number(v)) => {
            let v = *v;
            cur.next();
            Ok(Expr::Num(v))
        }
        Some(Token::Ident(s)) => {
            let s = s.clone();
            cur.next();
            Ok(Expr::Sym(s))
        }
        Some(Token::Dot) => {
            cur.next();
            Ok(Expr::Dot)
        }
        Some(Token::LParen) => {
            cur.next();
            let e = parse_bin(cur, 0)?;
            cur.expect(&Token::RParen, "')'")?;
            Ok(e)
        }
        other => Err(cur.err(format!("expected expression, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> Expr {
        let toks = tokenize(src, 1).unwrap();
        let mut cur = TokCursor::new(&toks, 1);
        let e = parse_expr(&mut cur).unwrap();
        assert!(cur.at_end(), "trailing tokens in {src:?}");
        e
    }

    fn eval(src: &str) -> i64 {
        let e = parse(src);
        match e.eval(&HashMap::new(), 0x100, 1).unwrap() {
            Eval::Value(v) => v,
            Eval::Undefined(s) => panic!("undefined {s}"),
        }
    }

    #[test]
    fn precedence() {
        assert_eq!(eval("2 + 3 * 4"), 14);
        assert_eq!(eval("(2 + 3) * 4"), 20);
        assert_eq!(eval("1 << 4 | 3"), 19);
        assert_eq!(eval("0xFF & 0x0F"), 0x0F);
        assert_eq!(eval("10 - 2 - 3"), 5, "left associative");
        assert_eq!(eval("16 >> 2"), 4);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(eval("-5 + 3"), -2);
        assert_eq!(eval("^0 & 0xFF"), 0xFF);
        assert_eq!(eval("--5"), 5);
    }

    #[test]
    fn dot_is_location() {
        assert_eq!(eval(". + 4"), 0x104);
    }

    #[test]
    fn symbols_resolve() {
        let e = parse("base + 8");
        let mut syms = HashMap::new();
        syms.insert("base".to_string(), 0x200);
        assert_eq!(e.eval(&syms, 0, 1).unwrap(), Eval::Value(0x208));
    }

    #[test]
    fn undefined_symbol_reported() {
        let e = parse("nowhere + 1");
        assert_eq!(
            e.eval(&HashMap::new(), 0, 1).unwrap(),
            Eval::Undefined("nowhere".to_string())
        );
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = parse("1 / 0");
        assert!(e.eval(&HashMap::new(), 0, 1).is_err());
    }

    #[test]
    fn display_round_trips_structure() {
        let e = parse("1 + 2 * x");
        assert_eq!(e.to_string(), "(1 + (2 * x))");
    }
}
