//! Tokenizer for SVX assembly source lines.

use crate::error::AsmError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or mnemonic (`start`, `movl`, `.long`, `1b`).
    Ident(String),
    /// Integer literal (decimal, `0x`, `0o`, `0b`, or `'c'`).
    Number(i64),
    /// String literal (after escape processing).
    Str(Vec<u8>),
    /// `#`
    Hash,
    /// `@`
    At,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Equals,
    /// `.` (location counter, when not starting an identifier)
    Dot,
}

/// Tokenizes one source line (comment already possible; `;` ends the line).
pub fn tokenize(line: &str, lineno: u32) -> Result<Vec<Token>, AsmError> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let err = |msg: String| AsmError::new(lineno, msg);
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ';' => break,
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                out.push(Token::Hash);
                i += 1;
            }
            '@' => {
                out.push(Token::At);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '&' => {
                out.push(Token::Amp);
                i += 1;
            }
            '|' => {
                out.push(Token::Pipe);
                i += 1;
            }
            '^' => {
                out.push(Token::Caret);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'<') {
                    out.push(Token::Shl);
                    i += 2;
                } else {
                    return Err(err("unexpected '<'".into()));
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Shr);
                    i += 2;
                } else {
                    return Err(err("unexpected '>'".into()));
                }
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            '=' => {
                out.push(Token::Equals);
                i += 1;
            }
            '"' => {
                let (s, next) = lex_string(bytes, i + 1, lineno)?;
                out.push(Token::Str(s));
                i = next;
            }
            '\'' => {
                let (v, next) = lex_char(bytes, i + 1, lineno)?;
                out.push(Token::Number(v));
                i = next;
            }
            '0'..='9' => {
                let (v, next) = lex_number(bytes, i, lineno)?;
                // Numeric local label references: `1b` / `1f`.
                if let Some(&suf) = bytes.get(next) {
                    if (suf == b'b' || suf == b'f')
                        && !bytes
                            .get(next + 1)
                            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                    {
                        out.push(Token::Ident(format!("{v}{}", suf as char)));
                        i = next + 1;
                        continue;
                    }
                }
                out.push(Token::Number(v));
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' || c == '.' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &line[start..i];
                if word == "." {
                    out.push(Token::Dot);
                } else {
                    out.push(Token::Ident(word.to_string()));
                }
            }
            other => return Err(err(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

fn lex_number(bytes: &[u8], start: usize, lineno: u32) -> Result<(i64, usize), AsmError> {
    let mut i = start;
    let (radix, digits_start) = if bytes[i] == b'0' && i + 1 < bytes.len() {
        match bytes[i + 1] {
            b'x' | b'X' => (16, i + 2),
            b'o' | b'O' => (8, i + 2),
            b'b' | b'B' if bytes.get(i + 2).is_some_and(|c| matches!(c, b'0' | b'1')) => (2, i + 2),
            _ => (10, i),
        }
    } else {
        (10, i)
    };
    i = digits_start;
    let mut value: i64 = 0;
    let mut any = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let d = match c.to_digit(radix) {
            Some(d) => d,
            None => break,
        };
        value = value
            .checked_mul(radix as i64)
            .and_then(|v| v.checked_add(d as i64))
            .ok_or_else(|| AsmError::new(lineno, "numeric literal overflows"))?;
        any = true;
        i += 1;
    }
    if !any {
        return Err(AsmError::new(lineno, "malformed numeric literal"));
    }
    Ok((value, i))
}

fn lex_char(bytes: &[u8], start: usize, lineno: u32) -> Result<(i64, usize), AsmError> {
    let mut i = start;
    let c = *bytes
        .get(i)
        .ok_or_else(|| AsmError::new(lineno, "unterminated character literal"))?;
    let value = if c == b'\\' {
        i += 1;
        let esc = *bytes
            .get(i)
            .ok_or_else(|| AsmError::new(lineno, "unterminated escape"))?;
        escape_value(esc).ok_or_else(|| AsmError::new(lineno, "unknown escape"))?
    } else {
        c
    };
    i += 1;
    if bytes.get(i) != Some(&b'\'') {
        return Err(AsmError::new(lineno, "unterminated character literal"));
    }
    Ok((value as i64, i + 1))
}

fn lex_string(bytes: &[u8], start: usize, lineno: u32) -> Result<(Vec<u8>, usize), AsmError> {
    let mut out = Vec::new();
    let mut i = start;
    loop {
        let c = *bytes
            .get(i)
            .ok_or_else(|| AsmError::new(lineno, "unterminated string literal"))?;
        match c {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                i += 1;
                let esc = *bytes
                    .get(i)
                    .ok_or_else(|| AsmError::new(lineno, "unterminated escape"))?;
                out.push(escape_value(esc).ok_or_else(|| AsmError::new(lineno, "unknown escape"))?);
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
}

fn escape_value(esc: u8) -> Option<u8> {
    Some(match esc {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'"' => b'"',
        b'\'' => b'\'',
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        tokenize(s, 1).unwrap()
    }

    #[test]
    fn basic_line() {
        assert_eq!(
            lex("start: movl #5, r0"),
            vec![
                Token::Ident("start".into()),
                Token::Colon,
                Token::Ident("movl".into()),
                Token::Hash,
                Token::Number(5),
                Token::Comma,
                Token::Ident("r0".into()),
            ]
        );
    }

    #[test]
    fn radixes() {
        assert_eq!(lex("0x10 0o17 0b101 42"), {
            vec![
                Token::Number(16),
                Token::Number(15),
                Token::Number(5),
                Token::Number(42),
            ]
        });
    }

    #[test]
    fn comment_terminates() {
        assert_eq!(
            lex("nop ; the rest is ignored: #@!("),
            vec![Token::Ident("nop".into())]
        );
    }

    #[test]
    fn char_literals() {
        assert_eq!(lex("'a'"), vec![Token::Number(97)]);
        assert_eq!(lex("'\\n'"), vec![Token::Number(10)]);
        assert_eq!(lex("'\\0'"), vec![Token::Number(0)]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(lex("\"a\\tb\\n\""), vec![Token::Str(b"a\tb\n".to_vec())]);
    }

    #[test]
    fn directives_are_idents() {
        assert_eq!(
            lex(".long 1"),
            vec![Token::Ident(".long".into()), Token::Number(1)]
        );
    }

    #[test]
    fn dot_alone_is_location_counter() {
        assert_eq!(
            lex(". + 2"),
            vec![Token::Dot, Token::Plus, Token::Number(2)]
        );
    }

    #[test]
    fn numeric_local_label_refs() {
        assert_eq!(
            lex("brb 1b"),
            vec![Token::Ident("brb".into()), Token::Ident("1b".into())]
        );
        assert_eq!(
            lex("beql 2f"),
            vec![Token::Ident("beql".into()), Token::Ident("2f".into())]
        );
        // But 0x1b is still a number.
        assert_eq!(lex("0x1b"), vec![Token::Number(0x1b)]);
    }

    #[test]
    fn shift_operators() {
        assert_eq!(
            lex("1 << 2 >> 3"),
            vec![
                Token::Number(1),
                Token::Shl,
                Token::Number(2),
                Token::Shr,
                Token::Number(3)
            ]
        );
    }

    #[test]
    fn addressing_punctuation() {
        assert_eq!(
            lex("-(sp) (r1)+ @8(fp)"),
            vec![
                Token::Minus,
                Token::LParen,
                Token::Ident("sp".into()),
                Token::RParen,
                Token::LParen,
                Token::Ident("r1".into()),
                Token::RParen,
                Token::Plus,
                Token::At,
                Token::Number(8),
                Token::LParen,
                Token::Ident("fp".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn bad_character_errors() {
        assert!(tokenize("movl %bad", 3).is_err());
        assert_eq!(tokenize("movl %bad", 3).unwrap_err().line(), 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"abc", 1).is_err());
    }
}
