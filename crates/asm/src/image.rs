//! Assembled output image.

use std::collections::HashMap;
use std::fmt;

/// The result of assembling a source file: byte segments at absolute
/// addresses plus the symbol table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Image {
    segments: Vec<(u32, Vec<u8>)>,
    symbols: HashMap<String, u32>,
}

impl Image {
    /// Creates an image from raw parts. Adjacent segments are merged.
    pub fn from_parts(mut segments: Vec<(u32, Vec<u8>)>, symbols: HashMap<String, u32>) -> Image {
        segments.retain(|(_, b)| !b.is_empty());
        segments.sort_by_key(|(a, _)| *a);
        let mut merged: Vec<(u32, Vec<u8>)> = Vec::new();
        for (addr, bytes) in segments {
            if let Some((last_addr, last_bytes)) = merged.last_mut() {
                if *last_addr as u64 + last_bytes.len() as u64 == addr as u64 {
                    last_bytes.extend_from_slice(&bytes);
                    continue;
                }
            }
            merged.push((addr, bytes));
        }
        Image {
            segments: merged,
            symbols,
        }
    }

    /// The contiguous byte segments, sorted by address.
    pub fn segments(&self) -> &[(u32, Vec<u8>)] {
        &self.segments
    }

    /// The value of a symbol, if defined.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols.
    pub fn symbols(&self) -> &HashMap<String, u32> {
        &self.symbols
    }

    /// The lowest address occupied, or 0 for an empty image.
    pub fn base(&self) -> u32 {
        self.segments.first().map_or(0, |(a, _)| *a)
    }

    /// One past the highest address occupied, or 0 for an empty image.
    pub fn end(&self) -> u32 {
        self.segments.last().map_or(0, |(a, b)| a + b.len() as u32)
    }

    /// Flattens to a single byte vector starting at [`Image::base`], with
    /// zero fill between segments.
    pub fn flatten(&self) -> Vec<u8> {
        if self.segments.is_empty() {
            return Vec::new();
        }
        let base = self.base();
        let mut out = vec![0u8; (self.end() - base) as usize];
        for (addr, bytes) in &self.segments {
            let off = (addr - base) as usize;
            out[off..off + bytes.len()].copy_from_slice(bytes);
        }
        out
    }

    /// Total number of content bytes (excluding inter-segment fill).
    pub fn byte_len(&self) -> usize {
        self.segments.iter().map(|(_, b)| b.len()).sum()
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "image: {} bytes in {} segment(s), {} symbol(s)",
            self.byte_len(),
            self.segments.len(),
            self.symbols.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_adjacent_segments() {
        let img = Image::from_parts(
            vec![(0, vec![1, 2]), (2, vec![3]), (10, vec![4])],
            HashMap::new(),
        );
        assert_eq!(img.segments().len(), 2);
        assert_eq!(img.segments()[0], (0, vec![1, 2, 3]));
    }

    #[test]
    fn flatten_fills_gaps_with_zero() {
        let img = Image::from_parts(vec![(4, vec![1]), (8, vec![2])], HashMap::new());
        assert_eq!(img.base(), 4);
        assert_eq!(img.end(), 9);
        assert_eq!(img.flatten(), vec![1, 0, 0, 0, 2]);
    }

    #[test]
    fn empty_image() {
        let img = Image::default();
        assert_eq!(img.base(), 0);
        assert_eq!(img.end(), 0);
        assert!(img.flatten().is_empty());
    }

    #[test]
    fn symbols_accessible() {
        let mut syms = HashMap::new();
        syms.insert("x".to_string(), 42);
        let img = Image::from_parts(vec![], syms);
        assert_eq!(img.symbol("x"), Some(42));
        assert_eq!(img.symbol("y"), None);
    }
}
