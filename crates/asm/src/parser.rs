//! Statement parser: source lines → statement list.

use crate::error::AsmError;
use crate::expr::{parse_expr, Expr, TokCursor};
use crate::lexer::{tokenize, Token};
use atum_arch::{DataSize, Gpr, Opcode};

/// A parsed operand, before addressing-mode selection.
#[derive(Debug, Clone, PartialEq)]
pub enum OperandAst {
    /// `#expr`
    Immediate(Expr),
    /// `@#expr`
    Absolute(Expr),
    /// `rN`
    Register(Gpr),
    /// `(rN)`
    RegDeferred(Gpr),
    /// `-(rN)`
    AutoDec(Gpr),
    /// `(rN)+`
    AutoInc(Gpr),
    /// `@(rN)+`
    AutoIncDeferred(Gpr),
    /// `expr(rN)` or `@expr(rN)`
    Displacement {
        /// The displacement expression.
        expr: Expr,
        /// The base register.
        reg: Gpr,
        /// Whether the form was deferred (`@`).
        deferred: bool,
    },
    /// Bare `expr` or `@expr`: PC-relative; also the form of branch targets.
    Relative {
        /// The target-address expression.
        expr: Expr,
        /// Whether the form was deferred (`@`).
        deferred: bool,
    },
}

/// An instruction statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsnStmt {
    /// The opcode.
    pub opcode: Opcode,
    /// Parsed operands (same arity as `opcode.operands()`).
    pub operands: Vec<OperandAst>,
}

/// The body of a statement (labels are attached separately).
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An instruction.
    Insn(InsnStmt),
    /// `sym = expr` or `.equ sym, expr`.
    Assign(String, Expr),
    /// `.org expr`
    Org(Expr),
    /// `.align expr` (power of two)
    Align(Expr),
    /// `.space expr[, fill]`
    Space(Expr, u8),
    /// `.byte`/`.word`/`.long` expression lists.
    Data(DataSize, Vec<Expr>),
    /// `.ascii`/`.asciz` string bytes (already escape-processed).
    Bytes(Vec<u8>),
}

/// A statement with its labels and source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Labels defined at this statement's address.
    pub labels: Vec<String>,
    /// The statement body, if any (a line may be labels only).
    pub kind: Option<StmtKind>,
    /// 1-based source line.
    pub lineno: u32,
}

/// Parses a register name.
fn parse_reg_name(name: &str) -> Option<Gpr> {
    match name {
        "ap" => Some(Gpr::AP),
        "fp" => Some(Gpr::FP),
        "sp" => Some(Gpr::SP),
        "pc" => Some(Gpr::PC),
        _ => {
            let rest = name.strip_prefix('r')?;
            let n: u8 = rest.parse().ok()?;
            if n < 16 && (rest.len() == 1 || !rest.starts_with('0')) {
                Some(Gpr::new(n))
            } else {
                None
            }
        }
    }
}

/// Parses assembly source into statements, with numeric local labels
/// resolved into unique synthetic symbols.
pub fn parse(source: &str) -> Result<Vec<Stmt>, AsmError> {
    let mut stmts = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let toks = tokenize(line, lineno)?;
        if toks.is_empty() {
            continue;
        }
        stmts.push(parse_line(&toks, lineno)?);
    }
    resolve_numeric_labels(&mut stmts)?;
    Ok(stmts)
}

fn parse_line(toks: &[Token], lineno: u32) -> Result<Stmt, AsmError> {
    let mut cur = TokCursor::new(toks, lineno);
    let mut labels = Vec::new();

    // Leading labels: `ident:` or `number:`.
    loop {
        match (cur.peek(), cur.peek_at(1)) {
            (Some(Token::Ident(name)), Some(Token::Colon)) => {
                labels.push(name.clone());
                cur.next();
                cur.next();
            }
            (Some(Token::Number(n)), Some(Token::Colon)) => {
                labels.push(format!("{n}"));
                cur.next();
                cur.next();
            }
            _ => break,
        }
    }

    // `sym = expr` assignment.
    if let (Some(Token::Ident(name)), Some(Token::Equals)) = (cur.peek(), cur.peek_at(1)) {
        let name = name.clone();
        cur.next();
        cur.next();
        let e = parse_expr(&mut cur)?;
        expect_end(&cur)?;
        return Ok(Stmt {
            labels,
            kind: Some(StmtKind::Assign(name, e)),
            lineno,
        });
    }

    let kind = match cur.peek() {
        None => None,
        Some(Token::Ident(word)) if word.starts_with('.') => {
            let word = word.clone();
            cur.next();
            Some(parse_directive(&word, &mut cur)?)
        }
        Some(Token::Ident(word)) => {
            let word = word.clone();
            cur.next();
            Some(parse_insn(&word, &mut cur)?)
        }
        Some(t) => {
            return Err(AsmError::new(lineno, format!("unexpected token {t:?}")));
        }
    };
    if kind.is_some() {
        expect_end(&cur)?;
    }
    Ok(Stmt {
        labels,
        kind,
        lineno,
    })
}

fn expect_end(cur: &TokCursor<'_>) -> Result<(), AsmError> {
    if cur.at_end() {
        Ok(())
    } else {
        Err(AsmError::new(
            cur.lineno,
            format!("unexpected trailing tokens: {:?}", cur.peek()),
        ))
    }
}

fn parse_directive(word: &str, cur: &mut TokCursor<'_>) -> Result<StmtKind, AsmError> {
    match word {
        ".org" => Ok(StmtKind::Org(parse_expr(cur)?)),
        ".align" => Ok(StmtKind::Align(parse_expr(cur)?)),
        ".space" => {
            let n = parse_expr(cur)?;
            let fill = if cur.eat(&Token::Comma) {
                match cur.next() {
                    Some(Token::Number(v)) => *v as u8,
                    _ => return Err(AsmError::new(cur.lineno, ".space fill must be a number")),
                }
            } else {
                0
            };
            Ok(StmtKind::Space(n, fill))
        }
        ".byte" => Ok(StmtKind::Data(DataSize::Byte, parse_expr_list(cur)?)),
        ".word" => Ok(StmtKind::Data(DataSize::Word, parse_expr_list(cur)?)),
        ".long" => Ok(StmtKind::Data(DataSize::Long, parse_expr_list(cur)?)),
        ".ascii" | ".asciz" => {
            let mut bytes = match cur.next() {
                Some(Token::Str(s)) => s.clone(),
                _ => {
                    return Err(AsmError::new(
                        cur.lineno,
                        format!("{word} expects a string literal"),
                    ))
                }
            };
            if word == ".asciz" {
                bytes.push(0);
            }
            Ok(StmtKind::Bytes(bytes))
        }
        ".equ" => {
            let name = match cur.next() {
                Some(Token::Ident(n)) => n.clone(),
                _ => return Err(AsmError::new(cur.lineno, ".equ expects a symbol name")),
            };
            cur.expect(&Token::Comma, "','")?;
            Ok(StmtKind::Assign(name, parse_expr(cur)?))
        }
        other => Err(AsmError::new(
            cur.lineno,
            format!("unknown directive {other}"),
        )),
    }
}

fn parse_expr_list(cur: &mut TokCursor<'_>) -> Result<Vec<Expr>, AsmError> {
    let mut out = vec![parse_expr(cur)?];
    while cur.eat(&Token::Comma) {
        out.push(parse_expr(cur)?);
    }
    Ok(out)
}

fn parse_insn(word: &str, cur: &mut TokCursor<'_>) -> Result<StmtKind, AsmError> {
    // Pseudo: popl dst → movl (sp)+, dst
    if word == "popl" {
        let dst = parse_operand(cur)?;
        return Ok(StmtKind::Insn(InsnStmt {
            opcode: Opcode::Movl,
            operands: vec![OperandAst::AutoInc(Gpr::SP), dst],
        }));
    }
    let opcode = Opcode::from_mnemonic(word)
        .ok_or_else(|| AsmError::new(cur.lineno, format!("unknown mnemonic '{word}'")))?;
    let mut operands = Vec::new();
    for (i, _) in opcode.operands().iter().enumerate() {
        if i > 0 {
            cur.expect(&Token::Comma, "','")?;
        }
        operands.push(parse_operand(cur)?);
    }
    Ok(StmtKind::Insn(InsnStmt { opcode, operands }))
}

/// Parses one operand (see crate docs for the accepted forms).
fn parse_operand(cur: &mut TokCursor<'_>) -> Result<OperandAst, AsmError> {
    // `#expr`
    if cur.eat(&Token::Hash) {
        return Ok(OperandAst::Immediate(parse_expr(cur)?));
    }
    // Deferred family: `@#e`, `@(rN)+`, `@e(rN)`, `@e`
    if cur.eat(&Token::At) {
        if cur.eat(&Token::Hash) {
            return Ok(OperandAst::Absolute(parse_expr(cur)?));
        }
        if let Some(reg) = peek_paren_reg(cur) {
            consume_paren_reg(cur);
            cur.expect(
                &Token::Plus,
                "'+' (only @(rN)+ is a deferred register form)",
            )?;
            return Ok(OperandAst::AutoIncDeferred(reg));
        }
        let e = parse_expr(cur)?;
        if let Some(reg) = peek_paren_reg(cur) {
            consume_paren_reg(cur);
            return Ok(OperandAst::Displacement {
                expr: e,
                reg,
                deferred: true,
            });
        }
        return Ok(OperandAst::Relative {
            expr: e,
            deferred: true,
        });
    }
    // `-(rN)` — autodecrement (checked before general expressions).
    if cur.peek() == Some(&Token::Minus) {
        if let Some(reg) = peek_paren_reg_at(cur, 1) {
            cur.next(); // '-'
            consume_paren_reg(cur);
            return Ok(OperandAst::AutoDec(reg));
        }
    }
    // `(rN)` / `(rN)+`
    if let Some(reg) = peek_paren_reg(cur) {
        consume_paren_reg(cur);
        if cur.eat(&Token::Plus) {
            return Ok(OperandAst::AutoInc(reg));
        }
        return Ok(OperandAst::RegDeferred(reg));
    }
    // Bare register.
    if let Some(Token::Ident(name)) = cur.peek() {
        if let Some(reg) = parse_reg_name(name) {
            cur.next();
            return Ok(OperandAst::Register(reg));
        }
    }
    // Expression, possibly `expr(rN)`.
    let e = parse_expr(cur)?;
    if let Some(reg) = peek_paren_reg(cur) {
        consume_paren_reg(cur);
        return Ok(OperandAst::Displacement {
            expr: e,
            reg,
            deferred: false,
        });
    }
    Ok(OperandAst::Relative {
        expr: e,
        deferred: false,
    })
}

fn peek_paren_reg(cur: &TokCursor<'_>) -> Option<Gpr> {
    peek_paren_reg_at(cur, 0)
}

fn peek_paren_reg_at(cur: &TokCursor<'_>, off: usize) -> Option<Gpr> {
    if cur.peek_at(off) != Some(&Token::LParen) {
        return None;
    }
    let reg = match cur.peek_at(off + 1) {
        Some(Token::Ident(name)) => parse_reg_name(name)?,
        _ => return None,
    };
    if cur.peek_at(off + 2) != Some(&Token::RParen) {
        return None;
    }
    Some(reg)
}

fn consume_paren_reg(cur: &mut TokCursor<'_>) {
    cur.next();
    cur.next();
    cur.next();
}

/// Rewrites numeric labels (`1:`) and their references (`1b`, `1f`) into
/// unique synthetic symbols (`.Ln.k`).
fn resolve_numeric_labels(stmts: &mut [Stmt]) -> Result<(), AsmError> {
    use std::collections::HashMap;
    // Collect (stmt index, numeral, occurrence name) for every definition.
    let mut defs: HashMap<String, Vec<(usize, String)>> = HashMap::new();
    for (si, stmt) in stmts.iter_mut().enumerate() {
        for label in &mut stmt.labels {
            if label.chars().all(|c| c.is_ascii_digit()) {
                let list = defs.entry(label.clone()).or_default();
                let synthetic = format!(".L{label}.{}", list.len());
                list.push((si, synthetic.clone()));
                *label = synthetic;
            }
        }
    }
    // Rewrite references in every expression.
    for (si, stmt) in stmts.iter_mut().enumerate() {
        let lineno = stmt.lineno;
        let rewrite = |e: &mut Expr| rewrite_expr(e, si, &defs, lineno);
        match &mut stmt.kind {
            Some(StmtKind::Insn(insn)) => {
                for op in &mut insn.operands {
                    match op {
                        OperandAst::Immediate(e)
                        | OperandAst::Absolute(e)
                        | OperandAst::Displacement { expr: e, .. }
                        | OperandAst::Relative { expr: e, .. } => rewrite(e)?,
                        _ => {}
                    }
                }
            }
            Some(StmtKind::Assign(_, e))
            | Some(StmtKind::Org(e))
            | Some(StmtKind::Align(e))
            | Some(StmtKind::Space(e, _)) => rewrite(e)?,
            Some(StmtKind::Data(_, es)) => {
                for e in es {
                    rewrite(e)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn rewrite_expr(
    e: &mut Expr,
    stmt_idx: usize,
    defs: &std::collections::HashMap<String, Vec<(usize, String)>>,
    lineno: u32,
) -> Result<(), AsmError> {
    match e {
        Expr::Sym(name) => {
            let (numeral, back) = match name.strip_suffix('b') {
                Some(n) if !n.is_empty() && n.chars().all(|c| c.is_ascii_digit()) => (n, true),
                _ => match name.strip_suffix('f') {
                    Some(n) if !n.is_empty() && n.chars().all(|c| c.is_ascii_digit()) => (n, false),
                    _ => return Ok(()),
                },
            };
            let list = defs.get(numeral).ok_or_else(|| {
                AsmError::new(lineno, format!("no definition for local label {name}"))
            })?;
            let found = if back {
                list.iter().rev().find(|(si, _)| *si <= stmt_idx)
            } else {
                list.iter().find(|(si, _)| *si > stmt_idx)
            };
            let (_, synthetic) = found.ok_or_else(|| {
                AsmError::new(
                    lineno,
                    format!(
                        "no {} definition for local label {numeral}",
                        if back { "previous" } else { "following" }
                    ),
                )
            })?;
            *name = synthetic.clone();
            Ok(())
        }
        Expr::Neg(inner) | Expr::Not(inner) => rewrite_expr(inner, stmt_idx, defs, lineno),
        Expr::Bin(_, a, b) => {
            rewrite_expr(a, stmt_idx, defs, lineno)?;
            rewrite_expr(b, stmt_idx, defs, lineno)
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Stmt {
        let stmts = parse(src).unwrap();
        assert_eq!(stmts.len(), 1, "{stmts:?}");
        stmts.into_iter().next().unwrap()
    }

    fn insn(src: &str) -> InsnStmt {
        match one(src).kind {
            Some(StmtKind::Insn(i)) => i,
            other => panic!("expected insn, got {other:?}"),
        }
    }

    #[test]
    fn parses_labels_and_insn() {
        let s = one("start: second: nop");
        assert_eq!(s.labels, vec!["start", "second"]);
        assert!(matches!(s.kind, Some(StmtKind::Insn(_))));
    }

    #[test]
    fn operand_forms() {
        let i = insn("movl #5, r0");
        assert_eq!(i.operands[0], OperandAst::Immediate(Expr::Num(5)));
        assert_eq!(i.operands[1], OperandAst::Register(Gpr::new(0)));

        let i = insn("movl (r1), (r2)+");
        assert_eq!(i.operands[0], OperandAst::RegDeferred(Gpr::new(1)));
        assert_eq!(i.operands[1], OperandAst::AutoInc(Gpr::new(2)));

        let i = insn("movl -(sp), @(r3)+");
        assert_eq!(i.operands[0], OperandAst::AutoDec(Gpr::SP));
        assert_eq!(i.operands[1], OperandAst::AutoIncDeferred(Gpr::new(3)));

        let i = insn("movl 8(fp), @-4(sp)");
        assert_eq!(
            i.operands[0],
            OperandAst::Displacement {
                expr: Expr::Num(8),
                reg: Gpr::FP,
                deferred: false
            }
        );
        assert!(matches!(
            &i.operands[1],
            OperandAst::Displacement { deferred: true, reg, .. } if *reg == Gpr::SP
        ));

        let i = insn("movl @#0x200, target");
        assert_eq!(i.operands[0], OperandAst::Absolute(Expr::Num(0x200)));
        assert_eq!(
            i.operands[1],
            OperandAst::Relative {
                expr: Expr::Sym("target".into()),
                deferred: false
            }
        );
    }

    #[test]
    fn negative_displacement_is_not_autodec() {
        let i = insn("movl -8(sp), r0");
        assert!(matches!(
            &i.operands[0],
            OperandAst::Displacement {
                deferred: false,
                ..
            }
        ));
    }

    #[test]
    fn popl_pseudo_expands() {
        let i = insn("popl r3");
        assert_eq!(i.opcode, Opcode::Movl);
        assert_eq!(i.operands[0], OperandAst::AutoInc(Gpr::SP));
    }

    #[test]
    fn assignment_forms() {
        assert!(matches!(
            one("PAGE = 512").kind,
            Some(StmtKind::Assign(ref n, Expr::Num(512))) if n == "PAGE"
        ));
        assert!(matches!(
            one(".equ TWO, 2").kind,
            Some(StmtKind::Assign(ref n, Expr::Num(2))) if n == "TWO"
        ));
    }

    #[test]
    fn directives() {
        assert!(matches!(one(".org 0x400").kind, Some(StmtKind::Org(_))));
        assert!(matches!(one(".align 4").kind, Some(StmtKind::Align(_))));
        assert!(matches!(
            one(".space 8, 0xFF").kind,
            Some(StmtKind::Space(_, 0xFF))
        ));
        assert!(matches!(
            one(".byte 1, 2, 3").kind,
            Some(StmtKind::Data(DataSize::Byte, ref v)) if v.len() == 3
        ));
        assert!(matches!(
            one(".asciz \"hi\"").kind,
            Some(StmtKind::Bytes(ref b)) if b == &vec![b'h', b'i', 0]
        ));
    }

    #[test]
    fn wrong_arity_is_error() {
        assert!(parse("movl r0").is_err());
        assert!(parse("nop r0").is_err());
    }

    #[test]
    fn unknown_mnemonic_is_error() {
        let err = parse("frobnicate r0").unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn numeric_labels_resolve() {
        let stmts = parse("1: nop\n brb 1b\n brb 1f\n1: halt\n").unwrap();
        // First statement's label renamed.
        assert_eq!(stmts[0].labels, vec![".L1.0"]);
        assert_eq!(stmts[3].labels, vec![".L1.1"]);
        let target = |s: &Stmt| match &s.kind {
            Some(StmtKind::Insn(i)) => match &i.operands[0] {
                OperandAst::Relative {
                    expr: Expr::Sym(n), ..
                } => n.clone(),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        };
        assert_eq!(target(&stmts[1]), ".L1.0");
        assert_eq!(target(&stmts[2]), ".L1.1");
    }

    #[test]
    fn missing_local_label_is_error() {
        assert!(parse("brb 9f\n").is_err());
        assert!(parse("brb 1b\n1: nop\n").is_err(), "1b before definition");
    }
}
