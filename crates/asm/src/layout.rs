//! Layout: assign addresses and choose operand encodings to a fixpoint.
//!
//! Forms only ever *grow* (literal → immediate, byte → word → long
//! displacement, near → far branch), so iterating layout until nothing
//! changes terminates. The classic two-pass assembler is the degenerate
//! case where one growth round suffices.

use crate::encode::{encode_insn, EncodeCtx};
use crate::error::AsmError;
use crate::expr::{Eval, Expr};
use crate::parser::{OperandAst, Stmt, StmtKind};
use atum_arch::{Access, DataSize, Opcode};
use std::collections::{HashMap, HashSet};

/// Displacement width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Width {
    /// Byte.
    B,
    /// Word.
    W,
    /// Longword.
    L,
}

impl Width {
    /// The signed range representable at this width.
    pub fn signed_range(self) -> (i64, i64) {
        match self {
            Width::B => (i8::MIN as i64, i8::MAX as i64),
            Width::W => (i16::MIN as i64, i16::MAX as i64),
            Width::L => (i32::MIN as i64, i32::MAX as i64),
        }
    }

    /// The corresponding operand data size.
    pub fn data_size(self) -> DataSize {
        match self {
            Width::B => DataSize::Byte,
            Width::W => DataSize::Word,
            Width::L => DataSize::Long,
        }
    }

    /// Addressing-mode high nibble for a displacement of this width.
    pub fn mode_nibble(self, deferred: bool) -> u8 {
        let base = match self {
            Width::B => 0xA,
            Width::W => 0xC,
            Width::L => 0xE,
        };
        base + deferred as u8
    }

    /// The smallest width whose signed range contains `v`.
    pub fn fitting(v: i64) -> Width {
        if (i8::MIN as i64..=i8::MAX as i64).contains(&v) {
            Width::B
        } else if (i16::MIN as i64..=i16::MAX as i64).contains(&v) {
            Width::W
        } else {
            Width::L
        }
    }
}

/// The chosen encoding form for one operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Form {
    /// Fixed-size operand (register forms, absolute, branch displacement).
    Fixed,
    /// `#n` encoded as a 6-bit short literal.
    Literal,
    /// `#n` encoded as a full immediate.
    Immediate,
    /// Displacement or PC-relative operand at the given width.
    Disp(Width),
}

impl Form {
    /// The displacement width, if this is a displacement form.
    pub fn width(self) -> Option<Width> {
        match self {
            Form::Disp(w) => Some(w),
            _ => None,
        }
    }
}

/// How an opcode participates in branch relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// Not a branch.
    NotABranch,
    /// `brb`/`bsbb` (relax by swapping to `wide`), or `brw`/`bsbw`
    /// (already wide; `wide` is `None`).
    Plain {
        /// The wide twin, if this is the byte form.
        wide: Option<Opcode>,
    },
    /// A conditional branch: relax by inverting over a `brw`.
    Cond,
    /// `sobgtr`/`aoblss`/`blbs`/… — loop and bit branches with leading
    /// operand specifiers; relax through a two-hop trampoline.
    Trailing,
}

impl BranchKind {
    /// Classifies an opcode.
    pub fn of(op: Opcode) -> BranchKind {
        match op {
            Opcode::Brb => BranchKind::Plain {
                wide: Some(Opcode::Brw),
            },
            Opcode::Bsbb => BranchKind::Plain {
                wide: Some(Opcode::Bsbw),
            },
            Opcode::Brw | Opcode::Bsbw => BranchKind::Plain { wide: None },
            Opcode::Sobgtr
            | Opcode::Sobgeq
            | Opcode::Aoblss
            | Opcode::Aobleq
            | Opcode::Blbs
            | Opcode::Blbc => BranchKind::Trailing,
            op if op.is_conditional_branch() => BranchKind::Cond,
            _ => BranchKind::NotABranch,
        }
    }

    /// Whether this kind can grow from near to far.
    pub fn relaxable(self) -> bool {
        !matches!(
            self,
            BranchKind::NotABranch | BranchKind::Plain { wide: None }
        )
    }
}

/// A statement with its resolved address, operand forms and size.
#[derive(Debug, Clone)]
pub struct LaidStmt {
    /// The statement.
    pub stmt: Stmt,
    /// Assigned address.
    pub addr: u32,
    /// Chosen operand forms (instructions only; empty otherwise).
    pub forms: Vec<Form>,
    /// Whether the branch (if any) uses the far form.
    pub far: bool,
    /// Encoded size in bytes.
    pub size: u32,
}

/// A fully laid-out program, ready for strict encoding.
#[derive(Debug, Clone)]
pub struct LaidProgram {
    /// Statements with addresses and forms.
    pub stmts: Vec<LaidStmt>,
    /// Final symbol table.
    pub symbols: HashMap<String, i64>,
}

/// Runs layout to a fixpoint.
pub fn layout(stmts: Vec<Stmt>) -> Result<LaidProgram, AsmError> {
    check_duplicate_definitions(&stmts)?;

    let mut laid: Vec<LaidStmt> = stmts
        .into_iter()
        .map(|stmt| {
            let forms = initial_forms(&stmt);
            LaidStmt {
                stmt,
                addr: 0,
                forms,
                far: false,
                size: 0,
            }
        })
        .collect();

    let mut symbols: HashMap<String, i64> = HashMap::new();
    for round in 0.. {
        if round > 100 {
            return Err(AsmError::new(0, "layout did not converge"));
        }
        let new_symbols = assign_addresses(&mut laid, &symbols)?;
        let grew = grow_forms(&mut laid, &new_symbols)?;
        let stable = new_symbols == symbols && !grew;
        symbols = new_symbols;
        if stable {
            break;
        }
    }
    Ok(LaidProgram {
        stmts: laid,
        symbols,
    })
}

fn check_duplicate_definitions(stmts: &[Stmt]) -> Result<(), AsmError> {
    let mut seen: HashSet<&str> = HashSet::new();
    for stmt in stmts {
        for label in &stmt.labels {
            if !seen.insert(label) {
                return Err(AsmError::new(
                    stmt.lineno,
                    format!("duplicate definition of '{label}'"),
                ));
            }
        }
        if let Some(StmtKind::Assign(name, _)) = &stmt.kind {
            if !seen.insert(name) {
                return Err(AsmError::new(
                    stmt.lineno,
                    format!("duplicate definition of '{name}'"),
                ));
            }
        }
    }
    Ok(())
}

fn initial_forms(stmt: &Stmt) -> Vec<Form> {
    let Some(StmtKind::Insn(insn)) = &stmt.kind else {
        return Vec::new();
    };
    insn.operands
        .iter()
        .map(|op| match op {
            OperandAst::Immediate(_) => Form::Literal,
            OperandAst::Displacement { .. } | OperandAst::Relative { .. } => Form::Disp(Width::B),
            _ => Form::Fixed,
        })
        .collect()
}

/// One address-assignment pass. Sizes come from the *current* forms, so
/// they never depend on symbol values; `prev_symbols` is only used for
/// `.org`/`.align`/`.space` (which must be backward-defined) and assigns.
fn assign_addresses(
    laid: &mut [LaidStmt],
    prev_symbols: &HashMap<String, i64>,
) -> Result<HashMap<String, i64>, AsmError> {
    let mut symbols = HashMap::new();
    let mut dot: i64 = 0;
    for ls in laid.iter_mut() {
        ls.addr = dot as u32;
        for label in &ls.stmt.labels {
            symbols.insert(label.clone(), dot);
        }
        let lineno = ls.stmt.lineno;
        // Directive expressions resolve against symbols defined so far this
        // pass, falling back to the previous round's table.
        let eval_directive = |e: &Expr, symbols: &HashMap<String, i64>| -> Result<i64, AsmError> {
            match e.eval(symbols, dot, lineno)? {
                Eval::Value(v) => Ok(v),
                Eval::Undefined(_) => match e.eval(prev_symbols, dot, lineno)? {
                    Eval::Value(v) => Ok(v),
                    Eval::Undefined(name) => Err(AsmError::new(
                        lineno,
                        format!("'{name}' must be defined before use in a directive"),
                    )),
                },
            }
        };

        let size: i64 = match &ls.stmt.kind {
            None => 0,
            Some(StmtKind::Assign(name, e)) => {
                // Assigns may reference forward labels; leave undefined for
                // now and let a later round (or the final check) settle it.
                match e.eval(&symbols, dot, lineno)? {
                    Eval::Value(v) => {
                        symbols.insert(name.clone(), v);
                    }
                    Eval::Undefined(_) => {
                        if let Eval::Value(v) = e.eval(prev_symbols, dot, lineno)? {
                            symbols.insert(name.clone(), v);
                        }
                    }
                }
                0
            }
            Some(StmtKind::Org(e)) => {
                let target = eval_directive(e, &symbols)?;
                if !(0..=u32::MAX as i64).contains(&target) {
                    return Err(AsmError::new(lineno, ".org target out of range"));
                }
                dot = target;
                ls.addr = dot as u32;
                // Labels on the same line as .org bind to the new address.
                for label in &ls.stmt.labels {
                    symbols.insert(label.clone(), dot);
                }
                0
            }
            Some(StmtKind::Align(e)) => {
                let align = eval_directive(e, &symbols)?;
                if align <= 0 || align & (align - 1) != 0 {
                    return Err(AsmError::new(lineno, ".align requires a power of two"));
                }
                let aligned = (dot + align - 1) & !(align - 1);
                aligned - dot
            }
            Some(StmtKind::Space(e, _)) => {
                let n = eval_directive(e, &symbols)?;
                if n < 0 {
                    return Err(AsmError::new(lineno, ".space size is negative"));
                }
                n
            }
            Some(StmtKind::Data(sz, exprs)) => (sz.bytes() as usize * exprs.len()) as i64,
            Some(StmtKind::Bytes(b)) => b.len() as i64,
            Some(StmtKind::Insn(insn)) => {
                let ctx = EncodeCtx {
                    symbols: prev_symbols,
                    strict: false,
                    lineno,
                };
                encode_insn(insn, &ls.forms, ls.far, ls.addr, &ctx)?.len() as i64
            }
        };
        ls.size = size as u32;
        dot += size;
        if dot > u32::MAX as i64 {
            return Err(AsmError::new(lineno, "location counter overflowed"));
        }
    }
    Ok(symbols)
}

/// Grows operand forms that no longer fit. Returns whether anything grew.
fn grow_forms(laid: &mut [LaidStmt], symbols: &HashMap<String, i64>) -> Result<bool, AsmError> {
    let mut grew = false;
    for ls in laid.iter_mut() {
        let Some(StmtKind::Insn(insn)) = &ls.stmt.kind else {
            continue;
        };
        let lineno = ls.stmt.lineno;
        let addr = ls.addr as i64;
        let kind = BranchKind::of(insn.opcode);
        let specs = insn.opcode.operands();
        for ((ast, spec), form) in insn.operands.iter().zip(specs).zip(ls.forms.iter_mut()) {
            match (ast, spec.access) {
                (OperandAst::Relative { expr, .. }, Access::Branch(disp_size)) => {
                    if ls.far || !kind.relaxable() {
                        continue;
                    }
                    let target = match expr.eval(symbols, addr, lineno)? {
                        Eval::Value(v) => v,
                        Eval::Undefined(_) => {
                            ls.far = true;
                            grew = true;
                            continue;
                        }
                    };
                    // Worst-case near displacement: measured from the end of
                    // the near-form instruction.
                    let disp = target - (addr + ls.size as i64);
                    let limit = match disp_size {
                        DataSize::Byte => Width::B,
                        _ => Width::W,
                    };
                    let (lo, hi) = limit.signed_range();
                    // Leave slack so address drift between rounds can't
                    // oscillate a marginal branch.
                    if disp < lo + 8 || disp > hi - 8 {
                        ls.far = true;
                        grew = true;
                    }
                }
                (OperandAst::Immediate(e), _) => {
                    if *form != Form::Literal {
                        continue;
                    }
                    let needs_full = match e.eval(symbols, addr, lineno)? {
                        Eval::Value(v) => !(0..=63).contains(&v),
                        Eval::Undefined(_) => true,
                    };
                    if needs_full {
                        *form = Form::Immediate;
                        grew = true;
                    }
                }
                (OperandAst::Displacement { expr, .. }, _) => {
                    let cur = form.width().unwrap_or(Width::L);
                    let need = match expr.eval(symbols, addr, lineno)? {
                        Eval::Value(v) => Width::fitting(v),
                        Eval::Undefined(_) => Width::L,
                    };
                    if need > cur {
                        *form = Form::Disp(need);
                        grew = true;
                    }
                }
                (OperandAst::Relative { expr, .. }, _) => {
                    let cur = form.width().unwrap_or(Width::L);
                    let need = match expr.eval(symbols, addr, lineno)? {
                        Eval::Value(target) => {
                            // Conservative: displacement measured from the
                            // statement start, with slack for drift.
                            let disp = target - addr;
                            let fit = Width::fitting(disp.saturating_add(disp.signum() * 16));
                            fit.max(Width::fitting(disp))
                        }
                        Eval::Undefined(_) => Width::L,
                    };
                    if need > cur {
                        *form = Form::Disp(need);
                        grew = true;
                    }
                }
                _ => {}
            }
        }
    }
    Ok(grew)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;
    use atum_arch::{DecodedInsn, Operand};

    fn decode_stream(bytes: &[u8]) -> Vec<DecodedInsn> {
        let mut out = Vec::new();
        let mut off = 0u32;
        while (off as usize) < bytes.len() {
            let insn = DecodedInsn::decode(off, &mut |a| bytes.get(a as usize).copied())
                .unwrap_or_else(|e| panic!("decode at {off}: {e}"));
            off += insn.len;
            out.push(insn);
        }
        out
    }

    #[test]
    fn widths_grow_as_needed() {
        assert_eq!(Width::fitting(0), Width::B);
        assert_eq!(Width::fitting(127), Width::B);
        assert_eq!(Width::fitting(128), Width::W);
        assert_eq!(Width::fitting(-129), Width::W);
        assert_eq!(Width::fitting(40000), Width::L);
    }

    #[test]
    fn literal_vs_immediate_choice() {
        let img = assemble("movl #63, r0\n movl #64, r1\n movl #-1, r2\n").unwrap();
        let insns = decode_stream(&img.flatten());
        assert_eq!(insns[0].operands[0], Operand::Literal(63));
        assert_eq!(insns[1].operands[0], Operand::Immediate(64));
        assert_eq!(insns[2].operands[0], Operand::Immediate(0xFFFF_FFFF));
    }

    #[test]
    fn near_branch_stays_near() {
        let img = assemble("start: nop\n brb start\n").unwrap();
        let bytes = img.flatten();
        assert_eq!(bytes.len(), 3);
        assert_eq!(bytes[1], Opcode::Brb.to_byte());
        assert_eq!(bytes[2] as i8, -3);
    }

    #[test]
    fn far_brb_becomes_brw() {
        let src = "brb target\n .space 300\n target: nop\n".to_string();
        let img = assemble(&src).unwrap();
        let bytes = img.flatten();
        assert_eq!(bytes[0], Opcode::Brw.to_byte());
        let disp = i16::from_le_bytes([bytes[1], bytes[2]]);
        assert_eq!(3 + disp as i64, 303, "lands on target");
    }

    #[test]
    fn far_conditional_inverts_over_brw() {
        let src = "beql target\n .space 400\n target: halt\n";
        let img = assemble(src).unwrap();
        let bytes = img.flatten();
        assert_eq!(bytes[0], Opcode::Bneq.to_byte(), "inverted");
        assert_eq!(bytes[1], 3, "skips the brw");
        assert_eq!(bytes[2], Opcode::Brw.to_byte());
        let disp = i16::from_le_bytes([bytes[3], bytes[4]]);
        assert_eq!(5 + disp as i64, 405);
    }

    #[test]
    fn far_trailing_branch_uses_trampoline() {
        let src = "loop: sobgtr r0, body\n .space 200\n body: brb loop\n";
        let img = assemble(src).unwrap();
        let bytes = img.flatten();
        // [sobgtr][spec r0][+2][brb][+3][brw][d16]
        assert_eq!(bytes[0], Opcode::Sobgtr.to_byte());
        assert_eq!(bytes[1], 0x50);
        assert_eq!(bytes[2], 2);
        assert_eq!(bytes[3], Opcode::Brb.to_byte());
        assert_eq!(bytes[4], 3);
        assert_eq!(bytes[5], Opcode::Brw.to_byte());
        let disp = i16::from_le_bytes([bytes[6], bytes[7]]);
        assert_eq!(8 + disp as i64, 208, "brw lands on body");
    }

    #[test]
    fn pc_relative_width_grows() {
        // Target 5 bytes away: byte displacement suffices (3-byte insn).
        let img = assemble("movl near, r0\n near: .long 7\n").unwrap();
        let near = img.symbol("near").unwrap();
        let bytes = img.flatten();
        assert_eq!(bytes[1] >> 4, 0xA, "byte-displacement PC mode");
        let insns = decode_stream(&bytes[..4]);
        assert_eq!(insns[0].operands[0], Operand::Relative(near));
        // Far target needs a wider displacement.
        let img = assemble("movl far, r0\n .space 5000\n far: .long 7\n").unwrap();
        let far = img.symbol("far").unwrap();
        let bytes = img.flatten();
        assert_eq!(bytes[1] >> 4, 0xC, "word-displacement PC mode");
        let insns = decode_stream(&bytes[..5]);
        assert_eq!(insns[0].operands[0], Operand::Relative(far));
    }

    #[test]
    fn forward_and_backward_symbols_resolve() {
        let img = assemble("A = 2\n movl #A, r0\n movl #B, r1\n B = 3\n").unwrap();
        let insns = decode_stream(&img.flatten());
        assert_eq!(insns[0].operands[0], Operand::Literal(2));
        assert_eq!(insns[1].operands[0], Operand::Literal(3));
    }

    #[test]
    fn org_moves_location() {
        let img = assemble(".org 0x100\nstart: nop\n").unwrap();
        assert_eq!(img.symbol("start"), Some(0x100));
        assert_eq!(img.base(), 0x100);
    }

    #[test]
    fn align_pads() {
        let img = assemble("nop\n .align 4\nhere: .long 1\n").unwrap();
        assert_eq!(img.symbol("here"), Some(4));
        assert_eq!(img.flatten().len(), 8);
    }

    #[test]
    fn duplicate_label_is_error() {
        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn undefined_symbol_is_error() {
        let e = assemble("movl #missing, r0\n").unwrap_err();
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn dot_in_expressions() {
        let img = assemble("first: .long .\n .long .\n").unwrap();
        let b = img.flatten();
        assert_eq!(u32::from_le_bytes(b[0..4].try_into().unwrap()), 0);
        assert_eq!(u32::from_le_bytes(b[4..8].try_into().unwrap()), 4);
    }

    #[test]
    fn branch_kind_classification() {
        assert_eq!(
            BranchKind::of(Opcode::Brb),
            BranchKind::Plain {
                wide: Some(Opcode::Brw)
            }
        );
        assert_eq!(
            BranchKind::of(Opcode::Brw),
            BranchKind::Plain { wide: None }
        );
        assert_eq!(BranchKind::of(Opcode::Beql), BranchKind::Cond);
        assert_eq!(BranchKind::of(Opcode::Sobgtr), BranchKind::Trailing);
        assert_eq!(BranchKind::of(Opcode::Movl), BranchKind::NotABranch);
        assert!(!BranchKind::of(Opcode::Brw).relaxable());
        assert!(BranchKind::of(Opcode::Blbs).relaxable());
    }
}
