//! Disassembler: bytes → listing, built on the architectural decoder.

use atum_arch::{DecodeError, DecodedInsn};
use std::fmt;

/// One disassembled instruction (or a byte the decoder rejected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disassembly {
    /// The instruction's address.
    pub addr: u32,
    /// The raw bytes consumed.
    pub bytes: Vec<u8>,
    /// The rendering: either the instruction text or an error note.
    pub text: String,
}

impl fmt::Display for Disassembly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}:  ", self.addr)?;
        let hex: Vec<String> = self.bytes.iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "{:<24}  {}", hex.join(" "), self.text)
    }
}

/// Disassembles one instruction at `addr` within `bytes` (indexed from
/// `base`). Returns the disassembly and the next address.
pub fn disassemble_one(bytes: &[u8], base: u32, addr: u32) -> (Disassembly, u32) {
    let mut fetch = |a: u32| {
        let idx = a.wrapping_sub(base) as usize;
        bytes.get(idx).copied()
    };
    match DecodedInsn::decode(addr, &mut fetch) {
        Ok(insn) => {
            let start = addr.wrapping_sub(base) as usize;
            let raw = bytes[start..start + insn.len as usize].to_vec();
            let next = addr + insn.len;
            (
                Disassembly {
                    addr,
                    bytes: raw,
                    text: insn.to_string(),
                },
                next,
            )
        }
        Err(e) => {
            let start = addr.wrapping_sub(base) as usize;
            let raw = bytes.get(start..start + 1).unwrap_or(&[]).to_vec();
            let text = match e {
                DecodeError::Truncated => "<truncated>".to_string(),
                other => format!("<{other}>"),
            };
            (
                Disassembly {
                    addr,
                    bytes: raw,
                    text,
                },
                addr + 1,
            )
        }
    }
}

/// Disassembles a whole byte region loaded at `base`.
pub fn disassemble(bytes: &[u8], base: u32) -> Vec<Disassembly> {
    let mut out = Vec::new();
    let mut addr = base;
    let end = base as u64 + bytes.len() as u64;
    while (addr as u64) < end {
        let (d, next) = disassemble_one(bytes, base, addr);
        if d.bytes.is_empty() {
            break;
        }
        out.push(d);
        addr = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn round_trips_simple_program() {
        let img = assemble("movl #5, r0\n addl2 r1, r2\n halt\n").unwrap();
        let listing = disassemble(&img.flatten(), 0);
        assert_eq!(listing.len(), 3);
        assert_eq!(listing[0].text, "movl #5, r0");
        assert_eq!(listing[1].text, "addl2 r1, r2");
        assert_eq!(listing[2].text, "halt");
    }

    #[test]
    fn bad_byte_reported_and_skipped() {
        let listing = disassemble(&[0xFF, 0x01], 0);
        assert_eq!(listing.len(), 2);
        assert!(listing[0].text.contains("unassigned"));
        assert_eq!(listing[1].text, "nop");
    }

    #[test]
    fn display_contains_address_and_hex() {
        let img = assemble(".org 0x100\n nop\n").unwrap();
        let listing = disassemble(&img.flatten(), 0x100);
        let line = listing[0].to_string();
        assert!(line.starts_with("00000100:"));
        assert!(line.contains("01"));
        assert!(line.contains("nop"));
    }

    #[test]
    fn truncated_stream() {
        // movl opcode with no operands following.
        let listing = disassemble(&[atum_arch::Opcode::Movl.to_byte()], 0);
        assert_eq!(listing[0].text, "<truncated>");
    }
}
