//! Property suite: engine-parallel sweeps against the serial pass.
//!
//! `MultiSim::run_parallel` shards the sweep's engines over worker
//! threads and broadcasts record batches to them; every engine still
//! sees every record in trace order, so the assembled statistics must
//! be identical to the serial in-memory pass at any job count — over
//! in-memory sources and over streamed segment files alike.

use atum_cache::{simulate_many, simulate_many_parallel, CacheConfig, SwitchPolicy};
use atum_core::{encode_trace, RecordKind, SegmentFileSource, Trace, TraceRecord};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Event {
    Access {
        addr: u32,
        kind: RecordKind,
        pid: u8,
    },
    Switch {
        pid: u8,
    },
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        12 => (0u32..16384, 0u8..3, 0u8..4).prop_map(|(addr, k, pid)| Event::Access {
            addr,
            kind: match k {
                0 => RecordKind::IFetch,
                1 => RecordKind::Read,
                _ => RecordKind::Write,
            },
            pid,
        }),
        1 => (0u8..4).prop_map(|pid| Event::Switch { pid }),
    ]
}

fn trace_of(events: &[Event]) -> Trace {
    let mut t = Trace::new();
    for e in events {
        match *e {
            Event::Access { addr, kind, pid } => {
                t.push(TraceRecord::new(kind, addr, 4, pid, false));
            }
            Event::Switch { pid } => {
                t.push(TraceRecord::new(RecordKind::CtxSwitch, 0, 0, pid, true));
            }
        }
    }
    t
}

fn sweep_config() -> impl Strategy<Value = CacheConfig> {
    (
        prop_oneof![Just(256u32), Just(512), Just(1024), Just(4096)],
        prop_oneof![Just(8u32), Just(16), Just(32)],
        prop_oneof![Just(1u32), Just(2), Just(4)],
        prop_oneof![
            Just(SwitchPolicy::Ignore),
            Just(SwitchPolicy::Flush),
            Just(SwitchPolicy::PidTag),
        ],
    )
        .prop_filter_map("valid config", |(size, block, assoc, switch)| {
            CacheConfig::builder()
                .size(size)
                .block(block)
                .assoc(assoc)
                .switch_policy(switch)
                .build()
                .ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_matches_serial_over_memory_and_file(
        cfgs in proptest::collection::vec(sweep_config(), 1..8),
        events in proptest::collection::vec(event(), 1..500),
        case in any::<u32>(),
    ) {
        let trace = trace_of(&events);
        let want = simulate_many(&trace, &cfgs);
        for jobs in [1usize, 2, 4] {
            prop_assert_eq!(
                &simulate_many_parallel(&mut trace.source(), &cfgs, jobs).unwrap(),
                &want,
                "in-memory, jobs={}", jobs
            );
        }

        let path = std::env::temp_dir().join(format!(
            "atum-parallel-prop-{}-{case}.atrace",
            std::process::id()
        ));
        std::fs::write(&path, encode_trace(&trace)).expect("write");
        for jobs in [1usize, 2, 4] {
            let mut src = SegmentFileSource::new(&path);
            prop_assert_eq!(
                &simulate_many_parallel(&mut src, &cfgs, jobs).unwrap(),
                &want,
                "file, jobs={}", jobs
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
