//! Property tests: the single-pass multi-configuration engine against
//! per-configuration [`simulate`] — every [`CacheStats`] field must be
//! identical for every configuration of a random sweep over a random
//! access stream with context switches, under all switch policies and
//! including the non-LRU / write-through configurations that take the
//! grouped-replay fallback.

use atum_cache::{simulate, simulate_many, CacheConfig, Replacement, SwitchPolicy, WritePolicy};
use atum_core::{RecordKind, Trace, TraceRecord};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Event {
    Access {
        addr: u32,
        kind: RecordKind,
        pid: u8,
    },
    Switch {
        pid: u8,
    },
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        10 => (0u32..8192, 0u8..3, 0u8..4).prop_map(|(addr, k, pid)| Event::Access {
            addr,
            kind: match k {
                0 => RecordKind::IFetch,
                1 => RecordKind::Read,
                _ => RecordKind::Write,
            },
            pid,
        }),
        1 => (0u8..4).prop_map(|pid| Event::Switch { pid }),
    ]
}

fn trace_of(events: &[Event]) -> Trace {
    let mut t = Trace::new();
    for e in events {
        match *e {
            Event::Access { addr, kind, pid } => {
                t.push(TraceRecord::new(kind, addr, 4, pid, false));
            }
            Event::Switch { pid } => {
                t.push(TraceRecord::new(RecordKind::CtxSwitch, 0, 0, pid, true));
            }
        }
    }
    t
}

fn switch_policy() -> impl Strategy<Value = SwitchPolicy> {
    prop_oneof![
        Just(SwitchPolicy::Ignore),
        Just(SwitchPolicy::Flush),
        Just(SwitchPolicy::PidTag),
    ]
}

/// A stack-engine-eligible configuration: LRU + write-back-allocate.
fn lru_writeback_config() -> impl Strategy<Value = CacheConfig> {
    (
        prop_oneof![Just(256u32), Just(512), Just(1024), Just(2048)],
        prop_oneof![Just(8u32), Just(16), Just(32)],
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        switch_policy(),
    )
        .prop_filter_map("valid config", |(size, block, assoc, switch)| {
            CacheConfig::builder()
                .size(size)
                .block(block)
                .assoc(assoc)
                .switch_policy(switch)
                .build()
                .ok()
        })
}

/// Any configuration, including fallback replacement/write policies.
fn any_config() -> impl Strategy<Value = CacheConfig> {
    (
        lru_writeback_config(),
        prop_oneof![
            Just(Replacement::Lru),
            Just(Replacement::Fifo),
            Just(Replacement::Random),
        ],
        prop_oneof![
            Just(WritePolicy::WriteBackAllocate),
            Just(WritePolicy::WriteThroughNoAllocate),
        ],
    )
        .prop_filter_map("valid config", |(base, repl, write)| {
            CacheConfig::builder()
                .size(base.size())
                .block(base.block())
                .assoc(base.assoc())
                .switch_policy(base.switch_policy())
                .replacement(repl)
                .write_policy(write)
                .build()
                .ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn stack_engine_matches_simulate(
        cfgs in proptest::collection::vec(lru_writeback_config(), 1..9),
        events in proptest::collection::vec(event(), 1..500),
    ) {
        let trace = trace_of(&events);
        let many = simulate_many(&trace, &cfgs);
        for (cfg, got) in cfgs.iter().zip(&many) {
            let want = simulate(&trace, cfg);
            prop_assert_eq!(*got, want, "single-pass diverges under {}", cfg);
        }
    }

    #[test]
    fn mixed_policy_sweeps_match_simulate(
        cfgs in proptest::collection::vec(any_config(), 1..9),
        events in proptest::collection::vec(event(), 1..500),
    ) {
        let trace = trace_of(&events);
        let many = simulate_many(&trace, &cfgs);
        for (cfg, got) in cfgs.iter().zip(&many) {
            let want = simulate(&trace, cfg);
            prop_assert_eq!(*got, want, "sweep member diverges under {}", cfg);
        }
    }

    #[test]
    fn inclusion_holds_within_stack_groups(
        events in proptest::collection::vec(event(), 1..500),
    ) {
        // The property the engine is built on: with LRU write-back and a
        // fixed block size, adding ways (same set count) never adds
        // misses.
        let trace = trace_of(&events);
        let cfgs: Vec<CacheConfig> = [1u32, 2, 4]
            .into_iter()
            .map(|w| {
                CacheConfig::builder()
                    .size(512 * w)
                    .block(16)
                    .assoc(w)
                    .build()
                    .unwrap()
            })
            .collect();
        let many = simulate_many(&trace, &cfgs);
        prop_assert!(many[1].misses <= many[0].misses);
        prop_assert!(many[2].misses <= many[1].misses);
    }
}
