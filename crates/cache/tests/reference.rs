//! Property tests: the set-associative cache against a deliberately
//! naive reference model (association lists, no clever indexing), plus
//! structural invariants on random access streams.

use atum_cache::{AccessKind, Cache, CacheConfig, Replacement, SwitchPolicy};
use proptest::prelude::*;
use std::collections::HashSet;

/// A naive set-associative LRU cache: one Vec per set, most recent first.
struct RefModel {
    sets: Vec<Vec<(u32, u8)>>, // (tag, pid), MRU at the front
    block: u32,
    ways: usize,
    switch: SwitchPolicy,
}

impl RefModel {
    fn new(cfg: &CacheConfig) -> RefModel {
        RefModel {
            sets: vec![Vec::new(); cfg.sets() as usize],
            block: cfg.block(),
            ways: cfg.assoc() as usize,
            switch: cfg.switch_policy(),
        }
    }

    fn context_switch(&mut self) {
        if self.switch == SwitchPolicy::Flush {
            for s in &mut self.sets {
                s.clear();
            }
        }
    }

    fn access(&mut self, addr: u32, pid: u8) -> bool {
        let pid = if self.switch == SwitchPolicy::PidTag {
            pid
        } else {
            0
        };
        let blockno = addr / self.block;
        let nsets = self.sets.len() as u32;
        let set = &mut self.sets[(blockno % nsets) as usize];
        let tag = blockno / nsets;
        if let Some(pos) = set.iter().position(|&(t, p)| t == tag && p == pid) {
            let entry = set.remove(pos);
            set.insert(0, entry);
            true
        } else {
            set.insert(0, (tag, pid));
            set.truncate(self.ways);
            false
        }
    }
}

#[derive(Debug, Clone)]
enum Event {
    Access { addr: u32, write: bool, pid: u8 },
    Switch { pid: u8 },
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        8 => (0u32..4096, any::<bool>(), 0u8..3).prop_map(|(addr, write, pid)| Event::Access {
            addr,
            write,
            pid
        }),
        1 => (0u8..3).prop_map(|pid| Event::Switch { pid }),
    ]
}

fn configs() -> impl Strategy<Value = CacheConfig> {
    (
        prop_oneof![Just(256u32), Just(512), Just(1024)],
        prop_oneof![Just(8u32), Just(16), Just(32)],
        prop_oneof![Just(1u32), Just(2), Just(4)],
        prop_oneof![
            Just(SwitchPolicy::Ignore),
            Just(SwitchPolicy::Flush),
            Just(SwitchPolicy::PidTag)
        ],
    )
        .prop_filter_map("valid config", |(size, block, assoc, switch)| {
            CacheConfig::builder()
                .size(size)
                .block(block)
                .assoc(assoc)
                .replacement(Replacement::Lru)
                .switch_policy(switch)
                .build()
                .ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lru_matches_reference_model(
        cfg in configs(),
        events in proptest::collection::vec(event(), 1..400),
    ) {
        let mut cache = Cache::new(cfg);
        let mut model = RefModel::new(&cfg);
        for (i, e) in events.iter().enumerate() {
            match *e {
                Event::Switch { pid } => {
                    cache.context_switch(pid);
                    model.context_switch();
                }
                Event::Access { addr, write, pid } => {
                    let kind = if write { AccessKind::Write } else { AccessKind::Read };
                    let hit = cache.access(addr, kind, pid);
                    let model_hit = model.access(addr, pid);
                    prop_assert_eq!(
                        hit, model_hit,
                        "event {} ({:?}) disagrees under {}",
                        i, e, cfg
                    );
                }
            }
        }
    }

    #[test]
    fn structural_invariants(
        cfg in configs(),
        events in proptest::collection::vec(event(), 1..400),
    ) {
        let mut cache = Cache::new(cfg);
        let mut distinct = HashSet::new();
        let mut accesses = 0u64;
        for e in &events {
            match *e {
                Event::Switch { pid } => cache.context_switch(pid),
                Event::Access { addr, write, pid } => {
                    let kind = if write { AccessKind::Write } else { AccessKind::Read };
                    cache.access(addr, kind, pid);
                    accesses += 1;
                    let pid_key = if cfg.switch_policy() == SwitchPolicy::PidTag { pid } else { 0 };
                    distinct.insert((addr / cfg.block(), pid_key));
                }
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses, accesses);
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.cold_misses <= s.misses);
        prop_assert_eq!(s.cold_misses, distinct.len() as u64, "one cold miss per distinct block");
        prop_assert_eq!(
            s.ifetch_misses + s.read_misses + s.write_misses,
            s.misses
        );
        prop_assert!(s.writebacks <= s.write_accesses, "write-backs need dirty lines");
    }

    #[test]
    fn bigger_caches_never_miss_more_with_full_assoc_lru(
        addrs in proptest::collection::vec(0u32..2048, 1..300),
    ) {
        // Inclusion property: fully-associative LRU caches are stack
        // algorithms — a larger one cannot miss more.
        let small = CacheConfig::builder().size(256).block(16).assoc(16).build().unwrap();
        let large = CacheConfig::builder().size(512).block(16).assoc(32).build().unwrap();
        let mut cs = Cache::new(small);
        let mut cl = Cache::new(large);
        for &a in &addrs {
            cs.access(a, AccessKind::Read, 0);
            cl.access(a, AccessKind::Read, 0);
        }
        prop_assert!(cl.stats().misses <= cs.stats().misses);
    }
}
