//! Trace-driven TLB simulation.
//!
//! A TLB is modelled as a set-associative cache of page translations:
//! "block size" = the 512-byte page, capacity = entries. The paper's TLB
//! questions are the same as its cache questions — how much do OS
//! references and context switches (flush vs address-space tags) cost —
//! so the same machinery applies.

use crate::config::{CacheConfig, Replacement, SwitchPolicy};
use crate::set_assoc::{AccessKind, Cache};
use crate::stats::CacheStats;
use atum_arch::PAGE_SIZE;
use std::fmt;

/// TLB configuration: entry count, associativity, switch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    entries: u32,
    assoc: u32,
    switch: SwitchPolicy,
}

impl TlbConfig {
    /// Creates a TLB configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries`/`assoc` are not powers of two or inconsistent.
    pub fn new(entries: u32, assoc: u32, switch: SwitchPolicy) -> TlbConfig {
        let pow2 = |v: u32| v != 0 && v & (v - 1) == 0;
        assert!(pow2(entries) && pow2(assoc) && assoc <= entries);
        TlbConfig {
            entries,
            assoc,
            switch,
        }
    }

    /// Number of entries.
    pub fn entries(&self) -> u32 {
        self.entries
    }

    /// Associativity.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Switch policy.
    pub fn switch_policy(&self) -> SwitchPolicy {
        self.switch
    }

    /// Returns a copy with a different switch policy.
    pub fn with_switch(mut self, s: SwitchPolicy) -> TlbConfig {
        self.switch = s;
        self
    }

    fn as_cache_config(&self) -> CacheConfig {
        CacheConfig::builder()
            .size(self.entries * PAGE_SIZE)
            .block(PAGE_SIZE)
            .assoc(self.assoc)
            .replacement(Replacement::Lru)
            .switch_policy(self.switch)
            .build()
            .expect("validated in new()")
    }
}

impl fmt::Display for TlbConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-entry {}-way TLB ({:?})",
            self.entries, self.assoc, self.switch
        )
    }
}

/// A TLB simulator.
#[derive(Debug, Clone)]
pub struct TlbSim {
    inner: Cache,
}

impl TlbSim {
    /// Creates an empty TLB.
    pub fn new(cfg: TlbConfig) -> TlbSim {
        TlbSim {
            inner: Cache::new(cfg.as_cache_config()),
        }
    }

    /// Looks up the page containing `addr`. Returns whether it hit.
    pub fn access(&mut self, addr: u32, pid: u8) -> bool {
        self.inner.access(addr, AccessKind::Read, pid)
    }

    /// Observes a context switch.
    pub fn context_switch(&mut self, pid: u8) {
        self.inner.context_switch(pid);
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut tlb = TlbSim::new(TlbConfig::new(16, 1, SwitchPolicy::Ignore));
        assert!(!tlb.access(0x0000, 0));
        assert!(tlb.access(0x01FF, 0), "same page");
        assert!(!tlb.access(0x0200, 0), "next page");
    }

    #[test]
    fn flush_vs_tagged() {
        let mut flush = TlbSim::new(TlbConfig::new(64, 2, SwitchPolicy::Flush));
        let mut tagged = TlbSim::new(TlbConfig::new(64, 2, SwitchPolicy::PidTag));
        for t in [&mut flush, &mut tagged] {
            t.access(0x1000, 1);
            t.context_switch(2);
            t.access(0x9000, 2);
            t.context_switch(1);
        }
        assert!(!flush.access(0x1000, 1), "flushed TLB re-misses");
        assert!(tagged.access(0x1000, 1), "tagged TLB survives switches");
    }

    #[test]
    #[should_panic]
    fn rejects_bad_entry_count() {
        TlbConfig::new(48, 2, SwitchPolicy::Ignore);
    }
}
