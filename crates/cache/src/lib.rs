//! # atum-cache — trace-driven cache and TLB simulation
//!
//! The analysis instrument of the reproduction: ATUM's contribution was
//! the *traces*; their value was demonstrated by feeding them to memory-
//! system simulators like these. This crate provides a set-associative
//! cache model and a TLB model, both driven directly by
//! [`atum_core::Trace`] records, with the context-switch policies the
//! paper's multiprogramming studies turn on:
//!
//! * [`SwitchPolicy::Ignore`] — pretend a single address space (what
//!   naive one-process trace studies implicitly did);
//! * [`SwitchPolicy::Flush`] — purge on every context switch (a cache
//!   with no PID tags);
//! * [`SwitchPolicy::PidTag`] — lines carry a process id and hit only on
//!   a match (an address-space-tagged cache).
//!
//! ## Example
//!
//! ```
//! use atum_cache::{CacheConfig, simulate};
//! use atum_core::{RecordKind, Trace, TraceRecord};
//!
//! let mut trace = Trace::new();
//! for i in 0..64 {
//!     trace.push(TraceRecord::new(RecordKind::Read, i * 4, 4, 1, false));
//! }
//! let cfg = CacheConfig::builder().size(1024).block(16).assoc(2).build().unwrap();
//! let stats = simulate(&trace, &cfg);
//! // 64 sequential reads over 16-byte blocks: one miss per block.
//! assert_eq!(stats.accesses, 64);
//! assert_eq!(stats.misses, 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod multi;
mod set_assoc;
mod sim;
mod split;
mod stats;
mod tlb;

pub use config::{
    CacheConfig, CacheConfigBuilder, ConfigError, Replacement, SwitchPolicy, WritePolicy,
};
#[cfg(feature = "oracle")]
pub use multi::simulate_many_oracle;
pub use multi::{simulate_many, simulate_many_parallel, simulate_many_stream, stackable, MultiSim};
pub use set_assoc::{AccessKind, Cache};
pub use sim::{
    simulate, simulate_stream, simulate_tlb, simulate_tlb_stream, sweep_assoc, sweep_block,
    sweep_size,
};
pub use split::{simulate_split, SplitStats};
pub use stats::CacheStats;
pub use tlb::{TlbConfig, TlbSim};
