//! Cache configuration.

use std::fmt;

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Least recently used.
    #[default]
    Lru,
    /// First in, first out.
    Fifo,
    /// Pseudo-random (deterministic xorshift seeded per cache).
    Random,
}

/// Write policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePolicy {
    /// Write-back with write-allocate.
    #[default]
    WriteBackAllocate,
    /// Write-through without allocation on a write miss.
    WriteThroughNoAllocate,
}

/// What the cache does about context switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchPolicy {
    /// Treat all processes as one address space (single-process studies).
    #[default]
    Ignore,
    /// Invalidate everything on a context switch (untagged cache).
    Flush,
    /// Tag lines with the process id (address-space-tagged cache).
    PidTag,
}

/// Error from configuration validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// A validated cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    pub(crate) size: u32,
    pub(crate) block: u32,
    pub(crate) assoc: u32,
    pub(crate) replacement: Replacement,
    pub(crate) write: WritePolicy,
    pub(crate) switch: SwitchPolicy,
}

impl CacheConfig {
    /// Starts a builder with 16 KiB / 16 B blocks / direct-mapped.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::default()
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Block (line) size in bytes.
    pub fn block(&self) -> u32 {
        self.block
    }

    /// Associativity (ways).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size / (self.block * self.assoc)
    }

    /// Replacement policy.
    pub fn replacement(&self) -> Replacement {
        self.replacement
    }

    /// Write policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write
    }

    /// Context-switch policy.
    pub fn switch_policy(&self) -> SwitchPolicy {
        self.switch
    }

    /// Returns a copy with a different size.
    pub fn with_size(mut self, size: u32) -> CacheConfig {
        self.size = size;
        self
    }

    /// Returns a copy with a different switch policy.
    pub fn with_switch(mut self, sw: SwitchPolicy) -> CacheConfig {
        self.switch = sw;
        self
    }

    /// Returns a copy with a different associativity.
    ///
    /// # Panics
    ///
    /// When `ways` breaks validation (not a power of two, or
    /// `block * ways` exceeding the size).
    pub fn with_assoc(self, ways: u32) -> CacheConfig {
        CacheConfig::builder()
            .size(self.size)
            .block(self.block)
            .assoc(ways)
            .replacement(self.replacement)
            .write_policy(self.write)
            .switch_policy(self.switch)
            .build()
            .expect("with_assoc")
    }

    /// Returns a copy with a different block size.
    ///
    /// # Panics
    ///
    /// When `bytes` breaks validation (not a power of two, below 4, or
    /// `bytes * assoc` exceeding the size).
    pub fn with_block(self, bytes: u32) -> CacheConfig {
        CacheConfig::builder()
            .size(self.size)
            .block(bytes)
            .assoc(self.assoc)
            .replacement(self.replacement)
            .write_policy(self.write)
            .switch_policy(self.switch)
            .build()
            .expect("with_block")
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB, {}-way, {} B blocks, {:?}/{:?}/{:?}",
            self.size / 1024,
            self.assoc,
            self.block,
            self.replacement,
            self.write,
            self.switch
        )
    }
}

/// Builder for [`CacheConfig`].
#[derive(Debug, Clone)]
pub struct CacheConfigBuilder {
    size: u32,
    block: u32,
    assoc: u32,
    replacement: Replacement,
    write: WritePolicy,
    switch: SwitchPolicy,
}

impl Default for CacheConfigBuilder {
    fn default() -> CacheConfigBuilder {
        CacheConfigBuilder {
            size: 16 * 1024,
            block: 16,
            assoc: 1,
            replacement: Replacement::default(),
            write: WritePolicy::default(),
            switch: SwitchPolicy::default(),
        }
    }
}

impl CacheConfigBuilder {
    /// Total size in bytes (power of two).
    pub fn size(mut self, bytes: u32) -> CacheConfigBuilder {
        self.size = bytes;
        self
    }

    /// Block size in bytes (power of two, ≥ 4).
    pub fn block(mut self, bytes: u32) -> CacheConfigBuilder {
        self.block = bytes;
        self
    }

    /// Associativity (power of two; 1 = direct-mapped).
    pub fn assoc(mut self, ways: u32) -> CacheConfigBuilder {
        self.assoc = ways;
        self
    }

    /// Replacement policy.
    pub fn replacement(mut self, r: Replacement) -> CacheConfigBuilder {
        self.replacement = r;
        self
    }

    /// Write policy.
    pub fn write_policy(mut self, w: WritePolicy) -> CacheConfigBuilder {
        self.write = w;
        self
    }

    /// Context-switch policy.
    pub fn switch_policy(mut self, s: SwitchPolicy) -> CacheConfigBuilder {
        self.switch = s;
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when sizes are not powers of two or inconsistent.
    pub fn build(self) -> Result<CacheConfig, ConfigError> {
        let pow2 = |v: u32| v != 0 && v & (v - 1) == 0;
        if !pow2(self.size) {
            return Err(ConfigError(format!(
                "size {} not a power of two",
                self.size
            )));
        }
        if !pow2(self.block) || self.block < 4 {
            return Err(ConfigError(format!("block {} invalid", self.block)));
        }
        if !pow2(self.assoc) {
            return Err(ConfigError(format!(
                "assoc {} not a power of two",
                self.assoc
            )));
        }
        if self.block * self.assoc > self.size {
            return Err(ConfigError(format!(
                "{} ways of {} B blocks exceed {} B",
                self.assoc, self.block, self.size
            )));
        }
        Ok(CacheConfig {
            size: self.size,
            block: self.block,
            assoc: self.assoc,
            replacement: self.replacement,
            write: self.write,
            switch: self.switch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config() {
        let c = CacheConfig::builder()
            .size(8192)
            .block(32)
            .assoc(4)
            .build()
            .unwrap();
        assert_eq!(c.sets(), 64);
        assert!(!c.to_string().is_empty());
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(CacheConfig::builder().size(3000).build().is_err());
        assert!(CacheConfig::builder().block(24).build().is_err());
        assert!(CacheConfig::builder().assoc(3).build().is_err());
    }

    #[test]
    fn rejects_oversized_ways() {
        assert!(CacheConfig::builder()
            .size(64)
            .block(32)
            .assoc(4)
            .build()
            .is_err());
    }

    #[test]
    fn with_helpers() {
        let c = CacheConfig::builder().build().unwrap();
        assert_eq!(c.with_size(4096).size(), 4096);
        assert_eq!(
            c.with_switch(SwitchPolicy::Flush).switch_policy(),
            SwitchPolicy::Flush
        );
    }
}
