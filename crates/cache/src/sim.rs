//! Driving caches and TLBs from ATUM traces, plus parameter sweeps.

use crate::config::CacheConfig;
use crate::set_assoc::{AccessKind, Cache};
use crate::stats::CacheStats;
use crate::tlb::{TlbConfig, TlbSim};
use atum_core::{RecordKind, Trace, TraceRecord, TraceSource, TraceStreamError};

pub(crate) fn record_kind_to_access(kind: RecordKind) -> Option<AccessKind> {
    match kind {
        RecordKind::IFetch => Some(AccessKind::IFetch),
        RecordKind::Read => Some(AccessKind::Read),
        RecordKind::Write => Some(AccessKind::Write),
        _ => None,
    }
}

fn cache_step(cache: &mut Cache, r: &TraceRecord) {
    match r.kind() {
        RecordKind::CtxSwitch => cache.context_switch(r.pid()),
        kind => {
            if let Some(access) = record_kind_to_access(kind) {
                cache.access(r.addr, access, r.pid());
            }
        }
    }
}

fn tlb_step(tlb: &mut TlbSim, r: &TraceRecord) {
    match r.kind() {
        RecordKind::CtxSwitch => tlb.context_switch(r.pid()),
        kind => {
            if record_kind_to_access(kind).is_some() {
                tlb.access(r.addr, r.pid());
            }
        }
    }
}

/// Runs a trace through a cache configuration.
pub fn simulate(trace: &Trace, cfg: &CacheConfig) -> CacheStats {
    let mut cache = Cache::new(*cfg);
    for r in trace.iter() {
        cache_step(&mut cache, r);
    }
    *cache.stats()
}

/// Runs any [`TraceSource`] through a cache configuration — identical
/// results to [`simulate`] over the same records, at O(segment) memory
/// for file sources.
///
/// # Errors
///
/// Any [`TraceStreamError`] from the source.
pub fn simulate_stream<S: TraceSource>(
    source: &mut S,
    cfg: &CacheConfig,
) -> Result<CacheStats, TraceStreamError> {
    let mut cache = Cache::new(*cfg);
    source.stream(&mut |batch| {
        for r in batch {
            cache_step(&mut cache, r);
        }
    })?;
    Ok(*cache.stats())
}

/// Runs a trace through a TLB configuration.
pub fn simulate_tlb(trace: &Trace, cfg: &TlbConfig) -> CacheStats {
    let mut tlb = TlbSim::new(*cfg);
    for r in trace.iter() {
        tlb_step(&mut tlb, r);
    }
    *tlb.stats()
}

/// Runs any [`TraceSource`] through a TLB configuration — the streaming
/// form of [`simulate_tlb`].
///
/// # Errors
///
/// Any [`TraceStreamError`] from the source.
pub fn simulate_tlb_stream<S: TraceSource>(
    source: &mut S,
    cfg: &TlbConfig,
) -> Result<CacheStats, TraceStreamError> {
    let mut tlb = TlbSim::new(*cfg);
    source.stream(&mut |batch| {
        for r in batch {
            tlb_step(&mut tlb, r);
        }
    })?;
    Ok(*tlb.stats())
}

fn sweep<F>(trace: &Trace, points: &[u32], make: F) -> Vec<(u32, CacheStats)>
where
    F: Fn(u32) -> CacheConfig,
{
    let cfgs: Vec<CacheConfig> = points.iter().map(|&p| make(p)).collect();
    points
        .iter()
        .copied()
        .zip(crate::multi::simulate_many(trace, &cfgs))
        .collect()
}

/// Miss rate as a function of cache size; other parameters from `base`.
///
/// All sweeps run through [`crate::multi::simulate_many`]: LRU
/// write-back points share one trace traversal, everything else replays
/// grouped.
pub fn sweep_size(trace: &Trace, base: &CacheConfig, sizes: &[u32]) -> Vec<(u32, CacheStats)> {
    sweep(trace, sizes, |s| base.with_size(s))
}

/// Miss rate as a function of block size.
pub fn sweep_block(trace: &Trace, base: &CacheConfig, blocks: &[u32]) -> Vec<(u32, CacheStats)> {
    sweep(trace, blocks, |b| {
        CacheConfig::builder()
            .size(base.size())
            .block(b)
            .assoc(base.assoc())
            .replacement(base.replacement())
            .write_policy(base.write_policy())
            .switch_policy(base.switch_policy())
            .build()
            .expect("sweep config")
    })
}

/// Miss rate as a function of associativity.
pub fn sweep_assoc(trace: &Trace, base: &CacheConfig, ways: &[u32]) -> Vec<(u32, CacheStats)> {
    sweep(trace, ways, |w| {
        CacheConfig::builder()
            .size(base.size())
            .block(base.block())
            .assoc(w)
            .replacement(base.replacement())
            .write_policy(base.write_policy())
            .switch_policy(base.switch_policy())
            .build()
            .expect("sweep config")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwitchPolicy;
    use atum_core::TraceRecord;

    fn looped_trace(blocks: u32, reps: u32) -> Trace {
        let mut t = Trace::new();
        for _ in 0..reps {
            for b in 0..blocks {
                t.push(TraceRecord::new(RecordKind::Read, b * 16, 4, 1, false));
            }
        }
        t
    }

    #[test]
    fn miss_rate_drops_when_working_set_fits() {
        let trace = looped_trace(256, 10); // 4 KiB working set
        let base = CacheConfig::builder().block(16).build().unwrap();
        let sweep = sweep_size(&trace, &base, &[1024, 2048, 8192]);
        let small = sweep[0].1.miss_rate();
        let large = sweep[2].1.miss_rate();
        assert!(small > 0.9, "thrashing at 1 KiB: {small}");
        assert!(large < 0.15, "fits at 8 KiB: {large}");
    }

    #[test]
    fn bigger_blocks_help_sequential_streams() {
        let mut t = Trace::new();
        for a in 0..4096u32 {
            t.push(TraceRecord::new(RecordKind::Read, a, 1, 1, false));
        }
        let base = CacheConfig::builder().size(8192).build().unwrap();
        let sweep = sweep_block(&t, &base, &[8, 32, 128]);
        let small = sweep[0].1.miss_rate();
        let big = sweep[2].1.miss_rate();
        assert!(big < small / 4.0, "spatial locality: {small} vs {big}");
    }

    #[test]
    fn associativity_fixes_conflicts() {
        let mut t = Trace::new();
        for _ in 0..100 {
            t.push(TraceRecord::new(RecordKind::Read, 0, 4, 1, false));
            t.push(TraceRecord::new(RecordKind::Read, 4096, 4, 1, false));
        }
        let base = CacheConfig::builder().size(4096).block(16).build().unwrap();
        let sweep = sweep_assoc(&t, &base, &[1, 2]);
        assert!(sweep[0].1.miss_rate() > 0.9);
        assert!(sweep[1].1.miss_rate() < 0.05);
    }

    #[test]
    fn flush_hurts_multiprogrammed_trace() {
        // Two processes alternating over the same small footprint.
        let mut t = Trace::new();
        for round in 0..50 {
            let pid = (round % 2 + 1) as u8;
            t.push(TraceRecord::new(RecordKind::CtxSwitch, 0, 0, pid, true));
            for b in 0..32u32 {
                t.push(TraceRecord::new(RecordKind::Read, b * 16, 4, pid, false));
            }
        }
        // Two ways so the two pids' identical VAs can coexist per set.
        let base = CacheConfig::builder()
            .size(8192)
            .block(16)
            .assoc(2)
            .build()
            .unwrap();
        let ignore = simulate(&t, &base);
        let flush = simulate(&t, &base.with_switch(SwitchPolicy::Flush));
        let tagged = simulate(&t, &base.with_switch(SwitchPolicy::PidTag));
        assert!(flush.miss_rate() > 0.9, "every switch restarts cold");
        assert!(tagged.miss_rate() < 0.1, "tags keep both footprints");
        // Ignore aliases the two pids onto the same lines: also low here
        // because the footprints are identical VAs.
        assert!(ignore.miss_rate() < 0.1);
        assert_eq!(flush.context_switches, 50);
    }

    #[test]
    fn tlb_simulation_runs() {
        let mut t = Trace::new();
        for p in 0..64u32 {
            t.push(TraceRecord::new(RecordKind::Read, p * 512, 4, 1, false));
        }
        let cfg = TlbConfig::new(32, 2, SwitchPolicy::Flush);
        let s = simulate_tlb(&t, &cfg);
        assert_eq!(s.accesses, 64);
        assert_eq!(s.misses, 64, "64 distinct pages through a 32-entry TLB");
    }
}
