//! The set-associative cache engine.

use crate::config::{CacheConfig, Replacement, SwitchPolicy, WritePolicy};
use crate::stats::CacheStats;
use std::collections::HashSet;

/// How an access touches the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch.
    IFetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

impl AccessKind {
    /// Whether this is a write.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u32,
    pid: u8,
    dirty: bool,
    stamp: u64,
}

/// A set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
    rng: u32,
    fifo_ptr: Vec<u32>,
    seen_blocks: HashSet<u64>,
    current_pid: u8,
}

impl Cache {
    /// Creates an empty cache for a configuration.
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        Cache {
            lines: vec![Line::default(); (sets * cfg.assoc()) as usize],
            fifo_ptr: vec![0; sets as usize],
            cfg,
            stats: CacheStats::default(),
            tick: 0,
            rng: 0x2545_F491,
            seen_blocks: HashSet::new(),
            current_pid: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Informs the cache of a context switch to `pid`.
    pub fn context_switch(&mut self, pid: u8) {
        self.stats.context_switches += 1;
        match self.cfg.switch_policy() {
            SwitchPolicy::Ignore => {}
            SwitchPolicy::Flush => {
                for line in &mut self.lines {
                    if line.valid {
                        if line.dirty {
                            self.stats.writebacks += 1;
                        }
                        line.valid = false;
                        self.stats.flush_invalidations += 1;
                    }
                }
            }
            SwitchPolicy::PidTag => {}
        }
        self.current_pid = pid;
    }

    /// Performs one access. Returns whether it hit.
    pub fn access(&mut self, addr: u32, kind: AccessKind, pid: u8) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        match kind {
            AccessKind::IFetch => self.stats.ifetch_accesses += 1,
            AccessKind::Read => self.stats.read_accesses += 1,
            AccessKind::Write => self.stats.write_accesses += 1,
        }

        let pid = match self.cfg.switch_policy() {
            SwitchPolicy::PidTag => pid,
            _ => 0,
        };
        let block_addr = addr / self.cfg.block();
        let sets = self.cfg.sets();
        let set = (block_addr % sets) as usize;
        let tag = block_addr / sets;
        let ways = self.cfg.assoc() as usize;
        let base = set * ways;

        // Lookup.
        for i in 0..ways {
            let line = &mut self.lines[base + i];
            if line.valid && line.tag == tag && line.pid == pid {
                line.stamp = self.tick;
                if kind.is_write() {
                    match self.cfg.write_policy() {
                        WritePolicy::WriteBackAllocate => line.dirty = true,
                        WritePolicy::WriteThroughNoAllocate => {
                            self.stats.write_throughs += 1;
                        }
                    }
                }
                self.stats.hits += 1;
                return true;
            }
        }

        // Miss.
        self.stats.misses += 1;
        match kind {
            AccessKind::IFetch => self.stats.ifetch_misses += 1,
            AccessKind::Read => self.stats.read_misses += 1,
            AccessKind::Write => self.stats.write_misses += 1,
        }
        let global_key = ((pid as u64) << 32) | block_addr as u64;
        if self.seen_blocks.insert(global_key) {
            self.stats.cold_misses += 1;
        }

        if kind.is_write() && self.cfg.write_policy() == WritePolicy::WriteThroughNoAllocate {
            self.stats.write_throughs += 1;
            return false; // no allocation
        }

        // Choose a victim.
        let victim = self.pick_victim(base, ways, set);
        let line = &mut self.lines[base + victim];
        if line.valid && line.dirty {
            self.stats.writebacks += 1;
        }
        *line = Line {
            valid: true,
            tag,
            pid,
            dirty: kind.is_write() && self.cfg.write_policy() == WritePolicy::WriteBackAllocate,
            stamp: self.tick,
        };
        false
    }

    fn pick_victim(&mut self, base: usize, ways: usize, set: usize) -> usize {
        // Prefer an invalid way.
        for i in 0..ways {
            if !self.lines[base + i].valid {
                return i;
            }
        }
        match self.cfg.replacement() {
            Replacement::Lru => {
                let mut best = 0;
                let mut best_stamp = u64::MAX;
                for i in 0..ways {
                    let s = self.lines[base + i].stamp;
                    if s < best_stamp {
                        best_stamp = s;
                        best = i;
                    }
                }
                best
            }
            Replacement::Fifo => {
                let v = self.fifo_ptr[set] as usize % ways;
                self.fifo_ptr[set] = self.fifo_ptr[set].wrapping_add(1);
                v
            }
            Replacement::Random => {
                // xorshift32
                let mut x = self.rng;
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                self.rng = x;
                (x as usize) % ways
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, Replacement, SwitchPolicy, WritePolicy};

    fn cache(size: u32, block: u32, assoc: u32) -> Cache {
        Cache::new(
            CacheConfig::builder()
                .size(size)
                .block(block)
                .assoc(assoc)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn sequential_misses_once_per_block() {
        let mut c = cache(1024, 16, 1);
        for a in 0..256u32 {
            c.access(a, AccessKind::Read, 0);
        }
        assert_eq!(c.stats().accesses, 256);
        assert_eq!(c.stats().misses, 16);
        assert_eq!(c.stats().cold_misses, 16);
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = cache(1024, 16, 1);
        assert!(!c.access(0x100, AccessKind::Read, 0));
        assert!(c.access(0x100, AccessKind::Read, 0));
        assert!(c.access(0x10F, AccessKind::Read, 0), "same block");
        assert!(!c.access(0x110, AccessKind::Read, 0), "next block");
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = cache(1024, 16, 1);
        // Two addresses 1024 apart map to the same set with distinct tags.
        for _ in 0..4 {
            c.access(0x0, AccessKind::Read, 0);
            c.access(0x400, AccessKind::Read, 0);
        }
        assert_eq!(c.stats().misses, 8, "ping-pong conflicts");
        // Two-way associativity absorbs the conflict.
        let mut c = cache(1024, 16, 2);
        for _ in 0..4 {
            c.access(0x0, AccessKind::Read, 0);
            c.access(0x400, AccessKind::Read, 0);
        }
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = cache(64, 16, 4); // one set, 4 ways
        for a in [0u32, 16, 32, 48] {
            c.access(a, AccessKind::Read, 0);
        }
        c.access(0, AccessKind::Read, 0); // refresh block 0
        c.access(64, AccessKind::Read, 0); // evicts block at 16
        assert!(c.access(0, AccessKind::Read, 0), "block 0 survived");
        assert!(!c.access(16, AccessKind::Read, 0), "block 16 evicted");
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = Cache::new(
            CacheConfig::builder()
                .size(64)
                .block(16)
                .assoc(4)
                .replacement(Replacement::Fifo)
                .build()
                .unwrap(),
        );
        for a in [0u32, 16, 32, 48] {
            c.access(a, AccessKind::Read, 0);
        }
        c.access(0, AccessKind::Read, 0); // hit; FIFO order unchanged
        c.access(64, AccessKind::Read, 0); // evicts block 0 (first in)
        assert!(!c.access(0, AccessKind::Read, 0), "FIFO evicted block 0");
    }

    #[test]
    fn write_back_generates_writebacks_on_eviction() {
        let mut c = cache(64, 16, 1); // 4 sets
        c.access(0, AccessKind::Write, 0);
        assert_eq!(c.stats().writebacks, 0);
        c.access(64, AccessKind::Read, 0); // evicts dirty block 0
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_through_does_not_allocate() {
        let mut c = Cache::new(
            CacheConfig::builder()
                .size(1024)
                .block(16)
                .write_policy(WritePolicy::WriteThroughNoAllocate)
                .build()
                .unwrap(),
        );
        c.access(0x200, AccessKind::Write, 0);
        assert!(
            !c.access(0x200, AccessKind::Read, 0),
            "write did not allocate"
        );
        assert_eq!(c.stats().write_throughs, 1);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn flush_policy_purges_on_switch() {
        let mut c = Cache::new(
            CacheConfig::builder()
                .size(1024)
                .block(16)
                .switch_policy(SwitchPolicy::Flush)
                .build()
                .unwrap(),
        );
        c.access(0x100, AccessKind::Read, 1);
        assert!(c.access(0x100, AccessKind::Read, 1));
        c.context_switch(2);
        assert!(!c.access(0x100, AccessKind::Read, 2), "flushed");
        assert!(c.stats().flush_invalidations >= 1);
    }

    #[test]
    fn pid_tags_separate_address_spaces() {
        let mut c = Cache::new(
            CacheConfig::builder()
                .size(1024)
                .block(16)
                .assoc(2)
                .switch_policy(SwitchPolicy::PidTag)
                .build()
                .unwrap(),
        );
        c.access(0x100, AccessKind::Read, 1);
        assert!(
            !c.access(0x100, AccessKind::Read, 2),
            "same VA, different pid must miss"
        );
        assert!(c.access(0x100, AccessKind::Read, 1), "pid 1 still hits");
        // No flush invalidations under PidTag.
        c.context_switch(2);
        assert_eq!(c.stats().flush_invalidations, 0);
    }

    #[test]
    fn ignore_policy_aliases_address_spaces() {
        let mut c = cache(1024, 16, 1);
        c.access(0x100, AccessKind::Read, 1);
        assert!(
            c.access(0x100, AccessKind::Read, 2),
            "Ignore policy treats pids as one space"
        );
    }

    #[test]
    fn working_set_that_fits_stops_missing() {
        let mut c = cache(4096, 16, 2);
        let addrs: Vec<u32> = (0..128).map(|i| i * 16).collect(); // 2 KiB set
        for &a in &addrs {
            c.access(a, AccessKind::Read, 0);
        }
        let warm_misses = c.stats().misses;
        for _ in 0..10 {
            for &a in &addrs {
                c.access(a, AccessKind::Read, 0);
            }
        }
        assert_eq!(c.stats().misses, warm_misses, "fully warm working set");
    }
}
