//! Cache statistics.

use std::fmt;

/// Counters accumulated by a cache or TLB simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// First-touch (compulsory) misses.
    pub cold_misses: u64,
    /// Instruction-fetch accesses.
    pub ifetch_accesses: u64,
    /// Instruction-fetch misses.
    pub ifetch_misses: u64,
    /// Data-read accesses.
    pub read_accesses: u64,
    /// Data-read misses.
    pub read_misses: u64,
    /// Data-write accesses.
    pub write_accesses: u64,
    /// Data-write misses.
    pub write_misses: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Write-through traffic events.
    pub write_throughs: u64,
    /// Lines invalidated by context-switch flushes.
    pub flush_invalidations: u64,
    /// Context switches observed.
    pub context_switches: u64,
}

impl CacheStats {
    /// Overall miss rate (0–1).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Instruction-fetch miss rate.
    pub fn ifetch_miss_rate(&self) -> f64 {
        if self.ifetch_accesses == 0 {
            0.0
        } else {
            self.ifetch_misses as f64 / self.ifetch_accesses as f64
        }
    }

    /// Data (read+write) miss rate.
    pub fn data_miss_rate(&self) -> f64 {
        let acc = self.read_accesses + self.write_accesses;
        if acc == 0 {
            0.0
        } else {
            (self.read_misses + self.write_misses) as f64 / acc as f64
        }
    }

    /// Misses that are not compulsory (conflict + capacity + purge).
    pub fn non_cold_misses(&self) -> u64 {
        self.misses - self.cold_misses
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%), {} cold, {} writebacks",
            self.accesses,
            self.misses,
            100.0 * self.miss_rate(),
            self.cold_misses,
            self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats {
            accesses: 100,
            hits: 90,
            misses: 10,
            cold_misses: 4,
            ifetch_accesses: 50,
            ifetch_misses: 5,
            read_accesses: 30,
            read_misses: 3,
            write_accesses: 20,
            write_misses: 2,
            ..Default::default()
        };
        assert!((s.miss_rate() - 0.10).abs() < 1e-12);
        assert!((s.ifetch_miss_rate() - 0.10).abs() < 1e-12);
        assert!((s.data_miss_rate() - 0.10).abs() < 1e-12);
        assert_eq!(s.non_cold_misses(), 6);
    }

    #[test]
    fn empty_stats() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert!(!s.to_string().is_empty());
    }
}
