//! Split instruction/data cache simulation.
//!
//! A split organisation sends I-stream references to one cache and data
//! references to another; the paper-era question is whether two half-size
//! caches beat one unified cache on complete-system traces (where the
//! I-stream is large and the OS's code competes with user code).

use crate::config::CacheConfig;
use crate::set_assoc::{AccessKind, Cache};
use crate::stats::CacheStats;
use atum_core::{RecordKind, Trace};

/// Combined statistics of a split simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SplitStats {
    /// The instruction cache's counters.
    pub icache: CacheStats,
    /// The data cache's counters.
    pub dcache: CacheStats,
}

impl SplitStats {
    /// Overall miss rate across both caches.
    pub fn miss_rate(&self) -> f64 {
        let accesses = self.icache.accesses + self.dcache.accesses;
        if accesses == 0 {
            0.0
        } else {
            (self.icache.misses + self.dcache.misses) as f64 / accesses as f64
        }
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.icache.misses + self.dcache.misses
    }
}

/// Runs a trace through a split I/D pair.
pub fn simulate_split(trace: &Trace, icfg: &CacheConfig, dcfg: &CacheConfig) -> SplitStats {
    let mut icache = Cache::new(*icfg);
    let mut dcache = Cache::new(*dcfg);
    for r in trace.iter() {
        match r.kind() {
            RecordKind::CtxSwitch => {
                icache.context_switch(r.pid());
                dcache.context_switch(r.pid());
            }
            RecordKind::IFetch => {
                icache.access(r.addr, AccessKind::IFetch, r.pid());
            }
            RecordKind::Read => {
                dcache.access(r.addr, AccessKind::Read, r.pid());
            }
            RecordKind::Write => {
                dcache.access(r.addr, AccessKind::Write, r.pid());
            }
            _ => {}
        }
    }
    SplitStats {
        icache: *icache.stats(),
        dcache: *dcache.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_core::TraceRecord;

    fn mixed_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..512u32 {
            t.push(TraceRecord::new(
                RecordKind::IFetch,
                0x1000 + (i % 64) * 4,
                4,
                1,
                false,
            ));
            t.push(TraceRecord::new(
                RecordKind::Read,
                0x8000 + (i % 200) * 4,
                4,
                1,
                false,
            ));
        }
        t
    }

    #[test]
    fn split_routes_by_kind() {
        let t = mixed_trace();
        let cfg = CacheConfig::builder().size(1024).block(16).build().unwrap();
        let s = simulate_split(&t, &cfg, &cfg);
        assert_eq!(s.icache.accesses, 512);
        assert_eq!(s.dcache.accesses, 512);
        assert_eq!(s.icache.ifetch_accesses, 512);
        assert_eq!(s.dcache.write_accesses, 0);
    }

    #[test]
    fn split_avoids_i_d_conflicts() {
        // An I-loop and a D-stream that collide in a small unified cache
        // coexist when split.
        let t = mixed_trace();
        let unified = CacheConfig::builder()
            .size(512)
            .block(16)
            .assoc(1)
            .build()
            .unwrap();
        let half = CacheConfig::builder()
            .size(256)
            .block(16)
            .assoc(1)
            .build()
            .unwrap();
        let u = crate::sim::simulate(&t, &unified);
        let s = simulate_split(&t, &half, &half);
        // The 64-entry (1 KiB footprint) I-loop fits a 256 B I-cache
        // poorly, but the point is structural: the split simulation runs
        // and produces comparable totals.
        assert_eq!(
            u.accesses,
            s.icache.accesses + s.dcache.accesses,
            "same work either way"
        );
        assert!(s.miss_rate() <= 1.0);
    }

    #[test]
    fn empty_trace_split() {
        let cfg = CacheConfig::builder().build().unwrap();
        let s = simulate_split(&Trace::new(), &cfg, &cfg);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.misses(), 0);
    }
}
