//! Single-pass multi-configuration cache simulation.
//!
//! The paper's cache studies sweep size, block size and associativity
//! over the same captured trace. Simulating each configuration
//! separately re-walks the trace once per point; this module evaluates
//! an entire sweep in **one traversal** using a generalized
//! stack-distance (Mattson) engine.
//!
//! For set-associative LRU caches with bit-selection indexing, the
//! inclusion property holds: a reference's hit/miss outcome in a cache
//! with `S = 2^s` sets and `A` ways is determined by its *set-relative
//! stack distance* — the number of distinct blocks mapping to the same
//! set (mod `S`) that were touched since the last touch of this block.
//! One recency order therefore answers every `(S, A)` in the sweep at
//! once.
//!
//! The distance core is a **recency index** with two per-set
//! representations, picked per level (one level = one distinct set
//! count, the `s_max` bucket classes of the tz-counting formulation):
//!
//! * **Saturated order-statistic arrays** (`A_max ≤` [`SAT_CAP_MAX`],
//!   the common case): each set keeps the `A_max` most recently touched
//!   distinct blocks in MRU order, where `A_max` is the largest way
//!   count any configuration asks of this level. The truncated stack is
//!   exact below its capacity — a block found at position `i` has
//!   set-relative stack distance exactly `i` — and a block that fell
//!   off the end has distance `≥ A_max`, which already misses in every
//!   configuration at the level. Distances the sweep can never act on
//!   are never computed: this is the early-exit economics of the old
//!   walk, made O(A_max) flat-array work per level instead of an
//!   unbounded pointer chase.
//! * **Fenwick (binary indexed) trees over access time** (high
//!   associativity): every resident block carries the global time of
//!   its last touch, and each set keeps a Fenwick tree over its
//!   insertion history with one live mark per resident block. A set's
//!   insertion times arrive in increasing order, so local slot order
//!   *is* time order and the distance of a block last touched at `t` is
//!   `live − prefix(t)` — answered in O(log n) regardless of way
//!   count. Dead slots left by re-touches are compacted away once they
//!   outnumber live ones, so memory and query depth stay O(resident)
//!   amortised.
//!
//! An absent block (compulsory or post-purge miss in every
//! configuration) needs no distance queries at all on either
//! representation. Block residency, first-touch history and dirty
//! bitmasks live in one flat open-addressing table keyed by
//! `(pid_tag, blockno)` — one multiplicative-hash probe per access
//! where the old engine paid two SipHash container lookups.
//!
//! Write-back accounting is *lazy*, exactly as in DESIGN §11: a block
//! whose stack distance reaches `A` was evicted at the moment its
//! `A`-th same-set successor arrived, so a dirty bit surviving to the
//! block's next touch (or to a purge, or to the end of the trace) means
//! exactly one write-back happened — counted then, not at eviction
//! time. Statistics are only observed at the end, so the deferral is
//! invisible. Dirty state is a per-entry bitmask over the group's
//! configurations.
//!
//! The historical linked-list walk survives behind
//! `#[cfg(any(test, feature = "oracle"))]` as [`mod@oracle`]: the
//! property suites drive both engines over randomized traces (flushes
//! and PID tags included) and demand field-for-field identical
//! [`CacheStats`], pinning the invariants — hit iff set-relative
//! distance < ways, lazy write-back settlement at re-touch/purge/end,
//! purge invalidation = resident lines within ways, first-touch history
//! preserved across purges.
//!
//! Inclusion requires that every access reorder the recency order the
//! same way in every configuration. That holds for LRU with
//! write-allocate; it fails for FIFO and random replacement (no stack
//! property) and for write-through-no-allocate (a write miss does not
//! insert, and whether it misses depends on the configuration). Those
//! configurations fall back to grouped per-configuration replay —
//! independent [`Cache`] models fed from the same single trace
//! traversal.
//!
//! Every engine — each stack group, each direct-replay cache — is an
//! independent sequential consumer of the same record stream, which is
//! what [`MultiSim::run_parallel`] exploits: batches from a
//! [`TraceSource`] are broadcast to the engines sharded over worker
//! threads, and because each engine still sees every record in order,
//! the assembled statistics are identical to the serial pass at any job
//! count.
//!
//! The produced [`CacheStats`] are field-for-field identical to running
//! [`crate::sim::simulate`] per configuration (the property suite in
//! `tests/multi_equiv.rs` pins this down).

use crate::config::{CacheConfig, Replacement, SwitchPolicy, WritePolicy};
use crate::set_assoc::{AccessKind, Cache};
use crate::stats::CacheStats;
use atum_core::{RecordBatch, RecordKind, Trace, TraceRecord, TraceSource, TraceStreamError};
use std::collections::HashMap;

/// Whether a configuration can join a shared-stack group (LRU +
/// write-back; see the module docs for why the others cannot).
pub fn stackable(cfg: &CacheConfig) -> bool {
    cfg.replacement() == Replacement::Lru && cfg.write_policy() == WritePolicy::WriteBackAllocate
}

/// One set's slice of the recency index: a Fenwick tree over the set's
/// insertion history. Insertion times are strictly increasing, so slot
/// order is time order and a block's position is found by binary
/// search; one live mark per resident block. Dead slots (left when a
/// block is re-touched and its mark moves to the top) are compacted
/// away once they outnumber the live ones.
#[derive(Debug, Clone, Default)]
struct SetFen {
    /// Global touch times, ascending; append-only between compactions.
    times: Vec<u64>,
    /// Liveness bitset over the slots, for O(n) compaction.
    alive: Vec<u64>,
    /// Fenwick array of the live marks.
    fen: Vec<u32>,
    live: u32,
}

impl SetFen {
    /// Sum of the marks in slots `1..=i` (1-based).
    fn prefix(&self, mut i: usize) -> u32 {
        let mut s = 0;
        while i > 0 {
            s += self.fen[i - 1];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Adds `delta` to slot `i` (1-based).
    fn add(&mut self, mut i: usize, delta: i32) {
        let n = self.times.len();
        while i <= n {
            self.fen[i - 1] = (self.fen[i - 1] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Appends a live mark at `time` (which must exceed every stored
    /// time). Appending never disturbs existing Fenwick cells: the new
    /// cell covers `(i − lowbit(i), i]` and is computed from prefixes.
    fn push(&mut self, time: u64) {
        debug_assert!(self.times.last().is_none_or(|&t| t < time));
        self.times.push(time);
        let i = self.times.len();
        let lb = i & i.wrapping_neg();
        let cell = self.prefix(i - 1) - self.prefix(i - lb) + 1;
        self.fen.push(cell);
        let w = (i - 1) / 64;
        if w >= self.alive.len() {
            self.alive.push(0);
        }
        self.alive[w] |= 1u64 << ((i - 1) % 64);
        self.live += 1;
    }

    /// Clears the live mark of the block touched at `time`.
    fn remove(&mut self, time: u64) {
        let slot = self.times.partition_point(|&t| t < time);
        debug_assert_eq!(self.times.get(slot), Some(&time));
        self.add(slot + 1, -1);
        self.alive[slot / 64] &= !(1u64 << (slot % 64));
        self.live -= 1;
        // Amortised O(1): a rebuild keeps query depth and memory
        // O(live), and needs O(len) removals to trigger again.
        if self.times.len() >= 64 && (self.live as usize) * 2 < self.times.len() {
            self.compact();
        }
    }

    /// Live marks strictly more recent than `time` — the set-relative
    /// stack distance of the block last touched then.
    fn count_after(&self, time: u64) -> u32 {
        let slot = self.times.partition_point(|&t| t <= time);
        self.live - self.prefix(slot)
    }

    /// Rebuilds with only the live slots. All marks are 1 afterwards,
    /// so each Fenwick cell is just the size of its range.
    fn compact(&mut self) {
        let old = std::mem::take(&mut self.times);
        self.times = old
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.alive[i / 64] & (1u64 << (i % 64)) != 0)
            .map(|(_, &t)| t)
            .collect();
        let n = self.times.len();
        debug_assert_eq!(n, self.live as usize);
        self.fen.clear();
        self.fen
            .extend((1..=n).map(|i| (i & i.wrapping_neg()) as u32));
        self.alive.clear();
        self.alive.resize(n.div_ceil(64), u64::MAX);
        if !n.is_multiple_of(64) {
            let last = self.alive.len() - 1;
            self.alive[last] = (1u64 << (n % 64)) - 1;
        }
    }

    fn clear(&mut self) {
        self.times.clear();
        self.alive.clear();
        self.fen.clear();
        self.live = 0;
    }
}

/// Widest way count a level serves with saturated order-statistic
/// arrays; anything wider falls back to the Fenwick recency trees.
const SAT_CAP_MAX: u32 = 16;

/// Sentinel for an unoccupied slot in the saturated arrays and the
/// block table (a real key is `(pid_tag << 32) | blockno`, < 2^40).
const EMPTY: u64 = u64::MAX;

/// The per-set distance structures of one level, picked by the widest
/// way count the level must answer (see the module docs).
#[derive(Debug)]
enum LevelIndex {
    /// `cap` keys per set in MRU order (non-empty prefix, [`EMPTY`]
    /// tail), flat in one array: exact distances below `cap`,
    /// saturated at `cap`.
    Sat { cap: u32, slots: Vec<u64> },
    /// Fenwick recency tree per set, for way counts past
    /// [`SAT_CAP_MAX`].
    Fen { sets: Vec<SetFen> },
}

/// The per-set recency indexes of one set count in the sweep (one
/// "level" = one distinct `2^slog`), as flat arrays indexed by the
/// masked block number — the reusable buffers the access/flush/finish
/// walks share, with no per-call allocation.
#[derive(Debug)]
struct Level {
    mask: u32,
    index: LevelIndex,
    /// Indices (into the group's `cfgs`) of the configurations indexed
    /// by this set count.
    cfg_ids: Vec<usize>,
}

#[derive(Debug, Clone)]
struct GroupCfg {
    /// Index into the group's `levels` (the config's set count).
    level: usize,
    assoc: u32,
    /// Index into `simulate_many`'s input slice.
    orig: usize,
    bit: u64,
}

/// One block-table slot: a `(pid_tag, blockno)` key packed as
/// `(pid << 32) | blockno`, the global time of the block's last touch
/// (locating its live mark in the Fenwick levels), its
/// per-configuration dirty bits (bit i = group's i-th config), and
/// whether it is currently in the stack (cleared by a purge; the slot
/// itself persists to carry first-touch history across purges).
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    time: u64,
    dirty: u64,
    in_stack: bool,
}

const EMPTY_SLOT: Slot = Slot {
    key: EMPTY,
    time: 0,
    dirty: 0,
    in_stack: false,
};

/// Open-addressing block table (multiplicative hash, linear probing,
/// power-of-two capacity). Slots are never deleted — a purge only
/// clears `in_stack`/`dirty` — so probe chains never break and no
/// tombstones are needed.
#[derive(Debug)]
struct BlockTable {
    slots: Vec<Slot>,
    len: usize,
}

impl BlockTable {
    fn new() -> BlockTable {
        BlockTable {
            slots: vec![EMPTY_SLOT; 1024],
            len: 0,
        }
    }

    fn hash(key: u64) -> usize {
        // Fibonacci hashing; the high bits carry the mix, so fold them
        // down before masking.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24) as usize
    }

    /// Index of `key`'s slot, inserting a fresh one if absent; the
    /// second value is whether the key was newly inserted (a
    /// first-ever touch). The returned index stays valid until the
    /// next call (growth happens up front).
    fn find_or_insert(&mut self, key: u64) -> (usize, bool) {
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(key) & mask;
        loop {
            let k = self.slots[i].key;
            if k == key {
                return (i, false);
            }
            if k == EMPTY {
                self.slots[i] = Slot {
                    key,
                    time: 0,
                    dirty: 0,
                    in_stack: false,
                };
                self.len += 1;
                return (i, true);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; doubled]);
        let mask = self.slots.len() - 1;
        for s in old {
            if s.key == EMPTY {
                continue;
            }
            let mut i = Self::hash(s.key) & mask;
            while self.slots[i].key != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }
}

/// A shared-stack group: configurations with equal block size, switch
/// policy, LRU replacement and write-back policy, evaluated together on
/// the Fenwick recency index.
///
/// Counters that are provably identical across the group's members —
/// access/kind totals, context switches, compulsory misses — are kept
/// once at group level; only hits and write-backs are per configuration
/// (misses are derived as `accesses - hits` at collection time).
#[derive(Debug)]
struct StackGroup {
    block_size: u32,
    switch: SwitchPolicy,
    cfgs: Vec<GroupCfg>,
    all_mask: u64,

    levels: Vec<Level>,
    table: BlockTable,
    time: u64,

    // Shared across every configuration in the group.
    accesses: u64,
    ifetches: u64,
    reads: u64,
    writes: u64,
    ctx_switches: u64,
    cold: u64,

    // Per configuration.
    hits: Vec<u64>,
    ifetch_hits: Vec<u64>,
    read_hits: Vec<u64>,
    write_hits: Vec<u64>,
    writebacks: Vec<u64>,
    invalidations: Vec<u64>,

    /// Per-level scratch: the referenced block's set-relative distance
    /// at each set count.
    dist: Vec<u32>,
}

impl Level {
    /// Distance of a resident block in `set` (exact below the
    /// saturation cap), then move-to-front. `prev_time` locates the
    /// block's live mark in a Fenwick level; `t_new` is its new mark.
    fn touch_resident(&mut self, set: usize, key: u64, prev_time: u64, t_new: u64) -> u32 {
        match &mut self.index {
            LevelIndex::Sat { cap: 1, slots } => {
                // Direct-mapped level: the set holds one block.
                let s = &mut slots[set];
                let d = (*s != key) as u32;
                *s = key;
                d
            }
            LevelIndex::Sat { cap, slots } => {
                let cap = *cap as usize;
                let s = &mut slots[set * cap..(set + 1) * cap];
                match s.iter().position(|&k| k == key) {
                    Some(j) => {
                        s[..=j].rotate_right(1);
                        j as u32
                    }
                    None => {
                        s.rotate_right(1);
                        s[0] = key;
                        cap as u32
                    }
                }
            }
            LevelIndex::Fen { sets } => {
                let f = &mut sets[set];
                let d = f.count_after(prev_time);
                f.remove(prev_time);
                f.push(t_new);
                d
            }
        }
    }

    /// Inserts a block with no live mark (first touch or post-purge) at
    /// the top of the recency order.
    fn touch_absent(&mut self, set: usize, key: u64, t_new: u64) {
        match &mut self.index {
            LevelIndex::Sat { cap: 1, slots } => slots[set] = key,
            LevelIndex::Sat { cap, slots } => {
                let cap = *cap as usize;
                let s = &mut slots[set * cap..(set + 1) * cap];
                s.rotate_right(1);
                s[0] = key;
            }
            LevelIndex::Fen { sets } => sets[set].push(t_new),
        }
    }

    /// Current distance of a block without reordering (saturated at the
    /// cap), for the end-of-trace residency checks.
    fn position(&self, set: usize, key: u64, time: u64) -> u32 {
        match &self.index {
            LevelIndex::Sat { cap, slots } => {
                let cap = *cap as usize;
                let s = &slots[set * cap..(set + 1) * cap];
                s.iter().position(|&k| k == key).unwrap_or(cap) as u32
            }
            LevelIndex::Fen { sets } => sets[set].count_after(time),
        }
    }

    fn clear(&mut self) {
        match &mut self.index {
            LevelIndex::Sat { slots, .. } => slots.fill(EMPTY),
            LevelIndex::Fen { sets } => {
                for s in sets {
                    s.clear();
                }
            }
        }
    }
}

impl StackGroup {
    fn new(configs: &[CacheConfig], orig_indices: &[usize]) -> StackGroup {
        assert!(orig_indices.len() <= 64, "dirty bitmask is 64 bits wide");
        let block_size = configs[orig_indices[0]].block();
        let switch = configs[orig_indices[0]].switch_policy();
        let mut slogs: Vec<usize> = orig_indices
            .iter()
            .map(|&o| configs[o].sets().trailing_zeros() as usize)
            .collect();
        slogs.sort_unstable();
        slogs.dedup();
        let mut cfg_ids: Vec<Vec<usize>> = vec![Vec::new(); slogs.len()];
        let mut max_assoc = vec![0u32; slogs.len()];
        let cfgs: Vec<GroupCfg> = orig_indices
            .iter()
            .enumerate()
            .map(|(i, &orig)| {
                let c = &configs[orig];
                debug_assert_eq!(c.block(), block_size);
                debug_assert_eq!(c.switch_policy(), switch);
                let slog = c.sets().trailing_zeros() as usize;
                let level = slogs.binary_search(&slog).expect("level exists");
                cfg_ids[level].push(i);
                max_assoc[level] = max_assoc[level].max(c.assoc());
                GroupCfg {
                    level,
                    assoc: c.assoc(),
                    orig,
                    bit: 1u64 << i,
                }
            })
            .collect();
        let levels: Vec<Level> = slogs
            .iter()
            .zip(cfg_ids)
            .zip(&max_assoc)
            .map(|((&s, ids), &a_max)| Level {
                mask: ((1u64 << s) - 1) as u32,
                index: if a_max <= SAT_CAP_MAX {
                    LevelIndex::Sat {
                        cap: a_max,
                        slots: vec![EMPTY; (1usize << s) * a_max as usize],
                    }
                } else {
                    LevelIndex::Fen {
                        sets: vec![SetFen::default(); 1usize << s],
                    }
                },
                cfg_ids: ids,
            })
            .collect();
        let n = cfgs.len();
        StackGroup {
            block_size,
            switch,
            all_mask: if n == 64 { u64::MAX } else { (1u64 << n) - 1 },
            cfgs,
            dist: vec![0; levels.len()],
            levels,
            table: BlockTable::new(),
            time: 0,
            accesses: 0,
            ifetches: 0,
            reads: 0,
            writes: 0,
            ctx_switches: 0,
            cold: 0,
            hits: vec![0; n],
            ifetch_hits: vec![0; n],
            read_hits: vec![0; n],
            write_hits: vec![0; n],
            writebacks: vec![0; n],
            invalidations: vec![0; n],
        }
    }

    /// Assembles the full statistics for the group's `i`-th member.
    fn stats_for(&self, i: usize) -> CacheStats {
        CacheStats {
            accesses: self.accesses,
            hits: self.hits[i],
            misses: self.accesses - self.hits[i],
            cold_misses: self.cold,
            ifetch_accesses: self.ifetches,
            ifetch_misses: self.ifetches - self.ifetch_hits[i],
            read_accesses: self.reads,
            read_misses: self.reads - self.read_hits[i],
            write_accesses: self.writes,
            write_misses: self.writes - self.write_hits[i],
            writebacks: self.writebacks[i],
            write_throughs: 0,
            flush_invalidations: self.invalidations[i],
            context_switches: self.ctx_switches,
        }
    }

    fn context_switch(&mut self) {
        self.ctx_switches += 1;
        if self.switch == SwitchPolicy::Flush {
            self.flush();
        }
    }

    /// Purge accounting: every resident line counts an invalidation;
    /// every surviving dirty bit counts a write-back (resident ⇒ the
    /// purge writes it back now, non-resident ⇒ its past eviction did) —
    /// then the index is emptied (first-touch history is kept, matching
    /// `Cache`). The resident lines of a configuration with `A` ways
    /// are the top `min(A, live)` of each set, read straight off the
    /// per-set live counts — one flat walk per level, shared by every
    /// configuration at that level, no per-call allocation.
    fn flush(&mut self) {
        for lvl in &self.levels {
            match &lvl.index {
                LevelIndex::Sat { cap, slots } => {
                    let cap = *cap as usize;
                    for set in slots.chunks_exact(cap) {
                        // MRU order keeps a non-empty prefix, so the
                        // occupancy (true live count saturated at the
                        // cap) is the prefix length — enough, since
                        // every `assoc` here is at most the cap.
                        let live = set.iter().take_while(|&&k| k != EMPTY).count() as u32;
                        if live == 0 {
                            continue;
                        }
                        for &i in &lvl.cfg_ids {
                            self.invalidations[i] += live.min(self.cfgs[i].assoc) as u64;
                        }
                    }
                }
                LevelIndex::Fen { sets } => {
                    for set in sets {
                        if set.live == 0 {
                            continue;
                        }
                        for &i in &lvl.cfg_ids {
                            self.invalidations[i] += set.live.min(self.cfgs[i].assoc) as u64;
                        }
                    }
                }
            }
        }
        for s in &self.table.slots {
            if s.dirty == 0 {
                continue;
            }
            for (i, c) in self.cfgs.iter().enumerate() {
                if s.dirty & c.bit != 0 {
                    self.writebacks[i] += 1;
                }
            }
        }
        for lvl in &mut self.levels {
            lvl.clear();
        }
        for s in &mut self.table.slots {
            s.in_stack = false;
            s.dirty = 0;
        }
    }

    /// End-of-trace settlement for the lazy write-back accounting: a
    /// dirty bit on a block that is no longer resident records an
    /// eviction-time write-back that was deferred; resident dirty lines
    /// stay uncounted (they are still in the cache), matching `Cache`.
    /// Residency is one recency query per surviving dirty bit.
    fn finish(&mut self) {
        for s in &self.table.slots {
            if s.dirty == 0 {
                continue;
            }
            let blockno = s.key as u32;
            for (i, c) in self.cfgs.iter().enumerate() {
                if s.dirty & c.bit == 0 {
                    continue;
                }
                let lvl = &self.levels[c.level];
                let set = (blockno & lvl.mask) as usize;
                if lvl.position(set, s.key, s.time) >= c.assoc {
                    self.writebacks[i] += 1;
                }
            }
        }
    }

    fn access(&mut self, addr: u32, kind: AccessKind, pid: u8) {
        let is_write = kind.is_write();
        self.accesses += 1;
        match kind {
            AccessKind::IFetch => self.ifetches += 1,
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
        let pid_tag = match self.switch {
            SwitchPolicy::PidTag => pid,
            _ => 0,
        };
        let blockno = addr / self.block_size;
        let key = ((pid_tag as u64) << 32) | blockno as u64;
        self.time += 1;
        let t_new = self.time;
        let (idx, is_new) = self.table.find_or_insert(key);
        let slot = self.table.slots[idx];

        let mut hit_mask = 0u64;
        let mut old_dirty = 0u64;
        if slot.in_stack {
            old_dirty = slot.dirty;
            // One bounded query per level answers the set-relative
            // stack distance (exact wherever it matters); a hit in
            // `(2^s, A)` iff the distance at level s is below A. The
            // query and the move-to-front reorder share one pass.
            for (li, lvl) in self.levels.iter_mut().enumerate() {
                let set = (blockno & lvl.mask) as usize;
                self.dist[li] = lvl.touch_resident(set, key, slot.time, t_new);
            }
            let kind_hits = match kind {
                AccessKind::IFetch => &mut self.ifetch_hits,
                AccessKind::Read => &mut self.read_hits,
                AccessKind::Write => &mut self.write_hits,
            };
            for (i, c) in self.cfgs.iter().enumerate() {
                if self.dist[c.level] < c.assoc {
                    self.hits[i] += 1;
                    kind_hits[i] += 1;
                    hit_mask |= c.bit;
                } else if old_dirty & c.bit != 0 {
                    // Lazy write-back: a miss on a block still in the
                    // stack means it was evicted since its last touch;
                    // a surviving dirty bit records that the eviction
                    // wrote it back. The bit itself is dropped by the
                    // `hit_mask` filter below.
                    self.writebacks[i] += 1;
                }
            }
        } else {
            // A first touch is a compulsory miss in every configuration
            // simultaneously; any other absent block (purged earlier)
            // misses everywhere too. Either way no distance queries are
            // needed.
            if is_new {
                self.cold += 1;
            }
            for lvl in &mut self.levels {
                let set = (blockno & lvl.mask) as usize;
                lvl.touch_absent(set, key, t_new);
            }
        }

        // Allocate-on-miss everywhere (write-back groups only), so every
        // configuration reorders identically. Hit configurations keep
        // their dirty bit; miss configurations start the fresh line
        // clean unless this access writes it.
        let dirty = (old_dirty & hit_mask) | if is_write { self.all_mask } else { 0 };
        let s = &mut self.table.slots[idx];
        s.time = t_new;
        s.dirty = dirty;
        s.in_stack = true;
    }
}

/// The historical linked-list stack-distance engine, kept as the
/// equivalence oracle for the Fenwick recency index (`cargo test`, or
/// the `oracle` feature for benches). Same statistics, O(stack depth)
/// per access: the property suites drive both engines over the same
/// randomized traces and demand identical output.
#[cfg(any(test, feature = "oracle"))]
pub(crate) mod oracle {
    use super::*;
    use std::collections::HashSet;

    const NIL: u32 = u32::MAX;

    /// One entry of the global LRU stack.
    #[derive(Debug, Clone)]
    struct Node {
        block: u32,
        /// Per-configuration dirty bits (bit i = group's i-th config).
        dirty: u64,
        prev: u32,
        next: u32,
    }

    #[derive(Debug, Clone)]
    struct OGroupCfg {
        /// log2 of the set count.
        slog: usize,
        assoc: u32,
        /// Index into `simulate_many`'s input slice.
        orig: usize,
        bit: u64,
    }

    /// The legacy shared-stack group: a doubly-linked MRU→LRU list
    /// walked node by node, bucketing same-set predecessors by trailing
    /// zeros of the block-number XOR, with a periodic all-decided early
    /// exit.
    #[derive(Debug)]
    pub(crate) struct StackGroup {
        block_size: u32,
        switch: SwitchPolicy,
        cfgs: Vec<OGroupCfg>,
        s_max: usize,
        all_mask: u64,

        nodes: Vec<Node>,
        head: u32,
        map: HashMap<(u8, u32), u32>,
        seen: HashSet<u64>,

        accesses: u64,
        ifetches: u64,
        reads: u64,
        writes: u64,
        ctx_switches: u64,
        cold: u64,

        hits: Vec<u64>,
        ifetch_hits: Vec<u64>,
        read_hits: Vec<u64>,
        write_hits: Vec<u64>,
        writebacks: Vec<u64>,
        invalidations: Vec<u64>,

        bucket: Vec<u32>,
        dist: Vec<u32>,
    }

    impl StackGroup {
        pub(crate) fn new(configs: &[CacheConfig], orig_indices: &[usize]) -> StackGroup {
            assert!(orig_indices.len() <= 64, "dirty bitmask is 64 bits wide");
            let block_size = configs[orig_indices[0]].block();
            let switch = configs[orig_indices[0]].switch_policy();
            let cfgs: Vec<OGroupCfg> = orig_indices
                .iter()
                .enumerate()
                .map(|(i, &orig)| {
                    let c = &configs[orig];
                    debug_assert_eq!(c.block(), block_size);
                    debug_assert_eq!(c.switch_policy(), switch);
                    OGroupCfg {
                        slog: c.sets().trailing_zeros() as usize,
                        assoc: c.assoc(),
                        orig,
                        bit: 1u64 << i,
                    }
                })
                .collect();
            let s_max = cfgs.iter().map(|c| c.slog).max().unwrap_or(0);
            let n = cfgs.len();
            StackGroup {
                block_size,
                switch,
                all_mask: if n == 64 { u64::MAX } else { (1u64 << n) - 1 },
                s_max,
                cfgs,
                nodes: Vec::new(),
                head: NIL,
                map: HashMap::new(),
                seen: HashSet::new(),
                accesses: 0,
                ifetches: 0,
                reads: 0,
                writes: 0,
                ctx_switches: 0,
                cold: 0,
                hits: vec![0; n],
                ifetch_hits: vec![0; n],
                read_hits: vec![0; n],
                write_hits: vec![0; n],
                writebacks: vec![0; n],
                invalidations: vec![0; n],
                bucket: vec![0; s_max + 1],
                dist: vec![0; s_max + 1],
            }
        }

        pub(crate) fn orig_of(&self, i: usize) -> usize {
            self.cfgs[i].orig
        }

        pub(crate) fn len(&self) -> usize {
            self.cfgs.len()
        }

        pub(crate) fn stats_for(&self, i: usize) -> CacheStats {
            CacheStats {
                accesses: self.accesses,
                hits: self.hits[i],
                misses: self.accesses - self.hits[i],
                cold_misses: self.cold,
                ifetch_accesses: self.ifetches,
                ifetch_misses: self.ifetches - self.ifetch_hits[i],
                read_accesses: self.reads,
                read_misses: self.reads - self.read_hits[i],
                write_accesses: self.writes,
                write_misses: self.writes - self.write_hits[i],
                writebacks: self.writebacks[i],
                write_throughs: 0,
                flush_invalidations: self.invalidations[i],
                context_switches: self.ctx_switches,
            }
        }

        pub(crate) fn context_switch(&mut self) {
            self.ctx_switches += 1;
            if self.switch == SwitchPolicy::Flush {
                self.flush();
            }
        }

        fn flush(&mut self) {
            let mut above: Vec<HashMap<u32, u32>> = vec![HashMap::new(); self.s_max + 1];
            let mut cur = self.head;
            while cur != NIL {
                let node = &self.nodes[cur as usize];
                for (i, c) in self.cfgs.iter().enumerate() {
                    let set = node.block & ((1u32 << c.slog) - 1);
                    let pos = above[c.slog].get(&set).copied().unwrap_or(0);
                    if pos < c.assoc {
                        self.invalidations[i] += 1;
                    }
                    if node.dirty & c.bit != 0 {
                        self.writebacks[i] += 1;
                    }
                }
                for (s, counts) in above.iter_mut().enumerate() {
                    *counts.entry(node.block & ((1u32 << s) - 1)).or_insert(0) += 1;
                }
                cur = node.next;
            }
            self.nodes.clear();
            self.map.clear();
            self.head = NIL;
        }

        pub(crate) fn finish(&mut self) {
            let mut above: Vec<HashMap<u32, u32>> = vec![HashMap::new(); self.s_max + 1];
            let mut cur = self.head;
            while cur != NIL {
                let node = &self.nodes[cur as usize];
                if node.dirty != 0 {
                    for (i, c) in self.cfgs.iter().enumerate() {
                        if node.dirty & c.bit == 0 {
                            continue;
                        }
                        let set = node.block & ((1u32 << c.slog) - 1);
                        let pos = above[c.slog].get(&set).copied().unwrap_or(0);
                        if pos >= c.assoc {
                            self.writebacks[i] += 1;
                        }
                    }
                }
                for (s, counts) in above.iter_mut().enumerate() {
                    *counts.entry(node.block & ((1u32 << s) - 1)).or_insert(0) += 1;
                }
                cur = node.next;
            }
        }

        fn all_decided(&mut self) -> bool {
            let mut acc = 0u32;
            for s in (0..=self.s_max).rev() {
                acc += self.bucket[s];
                self.dist[s] = acc;
            }
            self.cfgs.iter().all(|c| self.dist[c.slog] >= c.assoc)
        }

        pub(crate) fn access(&mut self, addr: u32, kind: AccessKind, pid: u8) {
            let is_write = kind.is_write();
            self.accesses += 1;
            match kind {
                AccessKind::IFetch => self.ifetches += 1,
                AccessKind::Read => self.reads += 1,
                AccessKind::Write => self.writes += 1,
            }
            let pid_tag = match self.switch {
                SwitchPolicy::PidTag => pid,
                _ => 0,
            };
            let blockno = addr / self.block_size;
            let target = self.map.get(&(pid_tag, blockno)).copied();

            let mut hit_mask = 0u64;
            match target {
                None => {
                    if self.seen.insert(((pid_tag as u64) << 32) | blockno as u64) {
                        self.cold += 1;
                    }
                }
                Some(tnode) => {
                    self.bucket.fill(0);
                    let mut cur = self.head;
                    let mut batch = 0u32;
                    while cur != NIL && cur != tnode {
                        let node = &self.nodes[cur as usize];
                        let tz = (node.block ^ blockno).trailing_zeros() as usize;
                        let next = node.next;
                        self.bucket[tz.min(self.s_max)] += 1;
                        batch += 1;
                        if batch == 64 {
                            batch = 0;
                            if self.all_decided() {
                                break;
                            }
                        }
                        cur = next;
                    }
                    let decided_all = self.all_decided();
                    let old_dirty = self.nodes[tnode as usize].dirty;
                    for (i, c) in self.cfgs.iter().enumerate() {
                        if !decided_all && self.dist[c.slog] < c.assoc {
                            self.hits[i] += 1;
                            match kind {
                                AccessKind::IFetch => self.ifetch_hits[i] += 1,
                                AccessKind::Read => self.read_hits[i] += 1,
                                AccessKind::Write => self.write_hits[i] += 1,
                            }
                            hit_mask |= c.bit;
                        } else if old_dirty & c.bit != 0 {
                            self.writebacks[i] += 1;
                        }
                    }
                }
            }

            let old_dirty = match target {
                Some(t) => {
                    self.unlink(t);
                    self.nodes[t as usize].dirty
                }
                None => 0,
            };
            let dirty = (old_dirty & hit_mask) | if is_write { self.all_mask } else { 0 };
            match target {
                Some(t) => {
                    self.nodes[t as usize].dirty = dirty;
                    self.push_front(t);
                }
                None => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(Node {
                        block: blockno,
                        dirty,
                        prev: NIL,
                        next: NIL,
                    });
                    self.map.insert((pid_tag, blockno), idx);
                    self.push_front(idx);
                }
            }
        }

        fn unlink(&mut self, idx: u32) {
            let (prev, next) = {
                let n = &self.nodes[idx as usize];
                (n.prev, n.next)
            };
            if prev != NIL {
                self.nodes[prev as usize].next = next;
            } else {
                self.head = next;
            }
            if next != NIL {
                self.nodes[next as usize].prev = prev;
            }
        }

        fn push_front(&mut self, idx: u32) {
            self.nodes[idx as usize].prev = NIL;
            self.nodes[idx as usize].next = self.head;
            if self.head != NIL {
                self.nodes[self.head as usize].prev = idx;
            }
            self.head = idx;
        }
    }
}

/// A trace record decoded once into the operation every engine consumes
/// — the per-record kind dispatch is hoisted out of the per-engine
/// loop.
#[derive(Debug, Clone, Copy)]
enum Op {
    Switch(u8),
    Ref {
        access: AccessKind,
        addr: u32,
        pid: u8,
    },
}

fn decode_op(r: &TraceRecord) -> Option<Op> {
    match r.kind() {
        RecordKind::CtxSwitch => Some(Op::Switch(r.pid())),
        kind => crate::sim::record_kind_to_access(kind).map(|access| Op::Ref {
            access,
            addr: r.addr,
            pid: r.pid(),
        }),
    }
}

/// One independent sequential consumer of the record stream: a shared
/// stack group, or a direct per-configuration [`Cache`] replay. The
/// engine is the unit [`MultiSim::run_parallel`] shards over workers.
#[derive(Debug)]
enum Engine {
    Group(StackGroup),
    #[cfg(any(test, feature = "oracle"))]
    Oracle(oracle::StackGroup),
    Direct {
        orig: usize,
        cache: Cache,
    },
}

impl Engine {
    fn apply(&mut self, op: Op) {
        match self {
            Engine::Group(g) => match op {
                Op::Switch(_) => g.context_switch(),
                Op::Ref { access, addr, pid } => g.access(addr, access, pid),
            },
            #[cfg(any(test, feature = "oracle"))]
            Engine::Oracle(g) => match op {
                Op::Switch(_) => g.context_switch(),
                Op::Ref { access, addr, pid } => g.access(addr, access, pid),
            },
            Engine::Direct { cache, .. } => match op {
                Op::Switch(pid) => cache.context_switch(pid),
                Op::Ref { access, addr, pid } => {
                    cache.access(addr, access, pid);
                }
            },
        }
    }

    /// Feeds a whole batch: the kind dispatch happens once per batch
    /// element, and the SoA columns stream linearly through the engine.
    fn step_batch(&mut self, batch: &RecordBatch) {
        for r in batch.iter() {
            if let Some(op) = decode_op(&r) {
                self.apply(op);
            }
        }
    }
}

/// The incremental form of [`simulate_many`]: sweep state that consumes
/// records one at a time (or batch-wise), so callers can drive it from
/// an in-memory trace or any [`TraceSource`] without materialising the
/// records — serially via [`MultiSim::step`]/[`MultiSim::step_batch`],
/// or engine-parallel via [`MultiSim::run_parallel`].
#[derive(Debug)]
pub struct MultiSim {
    n: usize,
    engines: Vec<Engine>,
}

impl MultiSim {
    /// Prepares a sweep over `cfgs`: stackable configurations join
    /// shared-stack groups, the rest get independent [`Cache`] replays.
    pub fn new(cfgs: &[CacheConfig]) -> MultiSim {
        Self::build(cfgs, false)
    }

    /// As [`MultiSim::new`], but stack groups use the legacy
    /// linked-list walk — the equivalence oracle the property suites
    /// and the analysis bench compare against.
    #[cfg(any(test, feature = "oracle"))]
    pub fn new_oracle(cfgs: &[CacheConfig]) -> MultiSim {
        Self::build(cfgs, true)
    }

    fn build(cfgs: &[CacheConfig], use_oracle: bool) -> MultiSim {
        #[cfg(not(any(test, feature = "oracle")))]
        debug_assert!(!use_oracle);
        let mut engines: Vec<Engine> = Vec::new();
        let mut grouped: HashMap<(u32, u8), Vec<usize>> = HashMap::new();
        for (i, c) in cfgs.iter().enumerate() {
            if stackable(c) {
                grouped
                    .entry((c.block(), c.switch_policy() as u8))
                    .or_default()
                    .push(i);
            } else {
                engines.push(Engine::Direct {
                    orig: i,
                    cache: Cache::new(*c),
                });
            }
        }
        // A one-config group gets no amortization from the shared stack
        // and would pay its walk costs for nothing — replay it directly.
        for indices in grouped.values() {
            for chunk in indices.chunks(64) {
                if chunk.len() == 1 {
                    engines.push(Engine::Direct {
                        orig: chunk[0],
                        cache: Cache::new(cfgs[chunk[0]]),
                    });
                } else if use_oracle {
                    #[cfg(any(test, feature = "oracle"))]
                    engines.push(Engine::Oracle(oracle::StackGroup::new(cfgs, chunk)));
                } else {
                    engines.push(Engine::Group(StackGroup::new(cfgs, chunk)));
                }
            }
        }
        MultiSim {
            n: cfgs.len(),
            engines,
        }
    }

    /// Feeds one trace record to every engine (the record's kind is
    /// decoded once, not once per engine).
    pub fn step(&mut self, r: &TraceRecord) {
        if let Some(op) = decode_op(r) {
            for e in &mut self.engines {
                e.apply(op);
            }
        }
    }

    /// Feeds one record batch to every engine, serially.
    pub fn step_batch(&mut self, batch: &RecordBatch) {
        for e in &mut self.engines {
            e.step_batch(batch);
        }
    }

    /// Drives the whole of `source` through the engines with up to
    /// `jobs` worker threads, then settles and assembles the
    /// statistics. Each engine is an independent sequential consumer
    /// observing every batch in trace order, so the result is identical
    /// to the serial pass ([`simulate_many_stream`]) at any `jobs` —
    /// parallelism only moves wall clock.
    ///
    /// # Errors
    ///
    /// Any [`TraceStreamError`] from the source.
    pub fn run_parallel<S: TraceSource + ?Sized>(
        mut self,
        source: &mut S,
        jobs: usize,
    ) -> Result<Vec<CacheStats>, TraceStreamError> {
        atum_core::broadcast_batches(source, &mut self.engines, jobs, |e, b| e.step_batch(b))?;
        Ok(self.finish())
    }

    /// Settles the lazy write-back accounting and assembles the final
    /// statistics, index-aligned with the input configurations.
    pub fn finish(mut self) -> Vec<CacheStats> {
        let mut out = vec![CacheStats::default(); self.n];
        for e in &mut self.engines {
            match e {
                Engine::Group(g) => {
                    g.finish();
                    for (i, c) in g.cfgs.iter().enumerate() {
                        out[c.orig] = g.stats_for(i);
                    }
                }
                #[cfg(any(test, feature = "oracle"))]
                Engine::Oracle(g) => {
                    g.finish();
                    for i in 0..g.len() {
                        out[g.orig_of(i)] = g.stats_for(i);
                    }
                }
                Engine::Direct { orig, cache } => {
                    out[*orig] = *cache.stats();
                }
            }
        }
        out
    }
}

/// Simulates every configuration in one traversal of the trace.
///
/// Results are index-aligned with `cfgs` and identical to calling
/// [`crate::sim::simulate`] per configuration. LRU write-back
/// configurations sharing a block size and switch policy are evaluated
/// by the stack-distance engine; the rest replay on independent
/// [`Cache`] models driven from the same traversal.
pub fn simulate_many(trace: &Trace, cfgs: &[CacheConfig]) -> Vec<CacheStats> {
    let mut sim = MultiSim::new(cfgs);
    for r in trace.iter() {
        sim.step(r);
    }
    sim.finish()
}

/// [`simulate_many`] on the legacy linked-list engine — the oracle the
/// property suites and the analysis bench compare the recency index
/// against.
#[cfg(any(test, feature = "oracle"))]
pub fn simulate_many_oracle(trace: &Trace, cfgs: &[CacheConfig]) -> Vec<CacheStats> {
    let mut sim = MultiSim::new_oracle(cfgs);
    for r in trace.iter() {
        sim.step(r);
    }
    sim.finish()
}

/// The out-of-core form of [`simulate_many`]: one traversal of any
/// [`TraceSource`] — an on-disk segment file streams through at
/// O(segment) resident memory, and the results are identical to the
/// in-memory pass over the same records.
///
/// # Errors
///
/// Any [`TraceStreamError`] from the source.
pub fn simulate_many_stream<S: TraceSource>(
    source: &mut S,
    cfgs: &[CacheConfig],
) -> Result<Vec<CacheStats>, TraceStreamError> {
    let mut sim = MultiSim::new(cfgs);
    source.stream(&mut |batch| {
        for r in batch {
            sim.step(r);
        }
    })?;
    Ok(sim.finish())
}

/// The engine-parallel form of [`simulate_many_stream`]: batches are
/// broadcast to the sweep's engines sharded over up to `jobs` worker
/// threads. Identical results at any `jobs`.
///
/// # Errors
///
/// Any [`TraceStreamError`] from the source.
pub fn simulate_many_parallel<S: TraceSource + ?Sized>(
    source: &mut S,
    cfgs: &[CacheConfig],
    jobs: usize,
) -> Result<Vec<CacheStats>, TraceStreamError> {
    MultiSim::new(cfgs).run_parallel(source, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use atum_core::TraceRecord;

    fn trace_with_switches() -> Trace {
        let mut t = Trace::new();
        // Two processes ping-ponging over overlapping footprints, with
        // strided writes so write-back accounting is exercised.
        for round in 0..30u32 {
            let pid = (round % 3) as u8 + 1;
            t.push(TraceRecord::new(RecordKind::CtxSwitch, 0, 0, pid, true));
            for b in 0..48u32 {
                let addr = (b * 16 + round * 8) % 4096;
                let kind = if b % 5 == 0 {
                    RecordKind::Write
                } else if b % 7 == 0 {
                    RecordKind::IFetch
                } else {
                    RecordKind::Read
                };
                t.push(TraceRecord::new(kind, addr, 4, pid, false));
            }
        }
        t
    }

    fn sweep_configs(switch: SwitchPolicy) -> Vec<CacheConfig> {
        let mut v = Vec::new();
        for size in [256u32, 512, 1024, 4096] {
            for assoc in [1u32, 2, 4] {
                v.push(
                    CacheConfig::builder()
                        .size(size)
                        .block(16)
                        .assoc(assoc)
                        .switch_policy(switch)
                        .build()
                        .unwrap(),
                );
            }
        }
        v
    }

    #[test]
    fn matches_reference_for_each_switch_policy() {
        let t = trace_with_switches();
        for switch in [
            SwitchPolicy::Ignore,
            SwitchPolicy::Flush,
            SwitchPolicy::PidTag,
        ] {
            let cfgs = sweep_configs(switch);
            let many = simulate_many(&t, &cfgs);
            for (cfg, got) in cfgs.iter().zip(&many) {
                let want = simulate(&t, cfg);
                assert_eq!(*got, want, "mismatch under {cfg}");
            }
        }
    }

    #[test]
    fn oracle_engine_matches_fenwick_engine() {
        let t = trace_with_switches();
        for switch in [
            SwitchPolicy::Ignore,
            SwitchPolicy::Flush,
            SwitchPolicy::PidTag,
        ] {
            let cfgs = sweep_configs(switch);
            assert_eq!(
                simulate_many(&t, &cfgs),
                simulate_many_oracle(&t, &cfgs),
                "engines diverge under {switch:?}"
            );
        }
    }

    #[test]
    fn non_lru_configs_fall_back_and_still_match() {
        let t = trace_with_switches();
        let cfgs: Vec<CacheConfig> = [Replacement::Fifo, Replacement::Random, Replacement::Lru]
            .into_iter()
            .map(|r| {
                CacheConfig::builder()
                    .size(512)
                    .block(16)
                    .assoc(2)
                    .replacement(r)
                    .build()
                    .unwrap()
            })
            .collect();
        let many = simulate_many(&t, &cfgs);
        for (cfg, got) in cfgs.iter().zip(&many) {
            assert_eq!(*got, simulate(&t, cfg), "mismatch under {cfg}");
        }
    }

    #[test]
    fn write_through_falls_back() {
        let cfg = CacheConfig::builder()
            .size(512)
            .block(16)
            .write_policy(WritePolicy::WriteThroughNoAllocate)
            .build()
            .unwrap();
        assert!(!stackable(&cfg));
        let t = trace_with_switches();
        assert_eq!(simulate_many(&t, &[cfg])[0], simulate(&t, &cfg));
    }

    #[test]
    fn mixed_block_sizes_split_into_groups() {
        let t = trace_with_switches();
        let cfgs: Vec<CacheConfig> = [8u32, 16, 32]
            .into_iter()
            .map(|b| CacheConfig::builder().size(1024).block(b).build().unwrap())
            .collect();
        let many = simulate_many(&t, &cfgs);
        for (cfg, got) in cfgs.iter().zip(&many) {
            assert_eq!(*got, simulate(&t, cfg), "mismatch under {cfg}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(simulate_many(&Trace::new(), &[]).is_empty());
    }

    #[test]
    fn high_associativity_levels_use_fenwick_and_match() {
        // 32 ways exceeds SAT_CAP_MAX, so these levels run on the
        // Fenwick recency trees; mixing in narrow configurations at the
        // same block size shares the group across both index kinds.
        let t = trace_with_switches();
        let mut cfgs = vec![
            CacheConfig::builder()
                .size(1024)
                .block(16)
                .assoc(32)
                .build()
                .unwrap(),
            CacheConfig::builder()
                .size(4096)
                .block(16)
                .assoc(32)
                .build()
                .unwrap(),
        ];
        cfgs.extend(sweep_configs(SwitchPolicy::Ignore));
        let many = simulate_many(&t, &cfgs);
        for (cfg, got) in cfgs.iter().zip(&many) {
            assert_eq!(*got, simulate(&t, cfg), "mismatch under {cfg}");
        }
        assert_eq!(many, simulate_many_oracle(&t, &cfgs));
    }

    #[test]
    fn streamed_matches_in_memory() {
        let t = trace_with_switches();
        for switch in [
            SwitchPolicy::Ignore,
            SwitchPolicy::Flush,
            SwitchPolicy::PidTag,
        ] {
            let cfgs = sweep_configs(switch);
            let want = simulate_many(&t, &cfgs);
            assert_eq!(simulate_many_stream(&mut t.source(), &cfgs).unwrap(), want);
        }
    }

    #[test]
    fn parallel_matches_serial_at_any_jobs() {
        let t = trace_with_switches();
        for switch in [
            SwitchPolicy::Ignore,
            SwitchPolicy::Flush,
            SwitchPolicy::PidTag,
        ] {
            let cfgs = sweep_configs(switch);
            let want = simulate_many(&t, &cfgs);
            for jobs in [1, 2, 4] {
                assert_eq!(
                    simulate_many_parallel(&mut t.source(), &cfgs, jobs).unwrap(),
                    want,
                    "jobs={jobs} under {switch:?}"
                );
            }
        }
    }

    #[test]
    fn set_fen_compacts_and_stays_exact() {
        let mut f = SetFen::default();
        // Insert 1..=200, then repeatedly move the oldest live mark to
        // the top — lots of dead slots, forcing compactions.
        for t in 1..=200u64 {
            f.push(t);
        }
        let mut times: std::collections::VecDeque<u64> = (1..=200).collect();
        let mut clock = 200u64;
        for _ in 0..500 {
            let old = times.pop_front().unwrap();
            clock += 1;
            f.remove(old);
            f.push(clock);
            times.push_back(clock);
            assert_eq!(f.live, 200);
            // Distance of the oldest mark is everything above it.
            assert_eq!(f.count_after(*times.front().unwrap()), 199);
            assert_eq!(f.count_after(clock), 0);
        }
        assert!(
            f.times.len() <= 2 * 200 + 64,
            "dead slots must stay bounded, got {}",
            f.times.len()
        );
    }
}

#[cfg(test)]
mod oracle_prop {
    //! Property suite: the Fenwick recency index against the legacy
    //! linked-list walk, over randomized traces with context switches
    //! (flushes) and PID tags — field-for-field identical statistics
    //! for every configuration.

    use super::*;
    use atum_core::TraceRecord;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Event {
        Access {
            addr: u32,
            kind: RecordKind,
            pid: u8,
        },
        Switch {
            pid: u8,
        },
    }

    fn event() -> impl Strategy<Value = Event> {
        prop_oneof![
            12 => (0u32..16384, 0u8..3, 0u8..4).prop_map(|(addr, k, pid)| Event::Access {
                addr,
                kind: match k {
                    0 => RecordKind::IFetch,
                    1 => RecordKind::Read,
                    _ => RecordKind::Write,
                },
                pid,
            }),
            1 => (0u8..4).prop_map(|pid| Event::Switch { pid }),
        ]
    }

    fn trace_of(events: &[Event]) -> Trace {
        let mut t = Trace::new();
        for e in events {
            match *e {
                Event::Access { addr, kind, pid } => {
                    t.push(TraceRecord::new(kind, addr, 4, pid, false));
                }
                Event::Switch { pid } => {
                    t.push(TraceRecord::new(RecordKind::CtxSwitch, 0, 0, pid, true));
                }
            }
        }
        t
    }

    fn stack_config() -> impl Strategy<Value = CacheConfig> {
        (
            prop_oneof![Just(256u32), Just(512), Just(1024), Just(2048), Just(8192)],
            prop_oneof![Just(8u32), Just(16), Just(32)],
            // 32 ways exceeds SAT_CAP_MAX, driving the Fenwick path.
            prop_oneof![Just(1u32), Just(2), Just(4), Just(8), Just(32)],
            prop_oneof![
                Just(SwitchPolicy::Ignore),
                Just(SwitchPolicy::Flush),
                Just(SwitchPolicy::PidTag),
            ],
        )
            .prop_filter_map("valid config", |(size, block, assoc, switch)| {
                CacheConfig::builder()
                    .size(size)
                    .block(block)
                    .assoc(assoc)
                    .switch_policy(switch)
                    .build()
                    .ok()
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn fenwick_matches_oracle(
            cfgs in proptest::collection::vec(stack_config(), 1..10),
            events in proptest::collection::vec(event(), 1..600),
        ) {
            let trace = trace_of(&events);
            let fen = simulate_many(&trace, &cfgs);
            let ora = simulate_many_oracle(&trace, &cfgs);
            for ((cfg, f), o) in cfgs.iter().zip(&fen).zip(&ora) {
                prop_assert_eq!(f, o, "recency index diverges from oracle under {}", cfg);
            }
        }
    }
}
