//! Single-pass multi-configuration cache simulation.
//!
//! The paper's cache studies sweep size, block size and associativity
//! over the same captured trace. Simulating each configuration
//! separately re-walks the trace once per point; this module evaluates
//! an entire sweep in **one traversal** using a generalized
//! stack-distance (Mattson) engine.
//!
//! For set-associative LRU caches with bit-selection indexing, the
//! inclusion property holds: a reference's hit/miss outcome in a cache
//! with `S = 2^s` sets and `A` ways is determined by its *set-relative
//! stack distance* — the number of distinct blocks mapping to the same
//! set (mod `S`) that were touched since the last touch of this block.
//! One global LRU stack therefore answers every `(S, A)` in the sweep
//! at once: walking from the most recent entry down to the referenced
//! block, count per set-count how many prior blocks share its set; the
//! reference hits in `(S, A)` iff that count is below `A`.
//!
//! Write-back accounting is *lazy*, which keeps misses cheap: a block
//! whose stack distance reaches `A` was evicted at the moment its
//! `A`-th same-set successor arrived, so a dirty bit surviving to the
//! block's next touch (or to a purge, or to the end of the trace) means
//! exactly one write-back happened — counted then, not at eviction
//! time. Statistics are only observed at the end, so the deferral is
//! invisible, and an access never has to walk past its own stack
//! distance (an absent block needs no walk at all). Dirty state is a
//! per-entry bitmask over the group's configurations.
//!
//! Inclusion requires that every access reorder the stack the same way
//! in every configuration. That holds for LRU with write-allocate; it
//! fails for FIFO and random replacement (no stack property) and for
//! write-through-no-allocate (a write miss does not insert, and whether
//! it misses depends on the configuration). Those configurations fall
//! back to grouped per-configuration replay — independent [`Cache`]
//! models fed from the same single trace traversal.
//!
//! The produced [`CacheStats`] are field-for-field identical to running
//! [`crate::sim::simulate`] per configuration (the property suite in
//! `tests/multi_equiv.rs` pins this down).

use crate::config::{CacheConfig, Replacement, SwitchPolicy, WritePolicy};
use crate::set_assoc::{AccessKind, Cache};
use crate::stats::CacheStats;
use atum_core::{RecordKind, Trace, TraceRecord, TraceSource, TraceStreamError};
use std::collections::{HashMap, HashSet};

const NIL: u32 = u32::MAX;

/// Whether a configuration can join a shared-stack group (LRU +
/// write-back; see the module docs for why the others cannot).
pub fn stackable(cfg: &CacheConfig) -> bool {
    cfg.replacement() == Replacement::Lru && cfg.write_policy() == WritePolicy::WriteBackAllocate
}

/// One entry of the global LRU stack.
#[derive(Debug, Clone)]
struct Node {
    block: u32,
    /// Per-configuration dirty bits (bit i = group's i-th config).
    dirty: u64,
    prev: u32,
    next: u32,
}

#[derive(Debug, Clone)]
struct GroupCfg {
    /// log2 of the set count.
    slog: usize,
    assoc: u32,
    /// Index into `simulate_many`'s input slice.
    orig: usize,
    bit: u64,
}

/// A shared-stack group: configurations with equal block size, switch
/// policy, LRU replacement and write-back policy.
///
/// Counters that are provably identical across the group's members —
/// access/kind totals, context switches, compulsory misses — are kept
/// once at group level; only hits and write-backs are per configuration
/// (misses are derived as `accesses - hits` at collection time).
#[derive(Debug)]
struct StackGroup {
    block_size: u32,
    switch: SwitchPolicy,
    cfgs: Vec<GroupCfg>,
    s_max: usize,
    all_mask: u64,

    nodes: Vec<Node>,
    head: u32,
    map: HashMap<(u8, u32), u32>,
    seen: HashSet<u64>,

    // Shared across every configuration in the group.
    accesses: u64,
    ifetches: u64,
    reads: u64,
    writes: u64,
    ctx_switches: u64,
    cold: u64,

    // Per configuration.
    hits: Vec<u64>,
    ifetch_hits: Vec<u64>,
    read_hits: Vec<u64>,
    write_hits: Vec<u64>,
    writebacks: Vec<u64>,
    invalidations: Vec<u64>,

    // Per-access scratch: same-set predecessor counts bucketed by
    // min(trailing zeros of block xor, s_max), and their suffix sums.
    bucket: Vec<u32>,
    dist: Vec<u32>,
}

impl StackGroup {
    fn new(configs: &[CacheConfig], orig_indices: &[usize]) -> StackGroup {
        assert!(orig_indices.len() <= 64, "dirty bitmask is 64 bits wide");
        let block_size = configs[orig_indices[0]].block();
        let switch = configs[orig_indices[0]].switch_policy();
        let cfgs: Vec<GroupCfg> = orig_indices
            .iter()
            .enumerate()
            .map(|(i, &orig)| {
                let c = &configs[orig];
                debug_assert_eq!(c.block(), block_size);
                debug_assert_eq!(c.switch_policy(), switch);
                GroupCfg {
                    slog: c.sets().trailing_zeros() as usize,
                    assoc: c.assoc(),
                    orig,
                    bit: 1u64 << i,
                }
            })
            .collect();
        let s_max = cfgs.iter().map(|c| c.slog).max().unwrap_or(0);
        let n = cfgs.len();
        StackGroup {
            block_size,
            switch,
            all_mask: if n == 64 { u64::MAX } else { (1u64 << n) - 1 },
            s_max,
            cfgs,
            nodes: Vec::new(),
            head: NIL,
            map: HashMap::new(),
            seen: HashSet::new(),
            accesses: 0,
            ifetches: 0,
            reads: 0,
            writes: 0,
            ctx_switches: 0,
            cold: 0,
            hits: vec![0; n],
            ifetch_hits: vec![0; n],
            read_hits: vec![0; n],
            write_hits: vec![0; n],
            writebacks: vec![0; n],
            invalidations: vec![0; n],
            bucket: vec![0; s_max + 1],
            dist: vec![0; s_max + 1],
        }
    }

    /// Assembles the full statistics for the group's `i`-th member.
    fn stats_for(&self, i: usize) -> CacheStats {
        CacheStats {
            accesses: self.accesses,
            hits: self.hits[i],
            misses: self.accesses - self.hits[i],
            cold_misses: self.cold,
            ifetch_accesses: self.ifetches,
            ifetch_misses: self.ifetches - self.ifetch_hits[i],
            read_accesses: self.reads,
            read_misses: self.reads - self.read_hits[i],
            write_accesses: self.writes,
            write_misses: self.writes - self.write_hits[i],
            writebacks: self.writebacks[i],
            write_throughs: 0,
            flush_invalidations: self.invalidations[i],
            context_switches: self.ctx_switches,
        }
    }

    fn context_switch(&mut self) {
        self.ctx_switches += 1;
        if self.switch == SwitchPolicy::Flush {
            self.flush();
        }
    }

    /// Purge accounting: every resident line counts an invalidation;
    /// every surviving dirty bit counts a write-back (resident ⇒ the
    /// purge writes it back now, non-resident ⇒ its past eviction did) —
    /// then the stack is emptied (first-touch history is kept, matching
    /// `Cache`).
    fn flush(&mut self) {
        let mut above: Vec<HashMap<u32, u32>> = vec![HashMap::new(); self.s_max + 1];
        let mut cur = self.head;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            for (i, c) in self.cfgs.iter().enumerate() {
                let set = node.block & ((1u32 << c.slog) - 1);
                let pos = above[c.slog].get(&set).copied().unwrap_or(0);
                if pos < c.assoc {
                    self.invalidations[i] += 1;
                }
                if node.dirty & c.bit != 0 {
                    self.writebacks[i] += 1;
                }
            }
            for (s, counts) in above.iter_mut().enumerate() {
                *counts.entry(node.block & ((1u32 << s) - 1)).or_insert(0) += 1;
            }
            cur = node.next;
        }
        self.nodes.clear();
        self.map.clear();
        self.head = NIL;
    }

    /// End-of-trace settlement for the lazy write-back accounting: a
    /// dirty bit on a block that is no longer resident records an
    /// eviction-time write-back that was deferred; resident dirty lines
    /// stay uncounted (they are still in the cache), matching `Cache`.
    fn finish(&mut self) {
        let mut above: Vec<HashMap<u32, u32>> = vec![HashMap::new(); self.s_max + 1];
        let mut cur = self.head;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            if node.dirty != 0 {
                for (i, c) in self.cfgs.iter().enumerate() {
                    if node.dirty & c.bit == 0 {
                        continue;
                    }
                    let set = node.block & ((1u32 << c.slog) - 1);
                    let pos = above[c.slog].get(&set).copied().unwrap_or(0);
                    if pos >= c.assoc {
                        self.writebacks[i] += 1;
                    }
                }
            }
            for (s, counts) in above.iter_mut().enumerate() {
                *counts.entry(node.block & ((1u32 << s) - 1)).or_insert(0) += 1;
            }
            cur = node.next;
        }
    }

    /// Computes suffix sums of the tz buckets into `dist` (so
    /// `dist[s]` = same-set predecessors seen so far for set count
    /// `2^s`), returning whether every configuration is already a
    /// decided miss.
    fn all_decided(&mut self) -> bool {
        let mut acc = 0u32;
        for s in (0..=self.s_max).rev() {
            acc += self.bucket[s];
            self.dist[s] = acc;
        }
        self.cfgs.iter().all(|c| self.dist[c.slog] >= c.assoc)
    }

    fn access(&mut self, addr: u32, kind: AccessKind, pid: u8) {
        let is_write = kind.is_write();
        self.accesses += 1;
        match kind {
            AccessKind::IFetch => self.ifetches += 1,
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
        let pid_tag = match self.switch {
            SwitchPolicy::PidTag => pid,
            _ => 0,
        };
        let blockno = addr / self.block_size;
        let target = self.map.get(&(pid_tag, blockno)).copied();

        let mut hit_mask = 0u64;
        match target {
            None => {
                // A first touch is a compulsory miss in every
                // configuration simultaneously; any other absent block
                // (purged earlier) misses everywhere too. Either way no
                // stack walk is needed.
                if self.seen.insert(((pid_tag as u64) << 32) | blockno as u64) {
                    self.cold += 1;
                }
            }
            Some(tnode) => {
                // Walk MRU → LRU up to the referenced block, bucketing
                // each predecessor by how many low block-number bits it
                // shares (one O(1) update per node). Periodically stop
                // early once every configuration's same-set count has
                // reached its associativity — all decided misses.
                self.bucket.fill(0);
                let mut cur = self.head;
                let mut batch = 0u32;
                while cur != NIL && cur != tnode {
                    let node = &self.nodes[cur as usize];
                    let tz = (node.block ^ blockno).trailing_zeros() as usize;
                    let next = node.next;
                    self.bucket[tz.min(self.s_max)] += 1;
                    batch += 1;
                    if batch == 64 {
                        batch = 0;
                        if self.all_decided() {
                            break;
                        }
                    }
                    cur = next;
                }
                let decided_all = self.all_decided();
                let old_dirty = self.nodes[tnode as usize].dirty;
                for (i, c) in self.cfgs.iter().enumerate() {
                    if !decided_all && self.dist[c.slog] < c.assoc {
                        self.hits[i] += 1;
                        match kind {
                            AccessKind::IFetch => self.ifetch_hits[i] += 1,
                            AccessKind::Read => self.read_hits[i] += 1,
                            AccessKind::Write => self.write_hits[i] += 1,
                        }
                        hit_mask |= c.bit;
                    } else if old_dirty & c.bit != 0 {
                        // Lazy write-back: a miss on a block still in the
                        // stack means it was evicted since its last touch;
                        // a surviving dirty bit records that the eviction
                        // wrote it back. The bit itself is dropped by the
                        // `hit_mask` filter below.
                        self.writebacks[i] += 1;
                    }
                }
            }
        }

        // Allocate-on-miss everywhere (write-back groups only), so every
        // configuration reorders identically: move/insert at MRU. Hit
        // configurations keep their dirty bit; miss configurations start
        // the fresh line clean unless this access writes it.
        let old_dirty = match target {
            Some(t) => {
                self.unlink(t);
                self.nodes[t as usize].dirty
            }
            None => 0,
        };
        let dirty = (old_dirty & hit_mask) | if is_write { self.all_mask } else { 0 };
        match target {
            Some(t) => {
                self.nodes[t as usize].dirty = dirty;
                self.push_front(t);
            }
            None => {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node {
                    block: blockno,
                    dirty,
                    prev: NIL,
                    next: NIL,
                });
                self.map.insert((pid_tag, blockno), idx);
                self.push_front(idx);
            }
        }
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
    }
}

/// The incremental form of [`simulate_many`]: sweep state that consumes
/// records one at a time, so callers can drive it from an in-memory
/// trace or any [`TraceSource`] without materialising the records.
#[derive(Debug)]
pub struct MultiSim {
    n: usize,
    groups: Vec<StackGroup>,
    direct: Vec<(usize, Cache)>,
}

impl MultiSim {
    /// Prepares a sweep over `cfgs`: stackable configurations join
    /// shared-stack groups, the rest get independent [`Cache`] replays.
    pub fn new(cfgs: &[CacheConfig]) -> MultiSim {
        let mut direct: Vec<(usize, Cache)> = Vec::new();
        let mut grouped: HashMap<(u32, u8), Vec<usize>> = HashMap::new();
        for (i, c) in cfgs.iter().enumerate() {
            if stackable(c) {
                grouped
                    .entry((c.block(), c.switch_policy() as u8))
                    .or_default()
                    .push(i);
            } else {
                direct.push((i, Cache::new(*c)));
            }
        }
        // A one-config group gets no amortization from the shared stack
        // and would pay its walk costs for nothing — replay it directly.
        let mut groups: Vec<StackGroup> = Vec::new();
        for indices in grouped.values() {
            for chunk in indices.chunks(64) {
                if chunk.len() == 1 {
                    direct.push((chunk[0], Cache::new(cfgs[chunk[0]])));
                } else {
                    groups.push(StackGroup::new(cfgs, chunk));
                }
            }
        }
        MultiSim {
            n: cfgs.len(),
            groups,
            direct,
        }
    }

    /// Feeds one trace record to every engine.
    pub fn step(&mut self, r: &TraceRecord) {
        match r.kind() {
            RecordKind::CtxSwitch => {
                for g in &mut self.groups {
                    g.context_switch();
                }
                for (_, c) in &mut self.direct {
                    c.context_switch(r.pid());
                }
            }
            kind => {
                if let Some(access) = crate::sim::record_kind_to_access(kind) {
                    for g in &mut self.groups {
                        g.access(r.addr, access, r.pid());
                    }
                    for (_, c) in &mut self.direct {
                        c.access(r.addr, access, r.pid());
                    }
                }
            }
        }
    }

    /// Settles the lazy write-back accounting and assembles the final
    /// statistics, index-aligned with the input configurations.
    pub fn finish(mut self) -> Vec<CacheStats> {
        let mut out = vec![CacheStats::default(); self.n];
        for g in &mut self.groups {
            g.finish();
        }
        for g in &self.groups {
            for (i, c) in g.cfgs.iter().enumerate() {
                out[c.orig] = g.stats_for(i);
            }
        }
        for (orig, c) in &self.direct {
            out[*orig] = *c.stats();
        }
        out
    }
}

/// Simulates every configuration in one traversal of the trace.
///
/// Results are index-aligned with `cfgs` and identical to calling
/// [`crate::sim::simulate`] per configuration. LRU write-back
/// configurations sharing a block size and switch policy are evaluated
/// by the stack-distance engine; the rest replay on independent
/// [`Cache`] models driven from the same traversal.
pub fn simulate_many(trace: &Trace, cfgs: &[CacheConfig]) -> Vec<CacheStats> {
    let mut sim = MultiSim::new(cfgs);
    for r in trace.iter() {
        sim.step(r);
    }
    sim.finish()
}

/// The out-of-core form of [`simulate_many`]: one traversal of any
/// [`TraceSource`] — an on-disk segment file streams through at
/// O(segment) resident memory, and the results are identical to the
/// in-memory pass over the same records.
///
/// # Errors
///
/// Any [`TraceStreamError`] from the source.
pub fn simulate_many_stream<S: TraceSource>(
    source: &mut S,
    cfgs: &[CacheConfig],
) -> Result<Vec<CacheStats>, TraceStreamError> {
    let mut sim = MultiSim::new(cfgs);
    source.stream(&mut |batch| {
        for r in batch {
            sim.step(r);
        }
    })?;
    Ok(sim.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use atum_core::TraceRecord;

    fn trace_with_switches() -> Trace {
        let mut t = Trace::new();
        // Two processes ping-ponging over overlapping footprints, with
        // strided writes so write-back accounting is exercised.
        for round in 0..30u32 {
            let pid = (round % 3) as u8 + 1;
            t.push(TraceRecord::new(RecordKind::CtxSwitch, 0, 0, pid, true));
            for b in 0..48u32 {
                let addr = (b * 16 + round * 8) % 4096;
                let kind = if b % 5 == 0 {
                    RecordKind::Write
                } else if b % 7 == 0 {
                    RecordKind::IFetch
                } else {
                    RecordKind::Read
                };
                t.push(TraceRecord::new(kind, addr, 4, pid, false));
            }
        }
        t
    }

    fn sweep_configs(switch: SwitchPolicy) -> Vec<CacheConfig> {
        let mut v = Vec::new();
        for size in [256u32, 512, 1024, 4096] {
            for assoc in [1u32, 2, 4] {
                v.push(
                    CacheConfig::builder()
                        .size(size)
                        .block(16)
                        .assoc(assoc)
                        .switch_policy(switch)
                        .build()
                        .unwrap(),
                );
            }
        }
        v
    }

    #[test]
    fn matches_reference_for_each_switch_policy() {
        let t = trace_with_switches();
        for switch in [
            SwitchPolicy::Ignore,
            SwitchPolicy::Flush,
            SwitchPolicy::PidTag,
        ] {
            let cfgs = sweep_configs(switch);
            let many = simulate_many(&t, &cfgs);
            for (cfg, got) in cfgs.iter().zip(&many) {
                let want = simulate(&t, cfg);
                assert_eq!(*got, want, "mismatch under {cfg}");
            }
        }
    }

    #[test]
    fn non_lru_configs_fall_back_and_still_match() {
        let t = trace_with_switches();
        let cfgs: Vec<CacheConfig> = [Replacement::Fifo, Replacement::Random, Replacement::Lru]
            .into_iter()
            .map(|r| {
                CacheConfig::builder()
                    .size(512)
                    .block(16)
                    .assoc(2)
                    .replacement(r)
                    .build()
                    .unwrap()
            })
            .collect();
        let many = simulate_many(&t, &cfgs);
        for (cfg, got) in cfgs.iter().zip(&many) {
            assert_eq!(*got, simulate(&t, cfg), "mismatch under {cfg}");
        }
    }

    #[test]
    fn write_through_falls_back() {
        let cfg = CacheConfig::builder()
            .size(512)
            .block(16)
            .write_policy(WritePolicy::WriteThroughNoAllocate)
            .build()
            .unwrap();
        assert!(!stackable(&cfg));
        let t = trace_with_switches();
        assert_eq!(simulate_many(&t, &[cfg])[0], simulate(&t, &cfg));
    }

    #[test]
    fn mixed_block_sizes_split_into_groups() {
        let t = trace_with_switches();
        let cfgs: Vec<CacheConfig> = [8u32, 16, 32]
            .into_iter()
            .map(|b| CacheConfig::builder().size(1024).block(b).build().unwrap())
            .collect();
        let many = simulate_many(&t, &cfgs);
        for (cfg, got) in cfgs.iter().zip(&many) {
            assert_eq!(*got, simulate(&t, cfg), "mismatch under {cfg}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(simulate_many(&Trace::new(), &[]).is_empty());
    }

    #[test]
    fn streamed_matches_in_memory() {
        let t = trace_with_switches();
        for switch in [
            SwitchPolicy::Ignore,
            SwitchPolicy::Flush,
            SwitchPolicy::PidTag,
        ] {
            let cfgs = sweep_configs(switch);
            let want = simulate_many(&t, &cfgs);
            assert_eq!(simulate_many_stream(&mut &t, &cfgs).unwrap(), want);
        }
    }
}
