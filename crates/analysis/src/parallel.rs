//! A small deterministic fork-join helper (no external dependencies).
//!
//! Experiment fan-out — per-workload captures, per-experiment report
//! generation — is embarrassingly parallel, but the `experiments` binary
//! promises byte-identical output regardless of `--jobs`. The contract
//! here makes that trivial: [`parallel_map`] returns results **in item
//! order**, whatever order the worker threads finished in, and every
//! job itself is deterministic (the simulated machine has no wall-clock
//! or host-randomness inputs). Thread count therefore affects wall
//! clock only, never results.

use atum_conc::sync::atomic::{AtomicUsize, Ordering};
use atum_conc::sync::Mutex;
use atum_conc::thread;
use std::collections::VecDeque;
use std::num::NonZeroUsize;

/// Global default thread count used by experiment internals (the
/// per-workload capture fan inside T2, for example). 0 = not set; fall
/// back to the host's available parallelism.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the default thread count used where experiments fan out
/// internally. 0 restores the host default.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The current default thread count (see [`set_jobs`]).
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `items` on up to `jobs` scoped threads, returning the
/// results **in input order** — output is independent of scheduling, so
/// callers get byte-identical results at any thread count. `f` receives
/// `(index, item)`. A panicking job propagates the panic to the caller.
pub fn parallel_map<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }

    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop_front();
                match next {
                    Some((i, item)) => {
                        // Re-thrown with its original payload below, so a
                        // failing job reads the same as it would inline.
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item)))
                        {
                            Ok(out) => *slots[i].lock().expect("slot poisoned") = Some(out),
                            Err(payload) => {
                                panicked.lock().expect("panic slot").get_or_insert(payload);
                                queue.lock().expect("queue poisoned").clear();
                                break;
                            }
                        }
                    }
                    None => break,
                }
            });
        }
    });
    if let Some(payload) = panicked.into_inner().expect("panic slot") {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("every job ran to completion")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        // Jobs finish in scrambled order (later items sleep less); the
        // result order must still match the input.
        let items: Vec<u64> = (0..32).collect();
        let got = parallel_map(8, items.clone(), |i, x| {
            std::thread::sleep(std::time::Duration::from_micros(500 - 15 * i as u64));
            x * 2
        });
        assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let work =
            |_: usize, x: u64| -> u64 { (0..x).fold(x, |a, b| a.wrapping_mul(31).wrapping_add(b)) };
        let items: Vec<u64> = (0..100).collect();
        let one = parallel_map(1, items.clone(), work);
        let four = parallel_map(4, items.clone(), work);
        let many = parallel_map(16, items, work);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(
            parallel_map(8, vec![7], |i, x: i32| (i, x * 3)),
            vec![(0, 21)]
        );
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(4, Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn job_panics_propagate() {
        parallel_map(2, vec![1, 2, 3], |_, x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
