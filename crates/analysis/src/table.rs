//! Report rendering: aligned text tables and CSV.

use std::fmt;

/// A simple table: headers plus string rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            writeln!(f, "{}", line.trim_end())
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// A rendered experiment: id, title, tables and notes.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id (e.g. "F1").
    pub id: String,
    /// Human title.
    pub title: String,
    /// The tables, each with a caption.
    pub tables: Vec<(String, Table)>,
    /// Free-form observations (expected shape vs measured).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str) -> Report {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            ..Report::default()
        }
    }

    /// Adds a captioned table.
    pub fn table(&mut self, caption: &str, table: Table) -> &mut Report {
        self.tables.push((caption.to_string(), table));
        self
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Report {
        self.notes.push(text.into());
        self
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        for (caption, table) in &self.tables {
            writeln!(f, "\n{caption}:\n")?;
            write!(f, "{table}")?;
        }
        if !self.notes.is_empty() {
            writeln!(f)?;
            for n in &self.notes {
                writeln!(f, "* {n}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1"]);
        t.row(["longer", "22"]);
        let s = t.to_string();
        assert!(s.contains("name"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1,5", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn report_renders() {
        let mut r = Report::new("F1", "miss rate vs size");
        let mut t = Table::new(["size", "miss%"]);
        t.row(["1K", "12.3"]);
        r.table("main", t).note("shape holds");
        let s = r.to_string();
        assert!(s.contains("## F1"));
        assert!(s.contains("shape holds"));
    }
}
