//! Capture helpers: boot a workload set under MOSS, run with or without
//! the tracer attached, collect results.

use atum_core::{CaptureSession, Trace, Tracer};
use atum_machine::{Machine, RefCounts, RunExit};
use atum_os::BootImage;
use atum_workloads::Workload;
use std::fmt;

/// Error from a capture run.
#[derive(Debug, Clone)]
pub enum RunnerError {
    /// Boot image construction failed.
    Boot(String),
    /// The machine did not halt within the budget.
    NoHalt(RunExit),
    /// Tracer attach/extraction failure.
    Tracer(String),
    /// A workload checksum mismatched its mirror (stack miscomputed!).
    ChecksumMismatch {
        /// Expected digits, in pid order.
        expected: String,
        /// Actual console output.
        actual: String,
    },
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::Boot(e) => write!(f, "boot: {e}"),
            RunnerError::NoHalt(e) => write!(f, "no halt: {e}"),
            RunnerError::Tracer(e) => write!(f, "tracer: {e}"),
            RunnerError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected digits {expected}, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for RunnerError {}

/// Results of a traced run.
#[derive(Debug)]
pub struct CapturedRun {
    /// The captured complete-system trace.
    pub trace: Trace,
    /// Microcycles elapsed.
    pub cycles: u64,
    /// Instructions executed.
    pub insns: u64,
    /// Console output.
    pub console: String,
    /// Hardware reference counters (cross-check against the trace).
    pub counts: RefCounts,
    /// Buffer drains performed during capture.
    pub drains: u32,
}

fn build(workloads: &[Workload], quantum: u32) -> Result<BootImage, RunnerError> {
    let mut b = BootImage::builder().quantum(quantum);
    for w in workloads {
        b = b.user_program(&w.source);
    }
    b.build().map_err(|e| RunnerError::Boot(e.to_string()))
}

fn verify_checksums(workloads: &[Workload], console: &str) -> Result<(), RunnerError> {
    let mut got: Vec<char> = console.chars().collect();
    let mut want: Vec<char> = workloads
        .iter()
        .flat_map(|w| w.expected_output.chars())
        .collect();
    got.sort_unstable();
    want.sort_unstable();
    if got != want {
        return Err(RunnerError::ChecksumMismatch {
            expected: want.into_iter().collect(),
            actual: console.to_string(),
        });
    }
    Ok(())
}

/// Runs a workload mix untraced; returns (cycles, insns, counts).
///
/// # Errors
///
/// Any [`RunnerError`]; checksums are verified.
pub fn run_untraced(
    workloads: &[Workload],
    quantum: u32,
    budget: u64,
) -> Result<(u64, u64, RefCounts), RunnerError> {
    let image = build(workloads, quantum)?;
    let mut m = Machine::new(image.memory_layout());
    image
        .load_into(&mut m)
        .map_err(|e| RunnerError::Boot(e.to_string()))?;
    match m.run(budget) {
        RunExit::Halted => {}
        other => return Err(RunnerError::NoHalt(other)),
    }
    let console = String::from_utf8_lossy(&m.take_console_output()).to_string();
    verify_checksums(workloads, &console)?;
    Ok((m.cycles(), m.insns(), *m.counts()))
}

/// Boots a mix under MOSS with the ATUM tracer attached and captures the
/// complete-system trace (stitching drains as needed).
///
/// # Errors
///
/// Any [`RunnerError`]; checksums are verified.
pub fn capture_mix(
    workloads: &[Workload],
    quantum: u32,
    budget: u64,
) -> Result<CapturedRun, RunnerError> {
    capture_mix_with_style(workloads, quantum, budget, atum_core::PatchStyle::Scratch)
}

/// As [`capture_mix`] with an explicit patch style.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn capture_mix_with_style(
    workloads: &[Workload],
    quantum: u32,
    budget: u64,
    style: atum_core::PatchStyle,
) -> Result<CapturedRun, RunnerError> {
    let image = build(workloads, quantum)?;
    let mut m = Machine::new(image.memory_layout());
    image
        .load_into(&mut m)
        .map_err(|e| RunnerError::Boot(e.to_string()))?;
    let tracer =
        Tracer::attach_with_style(&mut m, style).map_err(|e| RunnerError::Tracer(e.to_string()))?;
    tracer.set_pid(&mut m, 0); // boot/kernel before the first dispatch
    let capture = CaptureSession::new(&tracer, budget)
        .run(&mut m)
        .map_err(|e| RunnerError::Tracer(e.to_string()))?;
    if capture.exit != RunExit::Halted {
        return Err(RunnerError::NoHalt(capture.exit));
    }
    let console = String::from_utf8_lossy(&m.take_console_output()).to_string();
    verify_checksums(workloads, &console)?;
    Ok(CapturedRun {
        trace: capture.trace,
        cycles: m.cycles(),
        insns: m.insns(),
        console,
        counts: *m.counts(),
        drains: capture.drains,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untraced_and_traced_agree_on_work() {
        let mix = vec![atum_workloads::list_chase("l", 64, 500)];
        let (cycles, insns, _) = run_untraced(&mix, 20_000, 1_000_000_000).unwrap();
        let cap = capture_mix(&mix, 20_000, 10_000_000_000).unwrap();
        // The user-level work is identical (checksums verified inside the
        // helpers). Total instructions differ slightly because the slowed
        // machine takes *more timer interrupts* per unit of work — the
        // time-dilation artifact real-time tracers like ATUM really had.
        assert!(cap.insns >= insns, "traced run can only add OS work");
        assert!(
            (cap.insns as f64) < insns as f64 * 1.5,
            "dilation should be modest: {insns} vs {}",
            cap.insns
        );
        assert!(cap.cycles > cycles, "tracing costs cycles");
        assert!(cap.trace.ref_count() > 0);
    }

    #[test]
    fn checksum_verification_catches_mismatch() {
        let mut w = atum_workloads::fib_recursive("f", 10);
        w.expected_output = "zz".to_string(); // sabotage
        let err = run_untraced(&[w], 20_000, 1_000_000_000).unwrap_err();
        assert!(matches!(err, RunnerError::ChecksumMismatch { .. }));
    }
}
