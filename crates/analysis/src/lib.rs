//! # atum-analysis — the reproduced evaluation
//!
//! Experiment runners that regenerate every table and figure of the
//! reconstructed ATUM evaluation (see `DESIGN.md` for the index and the
//! mapping to the paper). Each experiment captures traces on the
//! microcoded machine, drives the cache/TLB simulators, and renders a
//! [`Report`] — an aligned text table plus CSV — that the `atum-bench`
//! `experiments` binary prints and `EXPERIMENTS.md` records.
//!
//! ```no_run
//! use atum_analysis::{experiments, Scale};
//!
//! let report = experiments::t1_technique_comparison(Scale::Quick).unwrap();
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod parallel;
mod runner;
mod table;
pub mod working_set;

pub use parallel::{parallel_map, set_jobs};
pub use runner::{capture_mix, run_untraced, CapturedRun, RunnerError};
pub use table::{Report, Table};
pub use working_set::{
    working_set, working_set_curve, working_set_curve_parallel, working_set_curve_stream,
    working_set_stream, WorkingSet,
};

/// Experiment scale: `Quick` for tests/smoke, `Full` for the recorded
/// evaluation numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small instances; seconds even in debug builds.
    Quick,
    /// The instances recorded in EXPERIMENTS.md; run in release builds.
    Full,
}
