//! Working-set analysis (Denning working sets over trace windows).
//!
//! The working set of a trace at window size `w` is the number of
//! distinct pages touched in each consecutive window of `w` references;
//! its average is the classic memory-demand curve. Complete-system
//! traces show both the OS's own footprint and the *compounding* of
//! per-process footprints across context switches.

use atum_core::Trace;
use std::collections::HashMap;

/// The working-set measurement for one window size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkingSet {
    /// Window length in references.
    pub window: usize,
    /// Mean distinct pages per window.
    pub mean_pages: f64,
    /// Largest window observed.
    pub max_pages: usize,
    /// Number of windows measured.
    pub windows: usize,
}

/// Computes the working set of `trace` at one window size. Pages are
/// distinguished per process id (two processes touching the same VA are
/// two pages of demand).
pub fn working_set(trace: &Trace, window: usize) -> WorkingSet {
    assert!(window > 0, "window must be positive");
    let mut mean_acc = 0f64;
    let mut max_pages = 0usize;
    let mut windows = 0usize;
    let mut current: HashMap<(u8, u32), u32> = HashMap::new();
    let mut in_window = 0usize;
    for r in trace.refs() {
        *current.entry((r.pid(), r.page())).or_insert(0) += 1;
        in_window += 1;
        if in_window == window {
            mean_acc += current.len() as f64;
            max_pages = max_pages.max(current.len());
            windows += 1;
            current.clear();
            in_window = 0;
        }
    }
    WorkingSet {
        window,
        mean_pages: if windows == 0 {
            0.0
        } else {
            mean_acc / windows as f64
        },
        max_pages,
        windows,
    }
}

/// Computes the working-set curve across several window sizes.
pub fn working_set_curve(trace: &Trace, windows: &[usize]) -> Vec<WorkingSet> {
    windows.iter().map(|&w| working_set(trace, w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_core::{RecordKind, TraceRecord};

    fn trace_of(pages: &[(u8, u32)]) -> Trace {
        pages
            .iter()
            .map(|&(pid, page)| TraceRecord::new(RecordKind::Read, page * 512, 4, pid, false))
            .collect()
    }

    #[test]
    fn single_page_working_set_is_one() {
        let t = trace_of(&[(1, 5); 100]);
        let ws = working_set(&t, 10);
        assert_eq!(ws.mean_pages, 1.0);
        assert_eq!(ws.max_pages, 1);
        assert_eq!(ws.windows, 10);
    }

    #[test]
    fn distinct_pages_counted() {
        let t = trace_of(&[(1, 0), (1, 1), (1, 2), (1, 3)]);
        let ws = working_set(&t, 4);
        assert_eq!(ws.mean_pages, 4.0);
    }

    #[test]
    fn pids_separate_demand() {
        // Same VA from two pids is two pages of demand.
        let t = trace_of(&[(1, 7), (2, 7), (1, 7), (2, 7)]);
        let ws = working_set(&t, 4);
        assert_eq!(ws.mean_pages, 2.0);
    }

    #[test]
    fn curve_is_monotone_in_window() {
        let pages: Vec<(u8, u32)> = (0..4096u32).map(|i| (1, i % 37)).collect();
        let t = trace_of(&pages);
        let curve = working_set_curve(&t, &[8, 64, 512]);
        assert!(curve[0].mean_pages <= curve[1].mean_pages);
        assert!(curve[1].mean_pages <= curve[2].mean_pages);
        assert!(curve[2].mean_pages <= 37.0);
    }

    #[test]
    fn markers_do_not_count() {
        let mut t = trace_of(&[(1, 0), (1, 1)]);
        t.push(TraceRecord::new(RecordKind::CtxSwitch, 0x9000, 0, 2, true));
        let ws = working_set(&t, 2);
        assert_eq!(ws.windows, 1);
        assert_eq!(ws.mean_pages, 2.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        working_set(&Trace::new(), 0);
    }
}
