//! Working-set analysis (Denning working sets over trace windows).
//!
//! The working set of a trace at window size `w` is the number of
//! distinct pages touched in each consecutive window of `w` references;
//! its average is the classic memory-demand curve. Complete-system
//! traces show both the OS's own footprint and the *compounding* of
//! per-process footprints across context switches.

use atum_core::{Trace, TraceRecord, TraceSource, TraceStreamError};
use std::collections::HashMap;

/// The working-set measurement for one window size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkingSet {
    /// Window length in references.
    pub window: usize,
    /// Mean distinct pages per window.
    pub mean_pages: f64,
    /// Largest window observed.
    pub max_pages: usize,
    /// Number of windows measured.
    pub windows: usize,
}

/// Incremental working-set state for one window size: feed references
/// with [`WsState::step`], settle with [`WsState::finish`].
#[derive(Debug)]
struct WsState {
    window: usize,
    mean_acc: f64,
    max_pages: usize,
    windows: usize,
    current: HashMap<(u8, u32), u32>,
    in_window: usize,
}

impl WsState {
    fn new(window: usize) -> WsState {
        assert!(window > 0, "window must be positive");
        WsState {
            window,
            mean_acc: 0.0,
            max_pages: 0,
            windows: 0,
            current: HashMap::new(),
            in_window: 0,
        }
    }

    fn step(&mut self, r: &TraceRecord) {
        if !r.is_ref() {
            return;
        }
        *self.current.entry((r.pid(), r.page())).or_insert(0) += 1;
        self.in_window += 1;
        if self.in_window == self.window {
            self.mean_acc += self.current.len() as f64;
            self.max_pages = self.max_pages.max(self.current.len());
            self.windows += 1;
            self.current.clear();
            self.in_window = 0;
        }
    }

    fn finish(&self) -> WorkingSet {
        WorkingSet {
            window: self.window,
            mean_pages: if self.windows == 0 {
                0.0
            } else {
                self.mean_acc / self.windows as f64
            },
            max_pages: self.max_pages,
            windows: self.windows,
        }
    }
}

/// Computes the working set of `trace` at one window size. Pages are
/// distinguished per process id (two processes touching the same VA are
/// two pages of demand).
pub fn working_set(trace: &Trace, window: usize) -> WorkingSet {
    let mut state = WsState::new(window);
    for r in trace.iter() {
        state.step(r);
    }
    state.finish()
}

/// The out-of-core form of [`working_set`]: one pass over any
/// [`TraceSource`], identical results to the in-memory form over the
/// same records.
///
/// # Errors
///
/// Any [`TraceStreamError`] from the source.
pub fn working_set_stream<S: TraceSource>(
    source: &mut S,
    window: usize,
) -> Result<WorkingSet, TraceStreamError> {
    let mut state = WsState::new(window);
    source.stream(&mut |batch| {
        for r in batch {
            state.step(r);
        }
    })?;
    Ok(state.finish())
}

/// Computes the working-set curve across several window sizes.
pub fn working_set_curve(trace: &Trace, windows: &[usize]) -> Vec<WorkingSet> {
    windows.iter().map(|&w| working_set(trace, w)).collect()
}

/// The out-of-core form of [`working_set_curve`]: every window size is
/// measured in a **single pass** over the source (window states are
/// independent, so one traversal feeds them all) — crucial for file
/// sources, where the in-memory form would re-read the file per window.
///
/// # Errors
///
/// Any [`TraceStreamError`] from the source.
pub fn working_set_curve_stream<S: TraceSource>(
    source: &mut S,
    windows: &[usize],
) -> Result<Vec<WorkingSet>, TraceStreamError> {
    let mut states: Vec<WsState> = windows.iter().map(|&w| WsState::new(w)).collect();
    source.stream(&mut |batch| {
        for r in batch {
            for s in &mut states {
                s.step(r);
            }
        }
    })?;
    Ok(states.iter().map(WsState::finish).collect())
}

/// The engine-parallel form of [`working_set_curve_stream`]: the
/// per-window states are independent sequential consumers, so record
/// batches are broadcast to them sharded over up to `jobs` worker
/// threads. Every state still sees every reference in trace order, so
/// the curve is identical to the serial pass at any `jobs`.
///
/// # Errors
///
/// Any [`TraceStreamError`] from the source.
pub fn working_set_curve_parallel<S: TraceSource + ?Sized>(
    source: &mut S,
    windows: &[usize],
    jobs: usize,
) -> Result<Vec<WorkingSet>, TraceStreamError> {
    let mut states: Vec<WsState> = windows.iter().map(|&w| WsState::new(w)).collect();
    atum_core::broadcast_batches(source, &mut states, jobs, |state, batch| {
        for r in batch.iter() {
            state.step(&r);
        }
    })?;
    Ok(states.iter().map(WsState::finish).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_core::{RecordKind, TraceRecord};

    fn trace_of(pages: &[(u8, u32)]) -> Trace {
        pages
            .iter()
            .map(|&(pid, page)| TraceRecord::new(RecordKind::Read, page * 512, 4, pid, false))
            .collect()
    }

    #[test]
    fn single_page_working_set_is_one() {
        let t = trace_of(&[(1, 5); 100]);
        let ws = working_set(&t, 10);
        assert_eq!(ws.mean_pages, 1.0);
        assert_eq!(ws.max_pages, 1);
        assert_eq!(ws.windows, 10);
    }

    #[test]
    fn distinct_pages_counted() {
        let t = trace_of(&[(1, 0), (1, 1), (1, 2), (1, 3)]);
        let ws = working_set(&t, 4);
        assert_eq!(ws.mean_pages, 4.0);
    }

    #[test]
    fn pids_separate_demand() {
        // Same VA from two pids is two pages of demand.
        let t = trace_of(&[(1, 7), (2, 7), (1, 7), (2, 7)]);
        let ws = working_set(&t, 4);
        assert_eq!(ws.mean_pages, 2.0);
    }

    #[test]
    fn curve_is_monotone_in_window() {
        let pages: Vec<(u8, u32)> = (0..4096u32).map(|i| (1, i % 37)).collect();
        let t = trace_of(&pages);
        let curve = working_set_curve(&t, &[8, 64, 512]);
        assert!(curve[0].mean_pages <= curve[1].mean_pages);
        assert!(curve[1].mean_pages <= curve[2].mean_pages);
        assert!(curve[2].mean_pages <= 37.0);
    }

    #[test]
    fn markers_do_not_count() {
        let mut t = trace_of(&[(1, 0), (1, 1)]);
        t.push(TraceRecord::new(RecordKind::CtxSwitch, 0x9000, 0, 2, true));
        let ws = working_set(&t, 2);
        assert_eq!(ws.windows, 1);
        assert_eq!(ws.mean_pages, 2.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        working_set(&Trace::new(), 0);
    }

    #[test]
    fn streamed_forms_match_in_memory() {
        let pages: Vec<(u8, u32)> = (0..4096u32).map(|i| ((1 + i % 2) as u8, i % 53)).collect();
        let t = trace_of(&pages);
        let windows = [8usize, 64, 512];
        assert_eq!(
            working_set_stream(&mut t.source(), 64).unwrap(),
            working_set(&t, 64)
        );
        assert_eq!(
            working_set_curve_stream(&mut t.source(), &windows).unwrap(),
            working_set_curve(&t, &windows)
        );
    }

    #[test]
    fn parallel_curve_matches_serial_at_any_jobs() {
        let pages: Vec<(u8, u32)> = (0..8192u32).map(|i| ((1 + i % 3) as u8, i % 61)).collect();
        let t = trace_of(&pages);
        let windows = [8usize, 64, 512, 4096];
        let want = working_set_curve(&t, &windows);
        for jobs in [1, 2, 4] {
            assert_eq!(
                working_set_curve_parallel(&mut t.source(), &windows, jobs).unwrap(),
                want,
                "jobs={jobs}"
            );
        }
    }
}
