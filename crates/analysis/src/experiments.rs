//! The experiment registry — one function per table/figure of the
//! reconstructed evaluation (ids match DESIGN.md).

use crate::runner::{capture_mix, capture_mix_with_style, run_untraced, CapturedRun, RunnerError};
use crate::table::{Report, Table};
use crate::Scale;
use atum_baselines::{ArchExit, ArchSim, TbitTracer};
use atum_cache::{
    simulate, simulate_many, simulate_many_parallel, simulate_split, simulate_tlb,
    simulate_tlb_stream, sweep_block, Cache, CacheConfig, SwitchPolicy, TlbConfig, WritePolicy,
};
use atum_core::{PatchStyle, RecordKind, Trace};
use atum_workloads::Workload;

/// Budget generous enough for every experiment run.
const BUDGET: u64 = 200_000_000_000;

fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

fn mix(scale: Scale) -> Vec<Workload> {
    match scale {
        Scale::Quick => vec![
            atum_workloads::matrix("matrix", 8),
            atum_workloads::list_chase("list", 256, 4_000),
            atum_workloads::lexer("lexer", 2_048, 1),
        ],
        Scale::Full => atum_workloads::mix_std(),
    }
}

fn quantum(scale: Scale) -> u32 {
    // Short enough for plenty of context switches over a mix's lifetime,
    // long enough that a traced (slowed) machine still makes progress per
    // quantum — the dilation effect ATUM itself had to live with.
    match scale {
        Scale::Quick => 20_000,
        Scale::Full => 60_000,
    }
}

/// A quantum long enough that scheduler overhead is negligible: the
/// T1/A1 technique measurements isolate per-reference cost.
const MEASURE_QUANTUM: u32 = 1_000_000;

fn t1_workload(scale: Scale) -> Workload {
    match scale {
        Scale::Quick => atum_workloads::list_chase("probe", 64, 2_000),
        Scale::Full => atum_workloads::list_chase("probe", 512, 40_000),
    }
}

fn cache_sizes(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Quick => vec![1 << 10, 4 << 10, 16 << 10],
        Scale::Full => vec![
            1 << 10,
            2 << 10,
            4 << 10,
            8 << 10,
            16 << 10,
            32 << 10,
            64 << 10,
            128 << 10,
            256 << 10,
        ],
    }
}

/// Captures the standard mix once (shared by the F/E experiments).
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn capture_standard_mix(scale: Scale) -> Result<CapturedRun, RunnerError> {
    capture_mix(&mix(scale), quantum(scale), BUDGET)
}

// ── T1: technique comparison ──────────────────────────────────────────

/// T1 — the trace-technique comparison table: slowdown and completeness
/// of each capture method on the same workload.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn t1_technique_comparison(scale: Scale) -> Result<Report, RunnerError> {
    let w = t1_workload(scale);
    let solo = vec![w.clone()];
    let q = MEASURE_QUANTUM;

    let (base_cycles, _, base_counts) = run_untraced(&solo, q, BUDGET)?;
    let scratch = capture_mix_with_style(&solo, q, BUDGET, PatchStyle::Scratch)?;
    let spill = capture_mix_with_style(&solo, q, BUDGET, PatchStyle::Spill)?;
    let tbit = TbitTracer::default()
        .measure(&w.source)
        .map_err(|e| RunnerError::Tracer(e.to_string()))?;

    // The architectural simulator: user-level only, runs on the host.
    let img = atum_asm::assemble(&format!(".org 0x200\n{}\n", w.source))
        .map_err(|e| RunnerError::Boot(e.to_string()))?;
    let mut sim = ArchSim::new();
    sim.load_image(&img);
    sim.set_pc(img.symbol("start").unwrap_or(0x200));
    sim.enable_trace(1);
    let sim_exit = sim.run(500_000_000);
    let sim_refs = sim.trace().ref_count();

    let mut t = Table::new([
        "technique",
        "slowdown",
        "refs captured",
        "OS refs",
        "all processes",
        "data addrs",
    ]);
    t.row([
        "hardware monitor (ref.)".to_string(),
        "1.0x".to_string(),
        format!("{} (window-limited)", base_counts.total_refs()),
        "phys only".to_string(),
        "yes".to_string(),
        "yes".to_string(),
    ]);
    t.row([
        "ATUM (scratch-reg patch)".to_string(),
        format!("{:.1}x", scratch.cycles as f64 / base_cycles as f64),
        format!("{}", scratch.trace.ref_count()),
        "yes".to_string(),
        "yes".to_string(),
        "yes".to_string(),
    ]);
    t.row([
        "ATUM (state-spill patch, 8200-like)".to_string(),
        format!("{:.1}x", spill.cycles as f64 / base_cycles as f64),
        format!("{}", spill.trace.ref_count()),
        "yes".to_string(),
        "yes".to_string(),
        "yes".to_string(),
    ]);
    t.row([
        "T-bit trap tracer (PCs only)".to_string(),
        format!("{:.0}x", tbit.slowdown()),
        format!("{} PCs", tbit.pcs.len()),
        "no".to_string(),
        "no".to_string(),
        "no".to_string(),
    ]);
    t.row([
        "architectural simulator".to_string(),
        "~10^3-10^4x (runs off-machine)".to_string(),
        format!("{sim_refs} (user only)"),
        "no".to_string(),
        "no".to_string(),
        "yes".to_string(),
    ]);

    let mut r = Report::new("T1", "trace-capture technique comparison");
    r.table("slowdown and completeness by technique", t);
    r.note(format!(
        "untraced reference: {} cycles, {} refs; simulator exit: {:?}",
        base_cycles,
        base_counts.total_refs(),
        sim_exit == ArchExit::Exited
    ));
    r.note(
        "shape vs paper: microcode tracing is 1-2 orders of magnitude cheaper than \
         trap-driven tracing and captures everything; the scratch-register patch is \
         cheaper than the 8200's because SVX reserves spare micro-registers for patches",
    );
    Ok(r)
}

// ── T2: trace characteristics ─────────────────────────────────────────

/// T2 — the trace-characteristics table (the paper's per-benchmark trace
/// statistics): reference mix, OS fraction, switches, pages.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn t2_trace_characteristics(scale: Scale) -> Result<Report, RunnerError> {
    let suite = match scale {
        Scale::Quick => vec![
            atum_workloads::matrix("matrix", 6),
            atum_workloads::list_chase("list", 128, 2_000),
            atum_workloads::fib_recursive("fib", 12),
        ],
        Scale::Full => atum_workloads::suite_standard(),
    };
    let q = quantum(scale);
    // Floor: the *traced* context-switch path costs ~5–6k cycles; quanta
    // below that spiral into pure scheduling (the dilation effect ATUM
    // dealt with by tracing against a 10ms VMS clock, thousands of
    // instructions per tick even when slowed).
    let quanta: &[u32] = match scale {
        Scale::Quick => &[12_000, 40_000],
        Scale::Full => &[10_000, 20_000, 60_000, 240_000],
    };

    // Every capture this experiment needs, fanned across the job pool.
    // Each capture is deterministic, and `parallel_map` returns results
    // in input order, so rows are identical at any thread count.
    enum Job<'a> {
        Solo(&'a atum_workloads::Workload),
        Mix,
        Quantum(u32),
    }
    let jobs: Vec<Job> = suite
        .iter()
        .map(Job::Solo)
        .chain(std::iter::once(Job::Mix))
        .chain(quanta.iter().map(|&qq| Job::Quantum(qq)))
        .collect();
    let runs = crate::parallel::parallel_map(crate::parallel::jobs(), jobs, |_, j| match j {
        Job::Solo(w) => capture_mix(std::slice::from_ref(w), q, BUDGET),
        Job::Mix => capture_standard_mix(scale),
        Job::Quantum(qq) => capture_mix(&mix(scale), qq, BUDGET),
    });
    let mut runs = runs.into_iter();

    let mut t = Table::new([
        "workload", "refs", "%I", "%R", "%W", "%OS", "ctx", "pages", "drains",
    ]);
    for w in &suite {
        let run = runs.next().expect("solo run")?;
        let s = run.trace.stats();
        t.row([
            w.name.clone(),
            s.total_refs().to_string(),
            pct(s.ifetch_fraction()),
            pct(s.reads as f64 / s.total_refs().max(1) as f64),
            pct(s.write_fraction()),
            pct(s.os_fraction()),
            s.ctx_switches.to_string(),
            s.distinct_pages.to_string(),
            run.drains.to_string(),
        ]);
    }
    // The multiprogrammed mix as the final row.
    let run = runs.next().expect("mix run")?;
    let s = run.trace.stats();
    t.row([
        format!("mix({})", mix(scale).len()),
        s.total_refs().to_string(),
        pct(s.ifetch_fraction()),
        pct(s.reads as f64 / s.total_refs().max(1) as f64),
        pct(s.write_fraction()),
        pct(s.os_fraction()),
        s.ctx_switches.to_string(),
        s.distinct_pages.to_string(),
        run.drains.to_string(),
    ]);

    let mut r = Report::new("T2", "trace characteristics per workload");
    r.table("complete-system traces under MOSS", t);

    // OS fraction as a function of scheduling intensity: the quantum is
    // the knob that turns a batch machine into a timesharing one.
    let mut qt = Table::new(["quantum (cycles)", "%OS", "ctx switches"]);
    for &qq in quanta {
        let run = runs.next().expect("quantum run")?;
        let s = run.trace.stats();
        qt.row([
            qq.to_string(),
            pct(s.os_fraction()),
            s.ctx_switches.to_string(),
        ]);
    }
    r.table("standard mix: OS fraction vs scheduling quantum", qt);
    r.note(
        "shape vs paper: OS references are a solid fraction of every trace and \
         grow sharply with multiprogramming intensity (shorter quanta). The \
         paper's VMS traces sat in the tens of percent; MOSS is a micro-kernel, \
         so its baseline is lower, but the knob behaves identically",
    );
    Ok(r)
}

// ── F1: complete vs user-only miss rates ──────────────────────────────

/// F1 — cache miss rate vs size: complete-system trace vs the user-only
/// view of the same execution.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn f1_os_vs_user(scale: Scale, run: &CapturedRun) -> Result<Report, RunnerError> {
    let base = CacheConfig::builder()
        .block(16)
        .assoc(1)
        .switch_policy(SwitchPolicy::Ignore)
        .build()
        .expect("config");
    let sizes = cache_sizes(scale);
    let cfgs: Vec<CacheConfig> = sizes.iter().map(|&s| base.with_size(s)).collect();
    // One pass per trace evaluates the whole size sweep, with the
    // sweep's engines sharded over worker threads (results are
    // identical at any job count); the user-only pass streams through a
    // filtered view instead of copying the trace.
    let jobs = crate::parallel::jobs();
    let full = simulate_many_parallel(&mut run.trace.source(), &cfgs, jobs)
        .expect("in-memory source cannot fail");
    let uo = simulate_many_parallel(&mut run.trace.user_source(), &cfgs, jobs)
        .expect("in-memory source cannot fail");

    let mut t = Table::new(["size", "complete miss%", "user-only miss%", "gap (pp)"]);
    for (i, &size) in sizes.iter().enumerate() {
        t.row([
            format!("{}K", size / 1024),
            pct(full[i].miss_rate()),
            pct(uo[i].miss_rate()),
            format!("{:+.2}", 100.0 * (full[i].miss_rate() - uo[i].miss_rate())),
        ]);
    }
    let mut r = Report::new("F1", "miss rate vs cache size: complete vs user-only trace");
    r.table("direct-mapped, 16 B blocks", t);
    r.note(
        "shape vs paper: including OS references raises the miss rate at every \
         size, and the gap persists (or grows) as caches get larger — user-only \
         traces understate real miss rates",
    );
    Ok(r)
}

// ── F2: context-switch policy ─────────────────────────────────────────

/// F2 — miss rate vs size under multiprogramming: purge-on-switch vs
/// PID-tagged vs naive (ignore switches).
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn f2_switch_policy(scale: Scale, run: &CapturedRun) -> Result<Report, RunnerError> {
    let base = CacheConfig::builder()
        .block(16)
        .assoc(2)
        .build()
        .expect("config");
    let sizes = cache_sizes(scale);
    let policies = [
        SwitchPolicy::Flush,
        SwitchPolicy::PidTag,
        SwitchPolicy::Ignore,
    ];
    let mut cfgs = Vec::new();
    for &size in &sizes {
        for sw in policies {
            cfgs.push(base.with_size(size).with_switch(sw));
        }
    }
    // One traversal: the engine groups the sweep by switch policy into
    // three shared stacks.
    let stats = simulate_many(&run.trace, &cfgs);

    let mut t = Table::new(["size", "flush miss%", "pid-tag miss%", "naive miss%"]);
    for (i, &size) in sizes.iter().enumerate() {
        t.row([
            format!("{}K", size / 1024),
            pct(stats[3 * i].miss_rate()),
            pct(stats[3 * i + 1].miss_rate()),
            pct(stats[3 * i + 2].miss_rate()),
        ]);
    }
    let mut r = Report::new(
        "F2",
        "multiprogramming: purge-on-switch vs address-space tags",
    );
    r.table("2-way, 16 B blocks, complete trace", t);
    r.note(
        "shape vs paper: purging on every switch costs more as the cache grows \
         (big caches never warm up); tags recover most of it; the naive model \
         (ignoring switches) is optimistic because it aliases address spaces",
    );
    Ok(r)
}

// ── F3: block size ────────────────────────────────────────────────────

/// F3 — miss rate vs block size at two cache sizes.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn f3_block_size(scale: Scale, run: &CapturedRun) -> Result<Report, RunnerError> {
    let blocks: Vec<u32> = match scale {
        Scale::Quick => vec![8, 32, 128],
        Scale::Full => vec![4, 8, 16, 32, 64, 128],
    };
    let mut t = Table::new(["block", "8K miss%", "64K miss%"]);
    let base8 = CacheConfig::builder()
        .size(8 << 10)
        .assoc(2)
        .switch_policy(SwitchPolicy::PidTag)
        .build()
        .expect("config");
    let base64 = base8.with_size(64 << 10);
    let r8 = sweep_block(&run.trace, &base8, &blocks);
    let r64 = sweep_block(&run.trace, &base64, &blocks);
    for (i, &b) in blocks.iter().enumerate() {
        t.row([
            format!("{b}B"),
            pct(r8[i].1.miss_rate()),
            pct(r64[i].1.miss_rate()),
        ]);
    }
    let mut r = Report::new("F3", "miss rate vs block size");
    r.table("2-way, pid-tagged, complete trace", t);
    r.note(
        "shape vs paper: larger blocks exploit the I-stream's spatial locality \
         until pollution flattens (or reverses) the curve at small cache sizes",
    );
    Ok(r)
}

// ── F4: associativity ─────────────────────────────────────────────────

/// F4 — miss rate vs associativity at three cache sizes.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn f4_associativity(scale: Scale, run: &CapturedRun) -> Result<Report, RunnerError> {
    let ways: Vec<u32> = match scale {
        Scale::Quick => vec![1, 2, 4],
        Scale::Full => vec![1, 2, 4, 8],
    };
    let sizes = [4u32 << 10, 16 << 10, 64 << 10];
    let mut t = Table::new(["ways", "4K miss%", "16K miss%", "64K miss%"]);
    // The whole size × ways grid shares one stack-engine traversal.
    let mut cfgs = Vec::new();
    for &s in &sizes {
        for &w in &ways {
            cfgs.push(
                CacheConfig::builder()
                    .size(s)
                    .block(16)
                    .assoc(w)
                    .switch_policy(SwitchPolicy::PidTag)
                    .build()
                    .expect("config"),
            );
        }
    }
    let stats = simulate_many(&run.trace, &cfgs);
    for (i, &w) in ways.iter().enumerate() {
        t.row([
            format!("{w}"),
            pct(stats[i].miss_rate()),
            pct(stats[ways.len() + i].miss_rate()),
            pct(stats[2 * ways.len() + i].miss_rate()),
        ]);
    }
    let mut r = Report::new("F4", "miss rate vs associativity");
    r.table("16 B blocks, pid-tagged, complete trace", t);
    r.note(
        "shape vs paper: at sizes that hold the working set, 1→2 ways buys \
         the most and returns diminish after; at sizes under capacity \
         pressure extra ways can even hurt, because the multiprogrammed \
         processes share identical user VAs and tagged lines compete for \
         the smaller set count",
    );
    Ok(r)
}

// ── F5: TLB study ─────────────────────────────────────────────────────

/// F5 — TLB miss rate: entries × (flush vs tagged) × (complete vs
/// user-only trace).
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn f5_tlb(scale: Scale, run: &CapturedRun) -> Result<Report, RunnerError> {
    let entries: Vec<u32> = match scale {
        Scale::Quick => vec![16, 64],
        Scale::Full => vec![8, 16, 32, 64, 128, 256],
    };
    let mut t = Table::new([
        "entries",
        "flush miss%",
        "tagged miss%",
        "user-only tagged miss%",
    ]);
    for &e in &entries {
        let flush = simulate_tlb(&run.trace, &TlbConfig::new(e, 2, SwitchPolicy::Flush));
        let tag = simulate_tlb(&run.trace, &TlbConfig::new(e, 2, SwitchPolicy::PidTag));
        // The user-only view streams straight off the complete trace —
        // no per-entry copy.
        let ut = simulate_tlb_stream(
            &mut run.trace.user_source(),
            &TlbConfig::new(e, 2, SwitchPolicy::PidTag),
        )
        .expect("in-memory source cannot fail");
        t.row([
            e.to_string(),
            pct(flush.miss_rate()),
            pct(tag.miss_rate()),
            pct(ut.miss_rate()),
        ]);
    }
    let mut r = Report::new(
        "F5",
        "TLB miss rate: size × switch policy × trace completeness",
    );
    r.table("2-way TLB, 512 B pages", t);
    r.note(
        "shape vs paper: flushing the TLB on every switch dominates its miss \
         rate; OS references add misses the user-only trace never shows",
    );
    Ok(r)
}

// ── F6: cache organisation — split I/D and write policy ──────────────

/// F6 — organisation study: unified vs split I/D at equal total budget,
/// and write-back vs write-through memory traffic.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn f6_organisation(scale: Scale, run: &CapturedRun) -> Result<Report, RunnerError> {
    let budgets: Vec<u32> = match scale {
        Scale::Quick => vec![4 << 10, 16 << 10],
        Scale::Full => vec![2 << 10, 8 << 10, 32 << 10, 128 << 10],
    };
    let mut t = Table::new([
        "total budget",
        "unified miss%",
        "split I miss%",
        "split D miss%",
        "split overall%",
    ]);
    let unified_cfgs: Vec<CacheConfig> = budgets
        .iter()
        .map(|&b| {
            CacheConfig::builder()
                .size(b)
                .block(16)
                .assoc(2)
                .switch_policy(SwitchPolicy::PidTag)
                .build()
                .expect("config")
        })
        .collect();
    let unified_stats = simulate_many(&run.trace, &unified_cfgs);
    for (i, &b) in budgets.iter().enumerate() {
        let half = unified_cfgs[i].with_size(b / 2);
        let sp = simulate_split(&run.trace, &half, &half);
        t.row([
            format!("{}K", b / 1024),
            pct(unified_stats[i].miss_rate()),
            pct(sp.icache.miss_rate()),
            pct(sp.dcache.miss_rate()),
            pct(sp.miss_rate()),
        ]);
    }

    // Write-policy traffic at one size.
    let size = match scale {
        Scale::Quick => 8 << 10,
        Scale::Full => 16 << 10,
    };
    let wb = CacheConfig::builder()
        .size(size)
        .block(16)
        .assoc(2)
        .switch_policy(SwitchPolicy::PidTag)
        .write_policy(WritePolicy::WriteBackAllocate)
        .build()
        .expect("config");
    let wt = CacheConfig::builder()
        .size(size)
        .block(16)
        .assoc(2)
        .switch_policy(SwitchPolicy::PidTag)
        .write_policy(WritePolicy::WriteThroughNoAllocate)
        .build()
        .expect("config");
    // Write-through takes the grouped-replay fallback; write-back rides
    // the stack engine — still one trace traversal for both.
    let wstats = simulate_many(&run.trace, &[wb, wt]);
    let (swb, swt) = (wstats[0], wstats[1]);
    let mut wtab = Table::new(["policy", "miss%", "memory write traffic (events)"]);
    wtab.row([
        "write-back + allocate".to_string(),
        pct(swb.miss_rate()),
        swb.writebacks.to_string(),
    ]);
    wtab.row([
        "write-through, no allocate".to_string(),
        pct(swt.miss_rate()),
        swt.write_throughs.to_string(),
    ]);

    let mut r = Report::new("F6", "cache organisation: split I/D and write policy");
    r.table(
        "unified vs split at equal total budget (2-way, pid-tagged)",
        t,
    );
    r.table(&format!("write policies at {}K", size / 1024), wtab);
    r.note(
        "shape vs paper-era results: splitting helps once each half holds its stream (the I-stream dominates CISC traces); write-through turns every store into memory traffic while write-back pays only on eviction",
    );
    Ok(r)
}

// ── E1: cold-start / sampling bias ────────────────────────────────────

/// Simulates the trace in discontiguous samples: every other window of
/// `sample` references is kept, and the cache starts cold per window.
fn sampled_miss_rate(trace: &Trace, cfg: &CacheConfig, sample: usize) -> f64 {
    let refs: Vec<_> = trace.refs().collect();
    let mut accesses = 0u64;
    let mut misses = 0u64;
    let mut i = 0usize;
    while i < refs.len() {
        let end = (i + sample).min(refs.len());
        let mut cache = Cache::new(*cfg);
        for r in &refs[i..end] {
            let kind = match r.kind() {
                RecordKind::IFetch => atum_cache::AccessKind::IFetch,
                RecordKind::Write => atum_cache::AccessKind::Write,
                _ => atum_cache::AccessKind::Read,
            };
            cache.access(r.addr, kind, r.pid());
        }
        accesses += cache.stats().accesses;
        misses += cache.stats().misses;
        i = end + sample; // skip a window: the samples are discontiguous
    }
    if accesses == 0 {
        0.0
    } else {
        misses as f64 / accesses as f64
    }
}

/// E1 — cold-start bias of sampled (stitched) traces vs the continuous
/// trace, as a function of sample length.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn e1_cold_start(scale: Scale, run: &CapturedRun) -> Result<Report, RunnerError> {
    let samples: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 10_000],
        Scale::Full => vec![2_000, 8_000, 32_000, 128_000],
    };
    let cfg = CacheConfig::builder()
        .size(16 << 10)
        .block(16)
        .assoc(2)
        .switch_policy(SwitchPolicy::PidTag)
        .build()
        .expect("config");
    let continuous = simulate(&run.trace, &cfg).miss_rate();

    let mut t = Table::new([
        "sample refs",
        "sampled miss%",
        "continuous miss%",
        "bias (pp)",
    ]);
    for &s in &samples {
        let m = sampled_miss_rate(&run.trace, &cfg, s);
        t.row([
            s.to_string(),
            pct(m),
            pct(continuous),
            format!("{:+.2}", 100.0 * (m - continuous)),
        ]);
    }
    let mut r = Report::new("E1", "cold-start bias of trace samples");
    r.table(
        "16K 2-way cache; every other window kept, cold start per window",
        t,
    );
    r.note(
        "shape vs paper: short samples overstate miss rates (cold caches); the \
         bias shrinks as samples grow — ATUM's big hidden buffer is what made \
         long continuous samples possible",
    );
    Ok(r)
}

// ── E2: buffer capacity & compaction ──────────────────────────────────

/// E2 — records per MiB of hidden buffer, raw vs host-compacted.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn e2_compaction(scale: Scale, run: &CapturedRun) -> Result<Report, RunnerError> {
    let _ = scale;
    let raw_bytes = run.trace.len() * 8;
    let encoded = atum_core::encode_trace(&run.trace);
    let mut t = Table::new(["form", "bytes", "bytes/record", "records per MiB"]);
    t.row([
        "in-buffer (microcode)".to_string(),
        raw_bytes.to_string(),
        "8.00".to_string(),
        format!("{}", (1 << 20) / 8),
    ]);
    let bpr = encoded.len() as f64 / run.trace.len().max(1) as f64;
    t.row([
        "archived (host-compacted)".to_string(),
        encoded.len().to_string(),
        format!("{bpr:.2}"),
        format!("{}", ((1 << 20) as f64 / bpr) as u64),
    ]);
    let mut r = Report::new("E2", "trace buffer capacity and compaction");
    r.table(
        &format!("{} records captured from the standard mix", run.trace.len()),
        t,
    );
    r.note(format!(
        "compaction {:.1}x: the microcode writes fat records fast; the host \
         compacts at extraction, exactly the paper's division of labour",
        raw_bytes as f64 / encoded.len().max(1) as f64
    ));
    Ok(r)
}

// ── E3: OS breakdown ──────────────────────────────────────────────────

/// E3 — what the OS references are doing: attribution of kernel-mode
/// references to scheduler/timer, system calls, faults and boot.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn e3_os_breakdown(scale: Scale, run: &CapturedRun) -> Result<Report, RunnerError> {
    let _ = scale;
    #[derive(Clone, Copy, PartialEq)]
    enum Cat {
        Boot,
        Timer,
        Syscall,
        Fault,
        CtxSwitch,
    }
    let mut counts = [0u64; 5];
    let mut cat = Cat::Boot;
    for r in run.trace.iter() {
        match r.kind() {
            RecordKind::Interrupt => {
                cat = match r.addr {
                    0xC0 => Cat::Timer,
                    0x40 => Cat::Syscall,
                    _ => Cat::Fault,
                };
            }
            RecordKind::CtxSwitch => cat = Cat::CtxSwitch,
            k if k.is_ref() && r.is_kernel() => {
                counts[cat as usize] += 1;
            }
            _ => {}
        }
    }
    let total: u64 = counts.iter().sum();
    let mut t = Table::new(["component", "kernel refs", "share"]);
    for (name, idx) in [
        ("boot/init", Cat::Boot),
        ("timer & scheduler", Cat::Timer),
        ("system calls", Cat::Syscall),
        ("faults", Cat::Fault),
        ("context-switch path", Cat::CtxSwitch),
    ] {
        let c = counts[idx as usize];
        t.row([
            name.to_string(),
            c.to_string(),
            pct(c as f64 / total.max(1) as f64),
        ]);
    }
    let mut r = Report::new("E3", "operating-system reference breakdown");
    r.table(&format!("{total} kernel references in the standard mix"), t);
    r.note("attribution: each kernel reference charged to the most recent marker");
    Ok(r)
}

// ── E4: working sets ──────────────────────────────────────────────────

/// E4 — working-set curves: complete-system vs user-only demand.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn e4_working_set(scale: Scale, run: &CapturedRun) -> Result<Report, RunnerError> {
    let windows: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 10_000],
        Scale::Full => vec![1_000, 4_000, 16_000, 64_000],
    };
    let mut t = Table::new([
        "window (refs)",
        "complete mean pages",
        "complete max",
        "user-only mean pages",
    ]);
    // Every window size is measured in a single pass per trace view,
    // with the per-window states sharded over worker threads (identical
    // results at any job count).
    let jobs = crate::parallel::jobs();
    let full =
        crate::working_set::working_set_curve_parallel(&mut run.trace.source(), &windows, jobs)
            .expect("in-memory source cannot fail");
    let user = crate::working_set::working_set_curve_parallel(
        &mut run.trace.user_source(),
        &windows,
        jobs,
    )
    .expect("in-memory source cannot fail");
    for (i, &w) in windows.iter().enumerate() {
        t.row([
            w.to_string(),
            format!("{:.1}", full[i].mean_pages),
            full[i].max_pages.to_string(),
            format!("{:.1}", user[i].mean_pages),
        ]);
    }
    let mut r = Report::new("E4", "working sets: complete vs user-only demand");
    r.table("distinct (pid, page) pairs per window", t);
    r.note(
        "shape vs paper: the complete trace demands more pages at every window — kernel code/data plus the compounding of per-process footprints across switches; memory-system studies sized from user-only traces under-provision",
    );
    Ok(r)
}

// ── A1: patch cost ablation ───────────────────────────────────────────

/// A1 — patch cost decomposition: footprint and per-reference overhead
/// of the two patch styles.
///
/// # Errors
///
/// Any [`RunnerError`].
pub fn a1_patch_cost(scale: Scale) -> Result<Report, RunnerError> {
    let w = t1_workload(scale);
    let solo = vec![w];
    let q = MEASURE_QUANTUM;
    let (base_cycles, _, base_counts) = run_untraced(&solo, q, BUDGET)?;
    let refs = base_counts.total_refs().max(1);
    let base_cpr = base_cycles as f64 / refs as f64;

    let mut t = Table::new(["style", "patch words", "cycles/ref overhead", "slowdown"]);
    t.row([
        "(untraced)".to_string(),
        "0".to_string(),
        "0.0".to_string(),
        "1.0x".to_string(),
    ]);
    for (name, style) in [
        ("scratch registers", PatchStyle::Scratch),
        ("state spill (8200-like)", PatchStyle::Spill),
    ] {
        let run = capture_mix_with_style(&solo, q, BUDGET, style)?;
        let cpr = run.cycles as f64 / refs as f64;
        // Patch footprint: re-derive on a scratch store.
        let mut cs = atum_ucode::stock::build();
        let ps = atum_core::PatchSet::install_with_style(&mut cs, style)
            .map_err(|e| RunnerError::Tracer(e.to_string()))?;
        t.row([
            name.to_string(),
            ps.words().to_string(),
            format!("{:.1}", cpr - base_cpr),
            format!("{:.1}x", run.cycles as f64 / base_cycles as f64),
        ]);
    }
    let mut r = Report::new("A1", "ablation: what the patch costs and why");
    r.table(&format!("baseline {base_cpr:.1} cycles/ref"), t);
    r.note(
        "the 8200's reported ~20x sits above our spill variant because its \
         trace stores went to slow main memory; the ordering and the reason \
         (register spills + microtrap sequencing dominate) reproduce",
    );
    Ok(r)
}

/// Every experiment id, in report order.
pub const ALL_IDS: [&str; 13] = [
    "t1", "t2", "f1", "f2", "f3", "f4", "f5", "f6", "e1", "e2", "e3", "e4", "a1",
];

/// Whether an experiment analyses the shared standard-mix capture.
pub fn needs_shared(id: &str) -> bool {
    matches!(
        id,
        "f1" | "f2" | "f3" | "f4" | "f5" | "f6" | "e1" | "e2" | "e3" | "e4"
    )
}

/// Runs one experiment by id. Experiments that analyse the standard mix
/// use `shared` when given and capture their own copy when not.
///
/// # Errors
///
/// Any [`RunnerError`]; unknown ids report as [`RunnerError::Boot`].
pub fn run_by_id(
    id: &str,
    scale: Scale,
    shared: Option<&CapturedRun>,
) -> Result<Report, RunnerError> {
    let owned;
    let run = if needs_shared(id) {
        match shared {
            Some(r) => r,
            None => {
                owned = capture_standard_mix(scale)?;
                &owned
            }
        }
    } else {
        match id {
            "t1" => return t1_technique_comparison(scale),
            "t2" => return t2_trace_characteristics(scale),
            "a1" => return a1_patch_cost(scale),
            other => {
                return Err(RunnerError::Boot(format!(
                    "unknown experiment id '{other}'"
                )))
            }
        }
    };
    match id {
        "f1" => f1_os_vs_user(scale, run),
        "f2" => f2_switch_policy(scale, run),
        "f3" => f3_block_size(scale, run),
        "f4" => f4_associativity(scale, run),
        "f5" => f5_tlb(scale, run),
        "f6" => f6_organisation(scale, run),
        "e1" => e1_cold_start(scale, run),
        "e2" => e2_compaction(scale, run),
        "e3" => e3_os_breakdown(scale, run),
        "e4" => e4_working_set(scale, run),
        _ => unreachable!("needs_shared covers exactly the f/e ids"),
    }
}

/// Runs the given experiments on up to `jobs` threads, capturing the
/// standard mix **once** and sharing it across every experiment that
/// wants it. Results come back in `ids` order with per-id errors, and
/// are identical at any thread count (see [`crate::parallel`]).
pub fn run_selected(
    scale: Scale,
    ids: &[String],
    jobs: usize,
) -> Vec<(String, Result<Report, RunnerError>)> {
    let shared: Option<Result<CapturedRun, RunnerError>> = ids
        .iter()
        .any(|id| needs_shared(&id.to_lowercase()))
        .then(|| capture_standard_mix(scale));
    crate::parallel::parallel_map(jobs, ids.to_vec(), |_, id| {
        let lc = id.to_lowercase();
        let report = match (&shared, needs_shared(&lc)) {
            (Some(Ok(run)), true) => run_by_id(&lc, scale, Some(run)),
            (Some(Err(e)), true) => Err(e.clone()),
            _ => run_by_id(&lc, scale, None),
        };
        (id, report)
    })
}

/// Runs every experiment at a scale, capturing the shared mix once and
/// fanning the experiments over `jobs` threads.
///
/// # Errors
///
/// The first [`RunnerError`] in report order.
pub fn run_all(scale: Scale, jobs: usize) -> Result<Vec<Report>, RunnerError> {
    let ids: Vec<String> = ALL_IDS.iter().map(|s| s.to_string()).collect();
    run_selected(scale, &ids, jobs)
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mix_captures() {
        let run = capture_standard_mix(Scale::Quick).unwrap();
        assert!(run.trace.ref_count() > 10_000);
        let s = run.trace.stats();
        assert!(s.os_fraction() > 0.02);
        assert!(s.ctx_switches >= 3);
    }

    #[test]
    fn f1_gap_is_positive_somewhere() {
        let run = capture_standard_mix(Scale::Quick).unwrap();
        let r = f1_os_vs_user(Scale::Quick, &run).unwrap();
        let rows = r.tables[0].1.rows();
        assert!(!rows.is_empty());
        // At least one size where the complete trace misses more.
        let any_gap = rows.iter().any(|row| row[3].starts_with('+'));
        assert!(
            any_gap,
            "complete trace should miss more somewhere: {rows:?}"
        );
    }

    #[test]
    fn e2_reports_compaction() {
        let run = capture_standard_mix(Scale::Quick).unwrap();
        let r = e2_compaction(Scale::Quick, &run).unwrap();
        assert_eq!(r.tables[0].1.rows().len(), 2);
    }
}
