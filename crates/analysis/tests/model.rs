//! Model-checked verification of `parallel_map`: the shared work queue,
//! per-slot result mutexes and panic-propagation protocol, explored
//! over every small-schedule interleaving under `--cfg atum_model`
//! (and run once natively without it).

use atum_analysis::parallel_map;
use atum_conc::model;

/// Order preservation and completeness in every schedule: whichever
/// worker claims whichever item, the output must be in input order with
/// every slot filled.
#[test]
fn parallel_map_preserves_order_under_all_schedules() {
    model::Builder::new()
        .name("analysis:parallel-map")
        .check(|| {
            let got = parallel_map(2, vec![10u64, 20, 30], |i, x| x + i as u64);
            assert_eq!(got, vec![10, 21, 32]);
        });
}

/// A panicking job must propagate its original payload to the caller in
/// every schedule — the other worker drains or observes the cleared
/// queue and exits, the scope joins, and the panic resumes on the
/// calling thread. The panic is caught *inside* the checked closure so
/// exploration continues past it: the property is verified schedule by
/// schedule, exhaustively. A wedged worker would surface as a deadlock.
#[test]
fn parallel_map_propagates_job_panics_under_all_schedules() {
    model::Builder::new()
        .name("analysis:parallel-map-panic")
        .check(|| {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                parallel_map(2, vec![1, 2, 3], |_, x: i32| {
                    if x == 2 {
                        panic!("boom");
                    }
                    x
                })
            }));
            let payload = result.expect_err("the job panic must reach the caller");
            assert_eq!(
                payload.downcast_ref::<&str>(),
                Some(&"boom"),
                "the original payload must be re-thrown unchanged"
            );
        });
}
