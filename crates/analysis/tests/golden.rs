//! Golden-file regression tests for the experiment harness.
//!
//! The files under `tests/golden/` are byte-for-byte copies of what the
//! `experiments` binary prints for `quick t1`, `quick t2` and `quick f1`.
//! The whole pipeline — boot, trace capture, stitching, cache/TLB
//! simulation, table rendering — is deterministic, so any diff here is a
//! real behaviour change, not noise. If a change is intentional,
//! regenerate with:
//!
//! ```text
//! cargo run -p atum-bench --release --bin experiments -- quick t1 \
//!     > crates/analysis/tests/golden/t1-quick.txt
//! ```
//!
//! A second suite checks the `--jobs` contract: output must be identical
//! at any thread count.

use atum_analysis::{experiments, Scale};

/// Renders `ids` exactly as the `experiments` binary prints them to
/// stdout: each report followed by a blank line.
fn rendered(scale: Scale, ids: &[&str], jobs: usize) -> String {
    let ids: Vec<String> = ids.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    for (id, result) in experiments::run_selected(scale, &ids, jobs) {
        let report = result.unwrap_or_else(|e| panic!("{id} failed: {e}"));
        out.push_str(&format!("{report}\n\n"));
    }
    out
}

fn assert_matches_golden(id: &str, golden: &str) {
    let got = rendered(Scale::Quick, &[id], 1);
    assert!(
        got == golden,
        "`experiments quick {id}` drifted from tests/golden/{id}-quick.txt\n\
         --- expected ---\n{golden}\n--- got ---\n{got}"
    );
}

#[test]
fn t1_quick_matches_golden() {
    assert_matches_golden("t1", include_str!("golden/t1-quick.txt"));
}

#[test]
fn t2_quick_matches_golden() {
    assert_matches_golden("t2", include_str!("golden/t2-quick.txt"));
}

#[test]
fn f1_quick_matches_golden() {
    assert_matches_golden("f1", include_str!("golden/f1-quick.txt"));
}

/// The three engine tiers must produce byte-identical experiment
/// output: every capture the pipeline performs — boot, tracing,
/// stitching, simulation — goes through machines whose tier is set by
/// the process-global default, and the tiers are proven
/// observationally identical by the differential suites in
/// `atum-bench`. Running the quick-scale t1/t2/f1 under each tier and
/// diffing against the same golden files closes the loop end to end:
/// a tier divergence anywhere in a full experiment pipeline shows up
/// here as a byte diff.
#[test]
fn output_identical_across_engine_tiers() {
    use atum_machine::{set_default_engine_tier, EngineTier};
    for tier in [
        EngineTier::Reference,
        EngineTier::Fast,
        EngineTier::Superblock,
    ] {
        set_default_engine_tier(tier);
        assert_matches_golden("t1", include_str!("golden/t1-quick.txt"));
        assert_matches_golden("t2", include_str!("golden/t2-quick.txt"));
        assert_matches_golden("f1", include_str!("golden/f1-quick.txt"));
    }
    set_default_engine_tier(EngineTier::default());
}

/// `--jobs 1` and `--jobs 4` must print the same bytes: `parallel_map`
/// returns results in input order and every job is deterministic. Also
/// varies the global default used by internal fan-out (T2's
/// per-workload captures).
#[test]
fn output_identical_across_job_counts() {
    let ids = ["t1", "t2", "f1"];
    atum_analysis::set_jobs(1);
    let serial = rendered(Scale::Quick, &ids, 1);
    atum_analysis::set_jobs(4);
    let parallel = rendered(Scale::Quick, &ids, 4);
    atum_analysis::set_jobs(0);
    assert!(
        serial == parallel,
        "experiment output depends on thread count\n--- jobs=1 ---\n{serial}\n--- jobs=4 ---\n{parallel}"
    );
}
