//! `atum-conc`: a deterministic concurrency model checker for the ATUM
//! analysis pipelines.
//!
//! The trace pipelines (`broadcast_batches`, `stream_parallel`,
//! `parallel_map`) are hand-rolled Mutex/Condvar/atomic protocols —
//! exactly the kind of code where a lost notify or a missing
//! happens-before edge hides for years because the OS scheduler never
//! produces the bad interleaving. This crate makes the scheduler
//! adversarial and exhaustive instead:
//!
//! - [`sync`] and [`thread`] export drop-in replacements for the `std`
//!   types the pipelines use. In normal builds they are **zero-cost
//!   re-exports of `std`** — no wrapper types, no indirection, byte-for-
//!   byte the same pipeline binaries. Under `--cfg atum_model` they
//!   become instrumented types that hand every visible operation (lock,
//!   wait, notify, atomic access, spawn, join) to a cooperative
//!   scheduler.
//! - [`model::Builder::check`] runs a closure under every distinct
//!   thread interleaving a preemption bound allows — stateless DFS with
//!   replayed decision prefixes, serialized on a baton so execution is
//!   deterministic — plus two condvar adversaries: forced spurious
//!   wakeups and (opt-in) lost `notify_one` delivery.
//! - A FastTrack-style vector-clock detector reports data races (two
//!   accesses unordered by happens-before, one a write), and a global
//!   blocked-state check reports deadlocks with the wait cycle; either
//!   failure panics with a schedule trace naming the access points.
//! - [`cell::ModelCell`] models a bare shared memory location for
//!   negative tests and protocol-state race checking.
//!
//! What this proves and what it cannot is written up in `DESIGN.md`
//! §14; the short version: exhaustive at the explored bounds under
//! sequential consistency, silent about weak-memory reorderings and
//! about anything beyond the bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(atum_model)]
pub(crate) mod rt;

pub mod cell;
pub mod model;
pub mod sync;
pub mod thread;
