//! The exploration driver: [`check`] runs a closure under every
//! distinct thread interleaving the bounds allow.
//!
//! In normal builds (`--cfg atum_model` absent) [`check`] simply runs
//! the closure once with the shim types behaving as plain `std`
//! re-exports, so model tests also execute as ordinary tests. Under
//! the model cfg it becomes a stateless depth-first explorer: each run
//! replays a recorded prefix of branch decisions and extends it, until
//! the whole decision tree (bounded by the preemption budget) has been
//! walked. The first failing schedule panics with a race / deadlock /
//! assertion report plus the schedule trace that produced it.

/// Exploration statistics, also printed as a single summary line so CI
/// logs show state-space size regressions at a glance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Complete schedules executed.
    pub schedules: usize,
    /// Distinct interleavings among them (context-switch-point hash).
    pub unique: usize,
    /// Schedules whose event sequence hashed identically to an earlier
    /// one (e.g. a spurious wakeup commuting with a notify).
    pub duplicates: usize,
    /// Deepest decision stack seen.
    pub max_decisions: usize,
    /// Longest event trace seen.
    pub max_events: usize,
}

/// Bounds and adversary budgets for one [`Builder::check`] call.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Max context switches away from a runnable thread per schedule;
    /// `None` removes the bound (full DFS — exponential).
    pub preemption_bound: Option<u32>,
    /// Forced spurious condvar wakeups injected per schedule (explored
    /// as branches).
    pub spurious_wakeups: u32,
    /// `notify_one` calls that may be dropped per schedule (wakeup
    /// stealing); 0 disables the adversary.
    pub lost_notifies: u32,
    /// Hard cap on explored schedules — exceeding it panics, so a
    /// state-space blow-up fails loudly instead of hanging CI.
    pub max_schedules: usize,
    /// Per-schedule decision cap (livelock guard).
    pub max_decisions: usize,
    /// Events printed in a failure's schedule trace.
    pub trace_tail: usize,
    /// Label for the stats line.
    pub name: String,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder {
            preemption_bound: Some(2),
            spurious_wakeups: 1,
            lost_notifies: 0,
            max_schedules: 100_000,
            max_decisions: 20_000,
            trace_tail: 60,
            name: "model".to_string(),
        }
    }
}

impl Builder {
    /// A default-bounded builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Sets the stats-line label.
    pub fn name(mut self, name: &str) -> Builder {
        self.name = name.to_string();
        self
    }

    /// Sets the preemption bound (`None` = unbounded DFS).
    pub fn preemption_bound(mut self, b: Option<u32>) -> Builder {
        self.preemption_bound = b;
        self
    }

    /// Sets the forced-spurious-wakeup budget per schedule.
    pub fn spurious_wakeups(mut self, n: u32) -> Builder {
        self.spurious_wakeups = n;
        self
    }

    /// Sets the lost-`notify_one` budget per schedule.
    pub fn lost_notifies(mut self, n: u32) -> Builder {
        self.lost_notifies = n;
        self
    }

    /// Sets the schedule-count cap.
    pub fn max_schedules(mut self, n: usize) -> Builder {
        self.max_schedules = n;
        self
    }
}

/// Explores `f` under the default bounds. See [`Builder::check`].
pub fn check<F: Fn()>(f: F) -> Stats {
    Builder::default().check(f)
}

#[cfg(not(atum_model))]
impl Builder {
    /// Without `--cfg atum_model`: runs `f` once, natively.
    pub fn check<F: Fn()>(&self, f: F) -> Stats {
        f();
        let stats = Stats {
            schedules: 1,
            unique: 1,
            ..Stats::default()
        };
        self.print_stats(&stats);
        stats
    }
}

#[cfg(atum_model)]
impl Builder {
    /// Runs `f` under every interleaving the bounds allow; panics on
    /// the first schedule that races, deadlocks, panics or trips an
    /// assertion, with a schedule trace naming the access points.
    pub fn check<F: Fn()>(&self, f: F) -> Stats {
        use crate::rt;
        use std::collections::HashSet;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Arc;

        let cfg = rt::Config {
            preemption_bound: self.preemption_bound,
            spurious_budget: self.spurious_wakeups,
            lost_notify_budget: self.lost_notifies,
            max_decisions: self.max_decisions,
            trace_tail: self.trace_tail,
        };
        let mut replay: Vec<usize> = Vec::new();
        let mut stats = Stats::default();
        let mut seen: HashSet<u64> = HashSet::new();
        loop {
            stats.schedules += 1;
            assert!(
                stats.schedules <= self.max_schedules,
                "atum-conc [{}]: schedule budget exceeded ({} explored) — \
                 the protocol's state space grew past the bound; raise \
                 max_schedules deliberately or shrink the test",
                self.name,
                self.max_schedules
            );
            let sched = Arc::new(rt::Scheduler::new(cfg.clone(), replay.clone()));
            rt::set_current(sched.clone(), 0);
            let run = catch_unwind(AssertUnwindSafe(&f));
            rt::clear_current();
            let out = sched.outcome();
            if let Some(failure) = out.failure {
                self.print_stats(&stats);
                panic!("{failure}");
            }
            if let Err(payload) = run {
                // A genuine panic on the root thread (e.g. an assert in
                // the test body) with no detector-recorded failure.
                let msg = rt::payload_to_string(payload);
                let trace = sched.trace_tail();
                self.print_stats(&stats);
                panic!(
                    "atum-conc [{}]: thread 0 panicked: {msg}\n{trace}",
                    self.name
                );
            }
            if seen.insert(out.events_hash) {
                stats.unique += 1;
            } else {
                stats.duplicates += 1;
            }
            stats.max_decisions = stats.max_decisions.max(out.decisions.len());
            stats.max_events = stats.max_events.max(out.events_len);
            match rt::next_replay(&out.decisions, self.preemption_bound) {
                Some(next) => replay = next,
                None => break,
            }
        }
        self.print_stats(&stats);
        stats
    }
}

impl Builder {
    fn print_stats(&self, s: &Stats) {
        println!(
            "[atum-conc] {}: schedules={} unique={} duplicates={} \
             max-decisions={} max-events={} preemption-bound={} \
             spurious-budget={} lost-notify-budget={}",
            self.name,
            s.schedules,
            s.unique,
            s.duplicates,
            s.max_decisions,
            s.max_events,
            match self.preemption_bound {
                Some(b) => b.to_string(),
                None => "unbounded".to_string(),
            },
            self.spurious_wakeups,
            self.lost_notifies,
        );
    }
}
