//! [`ModelCell`]: a shared cell whose accesses the race detector
//! watches.
//!
//! Rust's type system already forbids unsynchronized shared mutation,
//! so a real data race can't be written in safe code — but the *model*
//! of one can: `ModelCell` stands in for "a plain memory location"
//! in negative tests (and for protocol state whose accesses should be
//! proven ordered). Every access is a visible operation; two accesses
//! not ordered by happens-before, at least one of them a write, are
//! reported as a data race with both access sites named. Storage is an
//! `RwLock` underneath so the native build stays sound; under the model
//! the lock is uncontended by construction.

use std::sync::RwLock;

#[cfg(atum_model)]
use std::panic::Location;
#[cfg(atum_model)]
use std::sync::OnceLock;

/// A shared memory location with race-detected accesses (see module
/// docs). In normal builds it is just an `RwLock` wrapper.
#[derive(Debug)]
pub struct ModelCell<T> {
    #[cfg(atum_model)]
    id: OnceLock<usize>,
    inner: RwLock<T>,
}

impl<T> ModelCell<T> {
    /// Creates the cell (const, like the sync primitives).
    pub const fn new(v: T) -> ModelCell<T> {
        ModelCell {
            #[cfg(atum_model)]
            id: OnceLock::new(),
            inner: RwLock::new(v),
        }
    }

    #[cfg(atum_model)]
    fn id(&self) -> usize {
        *self.id.get_or_init(crate::rt::new_obj_id)
    }

    #[cfg(atum_model)]
    #[track_caller]
    fn record(&self, write: bool, kind: &'static str) {
        if let Some((s, _)) = crate::rt::current() {
            s.cell_access(self.id(), write, kind, Location::caller());
        }
    }

    #[cfg(not(atum_model))]
    fn record(&self, _write: bool, _kind: &'static str) {}

    /// Reads through `f` (a race-detected read access).
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.record(false, "read");
        f(&self.inner.read().expect("ModelCell poisoned"))
    }

    /// Mutates through `f` (a race-detected write access).
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.record(true, "write");
        f(&mut self.inner.write().expect("ModelCell poisoned"))
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Copy> ModelCell<T> {
    /// Reads the value (a race-detected read access).
    #[track_caller]
    pub fn get(&self) -> T {
        self.with(|v| *v)
    }

    /// Writes the value (a race-detected write access).
    #[track_caller]
    pub fn set(&self, v: T) {
        self.with_mut(|slot| *slot = v)
    }
}

impl<T: Default> Default for ModelCell<T> {
    fn default() -> ModelCell<T> {
        ModelCell::new(T::default())
    }
}
