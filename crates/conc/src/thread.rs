//! Drop-in `std::thread` shims (scoped threads + `yield_now`).
//!
//! Normal builds re-export `std::thread` wholesale. Under
//! `--cfg atum_model`, `scope`/`spawn`/`join` register threads with the
//! model-checking runtime so the explorer controls which thread runs at
//! every visible operation; outside a [`crate::model::Builder::check`]
//! run they degrade to plain `std` scoped threads.

#[cfg(not(atum_model))]
pub use std::thread::*;

#[cfg(atum_model)]
pub use model_impl::{scope, yield_now, Scope, ScopedJoinHandle};

#[cfg(atum_model)]
pub use std::thread::{available_parallelism, sleep, Result};

#[cfg(atum_model)]
mod model_impl {
    use crate::rt;
    use std::cell::RefCell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe, Location};
    use std::sync::Arc;

    /// Instrumented `std::thread::scope`: spawns are registered with the
    /// active model run, and every child still alive when the closure
    /// returns is logically joined (mirroring `std`'s implicit join)
    /// before the real scope tears down its OS threads.
    #[track_caller]
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        let loc = Location::caller();
        std::thread::scope(|inner| {
            let wrapper = Scope {
                inner,
                tids: RefCell::new(Vec::new()),
            };
            let out = f(&wrapper);
            // Implicit join of unjoined children, as `std` documents —
            // but *logically*, so a child parked on the baton is driven
            // to completion instead of wedging the real scope exit.
            if let Some((s, _)) = rt::current() {
                for tid in wrapper.tids.borrow().iter() {
                    s.join_thread(*tid, loc);
                }
            }
            out
        })
    }

    /// Instrumented scope handle; `spawn` is the only entry point.
    ///
    /// Unlike `std`'s, this scope is not `Sync` — spawning is only
    /// supported from the thread that owns the scope, which is the only
    /// shape the ATUM pipelines use.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        /// Model tids spawned through this scope and not yet joined
        /// explicitly (kept for the implicit scope-exit join; stale
        /// entries for explicitly joined children are harmless —
        /// joining an exited thread is immediate).
        tids: RefCell<Vec<usize>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Under an active model run the child
        /// parks until the explorer first schedules it, and the spawn
        /// itself is a decision point (the child may run immediately).
        #[track_caller]
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            match rt::current() {
                Some((s, _)) => {
                    let loc = Location::caller();
                    let tid = s.spawn_thread(loc);
                    self.tids.borrow_mut().push(tid);
                    let child_sched = s.clone();
                    let handle = self.inner.spawn(move || {
                        rt::set_current(child_sched.clone(), tid);
                        child_sched.child_start(tid);
                        let run = catch_unwind(AssertUnwindSafe(f));
                        match run {
                            Ok(v) => {
                                child_sched.thread_exit(tid, None);
                                rt::clear_current();
                                v
                            }
                            Err(payload) => {
                                // Record a *genuine* panic as the failure
                                // before unwinding; the abort sentinel is
                                // just teardown and records nothing.
                                let msg = if rt::is_abort(payload.as_ref()) {
                                    None
                                } else {
                                    Some(rt::payload_message(payload.as_ref()))
                                };
                                child_sched.thread_exit(tid, msg);
                                rt::clear_current();
                                resume_unwind(payload)
                            }
                        }
                    });
                    s.spawn_yield(loc);
                    ScopedJoinHandle {
                        inner: handle,
                        model: Some((s, tid)),
                    }
                }
                None => ScopedJoinHandle {
                    inner: self.inner.spawn(f),
                    model: None,
                },
            }
        }
    }

    /// Instrumented `std::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        model: Option<(Arc<rt::Scheduler>, usize)>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Joins the child: a blocking visible operation under the
        /// model (plus the happens-before join edge), then the real
        /// OS-level join.
        #[track_caller]
        pub fn join(self) -> std::thread::Result<T> {
            if let Some((s, tid)) = &self.model {
                s.join_thread(*tid, Location::caller());
            }
            self.inner.join()
        }
    }

    /// Instrumented `std::thread::yield_now`: an explicit decision
    /// point under the model.
    #[track_caller]
    pub fn yield_now() {
        if let Some((s, _)) = rt::current() {
            s.yield_now(Location::caller());
        }
        std::thread::yield_now();
    }
}
