//! Drop-in `std::sync` shims.
//!
//! In normal builds this module is a set of **zero-cost re-exports of
//! `std::sync`** — code written against `atum_conc::sync` compiles to
//! exactly what it compiled to before. Under `--cfg atum_model` the
//! same names resolve to instrumented types that route every lock,
//! wait, notify and atomic access through the model-checking runtime
//! when executing inside [`crate::model::Builder::check`] (and degrade
//! to plain `std` behaviour outside it, so ordinary tests still run
//! under the model cfg).

#[cfg(not(atum_model))]
pub use std::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError};

/// `std::sync::atomic` re-export (instrumented under `--cfg atum_model`).
#[cfg(not(atum_model))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

#[cfg(atum_model)]
pub use model_impl::{Condvar, Mutex, MutexGuard};

// `Arc` is trusted even under the model: its refcount discipline is
// std's to prove, and modelling it would only blow up the state space.
#[cfg(atum_model)]
pub use std::sync::{Arc, LockResult, PoisonError};

#[cfg(atum_model)]
pub use model_impl::atomic;

#[cfg(atum_model)]
mod model_impl {
    use crate::rt;
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync::{Arc, LockResult, OnceLock, PoisonError};

    /// An instrumented `std::sync::Mutex`: every `lock` is a visible
    /// operation (a scheduling decision point plus a happens-before
    /// acquire edge); storage and the guard's borrow semantics are the
    /// real `std` mutex underneath, which is uncontended by
    /// construction — the model serialises threads.
    pub struct Mutex<T> {
        id: OnceLock<usize>,
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates the mutex (const, like `std`).
        pub const fn new(t: T) -> Mutex<T> {
            Mutex {
                id: OnceLock::new(),
                inner: std::sync::Mutex::new(t),
            }
        }

        fn id(&self) -> usize {
            *self.id.get_or_init(rt::new_obj_id)
        }

        /// Acquires the lock. Under an active model run this is a
        /// decision point and may block (logically) until the holder
        /// releases; outside a run it is a plain `std` lock.
        #[track_caller]
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match rt::current() {
                Some((s, _)) => {
                    s.mutex_lock(self.id(), Location::caller());
                    let g = self
                        .inner
                        .lock()
                        .expect("model mutex poisoned under the baton");
                    Ok(MutexGuard {
                        sched: Some((s, self.id())),
                        inner: Some(g),
                        lock: self,
                    })
                }
                None => match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        sched: None,
                        inner: Some(g),
                        lock: self,
                    }),
                    Err(e) => Err(PoisonError::new(MutexGuard {
                        sched: None,
                        inner: Some(e.into_inner()),
                        lock: self,
                    })),
                },
            }
        }

        /// Consumes the mutex, returning the data.
        pub fn into_inner(self) -> LockResult<T> {
            match self.inner.into_inner() {
                Ok(v) => Ok(v),
                Err(e) => Err(PoisonError::new(e.into_inner())),
            }
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Guard for [`Mutex`]; releasing it is the happens-before release
    /// edge (not a decision point — release commutes with everything
    /// up to the owner's next visible operation).
    pub struct MutexGuard<'a, T> {
        /// `Some` while the model run owns the logical lock.
        sched: Option<(Arc<rt::Scheduler>, usize)>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
        lock: &'a Mutex<T>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard already released")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard already released")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real lock first, then record the logical
            // release; nothing can run in between (we hold the baton).
            self.inner = None;
            if let Some((s, id)) = self.sched.take() {
                s.mutex_unlock(id, Location::caller());
            }
        }
    }

    /// An instrumented `std::sync::Condvar` with two adversaries the
    /// real one only exhibits under load: bounded **forced spurious
    /// wakeups** and (opt-in) **lost `notify_one` delivery**, both
    /// explored as scheduling branches.
    pub struct Condvar {
        id: OnceLock<usize>,
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// Creates the condvar (const, like `std`).
        pub const fn new() -> Condvar {
            Condvar {
                id: OnceLock::new(),
                inner: std::sync::Condvar::new(),
            }
        }

        fn id(&self) -> usize {
            *self.id.get_or_init(rt::new_obj_id)
        }

        /// Parks until notified (or spuriously woken — the model
        /// injects those deliberately, within the configured budget).
        #[track_caller]
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let mut guard = guard;
            match guard.sched.take() {
                Some((s, mid)) => {
                    let lock = guard.lock;
                    // Drop the real guard without a logical release:
                    // `condvar_wait` performs the release itself.
                    guard.inner = None;
                    drop(guard);
                    s.condvar_wait(self.id(), mid, Location::caller());
                    let g = lock
                        .inner
                        .lock()
                        .expect("model mutex poisoned under the baton");
                    Ok(MutexGuard {
                        sched: Some((s, mid)),
                        inner: Some(g),
                        lock,
                    })
                }
                None => {
                    let lock = guard.lock;
                    let std_guard = guard.inner.take().expect("guard already released");
                    drop(guard);
                    match self.inner.wait(std_guard) {
                        Ok(g) => Ok(MutexGuard {
                            sched: None,
                            inner: Some(g),
                            lock,
                        }),
                        Err(e) => Err(PoisonError::new(MutexGuard {
                            sched: None,
                            inner: Some(e.into_inner()),
                            lock,
                        })),
                    }
                }
            }
        }

        /// Parks until `condition` returns `false` (the spurious-wakeup-
        /// safe wait: the predicate is rechecked on every wake).
        #[track_caller]
        pub fn wait_while<'a, T, F>(
            &self,
            mut guard: MutexGuard<'a, T>,
            mut condition: F,
        ) -> LockResult<MutexGuard<'a, T>>
        where
            F: FnMut(&mut T) -> bool,
        {
            while condition(&mut *guard) {
                guard = self.wait(guard)?;
            }
            Ok(guard)
        }

        /// Wakes one waiter. Under the model, *which* waiter is a
        /// scheduling branch, and with a lost-notify budget one branch
        /// drops the wakeup entirely.
        #[track_caller]
        pub fn notify_one(&self) {
            if let Some((s, _)) = rt::current() {
                s.condvar_notify(self.id(), false, Location::caller());
            }
            self.inner.notify_one();
        }

        /// Wakes every waiter.
        #[track_caller]
        pub fn notify_all(&self) {
            if let Some((s, _)) = rt::current() {
                s.condvar_notify(self.id(), true, Location::caller());
            }
            self.inner.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.pad("Condvar { .. }")
        }
    }

    /// Instrumented `std::sync::atomic` subset: every access is a
    /// decision point; `Acquire`/`Release`/`AcqRel`/`SeqCst` build the
    /// corresponding happens-before edges, `Relaxed` builds none (the
    /// model keeps per-operation interleaving semantics — it does not
    /// model weak-memory reordering). The extra `unsync_load` /
    /// `unsync_store` methods are *deliberately unsynchronized*
    /// accesses for seeding race bugs in negative tests.
    pub mod atomic {
        use super::rt;
        use std::panic::Location;
        pub use std::sync::atomic::Ordering;
        use std::sync::OnceLock;

        fn acq(ord: Ordering) -> bool {
            matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
        }

        fn rel(ord: Ordering) -> bool {
            matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
        }

        macro_rules! model_atomic {
            ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
                $(#[$doc])*
                pub struct $name {
                    id: OnceLock<usize>,
                    v: $std,
                }

                impl $name {
                    /// Creates the atomic (const, like `std`).
                    pub const fn new(v: $prim) -> $name {
                        $name { id: OnceLock::new(), v: <$std>::new(v) }
                    }

                    fn id(&self) -> usize {
                        *self.id.get_or_init(rt::new_obj_id)
                    }

                    /// Atomic load.
                    #[track_caller]
                    pub fn load(&self, ord: Ordering) -> $prim {
                        if let Some((s, _)) = rt::current() {
                            s.atomic_access(
                                self.id(), false, acq(ord), false, false,
                                "atomic-load", Location::caller(),
                            );
                        }
                        self.v.load(ord)
                    }

                    /// Atomic store.
                    #[track_caller]
                    pub fn store(&self, v: $prim, ord: Ordering) {
                        if let Some((s, _)) = rt::current() {
                            s.atomic_access(
                                self.id(), true, false, rel(ord), false,
                                "atomic-store", Location::caller(),
                            );
                        }
                        self.v.store(v, ord)
                    }

                    /// Atomic fetch-add (the work-claim idiom).
                    #[track_caller]
                    pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                        if let Some((s, _)) = rt::current() {
                            s.atomic_access(
                                self.id(), true, acq(ord), rel(ord), false,
                                "atomic-fetch-add", Location::caller(),
                            );
                        }
                        self.v.fetch_add(v, ord)
                    }

                    /// Atomic swap.
                    #[track_caller]
                    pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                        if let Some((s, _)) = rt::current() {
                            s.atomic_access(
                                self.id(), true, acq(ord), rel(ord), false,
                                "atomic-swap", Location::caller(),
                            );
                        }
                        self.v.swap(v, ord)
                    }

                    /// **Seeded-bug helper**: a plain unsynchronized
                    /// load — the race detector treats it as a
                    /// non-atomic read of the same location.
                    #[track_caller]
                    pub fn unsync_load(&self) -> $prim {
                        if let Some((s, _)) = rt::current() {
                            s.atomic_access(
                                self.id(), false, false, false, true,
                                "unsync-load", Location::caller(),
                            );
                        }
                        self.v.load(Ordering::Relaxed)
                    }

                    /// **Seeded-bug helper**: a plain unsynchronized
                    /// store — races with any concurrent access.
                    #[track_caller]
                    pub fn unsync_store(&self, v: $prim) {
                        if let Some((s, _)) = rt::current() {
                            s.atomic_access(
                                self.id(), true, false, false, true,
                                "unsync-store", Location::caller(),
                            );
                        }
                        self.v.store(v, Ordering::Relaxed)
                    }
                }

                impl std::fmt::Debug for $name {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        self.v.fmt(f)
                    }
                }
            };
        }

        model_atomic!(
            /// Instrumented `AtomicUsize`.
            AtomicUsize,
            std::sync::atomic::AtomicUsize,
            usize
        );
        model_atomic!(
            /// Instrumented `AtomicU64`.
            AtomicU64,
            std::sync::atomic::AtomicU64,
            u64
        );
        model_atomic!(
            /// Instrumented `AtomicU32`.
            AtomicU32,
            std::sync::atomic::AtomicU32,
            u32
        );

        /// Instrumented `AtomicBool`.
        pub struct AtomicBool {
            id: OnceLock<usize>,
            v: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Creates the atomic (const, like `std`).
            pub const fn new(v: bool) -> AtomicBool {
                AtomicBool {
                    id: OnceLock::new(),
                    v: std::sync::atomic::AtomicBool::new(v),
                }
            }

            fn id(&self) -> usize {
                *self.id.get_or_init(rt::new_obj_id)
            }

            /// Atomic load.
            #[track_caller]
            pub fn load(&self, ord: Ordering) -> bool {
                if let Some((s, _)) = rt::current() {
                    s.atomic_access(
                        self.id(),
                        false,
                        acq(ord),
                        false,
                        false,
                        "atomic-load",
                        Location::caller(),
                    );
                }
                self.v.load(ord)
            }

            /// Atomic store.
            #[track_caller]
            pub fn store(&self, v: bool, ord: Ordering) {
                if let Some((s, _)) = rt::current() {
                    s.atomic_access(
                        self.id(),
                        true,
                        false,
                        rel(ord),
                        false,
                        "atomic-store",
                        Location::caller(),
                    );
                }
                self.v.store(v, ord)
            }

            /// Atomic swap.
            #[track_caller]
            pub fn swap(&self, v: bool, ord: Ordering) -> bool {
                if let Some((s, _)) = rt::current() {
                    s.atomic_access(
                        self.id(),
                        true,
                        acq(ord),
                        rel(ord),
                        false,
                        "atomic-swap",
                        Location::caller(),
                    );
                }
                self.v.swap(v, ord)
            }
        }

        impl std::fmt::Debug for AtomicBool {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.v.fmt(f)
            }
        }
    }
}
