//! The model-checking runtime: a cooperative scheduler that serialises
//! every instrumented thread onto one "baton" and explores the tree of
//! scheduling decisions by depth-first search.
//!
//! Only compiled under `--cfg atum_model`. The shim types in
//! [`crate::sync`], [`crate::thread`] and [`crate::cell`] route every
//! *visible operation* (lock attempt, atomic access, condvar wait /
//! notify, spawn, join, cell access) through here. Each visible
//! operation is preceded by a **decision point** where any eligible
//! thread may be scheduled instead; between decision points a thread's
//! code runs atomically, which is the standard sequentially-consistent
//! operation-interleaving model. The explorer replays a recorded prefix
//! of branch choices and extends it depth-first, subject to a
//! preemption bound, so small protocols are explored **exhaustively**.
//!
//! On top of the scheduler sit three detectors:
//!
//! * a FastTrack-style **vector-clock race detector**: every lock
//!   release/acquire, release/acquire atomic, spawn, join and condvar
//!   notify/wake edge updates happens-before clocks, and every
//!   non-atomic access ([`crate::cell::ModelCell`], `unsync_load` /
//!   `unsync_store`) is checked against the recorded access history —
//!   conflicting accesses unordered by happens-before fail the run
//!   *even if no assertion ever fires on this schedule*;
//! * a **deadlock detector**: when no thread is eligible to run and at
//!   least one has not exited, the run fails with each blocked
//!   thread's wait edge (what it waits on, who holds it);
//! * **Condvar adversaries**: bounded forced spurious wakeups and
//!   (opt-in) lost `notify_one` delivery are explored as ordinary
//!   branches, so predicates that are not wakeup-safe are caught.
//!
//! Failures panic with a formatted report that names the access points
//! (file:line of every event) and prints the schedule trace that led
//! there.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::panic::Location;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Model-thread index. Thread 0 is the thread that called
/// [`crate::model::Builder::check`].
pub(crate) type Tid = usize;
/// Global identity of an instrumented object (mutex, condvar, atomic,
/// cell). Allocated once per object; reports use per-execution local
/// numbers so identical schedules hash identically across runs.
pub(crate) type ObjId = usize;

static NEXT_OBJ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Allocates a fresh object identity (called lazily on first use).
pub(crate) fn new_obj_id() -> ObjId {
    NEXT_OBJ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// The panic payload used to unwind threads when an execution aborts
/// (after a failure was recorded elsewhere). Never reported as a
/// failure itself.
pub(crate) struct Abort;

pub(crate) fn is_abort(p: &(dyn std::any::Any + Send)) -> bool {
    p.is::<Abort>()
}

pub(crate) fn payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over model-thread indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, t: Tid) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn inc(&mut self, t: Tid) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-execution state
// ---------------------------------------------------------------------------

/// One recorded event: who did what to which object, where in the
/// source. The schedule trace printed on failure is the sequence of
/// these, and the dedup hash is computed over them.
#[derive(Clone, Copy)]
pub(crate) struct Event {
    tid: Tid,
    kind: &'static str,
    /// Per-execution local object number (stable across identical
    /// schedules), `usize::MAX` for thread-level events.
    obj: usize,
    loc: &'static Location<'static>,
}

#[derive(Clone, Debug)]
enum Wait {
    /// Blocked acquiring (or re-acquiring, after a condvar wake) a mutex.
    Mutex(ObjId),
    /// Parked on a condvar; woken by notify or a forced spurious wakeup.
    Condvar { cv: ObjId, mutex: ObjId },
    /// Waiting for a thread to exit.
    Join(Tid),
}

#[derive(Clone, Debug)]
enum Run {
    Runnable,
    Blocked(Wait),
    Exited,
}

struct ThreadSt {
    run: Run,
    vc: VClock,
    /// Set when a notify moved this thread out of a condvar wait (as
    /// opposed to a forced spurious wakeup) — controls the notify
    /// happens-before edge.
    woken_by_notify: bool,
    last: Option<Event>,
}

#[derive(Default)]
struct MutexSt {
    held_by: Option<Tid>,
    vc: VClock,
}

#[derive(Default)]
struct CvSt {
    waiters: Vec<Tid>,
    vc: VClock,
}

#[derive(Default)]
struct AtomSt {
    vc: VClock,
}

/// One recorded access to a memory location, for the race detector.
struct Access {
    tid: Tid,
    /// The accessing thread's clock at access time; access `a`
    /// happens-before thread `t` iff `a.vc[a.tid] <= t.vc[a.tid]`.
    vc: VClock,
    sync: bool,
    kind: &'static str,
    loc: &'static Location<'static>,
}

#[derive(Default)]
struct CellSt {
    /// Last write per thread.
    writes: Vec<Access>,
    /// Last read per thread.
    reads: Vec<Access>,
}

/// One explored branch point: how many alternatives existed, which was
/// taken, and what each alternative costs in preemptions.
struct Decision {
    nalts: usize,
    taken: usize,
    costs: Vec<u32>,
    preempt_before: u32,
}

/// Exploration limits; assembled by [`crate::model::Builder`].
#[derive(Clone, Debug)]
pub(crate) struct Config {
    pub preemption_bound: Option<u32>,
    pub spurious_budget: u32,
    pub lost_notify_budget: u32,
    pub max_decisions: usize,
    pub trace_tail: usize,
}

struct St {
    threads: Vec<ThreadSt>,
    active: Tid,
    mutexes: BTreeMap<ObjId, MutexSt>,
    condvars: BTreeMap<ObjId, CvSt>,
    atomics: BTreeMap<ObjId, AtomSt>,
    cells: BTreeMap<ObjId, CellSt>,
    /// Global object id -> per-execution local number (report/hash ids).
    local_ids: HashMap<ObjId, usize>,
    replay: Vec<usize>,
    depth: usize,
    decisions: Vec<Decision>,
    preemptions: u32,
    spurious_used: u32,
    lost_used: u32,
    events: Vec<Event>,
    failure: Option<String>,
    aborting: bool,
}

/// What an execution left behind, for the explorer to compute the next
/// replay prefix and the stats.
pub(crate) struct Outcome {
    pub failure: Option<String>,
    pub decisions: Vec<(usize, usize, Vec<u32>, u32)>,
    pub events_hash: u64,
    pub events_len: usize,
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

/// One execution's scheduler: the baton, the object tables, the branch
/// recorder. A fresh one is built per explored schedule.
pub(crate) struct Scheduler {
    mu: StdMutex<St>,
    cv: StdCondvar,
    cfg: Config,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, Tid)>> = const { RefCell::new(None) };
}

/// The scheduler the current OS thread is executing under, if any.
/// Shim types fall back to plain `std` behaviour when this is `None`,
/// so model-cfg builds still work outside `model::check`.
pub(crate) fn current() -> Option<(Arc<Scheduler>, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(s: Arc<Scheduler>, tid: Tid) {
    CURRENT.with(|c| *c.borrow_mut() = Some((s, tid)));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

impl Scheduler {
    pub(crate) fn new(cfg: Config, replay: Vec<usize>) -> Scheduler {
        let mut root_vc = VClock::default();
        root_vc.inc(0);
        Scheduler {
            mu: StdMutex::new(St {
                threads: vec![ThreadSt {
                    run: Run::Runnable,
                    vc: root_vc,
                    woken_by_notify: false,
                    last: None,
                }],
                active: 0,
                mutexes: BTreeMap::new(),
                condvars: BTreeMap::new(),
                atomics: BTreeMap::new(),
                cells: BTreeMap::new(),
                local_ids: HashMap::new(),
                replay,
                depth: 0,
                decisions: Vec::new(),
                preemptions: 0,
                spurious_used: 0,
                lost_used: 0,
                events: Vec::new(),
                failure: None,
                aborting: false,
            }),
            cv: StdCondvar::new(),
            cfg,
        }
    }

    /// Drains the fields the explorer needs once the execution is over.
    pub(crate) fn outcome(&self) -> Outcome {
        let st = self.lockst();
        let mut h = std::hash::DefaultHasher::new();
        for e in &st.events {
            (e.tid, e.kind, e.obj).hash(&mut h);
        }
        Outcome {
            failure: st.failure.clone(),
            decisions: st
                .decisions
                .iter()
                .map(|d| (d.nalts, d.taken, d.costs.clone(), d.preempt_before))
                .collect(),
            events_hash: h.finish(),
            events_len: st.events.len(),
        }
    }

    /// Formats the schedule trace tail — also used when the *root*
    /// thread panics with a plain assertion (no recorded failure).
    pub(crate) fn trace_tail(&self) -> String {
        let st = self.lockst();
        format_trace(&st, self.cfg.trace_tail)
    }

    /// Locks the baton state. Poison-tolerant: a failing schedule
    /// unwinds (the abort sentinel) while this mutex's guard is live,
    /// which poisons it — the state itself is still consistent, and
    /// teardown (guard drops, parked threads waking) must keep working.
    fn lockst(&self) -> StdMutexGuard<'_, St> {
        self.mu.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn local(st: &mut St, obj: ObjId) -> usize {
        let n = st.local_ids.len();
        *st.local_ids.entry(obj).or_insert(n)
    }

    fn push_event(
        &self,
        st: &mut St,
        tid: Tid,
        kind: &'static str,
        obj: ObjId,
        loc: &'static Location<'static>,
    ) {
        let local = if obj == usize::MAX {
            usize::MAX
        } else {
            Self::local(st, obj)
        };
        let e = Event {
            tid,
            kind,
            obj: local,
            loc,
        };
        st.threads[tid].last = Some(e);
        st.events.push(e);
    }

    /// Records a failure, wakes every parked thread for teardown, and
    /// unwinds the current thread.
    fn fail(&self, st: &mut St, reason: String) -> ! {
        if st.failure.is_none() {
            let mut msg = reason;
            let _ = write!(msg, "\n{}", format_trace(st, self.cfg.trace_tail));
            st.failure = Some(msg);
        }
        st.aborting = true;
        self.cv.notify_all();
        std::panic::panic_any(Abort);
    }

    /// Records a failure from a non-unwinding context (a child thread's
    /// exit hook observing a genuine panic).
    fn fail_no_unwind(&self, st: &mut St, reason: String) {
        if st.failure.is_none() {
            let mut msg = reason;
            let _ = write!(msg, "\n{}", format_trace(st, self.cfg.trace_tail));
            st.failure = Some(msg);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    fn check_abort(&self, st: &St) {
        if st.aborting {
            std::panic::panic_any(Abort);
        }
    }

    // -- branching ---------------------------------------------------------

    /// Picks one of `costs.len()` alternatives: replays the prefix,
    /// then always takes alternative 0 (which by construction costs no
    /// preemption). Single-alternative points are not recorded.
    fn branch(&self, st: &mut St, costs: &[u32]) -> usize {
        if costs.len() <= 1 {
            return 0;
        }
        if st.decisions.len() >= self.cfg.max_decisions {
            self.fail(
                st,
                format!(
                    "atum-conc: decision limit ({}) exceeded — possible livelock \
                     (a spin loop over shim operations never converges under the model)",
                    self.cfg.max_decisions
                ),
            );
        }
        let taken = if st.depth < st.replay.len() {
            st.replay[st.depth]
        } else {
            0
        };
        assert!(
            taken < costs.len(),
            "atum-conc internal error: replay diverged \
             (the checked closure is not deterministic)"
        );
        st.decisions.push(Decision {
            nalts: costs.len(),
            taken,
            costs: costs.to_vec(),
            preempt_before: st.preemptions,
        });
        st.depth += 1;
        st.preemptions += costs[taken];
        // The bound is enforced when `next_replay` constructs the
        // prefix; a default (index-0) extension always costs 0, so no
        // schedule may land here over budget.
        debug_assert!(
            self.cfg
                .preemption_bound
                .is_none_or(|b| st.preemptions <= b),
            "atum-conc internal error: schedule exceeded the preemption bound"
        );
        taken
    }

    fn eligible(st: &St, t: Tid) -> bool {
        match &st.threads[t].run {
            Run::Runnable => true,
            Run::Blocked(Wait::Mutex(m)) => st.mutexes.get(m).is_none_or(|ms| ms.held_by.is_none()),
            Run::Blocked(Wait::Join(t2)) => matches!(st.threads[*t2].run, Run::Exited),
            Run::Blocked(Wait::Condvar { .. }) => false,
            Run::Exited => false,
        }
    }

    /// The scheduling decision: who runs next. `me_runs` says whether
    /// the calling thread may continue (a yield point) or has just
    /// blocked/exited. Detects deadlock when nobody is eligible.
    fn pick_next(&self, st: &mut St, me: Tid, me_runs: bool) {
        enum Choice {
            Run(Tid),
            Spurious(Tid),
        }
        let mut choices = Vec::new();
        let mut costs: Vec<u32> = Vec::new();
        if me_runs {
            choices.push(Choice::Run(me));
            costs.push(0);
        }
        let switch_cost = if me_runs { 1 } else { 0 };
        for t in 0..st.threads.len() {
            if t != me && Self::eligible(st, t) {
                choices.push(Choice::Run(t));
                costs.push(switch_cost);
            }
        }
        if st.spurious_used < self.cfg.spurious_budget {
            // A parked condvar waiter whose mutex is free may be woken
            // spuriously: it reacquires the lock and rechecks its
            // predicate with no notify having happened.
            for t in 0..st.threads.len() {
                if let Run::Blocked(Wait::Condvar { mutex, .. }) = &st.threads[t].run {
                    if st.mutexes.get(mutex).is_none_or(|ms| ms.held_by.is_none()) {
                        choices.push(Choice::Spurious(t));
                        costs.push(switch_cost);
                    }
                }
            }
        }
        if choices.is_empty() {
            if st.threads.iter().any(|t| !matches!(t.run, Run::Exited)) {
                let report = deadlock_report(st);
                self.fail(st, report);
            }
            // Everyone exited: nothing left to schedule.
            st.active = usize::MAX;
            self.cv.notify_all();
            return;
        }
        let i = self.branch(st, &costs);
        match choices[i] {
            Choice::Run(t) => st.active = t,
            Choice::Spurious(t) => {
                let (cv, mutex) = match &st.threads[t].run {
                    Run::Blocked(Wait::Condvar { cv, mutex }) => (*cv, *mutex),
                    _ => unreachable!("spurious choice over a non-waiter"),
                };
                if let Some(cvs) = st.condvars.get_mut(&cv) {
                    cvs.waiters.retain(|&w| w != t);
                }
                st.threads[t].run = Run::Blocked(Wait::Mutex(mutex));
                st.threads[t].woken_by_notify = false;
                st.spurious_used += 1;
                let loc = Location::caller();
                self.push_event(st, t, "spurious-wakeup", cv, loc);
                st.active = t;
            }
        }
        if st.active != me {
            self.cv.notify_all();
        }
    }

    /// Parks until this thread holds the baton again (or the execution
    /// aborts, in which case it unwinds).
    fn wait_turn<'a>(&'a self, mut st: StdMutexGuard<'a, St>, me: Tid) -> StdMutexGuard<'a, St> {
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.active == me {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn me(&self) -> Tid {
        current().map(|(_, t)| t).expect("no current model thread")
    }

    // -- visible operations ------------------------------------------------

    /// A plain decision point before a visible operation.
    fn yield_point(&self, kind: &'static str, obj: ObjId, loc: &'static Location<'static>) {
        let me = self.me();
        let mut st = self.lockst();
        self.check_abort(&st);
        self.push_event(&mut st, me, kind, obj, loc);
        self.pick_next(&mut st, me, true);
        let _st = self.wait_turn(st, me);
    }

    pub(crate) fn mutex_lock(&self, m: ObjId, loc: &'static Location<'static>) {
        let me = self.me();
        let mut st = self.lockst();
        self.check_abort(&st);
        self.push_event(&mut st, me, "mutex-lock", m, loc);
        self.pick_next(&mut st, me, true);
        let mut st = self.wait_turn(st, me);
        loop {
            let free = st.mutexes.entry(m).or_default().held_by.is_none();
            if free {
                let vc = st.mutexes.get(&m).unwrap().vc.clone();
                st.threads[me].vc.join(&vc);
                st.mutexes.get_mut(&m).unwrap().held_by = Some(me);
                return;
            }
            st.threads[me].run = Run::Blocked(Wait::Mutex(m));
            self.pick_next(&mut st, me, false);
            st = self.wait_turn(st, me);
            st.threads[me].run = Run::Runnable;
        }
    }

    pub(crate) fn mutex_unlock(&self, m: ObjId, loc: &'static Location<'static>) {
        let me = self.me();
        let mut st = self.lockst();
        if st.aborting {
            // Guard drops run during abort unwinding; stay silent.
            return;
        }
        self.push_event(&mut st, me, "mutex-unlock", m, loc);
        let vc = st.threads[me].vc.clone();
        let ms = st.mutexes.entry(m).or_default();
        debug_assert_eq!(ms.held_by, Some(me), "unlock of a mutex not held");
        ms.held_by = None;
        ms.vc.join(&vc);
        st.threads[me].vc.inc(me);
    }

    /// Parks on `cv`, releasing `m`; returns `true` if the wakeup was
    /// spurious (no notify edge).
    pub(crate) fn condvar_wait(
        &self,
        cv: ObjId,
        m: ObjId,
        loc: &'static Location<'static>,
    ) -> bool {
        let me = self.me();
        let mut st = self.lockst();
        self.check_abort(&st);
        self.push_event(&mut st, me, "cv-wait", cv, loc);
        // Logical release of the mutex.
        let vc = st.threads[me].vc.clone();
        let ms = st.mutexes.entry(m).or_default();
        debug_assert_eq!(ms.held_by, Some(me), "condvar wait without the lock held");
        ms.held_by = None;
        ms.vc.join(&vc);
        st.threads[me].vc.inc(me);
        st.condvars.entry(cv).or_default().waiters.push(me);
        st.threads[me].run = Run::Blocked(Wait::Condvar { cv, mutex: m });
        st.threads[me].woken_by_notify = false;
        self.pick_next(&mut st, me, false);
        let mut st = self.wait_turn(st, me);
        // Woken (notify or spurious): our wait was rewritten to
        // `Wait::Mutex(m)` and we were only scheduled with `m` free.
        st.threads[me].run = Run::Runnable;
        let spurious = !st.threads[me].woken_by_notify;
        let mvc = st.mutexes.entry(m).or_default().vc.clone();
        st.threads[me].vc.join(&mvc);
        if !spurious {
            let cvc = st.condvars.entry(cv).or_default().vc.clone();
            st.threads[me].vc.join(&cvc);
        }
        st.mutexes.get_mut(&m).unwrap().held_by = Some(me);
        self.push_event(
            &mut st,
            me,
            if spurious {
                "cv-wake-spurious"
            } else {
                "cv-wake"
            },
            cv,
            loc,
        );
        spurious
    }

    pub(crate) fn condvar_notify(&self, cv: ObjId, all: bool, loc: &'static Location<'static>) {
        let me = self.me();
        let mut st = self.lockst();
        if st.aborting {
            return;
        }
        self.push_event(
            &mut st,
            me,
            if all {
                "cv-notify-all"
            } else {
                "cv-notify-one"
            },
            cv,
            loc,
        );
        let waiters = st.condvars.entry(cv).or_default().waiters.clone();
        if waiters.is_empty() {
            return;
        }
        let wake = |st: &mut St, t: Tid| {
            let mutex = match &st.threads[t].run {
                Run::Blocked(Wait::Condvar { mutex, .. }) => *mutex,
                other => unreachable!("condvar waiter in state {other:?}"),
            };
            st.threads[t].run = Run::Blocked(Wait::Mutex(mutex));
            st.threads[t].woken_by_notify = true;
        };
        if all {
            for &t in &waiters {
                wake(&mut st, t);
            }
            st.condvars.get_mut(&cv).unwrap().waiters.clear();
        } else {
            // Which waiter receives the notify is a scheduling choice;
            // with a lost-notify budget, dropping it entirely is one
            // more alternative (modelling a wakeup stolen by a thread
            // whose predicate was already satisfied).
            let lose = st.lost_used < self.cfg.lost_notify_budget;
            let nalts = waiters.len() + usize::from(lose);
            let costs = vec![0u32; nalts];
            let i = self.branch(&mut st, &costs);
            if i == waiters.len() {
                st.lost_used += 1;
                self.push_event(&mut st, me, "cv-notify-lost", cv, loc);
            } else {
                let t = waiters[i];
                wake(&mut st, t);
                st.condvars
                    .get_mut(&cv)
                    .unwrap()
                    .waiters
                    .retain(|&w| w != t);
            }
        }
        let vc = st.threads[me].vc.clone();
        st.condvars.get_mut(&cv).unwrap().vc.join(&vc);
        st.threads[me].vc.inc(me);
    }

    /// An atomic access: a decision point, happens-before edges per the
    /// ordering, and a sync-access record for the race detector.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_access(
        &self,
        a: ObjId,
        write: bool,
        acquire: bool,
        release: bool,
        unsync: bool,
        kind: &'static str,
        loc: &'static Location<'static>,
    ) {
        let me = self.me();
        let mut st = self.lockst();
        self.check_abort(&st);
        self.push_event(&mut st, me, kind, a, loc);
        self.pick_next(&mut st, me, true);
        let mut st = self.wait_turn(st, me);
        if !unsync {
            if acquire {
                let avc = st.atomics.entry(a).or_default().vc.clone();
                st.threads[me].vc.join(&avc);
            }
            if release {
                let vc = st.threads[me].vc.clone();
                st.atomics.entry(a).or_default().vc.join(&vc);
                st.threads[me].vc.inc(me);
            }
        }
        self.record_access(&mut st, me, a, write, !unsync, kind, loc);
    }

    /// A non-atomic access through [`crate::cell::ModelCell`].
    pub(crate) fn cell_access(
        &self,
        c: ObjId,
        write: bool,
        kind: &'static str,
        loc: &'static Location<'static>,
    ) {
        let me = self.me();
        let mut st = self.lockst();
        self.check_abort(&st);
        self.push_event(&mut st, me, kind, c, loc);
        self.pick_next(&mut st, me, true);
        let mut st = self.wait_turn(st, me);
        self.record_access(&mut st, me, c, write, false, kind, loc);
    }

    /// FastTrack-style check of one access against the location's
    /// history, then records it. Two accesses race when neither
    /// happens-before the other, at least one writes, and they are not
    /// both atomic.
    #[allow(clippy::too_many_arguments)]
    fn record_access(
        &self,
        st: &mut St,
        me: Tid,
        obj: ObjId,
        write: bool,
        sync: bool,
        kind: &'static str,
        loc: &'static Location<'static>,
    ) {
        let my_vc = st.threads[me].vc.clone();
        let mut conflict: Option<(Tid, &'static str, &'static Location<'static>)> = None;
        {
            let cell = st.cells.entry(obj).or_default();
            let hb = |a: &Access| a.vc.get(a.tid) <= my_vc.get(a.tid);
            for a in &cell.writes {
                if a.tid != me && !(a.sync && sync) && !hb(a) {
                    conflict = Some((a.tid, a.kind, a.loc));
                }
            }
            if write {
                for a in &cell.reads {
                    if conflict.is_none() && a.tid != me && !(a.sync && sync) && !hb(a) {
                        conflict = Some((a.tid, a.kind, a.loc));
                    }
                }
            }
        }
        if let Some((t2, kind2, loc2)) = conflict {
            let local = Self::local(st, obj);
            let report = format!(
                "atum-conc: data race on object o{local}\n  \
                 thread {me}: {kind} at {loc}\n  \
                 thread {t2}: {kind2} at {loc2}\n  \
                 (the two accesses are not ordered by happens-before)"
            );
            self.fail(st, report);
        }
        let cell = st.cells.entry(obj).or_default();
        let rec = Access {
            tid: me,
            vc: my_vc,
            sync,
            kind,
            loc,
        };
        let list = if write {
            &mut cell.writes
        } else {
            &mut cell.reads
        };
        list.retain(|a| a.tid != me);
        list.push(rec);
    }

    /// Registers a child thread (runnable, clock forked from the
    /// parent). Deliberately does **not** yield: the caller must first
    /// actually spawn the OS thread, then call [`Scheduler::spawn_yield`]
    /// — yielding here could schedule a thread that does not exist yet
    /// and wedge the run for real.
    pub(crate) fn spawn_thread(&self, loc: &'static Location<'static>) -> Tid {
        let me = self.me();
        let mut st = self.lockst();
        self.check_abort(&st);
        let tid = st.threads.len();
        let mut vc = st.threads[me].vc.clone();
        vc.inc(tid);
        st.threads.push(ThreadSt {
            run: Run::Runnable,
            vc,
            woken_by_notify: false,
            last: None,
        });
        st.threads[me].vc.inc(me);
        self.push_event(&mut st, me, "spawn", usize::MAX, loc);
        tid
    }

    /// The decision point right after a spawn — the explorer may run
    /// the just-created child immediately.
    pub(crate) fn spawn_yield(&self, loc: &'static Location<'static>) {
        self.yield_point("spawn-yield", usize::MAX, loc);
    }

    /// First thing a child OS thread does: park until first scheduled.
    pub(crate) fn child_start(&self, tid: Tid) {
        let st = self.lockst();
        let _st = self.wait_turn(st, tid);
    }

    /// Last thing a child does, panicking or not. A genuine panic
    /// (anything but the abort sentinel) is recorded as the failure.
    pub(crate) fn thread_exit(&self, tid: Tid, panic_msg: Option<String>) {
        let mut st = self.lockst();
        st.threads[tid].run = Run::Exited;
        let loc = Location::caller();
        self.push_event(&mut st, tid, "exit", usize::MAX, loc);
        if let Some(msg) = panic_msg {
            self.fail_no_unwind(&mut st, format!("atum-conc: thread {tid} panicked: {msg}"));
            return;
        }
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st, tid, false);
    }

    /// Blocks until `t` exits, then joins its clock (the join edge).
    pub(crate) fn join_thread(&self, t: Tid, loc: &'static Location<'static>) {
        let me = self.me();
        let mut st = self.lockst();
        self.check_abort(&st);
        self.push_event(&mut st, me, "join", usize::MAX, loc);
        if !matches!(st.threads[t].run, Run::Exited) {
            st.threads[me].run = Run::Blocked(Wait::Join(t));
            self.pick_next(&mut st, me, false);
            st = self.wait_turn(st, me);
            st.threads[me].run = Run::Runnable;
        }
        debug_assert!(matches!(st.threads[t].run, Run::Exited));
        let vc = st.threads[t].vc.clone();
        st.threads[me].vc.join(&vc);
    }

    /// An explicit decision point (`thread::yield_now`).
    pub(crate) fn yield_now(&self, loc: &'static Location<'static>) {
        self.yield_point("yield", usize::MAX, loc);
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

fn format_trace(st: &St, tail: usize) -> String {
    let mut out = String::new();
    let n = st.events.len();
    let start = n.saturating_sub(tail);
    let _ = writeln!(
        out,
        "--- schedule trace ({} of {} events, {} decision points, {} preemptions) ---",
        n - start,
        n,
        st.decisions.len(),
        st.preemptions
    );
    if start > 0 {
        let _ = writeln!(out, "  ... {start} earlier events elided ...");
    }
    for e in &st.events[start..] {
        if e.obj == usize::MAX {
            let _ = writeln!(out, "  [t{}] {} at {}", e.tid, e.kind, e.loc);
        } else {
            let _ = writeln!(out, "  [t{}] {} o{} at {}", e.tid, e.kind, e.obj, e.loc);
        }
    }
    out
}

fn deadlock_report(st: &St) -> String {
    let mut out = String::from("atum-conc: deadlock — every live thread is blocked\n");
    for (t, th) in st.threads.iter().enumerate() {
        let line = match &th.run {
            Run::Exited => continue,
            Run::Runnable => format!("thread {t}: runnable (scheduler invariant violated)"),
            Run::Blocked(Wait::Mutex(m)) => {
                let holder = st
                    .mutexes
                    .get(m)
                    .and_then(|ms| ms.held_by)
                    .map(|h| format!("held by thread {h}"))
                    .unwrap_or_else(|| "free".to_string());
                format!(
                    "thread {t}: blocked acquiring mutex o{} ({holder})",
                    st.local_ids.get(m).copied().unwrap_or(usize::MAX)
                )
            }
            Run::Blocked(Wait::Condvar { cv, .. }) => format!(
                "thread {t}: parked on condvar o{} (no notify can arrive, spurious budget spent)",
                st.local_ids.get(cv).copied().unwrap_or(usize::MAX)
            ),
            Run::Blocked(Wait::Join(t2)) => format!("thread {t}: joining thread {t2}"),
        };
        let _ = writeln!(out, "  {line}");
        if let Some(e) = &th.last {
            let _ = writeln!(out, "    last op: {} at {}", e.kind, e.loc);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Explorer support
// ---------------------------------------------------------------------------

/// Given the decisions of the run just finished, computes the replay
/// prefix of the next run in depth-first order, honouring the
/// preemption bound. `None` when the space is exhausted.
pub(crate) fn next_replay(
    decisions: &[(usize, usize, Vec<u32>, u32)],
    bound: Option<u32>,
) -> Option<Vec<usize>> {
    for d in (0..decisions.len()).rev() {
        let (nalts, taken, costs, preempt_before) = &decisions[d];
        for (j, cost) in costs.iter().enumerate().take(*nalts).skip(taken + 1) {
            if bound.is_none_or(|b| preempt_before + cost <= b) {
                let mut replay: Vec<usize> = decisions[..d].iter().map(|(_, t, _, _)| *t).collect();
                replay.push(j);
                return Some(replay);
            }
        }
    }
    None
}

pub(crate) fn payload_to_string(p: Box<dyn std::any::Any + Send>) -> String {
    payload_message(p.as_ref())
}
