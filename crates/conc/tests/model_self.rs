//! Self-tests for the model checker: positive protocols that must come
//! up clean under exhaustive exploration, and textbook bugs (races,
//! deadlocks, missed wakeups) that the detectors must catch with a
//! report naming the access points.
//!
//! The negative half only exists under `--cfg atum_model`: without the
//! model these scenarios would be *real* races and deadlocks.

use atum_conc::cell::ModelCell;
use atum_conc::model::Builder;
use atum_conc::sync::atomic::{AtomicUsize, Ordering};
use atum_conc::sync::{Arc, Condvar, Mutex};
use atum_conc::thread;

#[test]
fn mutex_counter_is_race_free() {
    let stats = Builder::new().name("self:mutex-counter").check(|| {
        let n = Arc::new(Mutex::new(0usize));
        thread::scope(|s| {
            for _ in 0..2 {
                let n = Arc::clone(&n);
                s.spawn(move || {
                    *n.lock().unwrap() += 1;
                });
            }
        });
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(stats.schedules >= 1);
    #[cfg(atum_model)]
    assert!(
        stats.schedules > 1,
        "two racing lockers must yield more than one interleaving"
    );
}

#[test]
fn release_acquire_message_passing_is_race_free() {
    Builder::new().name("self:release-acquire").check(|| {
        let data = Arc::new(ModelCell::new(0usize));
        let flag = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            {
                let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                s.spawn(move || {
                    data.set(42);
                    flag.store(1, Ordering::Release);
                });
            }
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            s.spawn(move || {
                if flag.load(Ordering::Acquire) == 1 {
                    assert_eq!(data.get(), 42);
                }
            });
        });
    });
}

#[test]
fn condvar_handoff_with_spurious_wakeups() {
    // `wait_while` must survive the forced-spurious-wakeup adversary.
    Builder::new()
        .name("self:cv-handoff")
        .spurious_wakeups(2)
        .check(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            thread::scope(|s| {
                let st = Arc::clone(&state);
                s.spawn(move || {
                    *st.0.lock().unwrap() = true;
                    st.1.notify_one();
                });
                let g = state.0.lock().unwrap();
                let g = state.1.wait_while(g, |ready| !*ready).unwrap();
                assert!(*g);
            });
        });
}

// ---------------------------------------------------------------------------
// Negative suite: every scenario below must FAIL under the model, with
// a report naming what went wrong and where.
// ---------------------------------------------------------------------------

#[cfg(atum_model)]
mod negative {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runs `f` under `b` expecting a failure whose report contains
    /// every needle (detector verdict + access-point file names).
    fn check_fails(b: Builder, needles: &[&str], f: impl Fn()) {
        let result = catch_unwind(AssertUnwindSafe(|| b.check(f)));
        let payload = match result {
            Ok(stats) => panic!(
                "expected the model to fail, but {} schedules came up clean",
                stats.schedules
            ),
            Err(p) => p,
        };
        let msg = p_to_string(payload);
        for needle in needles {
            assert!(
                msg.contains(needle),
                "failure report should contain {needle:?}; got:\n{msg}"
            );
        }
    }

    fn p_to_string(p: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            "<non-string panic>".to_string()
        }
    }

    #[test]
    fn unsynchronized_counter_races() {
        check_fails(
            Builder::new().name("self:unsync-race"),
            &["data race", "unsync-", "model_self.rs"],
            || {
                let n = Arc::new(AtomicUsize::new(0));
                thread::scope(|s| {
                    for _ in 0..2 {
                        let n = Arc::clone(&n);
                        s.spawn(move || {
                            let v = n.unsync_load();
                            n.unsync_store(v + 1);
                        });
                    }
                });
            },
        );
    }

    #[test]
    fn cell_write_write_races() {
        check_fails(
            Builder::new().name("self:cell-race"),
            &["data race", "model_self.rs"],
            || {
                let c = Arc::new(ModelCell::new(0usize));
                thread::scope(|s| {
                    for _ in 0..2 {
                        let c = Arc::clone(&c);
                        s.spawn(move || c.set(1));
                    }
                });
            },
        );
    }

    #[test]
    fn relaxed_flag_does_not_order_the_data() {
        // Same shape as the positive message-passing test, but the
        // flag is Relaxed: no happens-before edge, so the data access
        // races in the interleaving where the reader sees flag == 1.
        check_fails(
            Builder::new().name("self:relaxed-race"),
            &["data race"],
            || {
                let data = Arc::new(ModelCell::new(0usize));
                let flag = Arc::new(AtomicUsize::new(0));
                thread::scope(|s| {
                    {
                        let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                        s.spawn(move || {
                            data.set(42);
                            flag.store(1, Ordering::Relaxed);
                        });
                    }
                    let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                    s.spawn(move || {
                        if flag.load(Ordering::Relaxed) == 1 {
                            let _ = data.get();
                        }
                    });
                });
            },
        );
    }

    #[test]
    fn ab_ba_lock_order_deadlocks() {
        check_fails(
            Builder::new().name("self:ab-ba"),
            &["deadlock", "blocked acquiring mutex"],
            || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                thread::scope(|s| {
                    {
                        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                        s.spawn(move || {
                            let _ga = a.lock().unwrap();
                            let _gb = b.lock().unwrap();
                        });
                    }
                    let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                    s.spawn(move || {
                        let _gb = b.lock().unwrap();
                        let _ga = a.lock().unwrap();
                    });
                });
            },
        );
    }

    #[test]
    fn missed_wakeup_check_outside_lock_deadlocks() {
        // Classic missed-wakeup: the predicate is read under the lock
        // but the lock is dropped before waiting, so the notify can
        // land in the window between check and wait — delivered to
        // nobody — and the waiter parks forever.
        check_fails(
            Builder::new()
                .name("self:missed-wakeup")
                .spurious_wakeups(0),
            &["deadlock", "parked on condvar"],
            || {
                let state = Arc::new((Mutex::new(false), Condvar::new()));
                thread::scope(|s| {
                    let st = Arc::clone(&state);
                    s.spawn(move || {
                        *st.0.lock().unwrap() = true;
                        st.1.notify_one();
                    });
                    let ready = *state.0.lock().unwrap();
                    if !ready {
                        let g = state.0.lock().unwrap();
                        let _g = state.1.wait(g).unwrap();
                    }
                });
            },
        );
    }

    #[test]
    fn lost_notify_adversary_defeats_single_notify_one() {
        // With the lost-notify budget on, one branch of each
        // `notify_one` drops the wakeup entirely: the waiter parks
        // forever even though the code "sent" a notify. (This is the
        // adversary that models wakeup stealing / notify loss — code
        // must prove it re-notifies or bounds the loss.)
        check_fails(
            Builder::new()
                .name("self:lost-notify")
                .spurious_wakeups(0)
                .lost_notifies(1),
            &["deadlock", "parked on condvar"],
            || {
                let state = Arc::new((Mutex::new(0usize), Condvar::new()));
                thread::scope(|s| {
                    let st = Arc::clone(&state);
                    s.spawn(move || {
                        *st.0.lock().unwrap() = 1;
                        st.1.notify_one();
                    });
                    let g = state.0.lock().unwrap();
                    let _g = state.1.wait_while(g, |v| *v == 0).unwrap();
                });
            },
        );
    }

    #[test]
    fn child_panic_is_reported_with_the_schedule() {
        check_fails(
            Builder::new().name("self:child-panic"),
            &["panicked", "boom", "schedule trace"],
            || {
                thread::scope(|s| {
                    s.spawn(|| panic!("boom"));
                });
            },
        );
    }
}
