//! The shim types outside `model::check`: they must behave exactly
//! like their `std` counterparts — in normal builds because they *are*
//! `std` re-exports, under `--cfg atum_model` because every shim falls
//! back to plain behaviour when no scheduler is active. This is what
//! lets the rest of the test suite run unchanged under the model cfg.

use atum_conc::cell::ModelCell;
use atum_conc::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use atum_conc::sync::{Arc, Condvar, Mutex};
use atum_conc::thread;

#[test]
fn mutex_and_scope_work_without_a_scheduler() {
    let total = Arc::new(Mutex::new(0usize));
    thread::scope(|s| {
        let mut handles = Vec::new();
        for i in 0..4 {
            let total = Arc::clone(&total);
            handles.push(s.spawn(move || {
                *total.lock().unwrap() += i;
                i
            }));
        }
        let mut returned = 0;
        for h in handles {
            returned += h.join().unwrap();
        }
        assert_eq!(returned, 6);
    });
    assert_eq!(*total.lock().unwrap(), 6);
}

#[test]
fn condvar_wait_while_works_without_a_scheduler() {
    let state = Arc::new((Mutex::new(0usize), Condvar::new()));
    thread::scope(|s| {
        let st = Arc::clone(&state);
        s.spawn(move || {
            for _ in 0..3 {
                *st.0.lock().unwrap() += 1;
                st.1.notify_all();
            }
        });
        let g = state.0.lock().unwrap();
        let g = state.1.wait_while(g, |n| *n < 3).unwrap();
        assert_eq!(*g, 3);
    });
}

#[test]
fn atomics_work_without_a_scheduler() {
    let n = AtomicUsize::new(1);
    assert_eq!(n.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(n.load(Ordering::Acquire), 3);
    n.store(7, Ordering::Release);
    assert_eq!(n.swap(9, Ordering::AcqRel), 7);
    let b = AtomicBool::new(false);
    assert!(!b.swap(true, Ordering::SeqCst));
    assert!(b.load(Ordering::Relaxed));
}

#[test]
fn model_cell_is_a_plain_cell_without_a_scheduler() {
    let c = ModelCell::new(10usize);
    assert_eq!(c.get(), 10);
    c.set(11);
    c.with_mut(|v| *v += 1);
    assert_eq!(c.with(|v| *v), 12);
    assert_eq!(c.into_inner(), 12);
}

// Statics are the acid test for lazy object identity: a `static`
// shim atomic must be constructible in a const context and usable both
// with and without a scheduler.
static GLOBAL: AtomicUsize = AtomicUsize::new(0);

#[test]
fn static_shim_atomic_works() {
    GLOBAL.store(5, Ordering::SeqCst);
    assert_eq!(GLOBAL.load(Ordering::SeqCst), 5);
}
