//! Property tests on the trace record format and the archival encoding.

use atum_core::{decode_trace, encode_trace, RecordKind, Trace, TraceRecord};
use proptest::prelude::*;

fn record() -> impl Strategy<Value = TraceRecord> {
    (
        prop_oneof![
            Just(RecordKind::IFetch),
            Just(RecordKind::Read),
            Just(RecordKind::Write),
            Just(RecordKind::CtxSwitch),
            Just(RecordKind::Interrupt),
            Just(RecordKind::SegmentMark),
        ],
        any::<u32>(),
        prop_oneof![Just(0u32), Just(1), Just(2), Just(4)],
        any::<u8>(),
        any::<bool>(),
    )
        .prop_map(|(kind, addr, size, pid, kernel)| TraceRecord::new(kind, addr, size, pid, kernel))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn record_fields_round_trip(r in record()) {
        let parsed = TraceRecord::from_raw(r.addr, r.meta).expect("valid meta");
        prop_assert_eq!(parsed, r);
        prop_assert_eq!(parsed.kind(), r.kind());
        prop_assert_eq!(parsed.pid(), r.pid());
        prop_assert_eq!(parsed.is_kernel(), r.is_kernel());
        prop_assert_eq!(parsed.size(), r.size());
    }

    #[test]
    fn encode_decode_round_trips(records in proptest::collection::vec(record(), 0..500)) {
        let trace: Trace = records.iter().copied().collect();
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).expect("decodes");
        prop_assert_eq!(back.records(), trace.records());
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_trace(&bytes); // must return, never panic
    }

    #[test]
    fn decode_never_panics_on_truncated_valid(records in proptest::collection::vec(record(), 1..100), cut in any::<prop::sample::Index>()) {
        let trace: Trace = records.iter().copied().collect();
        let bytes = encode_trace(&trace);
        let cut = cut.index(bytes.len());
        let _ = decode_trace(&bytes[..cut]); // must return, never panic
    }

    #[test]
    fn stats_are_consistent(records in proptest::collection::vec(record(), 0..300)) {
        let trace: Trace = records.iter().copied().collect();
        let s = trace.stats();
        prop_assert_eq!(s.total_refs(), s.ifetch + s.reads + s.writes);
        prop_assert_eq!(s.kernel_refs + s.user_refs, s.total_refs());
        prop_assert_eq!(s.records, records.len() as u64);
        prop_assert!(s.distinct_pages >= s.distinct_data_pages);
        let by_pid: u64 = s.refs_by_pid.values().sum();
        prop_assert_eq!(by_pid, s.total_refs());
        prop_assert!(s.os_fraction() >= 0.0 && s.os_fraction() <= 1.0);
    }

    #[test]
    fn user_only_is_a_clean_subset(records in proptest::collection::vec(record(), 0..300)) {
        let trace: Trace = records.iter().copied().collect();
        let user = trace.user_only();
        prop_assert_eq!(user.stats().kernel_refs, 0);
        prop_assert_eq!(user.ref_count() as u64, trace.stats().user_refs);
        for r in user.iter() {
            prop_assert!(r.is_ref() && !r.is_kernel());
        }
    }
}
