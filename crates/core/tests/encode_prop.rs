//! Property tests on the trace record format and the archival encoding.

use atum_core::{
    decode_trace, encode_trace, RecordKind, SegmentFileSource, SegmentReader, SegmentWriter, Trace,
    TraceRecord, TraceSource,
};
use proptest::prelude::*;

/// Drains a source batch-by-batch, checking the batch invariants along
/// the way (batches are never empty, and the flat record view matches
/// the columnar one).
fn collect_batches<S: TraceSource + ?Sized>(source: &mut S) -> Vec<TraceRecord> {
    let mut out = Vec::new();
    while let Some(batch) = source.next_batch().expect("batch") {
        assert!(!batch.is_empty(), "sources must never yield empty batches");
        assert_eq!(batch.addrs().len(), batch.len());
        assert_eq!(batch.metas().len(), batch.len());
        for (i, r) in batch.iter().enumerate() {
            assert_eq!(batch.get(i), r);
        }
        out.extend(batch.iter());
    }
    out
}

fn record() -> impl Strategy<Value = TraceRecord> {
    (
        prop_oneof![
            Just(RecordKind::IFetch),
            Just(RecordKind::Read),
            Just(RecordKind::Write),
            Just(RecordKind::CtxSwitch),
            Just(RecordKind::Interrupt),
            Just(RecordKind::SegmentMark),
        ],
        any::<u32>(),
        prop_oneof![Just(0u32), Just(1), Just(2), Just(4)],
        any::<u8>(),
        any::<bool>(),
    )
        .prop_map(|(kind, addr, size, pid, kernel)| TraceRecord::new(kind, addr, size, pid, kernel))
}

/// Bursty records: straight-line I-stream runs, PID/mode phases and the
/// occasional marker — the shapes the run-length and pid-delta encoder
/// paths actually take (pure `record()` noise almost never forms runs).
fn bursty_segment() -> impl Strategy<Value = Vec<TraceRecord>> {
    proptest::collection::vec(
        (any::<u32>(), 1u32..50, any::<u8>(), any::<bool>(), 0u8..10),
        0..20,
    )
    .prop_map(|bursts| {
        let mut out = Vec::new();
        for (base, len, pid, kernel, kind_sel) in bursts {
            match kind_sel {
                0..=5 => {
                    for i in 0..len {
                        out.push(TraceRecord::new(
                            RecordKind::IFetch,
                            base.wrapping_add(i * 4),
                            4,
                            pid,
                            kernel,
                        ));
                    }
                }
                6 => {
                    for i in 0..len {
                        out.push(TraceRecord::new(
                            RecordKind::Write,
                            base.wrapping_add(i * 8),
                            1,
                            pid,
                            kernel,
                        ));
                    }
                }
                7 => out.push(TraceRecord::new(RecordKind::CtxSwitch, base, 0, pid, true)),
                8 => out.push(TraceRecord::new(RecordKind::Interrupt, base, 0, pid, true)),
                _ => {
                    for i in 0..len {
                        out.push(TraceRecord::new(
                            RecordKind::Read,
                            base.wrapping_sub(i * 4),
                            2,
                            pid,
                            kernel,
                        ));
                    }
                }
            }
        }
        out
    })
}

/// A multi-segment trace built the way captures build them: stitched.
fn stitched_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(bursty_segment(), 1..8).prop_map(|segments| {
        let mut t = Trace::new();
        for seg in segments {
            t.stitch(seg.into_iter().collect());
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn record_fields_round_trip(r in record()) {
        let parsed = TraceRecord::from_raw(r.addr, r.meta).expect("valid meta");
        prop_assert_eq!(parsed, r);
        prop_assert_eq!(parsed.kind(), r.kind());
        prop_assert_eq!(parsed.pid(), r.pid());
        prop_assert_eq!(parsed.is_kernel(), r.is_kernel());
        prop_assert_eq!(parsed.size(), r.size());
    }

    #[test]
    fn encode_decode_round_trips(records in proptest::collection::vec(record(), 0..500)) {
        let trace: Trace = records.iter().copied().collect();
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).expect("decodes");
        prop_assert_eq!(back.records(), trace.records());
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_trace(&bytes); // must return, never panic
    }

    #[test]
    fn decode_never_panics_on_truncated_valid(records in proptest::collection::vec(record(), 1..100), cut in any::<prop::sample::Index>()) {
        let trace: Trace = records.iter().copied().collect();
        let bytes = encode_trace(&trace);
        let cut = cut.index(bytes.len());
        let _ = decode_trace(&bytes[..cut]); // must return, never panic
    }

    #[test]
    fn multi_segment_round_trip_is_exact(t in stitched_trace()) {
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).expect("decodes");
        // Record-exact AND boundary-exact: `Trace` equality covers both.
        prop_assert_eq!(&back, &t);
        prop_assert_eq!(back.segments(), t.segments());
    }

    #[test]
    fn multi_segment_with_random_noise_round_trips(
        segs in proptest::collection::vec(proptest::collection::vec(record(), 0..120), 1..6)
    ) {
        // Arbitrary kinds/sizes/pids/modes across stitched segments.
        let mut t = Trace::new();
        for seg in &segs {
            t.stitch(seg.iter().copied().collect());
        }
        let back = decode_trace(&encode_trace(&t)).expect("decodes");
        prop_assert_eq!(&back, &t);
    }

    #[test]
    fn incremental_writer_matches_one_shot_encoder(t in stitched_trace()) {
        let mut bytes = Vec::new();
        let mut w = SegmentWriter::new(&mut bytes).expect("header");
        w.write_trace(&t).expect("write");
        let stats = w.finish().expect("flush");
        prop_assert_eq!(&bytes, &encode_trace(&t));
        prop_assert_eq!(stats.records, t.len() as u64);
        prop_assert_eq!(stats.segments, t.segments() as u64);

        // And the buffered reader streams the same records back.
        let mut rd = SegmentReader::new(&bytes[..]).expect("header");
        let mut back = Vec::new();
        while let Some((_h, recs)) = rd.next_segment().expect("segment") {
            back.extend_from_slice(recs);
        }
        prop_assert_eq!(back, t.records());
    }

    #[test]
    fn truncated_files_error_not_panic(t in stitched_trace(), cut in any::<prop::sample::Index>()) {
        let bytes = encode_trace(&t);
        if bytes.len() > 5 {
            let cut = 5 + cut.index(bytes.len() - 5);
            if cut < bytes.len() {
                // Dropping a tail can only yield an error or a trace
                // that is a strict prefix — never garbage records.
                if let Ok(partial) = decode_trace(&bytes[..cut]) {
                    prop_assert!(partial.len() <= t.len());
                    prop_assert_eq!(partial.records(), &t.records()[..partial.len()]);
                }
            }
        }
    }

    #[test]
    fn mid_segment_corruption_is_contained(t in stitched_trace(), pos in any::<prop::sample::Index>(), bits in 1u8..255) {
        let mut bytes = encode_trace(&t);
        if bytes.len() > 5 {
            let pos = 5 + pos.index(bytes.len() - 5);
            bytes[pos] ^= bits;
            // Must never panic; if it still decodes, segment boundaries
            // stay within bounds.
            if let Ok(back) = decode_trace(&bytes) {
                prop_assert!(back.segments() >= 1);
            }
        }
    }

    #[test]
    fn filtered_sources_agree_with_filtered_copies(t in stitched_trace(), pid in any::<u8>()) {
        let mut streamed = Vec::new();
        t.user_source().stream(&mut |b| streamed.extend_from_slice(b)).expect("stream");
        let user = t.user_only();
        prop_assert_eq!(&streamed, user.records());
        streamed.clear();
        t.pid_source(pid).stream(&mut |b| streamed.extend_from_slice(b)).expect("stream");
        let only = t.pid_only(pid);
        prop_assert_eq!(&streamed, only.records());
    }

    #[test]
    fn stats_are_consistent(records in proptest::collection::vec(record(), 0..300)) {
        let trace: Trace = records.iter().copied().collect();
        let s = trace.stats();
        prop_assert_eq!(s.total_refs(), s.ifetch + s.reads + s.writes);
        prop_assert_eq!(s.kernel_refs + s.user_refs, s.total_refs());
        prop_assert_eq!(s.records, records.len() as u64);
        prop_assert!(s.distinct_pages >= s.distinct_data_pages);
        let by_pid: u64 = s.refs_by_pid.values().sum();
        prop_assert_eq!(by_pid, s.total_refs());
        prop_assert!(s.os_fraction() >= 0.0 && s.os_fraction() <= 1.0);
    }

    #[test]
    fn batched_iteration_matches_per_record(t in stitched_trace(), pid in any::<u8>()) {
        // The batch path over an in-memory source yields exactly the
        // per-record view, markers and empty segments included…
        prop_assert_eq!(collect_batches(&mut t.source()), t.records().to_vec());
        // …and the filtered sources batch exactly their per-record
        // iterator counterparts.
        prop_assert_eq!(
            collect_batches(&mut t.user_source()),
            t.user_refs().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            collect_batches(&mut t.pid_source(pid)),
            t.pid_refs(pid).collect::<Vec<_>>()
        );
    }

    #[test]
    fn file_source_batches_match_records_across_passes(t in stitched_trace(), case in any::<u32>()) {
        let path = std::env::temp_dir().join(format!(
            "atum-batch-prop-{}-{case}.atrace",
            std::process::id()
        ));
        std::fs::write(&path, encode_trace(&t)).expect("write");
        let mut src = SegmentFileSource::new(&path);
        // Two full passes: rewind must restart the file exactly, with
        // the batch view equal to the stitched records both times.
        prop_assert_eq!(collect_batches(&mut src), t.records().to_vec());
        src.rewind().expect("rewind");
        prop_assert_eq!(collect_batches(&mut src), t.records().to_vec());
        drop(src);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn user_only_is_a_clean_subset(records in proptest::collection::vec(record(), 0..300)) {
        let trace: Trace = records.iter().copied().collect();
        let user = trace.user_only();
        prop_assert_eq!(user.stats().kernel_refs, 0);
        prop_assert_eq!(user.ref_count() as u64, trace.stats().user_refs);
        for r in user.iter() {
            prop_assert!(r.is_ref() && !r.is_kernel());
        }
    }
}
