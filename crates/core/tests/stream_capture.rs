//! End-to-end tests of the streaming capture path and the on-disk
//! segment format: a streamed capture's file must decode to exactly the
//! trace the in-memory session would have stitched, and the encoded
//! byte layout is pinned by a golden file so format drift cannot land
//! silently.

use atum_core::{
    decode_trace, encode_trace, CaptureSession, RecordKind, SegmentFileSource, SegmentReader,
    SegmentWriter, Trace, TraceRecord, Tracer,
};
use atum_machine::{Machine, MemLayout, RunExit};
use std::path::PathBuf;

const ORG: u32 = 0x1000;

fn load(src: &str) -> Machine {
    let full = format!(".org {ORG:#x}\n{src}\n");
    let img = atum_asm::assemble(&full).unwrap_or_else(|e| panic!("asm: {e}"));
    let mut m = Machine::new(MemLayout::small());
    for (addr, bytes) in img.segments() {
        m.write_phys(*addr, bytes).expect("load");
    }
    m.set_gpr(14, 0x8000);
    m.set_pc(img.symbol("start").unwrap_or(ORG));
    m
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("atum-{tag}-{}.atrace", std::process::id()))
}

#[test]
fn streamed_capture_file_decodes_to_the_stitched_trace() {
    let src = "start: movl #400, r0\nloop: movl r0, scratch\n sobgtr r0, loop\n halt\n\
               scratch: .long 0";
    // In-memory reference capture with a tiny buffer → many drains.
    let mut a = load(src);
    let base = a.memory().layout().reserved_base();
    let tracer_a = Tracer::attach_region(&mut a, base, 2048).unwrap();
    let cap = CaptureSession::new(&tracer_a, 1_000_000_000)
        .run(&mut a)
        .unwrap();
    assert!(cap.drains > 2, "want a multi-drain run, got {}", cap.drains);

    // Streamed capture of the identical machine straight to disk.
    let mut b = load(src);
    let tracer_b = Tracer::attach_region(&mut b, base, 2048).unwrap();
    let path = temp_path("stream-capture");
    let mut w = SegmentWriter::create(&path).unwrap();
    let streamed = CaptureSession::new(&tracer_b, 1_000_000_000)
        .run_streaming(&mut b, &mut w)
        .unwrap();
    w.finish().unwrap();

    assert_eq!(streamed.exit, RunExit::Halted);
    assert_eq!(streamed.drains, cap.drains);
    assert_eq!(streamed.stats.records, cap.trace.len() as u64);
    assert_eq!(streamed.stats.segments, cap.trace.segments() as u64);

    // The file decodes to exactly what stitching produced: same records
    // (marks included), same segment boundaries.
    let back = SegmentFileSource::new(&path).read_to_trace().unwrap();
    assert_eq!(back, cap.trace);

    // Segment headers carry the capture clock: strictly increasing
    // cycle stamps, and each segment's context matches its first record.
    let mut rd = SegmentReader::open(&path).unwrap();
    let mut last_cycle = 0u64;
    while let Some((h, recs)) = rd.next_segment().unwrap() {
        assert!(h.cycle > last_cycle, "cycle stamps must advance");
        last_cycle = h.cycle;
        assert_eq!(h.records, recs.len() as u64);
        if let Some(first) = recs.first() {
            assert_eq!(h.pid, first.pid());
            assert_eq!(h.kernel, first.is_kernel());
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn streamed_capture_compresses_the_real_istream() {
    let mut m = load(
        "start: movl #300, r0\nloop: incl counter\n sobgtr r0, loop\n halt\n\
         counter: .long 0",
    );
    let base = m.memory().layout().reserved_base();
    let tracer = Tracer::attach_region(&mut m, base, 4096).unwrap();
    let path = temp_path("stream-ratio");
    let mut w = SegmentWriter::create(&path).unwrap();
    let streamed = CaptureSession::new(&tracer, 1_000_000_000)
        .run_streaming(&mut m, &mut w)
        .unwrap();
    w.finish().unwrap();
    assert!(
        streamed.stats.compression_ratio() >= 3.0,
        "real captured I/D streams must compact ≥3x, got {:.2} ({} raw, {} encoded)",
        streamed.stats.compression_ratio(),
        streamed.stats.raw_bytes(),
        streamed.stats.encoded_bytes,
    );
    std::fs::remove_file(&path).ok();
}

/// A fixed trace exercising every record kind, size, PID changes,
/// kernel/user mixes, I-stream runs and multiple segments — the golden
/// input whose encoded bytes are pinned below.
fn golden_trace() -> Trace {
    let mut t = Trace::new();
    let mut seg1 = Trace::new();
    for i in 0..64u32 {
        seg1.push(TraceRecord::new(
            RecordKind::IFetch,
            0x1000 + i * 4,
            4,
            1,
            false,
        ));
        if i % 8 == 0 {
            seg1.push(TraceRecord::new(
                RecordKind::Read,
                0x4000 + i * 2,
                2,
                1,
                false,
            ));
        }
    }
    seg1.push(TraceRecord::new(RecordKind::CtxSwitch, 0x9000, 0, 2, true));
    for i in 0..16u32 {
        seg1.push(TraceRecord::new(
            RecordKind::Write,
            0x8000_0000 + i,
            1,
            2,
            true,
        ));
    }
    t.stitch(seg1);

    let mut seg2 = Trace::new();
    seg2.push(TraceRecord::new(RecordKind::Interrupt, 0x14, 0, 2, true));
    for i in 0..32u32 {
        seg2.push(TraceRecord::new(
            RecordKind::IFetch,
            0x2000 - i * 4,
            4,
            3,
            false,
        ));
    }
    t.stitch(seg2);
    t.stitch(Trace::new()); // an empty drained sample
    t
}

#[test]
fn golden_segment_file_is_byte_stable() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_v2.atrace");
    let bytes = encode_trace(&golden_trace());
    if std::env::var_os("ATUM_BLESS").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden")).unwrap();
        std::fs::write(golden_path, &bytes).unwrap();
    }
    let golden = std::fs::read(golden_path)
        .expect("golden file missing — regenerate with ATUM_BLESS=1 cargo test");
    assert_eq!(
        bytes, golden,
        "encoded segment format drifted from the pinned v2 layout; if the \
         change is deliberate, bump the version byte and re-bless"
    );
    // And the pinned bytes still decode to the pinned trace.
    assert_eq!(decode_trace(&golden).unwrap(), golden_trace());
}
