//! Model-checked verification of the concurrency protocols in
//! `atum-core`: the bounded broadcast ring (`broadcast_batches`) and
//! the ordered-merge parallel segment reader (`with_jobs` streaming),
//! plus a seeded-bug negative suite proving the detectors would catch
//! the classic ways these protocols go wrong.
//!
//! Under `--cfg atum_model` every test body runs under **exhaustive
//! schedule exploration** (all interleavings within the preemption
//! bound, plus forced spurious wakeups): an assertion failure, data
//! race, or deadlock in *any* explored schedule fails the test with the
//! offending schedule trace. Without the cfg the bodies run once,
//! natively, as ordinary tests. Model-scale constants (`BATCH_TARGET` =
//! 4, ring depth 1, merge window 1) keep the state spaces small enough
//! to walk completely.

use atum_conc::model;
use atum_core::{
    broadcast_batches, RecordBatch, RecordKind, SegmentFileSource, SegmentWriter, Trace,
    TraceRecord, TraceSource,
};

fn tiny_trace(n: u32) -> Trace {
    let mut t = Trace::new();
    for i in 0..n {
        t.push(TraceRecord::new(
            RecordKind::Read,
            0x1000 + i * 4,
            4,
            1,
            false,
        ));
    }
    t
}

/// Serial reference fold used to check broadcast results.
fn fold(acc: &mut u64, b: &RecordBatch) {
    for r in b.iter() {
        *acc = acc
            .wrapping_mul(31)
            .wrapping_add(r.addr as u64 + r.meta as u64);
    }
}

/// The ring protocol, exhaustively: 2 consumer shards, a bounded
/// (depth-1 under the model) ring, multi-batch trace. Every explored
/// schedule must terminate (deadlock-freedom), keep the ring within its
/// depth (a `debug_assert` in the producer), and leave every consumer
/// with the serial fold value (per-shard FIFO order — a reordered or
/// dropped batch changes the fold).
#[test]
fn ring_broadcast_is_correct_under_all_schedules() {
    // 6 records = 2 model-scale batches: enough for the full protocol
    // cycle (fill ring → backpressure → drain → done) twice over, small
    // enough to explore completely.
    let t = tiny_trace(6);
    let mut want = vec![0u64; 2];
    broadcast_batches(&mut t.source(), &mut want, 1, fold).unwrap();

    model::Builder::new().name("core:ring-broadcast").check(|| {
        let mut got = vec![0u64; 2];
        broadcast_batches(&mut t.source(), &mut got, 2, fold).unwrap();
        assert_eq!(got, want);
    });
}

/// Writes `segs` segments of `per` records each to a fresh temp file,
/// returning the path (caller removes it).
fn write_segment_file(tag: &str, segs: u32, per: u32) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("atum-model-{tag}-{}.atrace", std::process::id()));
    let mut w = SegmentWriter::create(&path).unwrap();
    let mut buf = Vec::new();
    for s in 0..segs {
        buf.clear();
        for i in 0..per {
            buf.push(TraceRecord::new(
                RecordKind::Read,
                0x2000 + s * 0x100 + i * 4,
                4,
                1,
                false,
            ));
        }
        w.write_segment(&buf, u64::from(s)).unwrap();
    }
    w.finish().unwrap();
    path
}

/// The ordered-merge reader, exhaustively: 2 workers claim segments
/// from a shared counter and deposit into a bounded (size-1 under the
/// model) window; the consumer must observe the segments strictly in
/// order in every schedule. This also proves the wanted-segment bypass
/// deadlock-free: with a window of 1 the bypass is load-bearing in
/// every schedule where a worker holds a later segment.
#[test]
fn ordered_merge_reads_in_order_under_all_schedules() {
    let path = write_segment_file("merge", 3, 3);
    let want = SegmentFileSource::new(&path).read_to_trace().unwrap();

    model::Builder::new().name("core:ordered-merge").check(|| {
        let mut got = Vec::new();
        SegmentFileSource::with_jobs(&path, 2)
            .stream(&mut |records| got.extend_from_slice(records))
            .unwrap();
        assert_eq!(got, want.records());
    });
    std::fs::remove_file(&path).ok();
}

/// Minimal walker over the segment file format, locating each segment's
/// payload byte range so a test can corrupt one in place. (The format
/// is locked by the golden-file tests; this mirrors only the header
/// frame: `S` mark, three varints, two fixed bytes.)
fn payload_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    fn varint(b: &[u8], p: &mut usize) -> u64 {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let x = b[*p];
            *p += 1;
            v |= u64::from(x & 0x7F) << shift;
            if x & 0x80 == 0 {
                return v;
            }
            shift += 7;
        }
    }
    let mut p = 5; // magic + version
    let mut spans = Vec::new();
    while p < bytes.len() {
        assert_eq!(bytes[p], b'S', "not at a segment boundary");
        p += 1;
        let _records = varint(bytes, &mut p);
        let payload_len = varint(bytes, &mut p) as usize;
        let _cycle = varint(bytes, &mut p);
        p += 2; // pid, kernel flag
        spans.push((p, payload_len));
        p += payload_len;
    }
    spans
}

/// Writes a segment file whose middle segment's payload is garbage
/// (structurally valid headers, so the index scan succeeds and the
/// error surfaces in a *worker's* decode).
fn write_corrupt_file(tag: &str) -> std::path::PathBuf {
    let path = write_segment_file(tag, 3, 8);
    let mut bytes = std::fs::read(&path).unwrap();
    let spans = payload_spans(&bytes);
    assert_eq!(spans.len(), 3);
    let (off, len) = spans[1];
    for b in &mut bytes[off..off + len] {
        *b = 0xFF;
    }
    std::fs::write(&path, bytes).unwrap();
    path
}

/// The abort protocol, exhaustively: a worker's decode error must reach
/// the consumer and the call must return `Err` **in every schedule** —
/// and return at all, which under the model proves the abort broadcast
/// wakes every parked worker (a missed wakeup would be reported as a
/// deadlock). The sink must have observed exactly the ordered prefix
/// before the corrupt segment.
#[test]
fn decode_error_aborts_cleanly_under_all_schedules() {
    let path = write_corrupt_file("abort");
    let good = {
        let mut n = 0usize;
        SegmentFileSource::new(write_segment_file("abort-ref", 1, 8))
            .stream(&mut |records| n += records.len())
            .unwrap();
        n
    };

    model::Builder::new().name("core:error-abort").check(|| {
        let mut seen = 0usize;
        let res =
            SegmentFileSource::with_jobs(&path, 2).stream(&mut |records| seen += records.len());
        assert!(res.is_err(), "corrupt segment must surface as an error");
        assert_eq!(seen, good, "sink sees exactly the prefix before the error");
    });
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(std::env::temp_dir().join(format!(
        "atum-model-abort-ref-{}.atrace",
        std::process::id()
    )))
    .ok();
}

// ---------------------------------------------------------------------------
// Seeded-bug negative suite (model builds only: without the model these
// would be real races and real deadlocks). Each scenario is the live
// protocol with one classic bug re-introduced in miniature; the model
// must catch every one and name the access points in its report.
// ---------------------------------------------------------------------------

#[cfg(atum_model)]
mod seeded {
    use atum_conc::cell::ModelCell;
    use atum_conc::model::Builder;
    use atum_conc::sync::atomic::{AtomicUsize, Ordering};
    use atum_conc::sync::{Arc, Condvar, Mutex};
    use atum_conc::thread;
    use std::collections::{BTreeMap, VecDeque};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runs `f` expecting the model to fail with a report containing
    /// every needle.
    fn check_fails(b: Builder, needles: &[&str], f: impl Fn()) {
        let result = catch_unwind(AssertUnwindSafe(|| b.check(f)));
        let payload = match result {
            Ok(stats) => panic!(
                "expected the model to catch the seeded bug, but {} schedules came up clean",
                stats.schedules
            ),
            Err(p) => p,
        };
        let msg = if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            "<non-string panic>".to_string()
        };
        for needle in needles {
            assert!(
                msg.contains(needle),
                "report should contain {needle:?}; got:\n{msg}"
            );
        }
    }

    /// Seeded bug 1: the ring consumer pops a slot but the notify on
    /// slot release is dropped — the producer blocked on ring capacity
    /// never wakes. Caught as a deadlock naming both parked threads.
    #[test]
    fn dropped_notify_on_ring_slot_release_deadlocks() {
        check_fails(
            Builder::new()
                .name("seeded:ring-lost-notify")
                .spurious_wakeups(0),
            &["deadlock", "parked on condvar", "model.rs"],
            || {
                let state = Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
                thread::scope(|s| {
                    let st = Arc::clone(&state);
                    s.spawn(move || {
                        // Consumer: drain 3 items from the depth-1 ring.
                        for _ in 0..3 {
                            let mut g =
                                st.1.wait_while(st.0.lock().unwrap(), |q: &mut VecDeque<u32>| {
                                    q.is_empty()
                                })
                                .unwrap();
                            g.pop_front();
                            // BUG: no notify_all() here — the producer
                            // waiting out the full ring never learns the
                            // slot freed up.
                        }
                    });
                    for i in 0..3u32 {
                        let mut g = state
                            .1
                            .wait_while(state.0.lock().unwrap(), |q: &mut VecDeque<u32>| {
                                !q.is_empty()
                            })
                            .unwrap();
                        g.push_back(i);
                        state.1.notify_all();
                    }
                });
            },
        );
    }

    /// Seeded bug 2: the work-claim `fetch_add` weakened to an
    /// unsynchronized load/store pair — two workers can claim the same
    /// segment. Caught as a data race on the claim counter naming both
    /// access points.
    #[test]
    fn weakened_work_claim_counter_races() {
        check_fails(
            Builder::new().name("seeded:claim-race"),
            &["data race", "unsync-", "model.rs"],
            || {
                let next = Arc::new(AtomicUsize::new(0));
                thread::scope(|s| {
                    for _ in 0..2 {
                        let next = Arc::clone(&next);
                        s.spawn(move || {
                            // BUG: should be next.fetch_add(1, _) — the
                            // read-modify-write is no longer atomic and
                            // carries no happens-before edge.
                            let i = next.unsync_load();
                            next.unsync_store(i + 1);
                        });
                    }
                });
            },
        );
    }

    /// Seeded bug 3: the ordered merge without the wanted-segment
    /// bypass. With the in-flight window full of later segments, the
    /// worker holding the segment the consumer needs can never deposit
    /// it: everyone parks. Caught as a deadlock.
    #[test]
    fn merge_without_wanted_segment_bypass_deadlocks() {
        check_fails(
            Builder::new()
                .name("seeded:merge-no-bypass")
                .spurious_wakeups(0),
            &["deadlock", "parked on condvar", "model.rs"],
            || {
                const SEGMENTS: usize = 3;
                const CAP: usize = 1;
                struct Merge {
                    ready: BTreeMap<usize, usize>,
                    want: usize,
                }
                let next = Arc::new(AtomicUsize::new(0));
                let state = Arc::new((
                    Mutex::new(Merge {
                        ready: BTreeMap::new(),
                        want: 0,
                    }),
                    Condvar::new(),
                ));
                thread::scope(|s| {
                    for _ in 0..2 {
                        let next = Arc::clone(&next);
                        let st = Arc::clone(&state);
                        s.spawn(move || loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= SEGMENTS {
                                return;
                            }
                            let mut g =
                                st.1.wait_while(st.0.lock().unwrap(), |g: &mut Merge| {
                                    // BUG: the real protocol also lets
                                    // `i == g.want` through the cap.
                                    g.ready.len() >= CAP
                                })
                                .unwrap();
                            g.ready.insert(i, i * 10);
                            st.1.notify_all();
                        });
                    }
                    for want in 0..SEGMENTS {
                        let mut g = state.0.lock().unwrap();
                        g.want = want;
                        state.1.notify_all();
                        let mut g = state
                            .1
                            .wait_while(g, |g: &mut Merge| !g.ready.contains_key(&want))
                            .unwrap();
                        assert_eq!(g.ready.remove(&want), Some(want * 10));
                        state.1.notify_all();
                    }
                });
            },
        );
    }

    /// Seeded bug 4: a shared records-seen counter bumped by two
    /// consumers without a lock. Caught as a data race on the cell,
    /// naming both write sites.
    #[test]
    fn unlocked_shared_counter_races() {
        check_fails(
            Builder::new().name("seeded:counter-race"),
            &["data race", "model.rs"],
            || {
                let seen = Arc::new(ModelCell::new(0usize));
                thread::scope(|s| {
                    for _ in 0..2 {
                        let seen = Arc::clone(&seen);
                        s.spawn(move || {
                            // BUG: read-modify-write with no ordering.
                            let v = seen.get();
                            seen.set(v + 1);
                        });
                    }
                });
            },
        );
    }
}
