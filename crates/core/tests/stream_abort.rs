//! Native regression test for the parallel reader's abort protocol: a
//! decode error in one worker during `with_jobs` streaming must abort
//! all workers, join them (the call returns rather than hanging), and
//! surface the error to the caller, with the sink having observed only
//! the in-order prefix that precedes the bad segment.
//!
//! The model-checked twin in `tests/model.rs` proves the same property
//! over every small-schedule interleaving; this test exercises the real
//! thing at production scale and thread counts.

use atum_core::{
    RecordKind, SegmentFileSource, SegmentWriter, Trace, TraceRecord, TraceSource, TraceStreamError,
};
use std::path::PathBuf;

fn segment_file(tag: &str, segs: u32, per: u32) -> PathBuf {
    let path = std::env::temp_dir().join(format!("atum-abort-{tag}-{}.atrace", std::process::id()));
    let mut w = SegmentWriter::create(&path).unwrap();
    let mut buf = Vec::new();
    for s in 0..segs {
        buf.clear();
        for i in 0..per {
            buf.push(TraceRecord::new(
                RecordKind::Read,
                0x4000 + s * 0x1000 + i * 4,
                4,
                (s % 3) as u8,
                false,
            ));
        }
        w.write_segment(&buf, u64::from(s)).unwrap();
    }
    w.finish().unwrap();
    path
}

/// Walks the segment headers (mark byte + three varints + two fixed
/// bytes — the format is locked by the golden-file tests) and returns
/// each payload's byte range.
fn payload_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    fn varint(b: &[u8], p: &mut usize) -> u64 {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let x = b[*p];
            *p += 1;
            v |= u64::from(x & 0x7F) << shift;
            if x & 0x80 == 0 {
                return v;
            }
            shift += 7;
        }
    }
    let mut p = 5;
    let mut spans = Vec::new();
    while p < bytes.len() {
        assert_eq!(bytes[p], b'S');
        p += 1;
        let _records = varint(bytes, &mut p);
        let payload_len = varint(bytes, &mut p) as usize;
        let _cycle = varint(bytes, &mut p);
        p += 2;
        spans.push((p, payload_len));
        p += payload_len;
    }
    spans
}

#[test]
fn worker_decode_error_aborts_all_workers_and_returns_the_error() {
    const SEGS: u32 = 24;
    const PER: u32 = 50;
    const BAD: usize = 7;
    let path = segment_file("mid", SEGS, PER);
    let mut bytes = std::fs::read(&path).unwrap();
    let spans = payload_spans(&bytes);
    assert_eq!(spans.len(), SEGS as usize);
    let (off, len) = spans[BAD];
    for b in &mut bytes[off..off + len] {
        *b = 0xFF;
    }
    std::fs::write(&path, bytes).unwrap();

    let expect_prefix: Vec<TraceRecord> = {
        let mut t = Trace::new();
        for s in 0..BAD as u32 {
            for i in 0..PER {
                t.push(TraceRecord::new(
                    RecordKind::Read,
                    0x4000 + s * 0x1000 + i * 4,
                    4,
                    (s % 3) as u8,
                    false,
                ));
            }
        }
        t.records().to_vec()
    };

    for jobs in [2, 4, 8] {
        let mut seen = Vec::new();
        let res = SegmentFileSource::with_jobs(&path, jobs)
            .stream(&mut |records| seen.extend_from_slice(records));
        assert!(
            matches!(res, Err(TraceStreamError::Decode(_))),
            "jobs={jobs}: expected a decode error, got {res:?}"
        );
        assert_eq!(
            seen, expect_prefix,
            "jobs={jobs}: sink must observe exactly the in-order prefix"
        );
        // The call returned with all workers joined (scoped threads
        // cannot outlive the call); a fresh pass over the same source
        // must behave identically — no leaked state.
        let res2 = SegmentFileSource::with_jobs(&path, jobs).stream(&mut |_| {});
        assert!(matches!(res2, Err(TraceStreamError::Decode(_))));
    }

    // The sequential path reports the same error class.
    let res = SegmentFileSource::new(&path).stream(&mut |_| {});
    assert!(matches!(res, Err(TraceStreamError::Decode(_))));

    std::fs::remove_file(&path).ok();
}

#[test]
fn error_in_first_segment_yields_empty_prefix() {
    let path = segment_file("first", 6, 40);
    let mut bytes = std::fs::read(&path).unwrap();
    let (off, len) = payload_spans(&bytes)[0];
    for b in &mut bytes[off..off + len] {
        *b = 0xFF;
    }
    std::fs::write(&path, bytes).unwrap();

    let mut seen = 0usize;
    let res = SegmentFileSource::with_jobs(&path, 4).stream(&mut |records| seen += records.len());
    assert!(res.is_err());
    assert_eq!(seen, 0, "nothing precedes the corrupt segment");
    std::fs::remove_file(&path).ok();
}
