//! End-to-end capture tests: the ATUM patches against real programs on
//! the microcoded machine — completeness, invisibility, stitching, and
//! the slowdown measurement itself.

use atum_core::{CaptureSession, RecordKind, Tracer};
use atum_machine::{Machine, MemLayout, RunExit};

const ORG: u32 = 0x1000;

fn load(src: &str) -> Machine {
    let full = format!(".org {ORG:#x}\n{src}\n");
    let img = atum_asm::assemble(&full).unwrap_or_else(|e| panic!("asm: {e}"));
    let mut m = Machine::new(MemLayout::small());
    for (addr, bytes) in img.segments() {
        m.write_phys(*addr, bytes).expect("load");
    }
    m.set_gpr(14, 0x8000);
    m.set_pc(img.symbol("start").unwrap_or(ORG));
    m
}

#[test]
fn captures_reads_writes_and_ifetches() {
    let mut m = load(
        "start: movl data, r1\n movl r1, out\n halt\n\
         data: .long 0x1234\nout: .long 0",
    );
    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_enabled(&mut m, true);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    let t = tracer.extract(&m).unwrap();

    let reads: Vec<_> = t.iter().filter(|r| r.kind() == RecordKind::Read).collect();
    let writes: Vec<_> = t.iter().filter(|r| r.kind() == RecordKind::Write).collect();
    let ifetches = t.iter().filter(|r| r.kind() == RecordKind::IFetch).count();
    assert_eq!(reads.len(), 1);
    assert_eq!(writes.len(), 1);
    assert!(ifetches >= 2, "several istream longwords");
    // The read is of `data`, the write of `out`; both longword, kernel.
    assert_eq!(reads[0].size(), 4);
    assert!(reads[0].is_kernel());
    assert_eq!(writes[0].addr, reads[0].addr + 4);
    // All ifetches are longword-aligned.
    for r in t.iter().filter(|r| r.kind() == RecordKind::IFetch) {
        assert_eq!(r.addr & 3, 0, "ifetch at {:#x}", r.addr);
        assert_eq!(r.size(), 4);
    }
}

#[test]
fn trace_matches_hardware_counters() {
    let mut m = load(
        "start: movl #50, r0\n clrl r1\n moval buf, r2\n\
         loop: movl r0, (r2)+\n addl2 r0, r1\n sobgtr r0, loop\n halt\n\
         buf: .space 256",
    );
    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_enabled(&mut m, true);
    assert_eq!(m.run(5_000_000), RunExit::Halted);
    let t = tracer.extract(&m).unwrap();
    let s = t.stats();
    let c = m.counts();
    assert_eq!(s.ifetch, c.ifetch, "every hardware ifetch traced");
    assert_eq!(s.reads, c.data_reads);
    assert_eq!(s.writes, c.data_writes);
    assert_eq!(m.gpr(1), (1..=50).sum::<u32>(), "program result intact");
}

#[test]
fn disabled_tracer_records_nothing() {
    let mut m = load("start: movl #5, r0\nloop: sobgtr r0, loop\n halt");
    let tracer = Tracer::attach(&mut m).unwrap();
    // Never enabled.
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(tracer.extract(&m).unwrap().len(), 0);
    assert_eq!(tracer.pending_records(&m), 0);
}

#[test]
fn patch_is_architecturally_invisible() {
    let src = "start: movl #20, r0\n clrl r1\n clrl r2\n\
               loop: addl2 r0, r1\n xorl2 r0, r2\n sobgtr r0, loop\n\
               pushl r1\n popl r3\n halt";
    // Unpatched run.
    let mut plain = load(src);
    assert_eq!(plain.run(5_000_000), RunExit::Halted);
    // Patched + enabled run.
    let mut traced = load(src);
    let tracer = Tracer::attach(&mut traced).unwrap();
    tracer.set_enabled(&mut traced, true);
    assert_eq!(traced.run(50_000_000), RunExit::Halted);

    for r in 0..15 {
        assert_eq!(plain.gpr(r), traced.gpr(r), "r{r} differs under tracing");
    }
    assert_eq!(plain.psl(), traced.psl());
    assert_eq!(plain.insns(), traced.insns());
    assert_eq!(plain.counts().total_refs(), traced.counts().total_refs());
}

#[test]
fn slowdown_is_in_the_paper_band() {
    let src = "start: movl #2000, r0\n clrl r1\n moval buf, r2\n\
               loop: movl r0, (r2)\n addl2 (r2), r1\n sobgtr r0, loop\n halt\n\
               buf: .long 0";
    let mut plain = load(src);
    assert_eq!(plain.run(100_000_000), RunExit::Halted);
    let base_cycles = plain.cycles();

    let mut traced = load(src);
    let tracer = Tracer::attach(&mut traced).unwrap();
    tracer.set_enabled(&mut traced, true);
    assert_eq!(traced.run(1_000_000_000), RunExit::Halted);
    let traced_cycles = traced.cycles();

    let slowdown = traced_cycles as f64 / base_cycles as f64;
    // ATUM reported ~20x on the 8200, whose patch paid microtrap entry
    // and state spills; SVX reserves scratch registers for patches, so
    // the streamlined patch lands near 2x (the state-spilling variant in
    // atum-baselines reproduces the slower band). Guard the shape:
    // clearly above 1.5x, and far below software-tracing slowdowns.
    assert!(
        (1.5..40.0).contains(&slowdown),
        "slowdown {slowdown:.1} out of band ({base_cycles} → {traced_cycles})"
    );
}

#[test]
fn buffer_full_halts_and_drains_stitch() {
    let mut m = load(
        "start: movl #400, r0\nloop: movl r0, scratch\n sobgtr r0, loop\n halt\n\
         scratch: .long 0",
    );
    // A deliberately tiny 2 KiB buffer → 256 records per segment.
    let base = m.memory().layout().reserved_base();
    let tracer = Tracer::attach_region(&mut m, base, 2048).unwrap();
    let capture = CaptureSession::new(&tracer, 1_000_000_000)
        .run(&mut m)
        .unwrap();
    assert_eq!(capture.exit, RunExit::Halted);
    assert!(
        capture.drains > 2,
        "multiple drains, got {}",
        capture.drains
    );
    let s = capture.trace.stats();
    assert_eq!(s.writes, 400, "no write lost across drains");
    assert_eq!(
        capture
            .trace
            .iter()
            .filter(|r| r.kind() == RecordKind::SegmentMark)
            .count() as u32,
        capture.drains,
        "one segment mark per drain boundary"
    );
}

#[test]
fn stitched_capture_equals_single_capture() {
    let src = "start: movl #100, r0\nloop: incl counter\n sobgtr r0, loop\n halt\n\
               counter: .long 0";
    // Big-buffer reference capture.
    let mut big = load(src);
    let tracer_big = Tracer::attach(&mut big).unwrap();
    let cap_big = CaptureSession::new(&tracer_big, 1_000_000_000)
        .run(&mut big)
        .unwrap();
    // Tiny-buffer stitched capture.
    let mut small = load(src);
    let base = small.memory().layout().reserved_base();
    let tracer_small = Tracer::attach_region(&mut small, base, 1024).unwrap();
    let cap_small = CaptureSession::new(&tracer_small, 1_000_000_000)
        .run(&mut small)
        .unwrap();

    let refs_big: Vec<_> = cap_big.trace.refs().collect();
    let refs_small: Vec<_> = cap_small.trace.refs().collect();
    assert_eq!(refs_big, refs_small, "stitching loses or alters nothing");
    assert!(cap_small.drains > 0);
}

#[test]
fn exception_markers_captured() {
    let mut m = load(
        "start: chmk #7\n halt\n\
         handler: popl r1\n rei",
    );
    // SCB at 0x6000 with the CHMK vector pointing at `handler`.
    let img = atum_asm::assemble(&format!(
        ".org {ORG:#x}\nstart: chmk #7\n halt\nhandler: popl r1\n rei\n"
    ))
    .unwrap();
    m.write_phys(0x6000 + 0x40, &img.symbol("handler").unwrap().to_le_bytes())
        .unwrap();
    m.write_prv(atum_arch::PrivReg::Scbb, 0x6000);
    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_enabled(&mut m, true);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    let t = tracer.extract(&m).unwrap();
    let ints: Vec<_> = t
        .iter()
        .filter(|r| r.kind() == RecordKind::Interrupt)
        .collect();
    assert_eq!(ints.len(), 1);
    assert_eq!(ints[0].addr, 0x40, "marker carries the SCB vector");
    assert_eq!(m.gpr(1), 7);
    // The handler's stack pops are kernel data reads in the trace.
    assert!(t
        .iter()
        .any(|r| r.kind() == RecordKind::Read && r.is_kernel()));
}

#[test]
fn context_switch_marker_and_pid_stamping() {
    // Build a PCB at 0x9000 with PID 5, then ldpctx + rei into `ctx`.
    let src = "start: mtpr #0x9000, #16\n ldpctx\n rei\n\
               ctx: movl data, r1\n halt\n\
               data: .long 0xAB";
    let full = format!(".org {ORG:#x}\n{src}\n");
    let img = atum_asm::assemble(&full).unwrap();
    let mut m = Machine::new(MemLayout::small());
    for (addr, bytes) in img.segments() {
        m.write_phys(*addr, bytes).unwrap();
    }
    let mut pcb = vec![0u8; 92];
    pcb[0..4].copy_from_slice(&0x8000u32.to_le_bytes()); // KSP
    pcb[64..68].copy_from_slice(&img.symbol("ctx").unwrap().to_le_bytes());
    pcb[68..72].copy_from_slice(&atum_arch::Psl::new().bits().to_le_bytes());
    pcb[88..92].copy_from_slice(&5u32.to_le_bytes()); // PID
    m.write_phys(0x9000, &pcb).unwrap();
    m.set_gpr(14, 0x8000);
    m.set_pc(ORG);

    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_pid(&mut m, 1);
    tracer.set_enabled(&mut m, true);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.gpr(1), 0xAB);

    let t = tracer.extract(&m).unwrap();
    let ctx: Vec<_> = t
        .iter()
        .filter(|r| r.kind() == RecordKind::CtxSwitch)
        .collect();
    assert_eq!(ctx.len(), 1);
    assert_eq!(ctx[0].pid(), 5, "marker stamped with the incoming pid");
    assert_eq!(ctx[0].addr, 0x9000, "marker carries the PCB base");
    // References before the switch carry pid 1, after it pid 5.
    let first_ref = t.refs().next().unwrap();
    assert_eq!(first_ref.pid(), 1);
    let data_read = t
        .refs()
        .find(|r| r.kind() == RecordKind::Read && r.addr >= ORG)
        .unwrap();
    assert_eq!(data_read.pid(), 5);
}

#[test]
fn detach_restores_stock_behaviour() {
    let mut m = load("start: movl #5, r0\n halt");
    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_enabled(&mut m, true);
    tracer.detach(&mut m);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(
        m.read_prv(atum_arch::PrivReg::Trptr),
        m.memory().layout().reserved_base()
    );
}

#[test]
fn encode_round_trips_a_real_capture() {
    let mut m =
        load("start: movl #30, r0\nloop: incl counter\n sobgtr r0, loop\n halt\ncounter: .long 0");
    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_enabled(&mut m, true);
    m.run(1_000_000);
    let t = tracer.extract(&m).unwrap();
    let bytes = atum_core::encode_trace(&t);
    let back = atum_core::decode_trace(&bytes).unwrap();
    assert_eq!(back.records(), t.records());
    assert!(
        bytes.len() * 2 < t.len() * 8,
        "compaction at least 2x on a real trace: {} vs {}",
        bytes.len(),
        t.len() * 8
    );
}

#[test]
fn spill_and_scratch_styles_capture_identical_traces() {
    // The spill style costs more cycles but must record exactly the same
    // reference stream.
    let src = "start: movl #60, r0\nloop: incl counter\n sobgtr r0, loop\n halt\n\
               counter: .long 0";
    let run_style = |style: atum_core::PatchStyle| {
        let mut m = load(src);
        let tracer = Tracer::attach_with_style(&mut m, style).unwrap();
        tracer.set_enabled(&mut m, true);
        assert_eq!(m.run(100_000_000), RunExit::Halted);
        (tracer.extract(&m).unwrap(), m.cycles())
    };
    let (scratch, scratch_cycles) = run_style(atum_core::PatchStyle::Scratch);
    let (spill, spill_cycles) = run_style(atum_core::PatchStyle::Spill);
    assert_eq!(
        scratch.records(),
        spill.records(),
        "same records either way"
    );
    assert!(
        spill_cycles > scratch_cycles * 3 / 2,
        "spill is measurably more expensive: {scratch_cycles} vs {spill_cycles}"
    );
}

#[test]
fn capture_session_respects_max_drains() {
    let mut m = load(
        "start: movl #100000, r0\nloop: incl counter\n sobgtr r0, loop\n halt\n\
         counter: .long 0",
    );
    let base = m.memory().layout().reserved_base();
    let tracer = Tracer::attach_region(&mut m, base, 1024).unwrap();
    let capture = CaptureSession::new(&tracer, 10_000_000_000)
        .max_drains(3)
        .run(&mut m)
        .unwrap();
    // After 3 drains the session stops servicing the full condition and
    // returns with whatever it has; the final drain empties the buffer
    // but the machine stays halted mid-program.
    assert_eq!(capture.drains, 3);
    assert_eq!(capture.exit, RunExit::Halted);
    assert_eq!(m.run(1_000), RunExit::Halted, "machine not resumed");
    let counter_refs = capture.trace.stats().writes;
    assert!(counter_refs < 100_000, "program was cut short");
}

#[test]
fn tracer_rejects_too_small_region() {
    let mut m = load("start: halt");
    let base = m.memory().layout().reserved_base();
    assert!(matches!(
        Tracer::attach_region(&mut m, base, 4),
        Err(atum_core::TracerError::ReservedTooSmall)
    ));
}
