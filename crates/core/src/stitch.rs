//! Capture sessions: run the machine, service buffer-full halts, stitch
//! the drained samples — the paper's methodology for traces longer than
//! the hidden buffer.

use crate::trace::Trace;
use crate::tracer::{Tracer, TracerError};
use atum_machine::{Machine, RunExit};

/// The result of a capture session.
#[derive(Debug)]
pub struct Capture {
    /// The stitched trace.
    pub trace: Trace,
    /// How the final run ended.
    pub exit: RunExit,
    /// Number of buffer-full drains that occurred (segments - 1).
    pub drains: u32,
}

/// Drives a traced machine to completion, draining the hidden buffer each
/// time the patch microcode halts with the FULL flag.
#[derive(Debug)]
pub struct CaptureSession<'t> {
    tracer: &'t Tracer,
    max_total_cycles: u64,
    max_drains: u32,
}

impl<'t> CaptureSession<'t> {
    /// Creates a session with a total cycle budget.
    pub fn new(tracer: &'t Tracer, max_total_cycles: u64) -> CaptureSession<'t> {
        CaptureSession {
            tracer,
            max_total_cycles,
            max_drains: 100_000,
        }
    }

    /// Caps the number of drains (guards against runaway programs).
    pub fn max_drains(mut self, n: u32) -> CaptureSession<'t> {
        self.max_drains = n;
        self
    }

    /// Enables capture and runs until the machine halts for a reason other
    /// than a full buffer (or the budget runs out), stitching every
    /// drained sample.
    ///
    /// # Errors
    ///
    /// Any extraction [`TracerError`] if a drain fails.
    pub fn run(&self, m: &mut Machine) -> Result<Capture, TracerError> {
        self.tracer.set_enabled(m, true);
        let deadline = m.cycles().saturating_add(self.max_total_cycles);
        let mut trace = Trace::new();
        let mut drains = 0u32;
        loop {
            let budget = deadline.saturating_sub(m.cycles());
            let exit = m.run(budget);
            match exit {
                RunExit::Halted if self.tracer.is_full(m) && drains < self.max_drains => {
                    trace.stitch(self.tracer.drain(m)?);
                    drains += 1;
                    m.resume();
                }
                other => {
                    trace.stitch(self.tracer.drain(m)?);
                    self.tracer.set_enabled(m, false);
                    return Ok(Capture {
                        trace,
                        exit: other,
                        drains,
                    });
                }
            }
        }
    }
}
