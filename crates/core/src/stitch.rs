//! Capture sessions: run the machine, service buffer-full halts, stitch
//! the drained samples — the paper's methodology for traces longer than
//! the hidden buffer.

use crate::record::{RecordKind, TraceRecord};
use crate::stream::{SegmentWriter, StreamStats};
use crate::trace::Trace;
use crate::tracer::{Tracer, TracerError};
use atum_machine::{Machine, RunExit};
use std::fmt;
use std::io::{self, Write};

/// The result of a capture session.
#[derive(Debug)]
pub struct Capture {
    /// The stitched trace.
    pub trace: Trace,
    /// How the final run ended.
    pub exit: RunExit,
    /// Number of buffer-full drains that occurred (segments - 1).
    pub drains: u32,
}

/// The result of a streamed capture session: the trace went to the
/// [`SegmentWriter`], so only the exit and counters come back.
#[derive(Debug)]
pub struct StreamedCapture {
    /// How the final run ended.
    pub exit: RunExit,
    /// Number of buffer-full drains that occurred.
    pub drains: u32,
    /// The writer's totals after the final segment.
    pub stats: StreamStats,
}

/// Errors from a streamed capture: a drain failure or a write failure.
#[derive(Debug)]
pub enum CaptureStreamError {
    /// Extraction from the hidden buffer failed.
    Tracer(TracerError),
    /// Writing a segment to the output failed.
    Io(io::Error),
}

impl fmt::Display for CaptureStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureStreamError::Tracer(e) => write!(f, "capture drain failed: {e}"),
            CaptureStreamError::Io(e) => write!(f, "segment write failed: {e}"),
        }
    }
}

impl std::error::Error for CaptureStreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CaptureStreamError::Tracer(e) => Some(e),
            CaptureStreamError::Io(e) => Some(e),
        }
    }
}

impl From<TracerError> for CaptureStreamError {
    fn from(e: TracerError) -> CaptureStreamError {
        CaptureStreamError::Tracer(e)
    }
}

impl From<io::Error> for CaptureStreamError {
    fn from(e: io::Error) -> CaptureStreamError {
        CaptureStreamError::Io(e)
    }
}

/// Drives a traced machine to completion, draining the hidden buffer each
/// time the patch microcode halts with the FULL flag.
#[derive(Debug)]
pub struct CaptureSession<'t> {
    tracer: &'t Tracer,
    max_total_cycles: u64,
    max_drains: u32,
}

impl<'t> CaptureSession<'t> {
    /// Creates a session with a total cycle budget.
    pub fn new(tracer: &'t Tracer, max_total_cycles: u64) -> CaptureSession<'t> {
        CaptureSession {
            tracer,
            max_total_cycles,
            max_drains: 100_000,
        }
    }

    /// Caps the number of drains (guards against runaway programs).
    pub fn max_drains(mut self, n: u32) -> CaptureSession<'t> {
        self.max_drains = n;
        self
    }

    /// Enables capture and runs until the machine halts for a reason other
    /// than a full buffer (or the budget runs out), stitching every
    /// drained sample.
    ///
    /// # Errors
    ///
    /// Any extraction [`TracerError`] if a drain fails.
    pub fn run(&self, m: &mut Machine) -> Result<Capture, TracerError> {
        self.tracer.set_enabled(m, true);
        let deadline = m.cycles().saturating_add(self.max_total_cycles);
        let mut trace = Trace::new();
        let mut drains = 0u32;
        loop {
            let budget = deadline.saturating_sub(m.cycles());
            let exit = m.run(budget);
            match exit {
                RunExit::Halted if self.tracer.is_full(m) && drains < self.max_drains => {
                    trace.stitch(self.tracer.drain(m)?);
                    drains += 1;
                    m.resume();
                }
                other => {
                    trace.stitch(self.tracer.drain(m)?);
                    self.tracer.set_enabled(m, false);
                    return Ok(Capture {
                        trace,
                        exit: other,
                        drains,
                    });
                }
            }
        }
    }

    /// As [`CaptureSession::run`], but each drained sample goes straight
    /// to a [`SegmentWriter`] and its record buffer is reused — the
    /// capture's resident cost is O(hidden buffer), not O(trace).
    ///
    /// The file decodes to exactly the trace [`CaptureSession::run`]
    /// would have returned: one file segment per stitched segment, with
    /// the same [`RecordKind::SegmentMark`] separators, stamped with the
    /// machine's cycle counter at each drain. (One segment is held back
    /// until the next drain so the mark can be appended to its tail, as
    /// stitching does.)
    ///
    /// # Errors
    ///
    /// [`CaptureStreamError::Tracer`] if a drain fails;
    /// [`CaptureStreamError::Io`] if a segment write fails.
    pub fn run_streaming<W: Write>(
        &self,
        m: &mut Machine,
        w: &mut SegmentWriter<W>,
    ) -> Result<StreamedCapture, CaptureStreamError> {
        self.tracer.set_enabled(m, true);
        let deadline = m.cycles().saturating_add(self.max_total_cycles);
        let mut cur: Vec<TraceRecord> = Vec::new();
        let mut pending: Vec<TraceRecord> = Vec::new();
        let mut have_pending = false;
        let mut pending_cycle = 0u64;
        let mut drains = 0u32;
        loop {
            let budget = deadline.saturating_sub(m.cycles());
            let exit = m.run(budget);
            let full_drain = matches!(exit, RunExit::Halted)
                && self.tracer.is_full(m)
                && drains < self.max_drains;
            self.tracer.drain_into(m, &mut cur)?;
            // Leading empty samples vanish, exactly as stitching them
            // into an empty trace would.
            if have_pending || !cur.is_empty() {
                if have_pending {
                    pending.push(TraceRecord::new(RecordKind::SegmentMark, 0, 0, 0, false));
                    w.write_segment(&pending, pending_cycle)?;
                }
                std::mem::swap(&mut pending, &mut cur);
                pending_cycle = m.cycles();
                have_pending = true;
            }
            if full_drain {
                drains += 1;
                m.resume();
            } else {
                if have_pending {
                    w.write_segment(&pending, pending_cycle)?;
                }
                self.tracer.set_enabled(m, false);
                return Ok(StreamedCapture {
                    exit,
                    drains,
                    stats: w.stats(),
                });
            }
        }
    }
}
