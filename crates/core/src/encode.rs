//! Compact on-disk trace encoding: the versioned **segment format**.
//!
//! The in-buffer format is 8 bytes per record because that is what a
//! microcode patch can write cheaply; the archival format the host writes
//! after extraction is delta-compressed, like the compaction step ATUM's
//! hosts applied before shipping traces to the memory-system simulators.
//!
//! A trace file is a 5-byte header (`ATUM` magic + version byte) followed
//! by a sequence of **segments** — one per drained sample, so the
//! boundaries the paper's stitching methodology cares about survive the
//! archive (v1 collapsed them). Each segment carries:
//!
//! * an `S` marker byte;
//! * varint record count and payload length (the length is what lets a
//!   reader *skip* a segment without decoding it — the parallel segment
//!   reader in [`crate::stream`] is built on this);
//! * a varint capture-cycle stamp (the machine's microcycle counter at
//!   drain time; 0 when unknown, e.g. re-encoded in-memory traces);
//! * the PID and kernel flag of the segment's first record (its context).
//!
//! Within a payload, each record is:
//!
//! * one tag byte — kind, kernel flag, size code, a "pid changed" flag,
//!   and a **run** flag;
//! * an optional pid byte;
//! * a zigzag-varint address delta against the previous record *of the
//!   same kind* (I-stream and data streams advance independently, so both
//!   deltas stay small);
//! * for runs, a varint count of *additional* records repeating the same
//!   metadata and the same delta — sequential I-stream fetches collapse
//!   to ~3 bytes however long the straight-line run is.
//!
//! Delta state (per-kind last addresses and the last pid) **resets at
//! every segment boundary**, so any segment can be decoded knowing only
//! its own header — the property the out-of-core analysis path relies on.
//!
//! Typical compaction is 4–6× over the raw form (measured in experiment
//! E2 and `BENCH_trace.json`).

use crate::batch::RecordBatch;
use crate::record::{RecordKind, TraceRecord};
use crate::trace::Trace;
use std::fmt;

/// A decode target: anything segment payloads can be decoded into
/// without an intermediate copy. The archival decoder is generic over
/// this, so the array-of-structs [`Trace`] path and the
/// structure-of-arrays [`RecordBatch`] path share one decode loop —
/// records are decoded exactly once, straight into their final layout.
pub(crate) trait RecordSink {
    fn reserve_records(&mut self, n: usize);
    fn push_record(&mut self, r: TraceRecord);
}

impl RecordSink for Vec<TraceRecord> {
    fn reserve_records(&mut self, n: usize) {
        self.reserve(n);
    }

    fn push_record(&mut self, r: TraceRecord) {
        self.push(r);
    }
}

impl RecordSink for RecordBatch {
    fn reserve_records(&mut self, n: usize) {
        self.reserve(n);
    }

    fn push_record(&mut self, r: TraceRecord) {
        self.push(r);
    }
}

pub(crate) const MAGIC: &[u8; 4] = b"ATUM";
pub(crate) const VERSION: u8 = 2;
/// Marker byte opening every segment header.
pub(crate) const SEG_MARK: u8 = b'S';

const TAG_KERNEL: u8 = 1 << 3;
const TAG_PID_CHANGED: u8 = 1 << 6;
const TAG_RUN: u8 = 1 << 7;

/// Errors from decoding an encoded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// Missing or wrong magic/version header.
    BadHeader,
    /// A segment header is malformed (bad marker byte, or the payload
    /// does not contain exactly the advertised records).
    BadSegment,
    /// The byte stream ended mid-record or mid-header.
    Truncated,
    /// A tag byte carried an invalid kind.
    BadTag(u8),
}

impl fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeTraceError::BadHeader => f.write_str("bad trace file header"),
            DecodeTraceError::BadSegment => f.write_str("malformed trace segment"),
            DecodeTraceError::Truncated => f.write_str("trace file truncated"),
            DecodeTraceError::BadTag(t) => write!(f, "invalid record tag {t:#04x}"),
        }
    }
}

impl std::error::Error for DecodeTraceError {}

/// One segment's header: the metadata a reader needs to decode (or skip)
/// the payload that follows, and the context ATUM's hosts kept alongside
/// the raw addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentHeader {
    /// Records in the segment (markers included).
    pub records: u64,
    /// Encoded payload length in bytes.
    pub payload_len: u64,
    /// Machine microcycle counter at capture/drain time (0 if unknown).
    pub cycle: u64,
    /// PID of the segment's first record (0 for an empty segment). Also
    /// the initial pid-delta state of the payload.
    pub pid: u8,
    /// Whether the segment's first record was made in kernel mode.
    pub kernel: bool,
}

fn size_code(size: u32) -> u8 {
    match size {
        1 => 0,
        2 => 1,
        4 => 2,
        _ => 3,
    }
}

fn code_size(code: u8) -> u32 {
    match code {
        0 => 1,
        1 => 2,
        2 => 4,
        _ => 0,
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub(crate) fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, DecodeTraceError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = *bytes.get(*pos).ok_or(DecodeTraceError::Truncated)?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeTraceError::Truncated);
        }
    }
}

/// Encodes one segment's records into `payload` (cleared first), with
/// delta state starting fresh: per-kind last addresses at 0, last pid at
/// the value [`segment_header_of`] reports for these records.
pub(crate) fn encode_segment_payload(records: &[TraceRecord], payload: &mut Vec<u8>) {
    payload.clear();
    let mut last_addr = [0u32; 7]; // indexed by kind
    let mut last_pid = records.first().map_or(0, |r| r.pid());
    let mut i = 0usize;
    while i < records.len() {
        let r = records[i];
        let kind = r.kind() as u8;
        let delta = r.addr as i64 - last_addr[kind as usize] as i64;
        // A run: following records with identical metadata whose
        // addresses continue advancing by the same delta. Sequential
        // I-stream fetches are the motivating case.
        let mut extra = 0usize;
        let mut prev = r.addr;
        while let Some(&nxt) = records.get(i + 1 + extra) {
            if nxt.meta == r.meta && nxt.addr == (prev as i64 + delta) as u32 {
                prev = nxt.addr;
                extra += 1;
            } else {
                break;
            }
        }
        let pid_changed = r.pid() != last_pid;
        let mut tag = kind & 0x07;
        if r.is_kernel() {
            tag |= TAG_KERNEL;
        }
        tag |= size_code(r.size()) << 4;
        if pid_changed {
            tag |= TAG_PID_CHANGED;
        }
        if extra > 0 {
            tag |= TAG_RUN;
        }
        payload.push(tag);
        if pid_changed {
            payload.push(r.pid());
            last_pid = r.pid();
        }
        push_varint(payload, zigzag(delta));
        if extra > 0 {
            push_varint(payload, extra as u64);
        }
        last_addr[kind as usize] = prev;
        i += 1 + extra;
    }
}

/// The header describing `records` as one segment.
pub(crate) fn segment_header_of(
    records: &[TraceRecord],
    cycle: u64,
    payload_len: u64,
) -> SegmentHeader {
    let first = records.first();
    SegmentHeader {
        records: records.len() as u64,
        payload_len,
        cycle,
        pid: first.map_or(0, |r| r.pid()),
        kernel: first.is_some_and(|r| r.is_kernel()),
    }
}

/// Serialises a segment header.
pub(crate) fn push_segment_header(out: &mut Vec<u8>, h: &SegmentHeader) {
    out.push(SEG_MARK);
    push_varint(out, h.records);
    push_varint(out, h.payload_len);
    push_varint(out, h.cycle);
    out.push(h.pid);
    out.push(h.kernel as u8);
}

/// Parses a segment header from `bytes` at `*pos`, advancing it.
pub(crate) fn parse_segment_header(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<SegmentHeader, DecodeTraceError> {
    let mark = *bytes.get(*pos).ok_or(DecodeTraceError::Truncated)?;
    *pos += 1;
    if mark != SEG_MARK {
        return Err(DecodeTraceError::BadSegment);
    }
    let records = read_varint(bytes, pos)?;
    let payload_len = read_varint(bytes, pos)?;
    let cycle = read_varint(bytes, pos)?;
    let pid = *bytes.get(*pos).ok_or(DecodeTraceError::Truncated)?;
    let kernel = *bytes.get(*pos + 1).ok_or(DecodeTraceError::Truncated)? != 0;
    *pos += 2;
    Ok(SegmentHeader {
        records,
        payload_len,
        cycle,
        pid,
        kernel,
    })
}

/// Decodes one segment's payload, appending exactly `h.records` records
/// to `out`. The whole payload must be consumed — trailing bytes, or a
/// payload that runs out early, are [`DecodeTraceError::BadSegment`] /
/// [`DecodeTraceError::Truncated`].
pub(crate) fn decode_segment_payload<S: RecordSink>(
    payload: &[u8],
    h: &SegmentHeader,
    out: &mut S,
) -> Result<(), DecodeTraceError> {
    // Each encoded unit is ≥ 2 bytes but can expand to many records (a
    // run), so reserve conservatively from the payload size, not the
    // advertised count — a corrupt count must not allocate unbounded.
    out.reserve_records(payload.len().min(h.records as usize));
    let mut pos = 0usize;
    let mut produced = 0u64;
    let mut last_addr = [0u32; 7];
    let mut last_pid = h.pid;
    while produced < h.records {
        let tag = *payload.get(pos).ok_or(DecodeTraceError::Truncated)?;
        pos += 1;
        let kind =
            RecordKind::from_bits((tag & 0x07) as u32).ok_or(DecodeTraceError::BadTag(tag))?;
        let kernel = tag & TAG_KERNEL != 0;
        let size = code_size((tag >> 4) & 0x03);
        if tag & TAG_PID_CHANGED != 0 {
            last_pid = *payload.get(pos).ok_or(DecodeTraceError::Truncated)?;
            pos += 1;
        }
        let delta = unzigzag(read_varint(payload, &mut pos)?);
        let count = if tag & TAG_RUN != 0 {
            1 + read_varint(payload, &mut pos)?
        } else {
            1
        };
        // A run longer than the records the header admits is corruption;
        // reject before materialising anything.
        if count > h.records - produced {
            return Err(DecodeTraceError::BadSegment);
        }
        let mut addr = last_addr[kind as usize];
        for _ in 0..count {
            addr = (addr as i64 + delta) as u32;
            out.push_record(TraceRecord::new(kind, addr, size, last_pid, kernel));
        }
        last_addr[kind as usize] = addr;
        produced += count;
    }
    if pos != payload.len() {
        return Err(DecodeTraceError::BadSegment);
    }
    Ok(())
}

/// Encodes a trace into the compact archival segment format, one file
/// segment per trace segment — boundaries round-trip exactly.
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(trace.len() * 2 + 16);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    let mut payload = Vec::new();
    for seg in trace.segment_slices() {
        encode_segment_payload(seg, &mut payload);
        let h = segment_header_of(seg, 0, payload.len() as u64);
        push_segment_header(&mut out, &h);
        out.extend_from_slice(&payload);
    }
    out
}

/// Decodes a trace from the compact archival segment format, restoring
/// records *and* segment boundaries.
///
/// # Errors
///
/// Any [`DecodeTraceError`].
pub fn decode_trace(bytes: &[u8]) -> Result<Trace, DecodeTraceError> {
    if bytes.len() < 5 || &bytes[0..4] != MAGIC || bytes[4] != VERSION {
        return Err(DecodeTraceError::BadHeader);
    }
    let mut pos = 5;
    let mut trace = Trace::new();
    let mut records = Vec::new();
    let mut first = true;
    while pos < bytes.len() {
        let h = parse_segment_header(bytes, &mut pos)?;
        let end = pos
            .checked_add(h.payload_len as usize)
            .filter(|&e| e <= bytes.len())
            .ok_or(DecodeTraceError::Truncated)?;
        records.clear();
        decode_segment_payload(&bytes[pos..end], &h, &mut records)?;
        pos = end;
        if !first {
            trace.begin_segment();
        }
        first = false;
        trace.extend(records.iter().copied());
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        let mut pc = 0x1000u32;
        for i in 0..200u32 {
            t.push(TraceRecord::new(RecordKind::IFetch, pc, 4, 1, false));
            pc += 4;
            if i % 3 == 0 {
                t.push(TraceRecord::new(
                    RecordKind::Read,
                    0x2000 + i * 4,
                    4,
                    1,
                    false,
                ));
            }
            if i % 7 == 0 {
                t.push(TraceRecord::new(
                    RecordKind::Write,
                    0x8000_0000 + i,
                    1,
                    1,
                    true,
                ));
            }
            if i == 100 {
                t.push(TraceRecord::new(RecordKind::CtxSwitch, 0x9000, 0, 2, true));
            }
        }
        t
    }

    fn stitched_trace() -> Trace {
        let mut t = sample_trace();
        t.stitch(sample_trace());
        t.stitch(Trace::new()); // an empty drained sample
        t.stitch(sample_trace());
        t
    }

    #[test]
    fn round_trip() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn round_trip_preserves_segments() {
        let t = stitched_trace();
        assert_eq!(t.segments(), 4);
        let back = decode_trace(&encode_trace(&t)).unwrap();
        assert_eq!(back, t, "records and segment boundaries both survive");
        assert_eq!(back.segments(), 4);
    }

    #[test]
    fn compacts_sequential_traces() {
        let t = sample_trace();
        let raw = t.len() * 8;
        let encoded = encode_trace(&t).len();
        assert!(
            (encoded as f64) < raw as f64 / 3.0,
            "expected ≥3x compaction, got {raw}/{encoded}"
        );
    }

    #[test]
    fn istream_runs_collapse() {
        // 1000 sequential fetches: one record establishes the position,
        // the rest collapse into a single run.
        let mut t = Trace::new();
        for i in 0..1000u32 {
            t.push(TraceRecord::new(
                RecordKind::IFetch,
                0x4000 + i * 4,
                4,
                3,
                false,
            ));
        }
        let bytes = encode_trace(&t);
        assert!(
            bytes.len() < 32,
            "a straight-line I-stream should be a handful of bytes, got {}",
            bytes.len()
        );
        assert_eq!(decode_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.segments(), 1);
    }

    #[test]
    fn header_validation() {
        assert_eq!(decode_trace(b"").unwrap_err(), DecodeTraceError::BadHeader);
        assert_eq!(
            decode_trace(b"NOPE\x02\x00").unwrap_err(),
            DecodeTraceError::BadHeader
        );
        // v1 files are rejected, not misread.
        assert_eq!(
            decode_trace(b"ATUM\x01\x00").unwrap_err(),
            DecodeTraceError::BadHeader
        );
    }

    #[test]
    fn truncation_detected() {
        let t = stitched_trace();
        let bytes = encode_trace(&t);
        for cut in [bytes.len() - 1, bytes.len() / 2, 6] {
            assert!(
                matches!(
                    decode_trace(&bytes[..cut]),
                    Err(DecodeTraceError::Truncated) | Err(DecodeTraceError::BadSegment)
                ),
                "cut at {cut} must be detected"
            );
        }
    }

    #[test]
    fn bad_segment_marker_detected() {
        let t = sample_trace();
        let mut bytes = encode_trace(&t);
        bytes[5] = b'X'; // the first segment's marker byte
        assert_eq!(
            decode_trace(&bytes).unwrap_err(),
            DecodeTraceError::BadSegment
        );
    }

    #[test]
    fn oversized_run_rejected_without_allocation() {
        // Hand-build a segment claiming 2 records whose payload encodes a
        // run of 100: must fail cleanly, not materialise the run.
        let mut bytes = vec![b'A', b'T', b'U', b'M', VERSION];
        let mut payload = Vec::new();
        payload.push(1u8 | TAG_RUN | (2 << 4)); // IFetch, longword, run
        push_varint(&mut payload, zigzag(4));
        push_varint(&mut payload, 99); // 100 records total
        push_segment_header(
            &mut bytes,
            &SegmentHeader {
                records: 2,
                payload_len: payload.len() as u64,
                cycle: 0,
                pid: 0,
                kernel: false,
            },
        );
        bytes.extend_from_slice(&payload);
        assert_eq!(
            decode_trace(&bytes).unwrap_err(),
            DecodeTraceError::BadSegment
        );
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [-1i64, 0, 1, -1000, 1000, i32::MIN as i64, i32::MAX as i64] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
