//! Compact on-disk trace encoding.
//!
//! The in-buffer format is 8 bytes per record because that is what a
//! microcode patch can write cheaply; the archival format the host writes
//! after extraction is delta-compressed, like the compaction step ATUM's
//! hosts applied before shipping traces to the memory-system simulators:
//!
//! * one tag byte per record — kind, kernel flag, size code, and a
//!   "pid changed" flag;
//! * an optional pid byte;
//! * a zigzag-varint address delta against the previous record *of the
//!   same kind* (I-stream and data streams advance independently, so both
//!   deltas stay small).
//!
//! Typical compaction is 3–4× over the raw form (measured in experiment
//! E2).

use crate::record::{RecordKind, TraceRecord};
use crate::trace::Trace;
use std::fmt;

const MAGIC: &[u8; 4] = b"ATUM";
const VERSION: u8 = 1;

/// Errors from decoding an encoded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// Missing or wrong magic/version header.
    BadHeader,
    /// The byte stream ended mid-record.
    Truncated,
    /// A tag byte carried an invalid kind.
    BadTag(u8),
}

impl fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeTraceError::BadHeader => f.write_str("bad trace file header"),
            DecodeTraceError::Truncated => f.write_str("trace file truncated"),
            DecodeTraceError::BadTag(t) => write!(f, "invalid record tag {t:#04x}"),
        }
    }
}

impl std::error::Error for DecodeTraceError {}

fn size_code(size: u32) -> u8 {
    match size {
        1 => 0,
        2 => 1,
        4 => 2,
        _ => 3,
    }
}

fn code_size(code: u8) -> u32 {
    match code {
        0 => 1,
        1 => 2,
        2 => 4,
        _ => 0,
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, DecodeTraceError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = *bytes.get(*pos).ok_or(DecodeTraceError::Truncated)?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeTraceError::Truncated);
        }
    }
}

/// Encodes a trace into the compact archival format.
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(trace.len() * 3 + 16);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    push_varint(&mut out, trace.len() as u64);
    let mut last_addr = [0u32; 7]; // indexed by kind
    let mut last_pid = 0u8;
    for r in trace.iter() {
        let kind = r.kind() as u8;
        let pid_changed = r.pid() != last_pid;
        let mut tag = kind & 0x07;
        if r.is_kernel() {
            tag |= 1 << 3;
        }
        tag |= size_code(r.size()) << 4;
        if pid_changed {
            tag |= 1 << 6;
        }
        out.push(tag);
        if pid_changed {
            out.push(r.pid());
            last_pid = r.pid();
        }
        let delta = r.addr as i64 - last_addr[kind as usize] as i64;
        push_varint(&mut out, zigzag(delta));
        last_addr[kind as usize] = r.addr;
    }
    out
}

/// Decodes a trace from the compact archival format.
///
/// # Errors
///
/// Any [`DecodeTraceError`].
pub fn decode_trace(bytes: &[u8]) -> Result<Trace, DecodeTraceError> {
    if bytes.len() < 5 || &bytes[0..4] != MAGIC || bytes[4] != VERSION {
        return Err(DecodeTraceError::BadHeader);
    }
    let mut pos = 5;
    let count = read_varint(bytes, &mut pos)?;
    let mut trace = Trace::new();
    let mut last_addr = [0u32; 7];
    let mut last_pid = 0u8;
    for _ in 0..count {
        let tag = *bytes.get(pos).ok_or(DecodeTraceError::Truncated)?;
        pos += 1;
        let kind =
            RecordKind::from_bits((tag & 0x07) as u32).ok_or(DecodeTraceError::BadTag(tag))?;
        let kernel = tag & (1 << 3) != 0;
        let size = code_size((tag >> 4) & 0x03);
        if tag & (1 << 6) != 0 {
            last_pid = *bytes.get(pos).ok_or(DecodeTraceError::Truncated)?;
            pos += 1;
        }
        let delta = unzigzag(read_varint(bytes, &mut pos)?);
        let addr = (last_addr[kind as usize] as i64 + delta) as u32;
        last_addr[kind as usize] = addr;
        trace.push(TraceRecord::new(kind, addr, size, last_pid, kernel));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        let mut pc = 0x1000u32;
        for i in 0..200u32 {
            t.push(TraceRecord::new(RecordKind::IFetch, pc, 4, 1, false));
            pc += 4;
            if i % 3 == 0 {
                t.push(TraceRecord::new(
                    RecordKind::Read,
                    0x2000 + i * 4,
                    4,
                    1,
                    false,
                ));
            }
            if i % 7 == 0 {
                t.push(TraceRecord::new(
                    RecordKind::Write,
                    0x8000_0000 + i,
                    1,
                    1,
                    true,
                ));
            }
            if i == 100 {
                t.push(TraceRecord::new(RecordKind::CtxSwitch, 0x9000, 0, 2, true));
            }
        }
        t
    }

    #[test]
    fn round_trip() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.iter().zip(back.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn compacts_sequential_traces() {
        let t = sample_trace();
        let raw = t.len() * 8;
        let encoded = encode_trace(&t).len();
        assert!(
            (encoded as f64) < raw as f64 / 2.5,
            "expected ≥2.5x compaction, got {raw}/{encoded}"
        );
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        let bytes = encode_trace(&t);
        assert!(decode_trace(&bytes).unwrap().is_empty());
    }

    #[test]
    fn header_validation() {
        assert_eq!(decode_trace(b"").unwrap_err(), DecodeTraceError::BadHeader);
        assert_eq!(
            decode_trace(b"NOPE\x01\x00").unwrap_err(),
            DecodeTraceError::BadHeader
        );
        assert_eq!(
            decode_trace(b"ATUM\x02\x00").unwrap_err(),
            DecodeTraceError::BadHeader
        );
    }

    #[test]
    fn truncation_detected() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let cut = &bytes[..bytes.len() - 1];
        assert!(matches!(
            decode_trace(cut),
            Err(DecodeTraceError::Truncated)
        ));
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [-1i64, 0, 1, -1000, 1000, i32::MIN as i64, i32::MAX as i64] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
