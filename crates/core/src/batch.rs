//! Decode-once record batches and the bounded broadcast ring that fans
//! them out to independent analysis engines.
//!
//! The analysis hot path consumes traces as [`RecordBatch`]es: SoA
//! blocks (`addrs`, packed `metas`) of a few thousand records, decoded
//! once at the source and then walked linearly by every consumer —
//! cache-friendly and free of the per-record virtual dispatch the old
//! push-only path paid. [`TraceSource`](crate::TraceSource) yields them
//! via `next_batch`; the per-record `stream` API is reimplemented on
//! top, so existing consumers are unchanged.
//!
//! [`broadcast_batches`] is the engine-parallel driver: each consumer
//! is an *independent sequential* state machine (a stack group, a cache
//! replay, a working-set window), so a batch can be broadcast to every
//! consumer and the consumers sharded over worker threads. Every
//! consumer observes every batch in trace order, which makes the
//! results **identical at any job count** — parallelism moves wall
//! clock, never statistics. The ring is bounded (a slow shard applies
//! backpressure to the producer) and the producing thread is the only
//! one that touches the source.

use crate::record::TraceRecord;
use crate::stream::{TraceSource, TraceStreamError};
use atum_conc::sync::{Arc, Condvar, Mutex};
use atum_conc::thread;
use std::collections::VecDeque;

/// Target records per batch: large enough to amortise dispatch and ring
/// hand-off, small enough that a batch stays cache-resident while every
/// engine walks it. Segment-file sources use their natural segment size
/// instead (a segment is already the decode unit).
#[cfg(not(atum_model))]
pub const BATCH_TARGET: usize = 8192;

/// Model-checking builds shrink the batch so a handful of records spans
/// several batches and the ring protocol's full state space stays
/// explorable.
#[cfg(atum_model)]
pub const BATCH_TARGET: usize = 4;

/// A decode-once, structure-of-arrays block of trace records: addresses
/// in one contiguous array, the packed kind/pid/size/mode metadata word
/// in another. Index `i` of both arrays is record `i`; the two arrays
/// always have equal length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordBatch {
    addrs: Vec<u32>,
    metas: Vec<u32>,
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> RecordBatch {
        RecordBatch::default()
    }

    /// An empty batch with room for `n` records.
    pub fn with_capacity(n: usize) -> RecordBatch {
        RecordBatch {
            addrs: Vec::with_capacity(n),
            metas: Vec::with_capacity(n),
        }
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Removes all records, keeping the allocations.
    pub fn clear(&mut self) {
        self.addrs.clear();
        self.metas.clear();
    }

    /// Appends one record.
    pub fn push(&mut self, r: TraceRecord) {
        self.addrs.push(r.addr);
        self.metas.push(r.meta);
    }

    /// Appends a slice of records.
    pub fn extend_from_records(&mut self, records: &[TraceRecord]) {
        self.addrs.reserve(records.len());
        self.metas.reserve(records.len());
        for r in records {
            self.addrs.push(r.addr);
            self.metas.push(r.meta);
        }
    }

    /// Reserves room for `n` more records.
    pub fn reserve(&mut self, n: usize) {
        self.addrs.reserve(n);
        self.metas.reserve(n);
    }

    /// The record at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> TraceRecord {
        TraceRecord {
            addr: self.addrs[i],
            meta: self.metas[i],
        }
    }

    /// The address column.
    pub fn addrs(&self) -> &[u32] {
        &self.addrs
    }

    /// The packed-metadata column (see [`TraceRecord`] for the layout).
    pub fn metas(&self) -> &[u32] {
        &self.metas
    }

    /// Iterates the records by value, in order.
    pub fn iter(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        self.addrs
            .iter()
            .zip(&self.metas)
            .map(|(&addr, &meta)| TraceRecord { addr, meta })
    }

    /// Rebuilds the array-of-structs form into `out` (cleared first) —
    /// the compatibility shim under the per-record `stream` API.
    pub fn copy_to(&self, out: &mut Vec<TraceRecord>) {
        out.clear();
        out.reserve(self.len());
        out.extend(self.iter());
    }
}

/// Per-shard bounded queue depth of the broadcast ring: enough to keep
/// a shard busy while the producer decodes the next batch, small enough
/// that memory stays O(jobs × batch), not O(trace).
#[cfg(not(atum_model))]
const RING_CAP: usize = 4;

/// Depth 1 under the model: backpressure engages on every batch, so the
/// producer-blocked states are part of every explored schedule.
#[cfg(atum_model)]
const RING_CAP: usize = 1;

struct RingState {
    queues: Vec<VecDeque<Arc<RecordBatch>>>,
    done: bool,
}

/// Streams every batch of `source` to every consumer, in trace order,
/// sharding the consumers over up to `jobs` worker threads.
///
/// Each consumer is an independent sequential state machine; the ring
/// broadcasts each batch to every shard and each shard applies it to
/// its consumers in order, so the final consumer states are **identical
/// to a serial pass at any `jobs`** (with `jobs <= 1`, or a single
/// consumer, the pass *is* serial — no threads, no copies). The source
/// is rewound first and only ever touched by the calling thread.
///
/// # Errors
///
/// Any [`TraceStreamError`] from the source. Consumers may have
/// observed a prefix of the records when an error is returned.
pub fn broadcast_batches<S, C, F>(
    source: &mut S,
    consumers: &mut [C],
    jobs: usize,
    apply: F,
) -> Result<(), TraceStreamError>
where
    S: TraceSource + ?Sized,
    C: Send,
    F: Fn(&mut C, &RecordBatch) + Sync,
{
    source.rewind()?;
    let shards = jobs.max(1).min(consumers.len());
    if shards <= 1 {
        while let Some(batch) = source.next_batch()? {
            for c in consumers.iter_mut() {
                apply(c, batch);
            }
        }
        return Ok(());
    }

    let chunk = consumers.len().div_ceil(shards);
    let shard_slices: Vec<&mut [C]> = consumers.chunks_mut(chunk).collect();
    let state = Mutex::new(RingState {
        queues: shard_slices.iter().map(|_| VecDeque::new()).collect(),
        done: false,
    });
    let cv = Condvar::new();
    let mut outcome: Result<(), TraceStreamError> = Ok(());

    thread::scope(|s| {
        for (w, shard) in shard_slices.into_iter().enumerate() {
            let state = &state;
            let cv = &cv;
            let apply = &apply;
            s.spawn(move || loop {
                let batch = {
                    // Wake on work or shutdown; the predicate form is
                    // spurious-wakeup-safe by construction.
                    let mut g = cv
                        .wait_while(state.lock().unwrap(), |g: &mut RingState| {
                            g.queues[w].is_empty() && !g.done
                        })
                        .unwrap();
                    let b = g.queues[w].pop_front();
                    if b.is_some() {
                        // The producer may be blocked on this queue's
                        // capacity.
                        cv.notify_all();
                    }
                    b
                };
                match batch {
                    Some(b) => {
                        for c in shard.iter_mut() {
                            apply(c, &b);
                        }
                    }
                    // Queue drained and the producer is done.
                    None => return,
                }
            });
        }

        // Producer on the calling thread — the only place the (possibly
        // non-Send) source is touched.
        loop {
            match source.next_batch() {
                Ok(Some(batch)) => {
                    let b = Arc::new(batch.clone());
                    let mut g = cv
                        .wait_while(state.lock().unwrap(), |g: &mut RingState| {
                            g.queues.iter().any(|q| q.len() >= RING_CAP)
                        })
                        .unwrap();
                    for q in g.queues.iter_mut() {
                        q.push_back(b.clone());
                        debug_assert!(q.len() <= RING_CAP, "broadcast ring depth exceeded");
                    }
                    cv.notify_all();
                }
                Ok(None) => break,
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        let mut g = state.lock().unwrap();
        g.done = true;
        cv.notify_all();
    });
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;
    use crate::trace::Trace;

    fn trace(n: u32) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push(TraceRecord::new(RecordKind::Read, i * 4, 4, 1, false));
        }
        t
    }

    #[test]
    fn batch_round_trips_records() {
        let t = trace(100);
        let mut b = RecordBatch::new();
        b.extend_from_records(t.records());
        assert_eq!(b.len(), 100);
        assert!(!b.is_empty());
        assert_eq!(b.get(7), t.records()[7]);
        assert_eq!(b.iter().collect::<Vec<_>>(), t.records());
        let mut back = Vec::new();
        b.copy_to(&mut back);
        assert_eq!(back, t.records());
        assert_eq!(b.addrs().len(), b.metas().len());
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn broadcast_matches_serial_at_any_jobs() {
        let t = trace(20_000);
        // Consumers fold the stream into a checksum; every job count
        // must produce the same per-consumer state.
        let fold = |acc: &mut u64, b: &RecordBatch| {
            for r in b.iter() {
                *acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(r.addr as u64 + r.meta as u64);
            }
        };
        let mut want = vec![0u64; 5];
        broadcast_batches(&mut t.source(), &mut want, 1, fold).unwrap();
        for jobs in [2, 3, 4, 8] {
            let mut got = vec![0u64; 5];
            broadcast_batches(&mut t.source(), &mut got, jobs, fold).unwrap();
            assert_eq!(got, want, "jobs={jobs}");
        }
    }

    #[test]
    fn broadcast_with_no_consumers_drains_source() {
        let t = trace(10);
        let mut none: Vec<u64> = Vec::new();
        broadcast_batches(&mut t.source(), &mut none, 4, |_, _| {}).unwrap();
    }
}
