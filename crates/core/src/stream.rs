//! Streaming trace I/O: incremental segment-file writers and readers,
//! and the [`TraceSource`] abstraction the out-of-core analysis passes
//! consume.
//!
//! The archival format ([`crate::encode`]) is a sequence of
//! independently-decodable segments; this module exploits that in three
//! ways:
//!
//! * [`SegmentWriter`] appends segments incrementally — the capture
//!   drain path writes each drained sample straight to disk and reuses
//!   its record buffer, so a capture's resident cost is one buffer, not
//!   the whole trace;
//! * [`SegmentReader`] walks a file one segment at a time with reusable
//!   payload/record buffers — O(segment) memory however large the file;
//! * [`SegmentFileSource`] streams a file into a sink, optionally with a
//!   pool of reader threads that decode segments concurrently and merge
//!   them **in order**, so the records a consumer observes are identical
//!   at any job count.
//!
//! [`TraceSource`] is the seam between capture and analysis: an
//! in-memory [`Trace`], an allocation-free filtered view of one, or an
//! on-disk segment file all stream the same way, and
//! `simulate_many_stream` / `working_set_stream` in the downstream
//! crates take any of them.
//!
//! The trait is **pull-based**: `rewind` resets to the start and
//! `next_batch` yields decode-once SoA [`RecordBatch`]es, which is what
//! the engine-parallel broadcast driver
//! ([`broadcast_batches`](crate::broadcast_batches)) and the batched
//! simulators consume. The per-record `stream` API is a provided method
//! reimplemented on top of the batches, so push-style consumers are
//! unchanged.

use crate::batch::{RecordBatch, BATCH_TARGET};
use crate::encode::{
    decode_segment_payload, encode_segment_payload, push_segment_header, segment_header_of,
    DecodeTraceError, SegmentHeader, MAGIC, SEG_MARK, VERSION,
};
use crate::record::TraceRecord;
use crate::trace::Trace;
use atum_conc::sync::atomic::{AtomicUsize, Ordering};
use atum_conc::sync::{Condvar, Mutex};
use atum_conc::thread;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Errors from streaming trace I/O.
#[derive(Debug)]
pub enum TraceStreamError {
    /// An underlying read/write failed.
    Io(io::Error),
    /// The byte stream is not a valid segment trace file.
    Decode(DecodeTraceError),
}

impl fmt::Display for TraceStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceStreamError::Io(e) => write!(f, "trace stream I/O error: {e}"),
            TraceStreamError::Decode(e) => write!(f, "trace stream decode error: {e}"),
        }
    }
}

impl std::error::Error for TraceStreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceStreamError::Io(e) => Some(e),
            TraceStreamError::Decode(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceStreamError {
    fn from(e: io::Error) -> TraceStreamError {
        TraceStreamError::Io(e)
    }
}

impl From<DecodeTraceError> for TraceStreamError {
    fn from(e: DecodeTraceError) -> TraceStreamError {
        TraceStreamError::Decode(e)
    }
}

/// Running totals a [`SegmentWriter`] maintains — enough to report the
/// compression ratio without re-reading what was written.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Segments written.
    pub segments: u64,
    /// Records written (markers included).
    pub records: u64,
    /// Encoded bytes written, file header included.
    pub encoded_bytes: u64,
}

impl StreamStats {
    /// What the records would occupy in the raw 8-byte in-buffer form.
    pub fn raw_bytes(&self) -> u64 {
        self.records * 8
    }

    /// Raw-to-encoded compression ratio (0.0 for an empty stream).
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            0.0
        } else {
            self.raw_bytes() as f64 / self.encoded_bytes as f64
        }
    }
}

/// Incremental segment-file writer. Writes the file header up front,
/// then one segment per [`SegmentWriter::write_segment`] call, reusing
/// its internal encode buffers — the capture drain path's resident cost
/// stays O(buffer).
#[derive(Debug)]
pub struct SegmentWriter<W: Write> {
    w: W,
    head: Vec<u8>,
    payload: Vec<u8>,
    stats: StreamStats,
}

impl SegmentWriter<BufWriter<File>> {
    /// Creates (truncating) a segment trace file at `path`.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from creating or writing the file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<SegmentWriter<BufWriter<File>>> {
        SegmentWriter::new(BufWriter::new(File::create(path)?))
    }
}

impl<W: Write> SegmentWriter<W> {
    /// Wraps a writer, emitting the magic/version file header.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the underlying writer.
    pub fn new(mut w: W) -> io::Result<SegmentWriter<W>> {
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        Ok(SegmentWriter {
            w,
            head: Vec::new(),
            payload: Vec::new(),
            stats: StreamStats {
                segments: 0,
                records: 0,
                encoded_bytes: (MAGIC.len() + 1) as u64,
            },
        })
    }

    /// Appends one segment: `records` become an independently decodable
    /// unit stamped with the capture-time `cycle` counter.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the underlying writer.
    pub fn write_segment(&mut self, records: &[TraceRecord], cycle: u64) -> io::Result<()> {
        encode_segment_payload(records, &mut self.payload);
        let h = segment_header_of(records, cycle, self.payload.len() as u64);
        self.head.clear();
        push_segment_header(&mut self.head, &h);
        self.w.write_all(&self.head)?;
        self.w.write_all(&self.payload)?;
        self.stats.segments += 1;
        self.stats.records += h.records;
        self.stats.encoded_bytes += (self.head.len() + self.payload.len()) as u64;
        Ok(())
    }

    /// Appends every segment of an in-memory trace (cycle stamps 0, as
    /// re-encoded traces have no capture clock). The file decodes back
    /// to `trace` exactly, boundaries included.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the underlying writer.
    pub fn write_trace(&mut self, trace: &Trace) -> io::Result<()> {
        for seg in trace.segment_slices() {
            self.write_segment(seg, 0)?;
        }
        Ok(())
    }

    /// Totals so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Flushes and returns the totals.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the flush.
    pub fn finish(mut self) -> io::Result<StreamStats> {
        self.w.flush()?;
        Ok(self.stats)
    }
}

/// Reads one byte, distinguishing clean EOF (`None`) from errors.
fn read_byte_opt<R: Read>(r: &mut R) -> io::Result<Option<u8>> {
    let mut b = [0u8; 1];
    loop {
        match r.read(&mut b) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(b[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

fn read_varint_r<R: Read>(r: &mut R) -> Result<u64, TraceStreamError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = read_byte_opt(r)?.ok_or(TraceStreamError::Decode(DecodeTraceError::Truncated))?;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceStreamError::Decode(DecodeTraceError::Truncated));
        }
    }
}

/// Reads a segment header from a reader positioned at a segment
/// boundary; `None` at clean EOF.
fn read_segment_header_r<R: Read>(r: &mut R) -> Result<Option<SegmentHeader>, TraceStreamError> {
    let mark = match read_byte_opt(r)? {
        None => return Ok(None),
        Some(m) => m,
    };
    if mark != SEG_MARK {
        return Err(TraceStreamError::Decode(DecodeTraceError::BadSegment));
    }
    let records = read_varint_r(r)?;
    let payload_len = read_varint_r(r)?;
    let cycle = read_varint_r(r)?;
    let mut tail = [0u8; 2];
    r.read_exact(&mut tail)
        .map_err(|_| TraceStreamError::Decode(DecodeTraceError::Truncated))?;
    Ok(Some(SegmentHeader {
        records,
        payload_len,
        cycle,
        pid: tail[0],
        kernel: tail[1] != 0,
    }))
}

fn check_file_header<R: Read>(r: &mut R) -> Result<(), TraceStreamError> {
    let mut hdr = [0u8; 5];
    r.read_exact(&mut hdr)
        .map_err(|_| TraceStreamError::Decode(DecodeTraceError::BadHeader))?;
    if &hdr[0..4] != MAGIC || hdr[4] != VERSION {
        return Err(TraceStreamError::Decode(DecodeTraceError::BadHeader));
    }
    Ok(())
}

/// Reads exactly `len` payload bytes into `payload` (cleared first).
/// Grows with the data actually present, so a corrupt length cannot
/// trigger an unbounded allocation.
fn read_payload<R: Read>(
    r: &mut R,
    len: u64,
    payload: &mut Vec<u8>,
) -> Result<(), TraceStreamError> {
    payload.clear();
    r.take(len).read_to_end(payload)?;
    if payload.len() as u64 != len {
        return Err(TraceStreamError::Decode(DecodeTraceError::Truncated));
    }
    Ok(())
}

/// Buffered segment-file reader: walks a file one segment at a time with
/// reusable payload and record buffers, so memory stays O(largest
/// segment) regardless of file size.
#[derive(Debug)]
pub struct SegmentReader<R: Read> {
    r: R,
    payload: Vec<u8>,
    records: Vec<TraceRecord>,
}

impl SegmentReader<BufReader<File>> {
    /// Opens a segment trace file.
    ///
    /// # Errors
    ///
    /// [`TraceStreamError::Io`] if the open fails;
    /// [`DecodeTraceError::BadHeader`] if it is not a segment trace file.
    pub fn open(
        path: impl AsRef<Path>,
    ) -> Result<SegmentReader<BufReader<File>>, TraceStreamError> {
        SegmentReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> SegmentReader<R> {
    /// Wraps a reader positioned at the start of a segment trace stream,
    /// checking the magic/version header.
    ///
    /// # Errors
    ///
    /// As [`SegmentReader::open`].
    pub fn new(mut r: R) -> Result<SegmentReader<R>, TraceStreamError> {
        check_file_header(&mut r)?;
        Ok(SegmentReader {
            r,
            payload: Vec::new(),
            records: Vec::new(),
        })
    }

    /// Decodes the next segment, or `None` at clean end-of-stream. The
    /// returned slice borrows the reader's internal buffer and is valid
    /// until the next call.
    ///
    /// # Errors
    ///
    /// Any [`TraceStreamError`].
    pub fn next_segment(
        &mut self,
    ) -> Result<Option<(SegmentHeader, &[TraceRecord])>, TraceStreamError> {
        let h = match read_segment_header_r(&mut self.r)? {
            None => return Ok(None),
            Some(h) => h,
        };
        read_payload(&mut self.r, h.payload_len, &mut self.payload)?;
        self.records.clear();
        decode_segment_payload(&self.payload, &h, &mut self.records)?;
        Ok(Some((h, &self.records)))
    }

    /// Decodes the next segment straight into a SoA batch (cleared
    /// first) — the decode-once path under [`TraceSource::next_batch`].
    /// Returns the header, or `None` at clean end-of-stream.
    ///
    /// # Errors
    ///
    /// Any [`TraceStreamError`].
    pub fn next_segment_into(
        &mut self,
        out: &mut RecordBatch,
    ) -> Result<Option<SegmentHeader>, TraceStreamError> {
        let h = match read_segment_header_r(&mut self.r)? {
            None => return Ok(None),
            Some(h) => h,
        };
        read_payload(&mut self.r, h.payload_len, &mut self.payload)?;
        out.clear();
        decode_segment_payload(&self.payload, &h, out)?;
        Ok(Some(h))
    }
}

/// A record stream: the seam between capture and analysis. In-memory
/// traces, filtered views of them, and on-disk segment files all
/// implement it, so the streaming analysis passes are agnostic to where
/// records live.
///
/// The required API is pull-based: [`TraceSource::rewind`] resets to
/// the beginning and [`TraceSource::next_batch`] yields the records, in
/// trace order, as decode-once SoA [`RecordBatch`]es — what the
/// broadcast fan-out and the batched simulators consume. The push-style
/// [`TraceSource::stream`] is a provided method rebuilt on top of the
/// batches; it may be called more than once, restarting each time (file
/// sources reopen the file).
pub trait TraceSource {
    /// Resets the source to the beginning of the record stream. File
    /// sources reopen the file.
    ///
    /// # Errors
    ///
    /// Any [`TraceStreamError`] from the underlying source.
    fn rewind(&mut self) -> Result<(), TraceStreamError>;

    /// Returns the next batch of records, or `None` at end of stream;
    /// never yields an empty batch. The returned batch borrows the
    /// source's internal buffer and is valid until the next call. A
    /// fresh source is positioned at the beginning.
    ///
    /// # Errors
    ///
    /// Any [`TraceStreamError`] from the underlying source.
    fn next_batch(&mut self) -> Result<Option<&RecordBatch>, TraceStreamError>;

    /// Streams all records into `sink`, in order, restarting from the
    /// beginning. A compatibility shim over [`TraceSource::next_batch`]
    /// (sources with a cheaper native slice form may override it).
    ///
    /// # Errors
    ///
    /// Any [`TraceStreamError`] from the underlying source.
    fn stream(&mut self, sink: &mut dyn FnMut(&[TraceRecord])) -> Result<(), TraceStreamError> {
        self.rewind()?;
        let mut buf = Vec::new();
        while let Some(batch) = self.next_batch()? {
            batch.copy_to(&mut buf);
            sink(&buf);
        }
        Ok(())
    }
}

/// A [`TraceSource`] over a whole in-memory trace, yielding
/// [`BATCH_TARGET`]-sized batches. Built by [`Trace::source`].
pub struct MemTraceSource<'a> {
    trace: &'a Trace,
    pos: usize,
    batch: RecordBatch,
}

impl<'a> MemTraceSource<'a> {
    pub(crate) fn new(trace: &'a Trace) -> MemTraceSource<'a> {
        MemTraceSource {
            trace,
            pos: 0,
            batch: RecordBatch::new(),
        }
    }
}

impl TraceSource for MemTraceSource<'_> {
    fn rewind(&mut self) -> Result<(), TraceStreamError> {
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<&RecordBatch>, TraceStreamError> {
        let records = self.trace.records();
        if self.pos >= records.len() {
            return Ok(None);
        }
        let end = (self.pos + BATCH_TARGET).min(records.len());
        self.batch.clear();
        self.batch.extend_from_records(&records[self.pos..end]);
        self.pos = end;
        Ok(Some(&self.batch))
    }

    fn stream(&mut self, sink: &mut dyn FnMut(&[TraceRecord])) -> Result<(), TraceStreamError> {
        // The records already exist in slice form; hand out the segment
        // slices directly instead of round-tripping through batches.
        for seg in self.trace.segment_slices() {
            sink(seg);
        }
        Ok(())
    }
}

enum Filter {
    User,
    Pid(u8),
}

/// Chunk size for filtered in-memory sources: large enough to amortise
/// the per-batch dispatch, small enough to stay cache-resident.
#[cfg(not(atum_model))]
const FILTER_CHUNK: usize = 4096;

/// Tiny chunks under the model so multi-batch behaviour is explorable.
#[cfg(atum_model)]
const FILTER_CHUNK: usize = 4;

/// An allocation-light filtered view of an in-memory trace, yielding
/// only the matching references (in fixed-size batches). Built by
/// [`Trace::user_source`] / [`Trace::pid_source`].
pub struct FilteredTraceSource<'a> {
    trace: &'a Trace,
    filter: Filter,
    pos: usize,
    batch: RecordBatch,
}

impl<'a> FilteredTraceSource<'a> {
    pub(crate) fn user(trace: &'a Trace) -> FilteredTraceSource<'a> {
        FilteredTraceSource {
            trace,
            filter: Filter::User,
            pos: 0,
            batch: RecordBatch::new(),
        }
    }

    pub(crate) fn pid(trace: &'a Trace, pid: u8) -> FilteredTraceSource<'a> {
        FilteredTraceSource {
            trace,
            filter: Filter::Pid(pid),
            pos: 0,
            batch: RecordBatch::new(),
        }
    }
}

impl TraceSource for FilteredTraceSource<'_> {
    fn rewind(&mut self) -> Result<(), TraceStreamError> {
        self.pos = 0;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<&RecordBatch>, TraceStreamError> {
        let records = self.trace.records();
        self.batch.clear();
        while self.pos < records.len() && self.batch.len() < FILTER_CHUNK {
            let r = records[self.pos];
            self.pos += 1;
            let matches = match self.filter {
                Filter::User => r.is_ref() && !r.is_kernel(),
                Filter::Pid(p) => r.is_ref() && r.pid() == p,
            };
            if matches {
                self.batch.push(r);
            }
        }
        if self.batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(&self.batch))
        }
    }
}

/// One entry of a segment index: where a segment's payload starts.
struct IndexEntry {
    header: SegmentHeader,
    payload_offset: u64,
}

/// Scans a file's segment headers without decoding payloads — the
/// skip-seek pass that makes parallel reading possible.
fn scan_index(path: &Path) -> Result<Vec<IndexEntry>, TraceStreamError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = BufReader::new(file);
    check_file_header(&mut r)?;
    let mut pos: u64 = (MAGIC.len() + 1) as u64;
    let mut index = Vec::new();
    loop {
        // Headers are tiny; re-serialising the parsed header is the
        // cheapest way to know how many bytes it occupied.
        let h = match read_segment_header_r(&mut r)? {
            None => break,
            Some(h) => h,
        };
        let mut sz = Vec::with_capacity(16);
        push_segment_header(&mut sz, &h);
        pos += sz.len() as u64;
        if pos + h.payload_len > file_len {
            return Err(TraceStreamError::Decode(DecodeTraceError::Truncated));
        }
        index.push(IndexEntry {
            header: h,
            payload_offset: pos,
        });
        r.seek_relative(h.payload_len as i64)?;
        pos += h.payload_len;
    }
    Ok(index)
}

/// Decodes one indexed segment from an independent file handle.
fn decode_segment_at(
    r: &mut BufReader<File>,
    entry: &IndexEntry,
    payload: &mut Vec<u8>,
) -> Result<Vec<TraceRecord>, TraceStreamError> {
    r.seek(SeekFrom::Start(entry.payload_offset))?;
    read_payload(r, entry.header.payload_len, payload)?;
    let mut records = Vec::new();
    decode_segment_payload(payload, &entry.header, &mut records)?;
    Ok(records)
}

/// Shared state of the parallel reader: decoded segments waiting for the
/// in-order consumer, the index the consumer wants next, and the abort
/// flag that unwinds everything on error.
struct MergeState {
    ready: BTreeMap<usize, Result<Vec<TraceRecord>, TraceStreamError>>,
    want: usize,
    abort: bool,
}

/// Streams a segment file through a pool of `jobs` reader threads with
/// an ordered merge: workers claim segment indices from a shared
/// counter, decode with their own file handles, and deposit results
/// keyed by index; the calling thread consumes them strictly in order,
/// so the sink observes exactly the sequential byte order. A bounded
/// in-flight window applies backpressure so memory stays O(jobs ×
/// segment), not O(file).
fn stream_parallel(
    path: &Path,
    jobs: usize,
    sink: &mut dyn FnMut(&[TraceRecord]),
) -> Result<(), TraceStreamError> {
    let index = scan_index(path)?;
    if index.is_empty() {
        return Ok(());
    }
    let jobs = jobs.min(index.len());
    let next = AtomicUsize::new(0);
    let state = Mutex::new(MergeState {
        ready: BTreeMap::new(),
        want: 0,
        abort: false,
    });
    let cv = Condvar::new();
    // In-flight cap: enough to keep every worker busy while the
    // consumer catches up, without buffering the whole file. The model
    // build pins it to 1 so the backpressure states (and the wanted-
    // segment bypass below) are load-bearing in every explored schedule.
    #[cfg(not(atum_model))]
    let cap = jobs * 2;
    #[cfg(atum_model)]
    let cap = 1;
    let mut outcome: Result<(), TraceStreamError> = Ok(());

    thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                let mut file: Option<BufReader<File>> = None;
                let mut payload = Vec::new();
                loop {
                    if state.lock().unwrap().abort {
                        return;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= index.len() {
                        return;
                    }
                    let res = match &mut file {
                        Some(f) => decode_segment_at(f, &index[i], &mut payload),
                        None => match File::open(path) {
                            Ok(f) => {
                                let f = file.insert(BufReader::new(f));
                                decode_segment_at(f, &index[i], &mut payload)
                            }
                            Err(e) => Err(TraceStreamError::Io(e)),
                        },
                    };
                    // The consumer's wanted segment must always get
                    // through, or the merge would deadlock at the cap.
                    let mut g = cv
                        .wait_while(state.lock().unwrap(), |g: &mut MergeState| {
                            g.ready.len() >= cap && i != g.want && !g.abort
                        })
                        .unwrap();
                    if g.abort {
                        return;
                    }
                    g.ready.insert(i, res);
                    debug_assert!(
                        g.ready.len() <= cap + 1,
                        "merge window exceeded cap plus the wanted-segment bypass"
                    );
                    cv.notify_all();
                }
            });
        }

        // In-order consumer on the calling thread — the only place the
        // (non-Send) sink is touched.
        for want in 0..index.len() {
            let res = {
                let mut g = state.lock().unwrap();
                g.want = want;
                cv.notify_all();
                let mut g = cv
                    .wait_while(g, |g: &mut MergeState| !g.ready.contains_key(&want))
                    .unwrap();
                g.ready.remove(&want).unwrap()
            };
            match res {
                Ok(records) => sink(&records),
                Err(e) => {
                    outcome = Err(e);
                    let mut g = state.lock().unwrap();
                    g.abort = true;
                    cv.notify_all();
                    break;
                }
            }
        }
        let mut g = state.lock().unwrap();
        g.want = index.len();
        cv.notify_all();
    });
    outcome
}

/// A [`TraceSource`] over an on-disk segment file. Restartable —
/// [`TraceSource::rewind`] (and each [`TraceSource::stream`] call)
/// reopens the file. [`TraceSource::next_batch`] decodes one segment
/// per batch, straight into the SoA form (decode-once). With
/// `jobs > 1`, the push-style `stream` decodes segments with a reader
/// pool merged in order, so the record stream is identical at any job
/// count; the pull path is always a single sequential reader (the
/// broadcast fan-out parallelises the *consumers* instead).
#[derive(Debug)]
pub struct SegmentFileSource {
    path: PathBuf,
    jobs: usize,
    /// Open reader of the in-progress pull pass (`None` before the
    /// first `next_batch` and after a rewind).
    reader: Option<SegmentReader<BufReader<File>>>,
    batch: RecordBatch,
}

impl Clone for SegmentFileSource {
    /// Clones the configuration; the clone starts a fresh pass at the
    /// beginning of the file.
    fn clone(&self) -> SegmentFileSource {
        SegmentFileSource {
            path: self.path.clone(),
            jobs: self.jobs,
            reader: None,
            batch: RecordBatch::new(),
        }
    }
}

impl SegmentFileSource {
    /// A sequential (single-reader) source for `path`.
    pub fn new(path: impl Into<PathBuf>) -> SegmentFileSource {
        SegmentFileSource {
            path: path.into(),
            jobs: 1,
            reader: None,
            batch: RecordBatch::new(),
        }
    }

    /// A source decoding segments with `jobs` reader threads (clamped to
    /// at least 1), merged in order.
    pub fn with_jobs(path: impl Into<PathBuf>, jobs: usize) -> SegmentFileSource {
        SegmentFileSource {
            path: path.into(),
            jobs: jobs.max(1),
            reader: None,
            batch: RecordBatch::new(),
        }
    }

    /// The file this source reads.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Decodes the whole file into an in-memory [`Trace`], restoring
    /// segment boundaries (each file segment becomes a trace segment).
    ///
    /// # Errors
    ///
    /// Any [`TraceStreamError`].
    pub fn read_to_trace(&self) -> Result<Trace, TraceStreamError> {
        let mut rd = SegmentReader::open(&self.path)?;
        let mut trace = Trace::new();
        let mut first = true;
        while let Some((_h, records)) = rd.next_segment()? {
            if !first {
                trace.begin_segment();
            }
            first = false;
            trace.extend(records.iter().copied());
        }
        Ok(trace)
    }
}

impl TraceSource for SegmentFileSource {
    fn rewind(&mut self) -> Result<(), TraceStreamError> {
        self.reader = None;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<&RecordBatch>, TraceStreamError> {
        if self.reader.is_none() {
            self.reader = Some(SegmentReader::open(&self.path)?);
        }
        let rd = self.reader.as_mut().expect("reader just opened");
        // One batch per segment (a segment is the decode unit); skip
        // empty segments so `None` keeps meaning end-of-stream.
        loop {
            match rd.next_segment_into(&mut self.batch)? {
                None => return Ok(None),
                Some(_) if self.batch.is_empty() => continue,
                Some(_) => return Ok(Some(&self.batch)),
            }
        }
    }

    fn stream(&mut self, sink: &mut dyn FnMut(&[TraceRecord])) -> Result<(), TraceStreamError> {
        if self.jobs <= 1 {
            self.rewind()?;
            let mut buf = Vec::new();
            while let Some(batch) = self.next_batch()? {
                batch.copy_to(&mut buf);
                sink(&buf);
            }
            Ok(())
        } else {
            stream_parallel(&self.path, self.jobs, sink)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;

    fn collect<S: TraceSource>(src: &mut S) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        src.stream(&mut |batch| out.extend_from_slice(batch))
            .unwrap();
        out
    }

    fn mixed_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..500u32 {
            let pid = (1 + (i / 64) % 3) as u8;
            t.push(TraceRecord::new(
                RecordKind::IFetch,
                0x1000 + i * 4,
                4,
                pid,
                false,
            ));
            if i % 4 == 0 {
                t.push(TraceRecord::new(
                    RecordKind::Write,
                    0x8000_0000 + i * 8,
                    4,
                    pid,
                    true,
                ));
            }
        }
        t
    }

    fn collect_batched<S: TraceSource>(src: &mut S) -> Vec<TraceRecord> {
        src.rewind().unwrap();
        let mut out = Vec::new();
        while let Some(b) = src.next_batch().unwrap() {
            assert!(!b.is_empty(), "next_batch never yields an empty batch");
            out.extend(b.iter());
        }
        out
    }

    #[test]
    fn trace_source_streams_whole_trace() {
        let t = mixed_trace();
        assert_eq!(collect(&mut t.source()), t.records());
        assert_eq!(collect_batched(&mut t.source()), t.records());
    }

    #[test]
    fn filtered_sources_match_iterators() {
        let t = mixed_trace();
        assert_eq!(
            collect(&mut t.user_source()),
            t.user_refs().collect::<Vec<_>>()
        );
        assert_eq!(
            collect(&mut t.pid_source(2)),
            t.pid_refs(2).collect::<Vec<_>>()
        );
        assert_eq!(
            collect_batched(&mut t.user_source()),
            t.user_refs().collect::<Vec<_>>()
        );
        assert_eq!(
            collect_batched(&mut t.pid_source(2)),
            t.pid_refs(2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rewind_restarts_a_pass() {
        let t = mixed_trace();
        let mut src = t.source();
        // Consume a batch, rewind, and the full pass must still see
        // everything from the beginning.
        assert!(src.next_batch().unwrap().is_some());
        assert_eq!(collect_batched(&mut src), t.records());

        let mut f = t.user_source();
        assert!(f.next_batch().unwrap().is_some());
        assert_eq!(
            collect_batched(&mut f),
            t.user_refs().collect::<Vec<_>>(),
            "filtered source rewinds cleanly"
        );
    }

    #[test]
    fn writer_reader_round_trip_with_stats() {
        let mut t = mixed_trace();
        t.stitch(mixed_trace());
        let mut bytes = Vec::new();
        let mut w = SegmentWriter::new(&mut bytes).unwrap();
        w.write_trace(&t).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.segments, t.segments() as u64);
        assert_eq!(stats.records, t.len() as u64);
        assert_eq!(stats.encoded_bytes, bytes.len() as u64);
        assert!(stats.compression_ratio() > 3.0, "got {stats:?}");
        // Matches the one-shot encoder byte for byte.
        assert_eq!(bytes, crate::encode::encode_trace(&t));

        let mut rd = SegmentReader::new(&bytes[..]).unwrap();
        let mut back = Vec::new();
        let mut headers = Vec::new();
        while let Some((h, recs)) = rd.next_segment().unwrap() {
            headers.push(h);
            back.extend_from_slice(recs);
        }
        assert_eq!(back, t.records());
        assert_eq!(headers.len(), t.segments());
        assert_eq!(headers[0].pid, t.records()[0].pid());
    }

    #[test]
    fn file_source_sequential_and_parallel_agree() {
        let mut t = Trace::new();
        for chunk in 0..37 {
            let mut seg = Trace::new();
            for i in 0..200u32 {
                seg.push(TraceRecord::new(
                    RecordKind::IFetch,
                    0x1000 + chunk * 0x100 + i * 4,
                    4,
                    (chunk % 5) as u8,
                    chunk % 7 == 0,
                ));
            }
            t.stitch(seg);
        }
        let path =
            std::env::temp_dir().join(format!("atum-stream-test-{}.atrace", std::process::id()));
        let mut w = SegmentWriter::create(&path).unwrap();
        w.write_trace(&t).unwrap();
        w.finish().unwrap();

        let seq = collect(&mut SegmentFileSource::new(&path));
        assert_eq!(seq, t.records());
        for jobs in [2, 4, 8] {
            let par = collect(&mut SegmentFileSource::with_jobs(&path, jobs));
            assert_eq!(par, seq, "jobs={jobs} must merge in order");
        }
        // The pull path decodes the same records, one segment per batch,
        // and rewinds mid-pass cleanly.
        let mut src = SegmentFileSource::new(&path);
        assert!(src.next_batch().unwrap().is_some());
        assert_eq!(collect_batched(&mut src), seq);
        assert_eq!(collect_batched(&mut src.clone()), seq);
        assert_eq!(SegmentFileSource::new(&path).read_to_trace().unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(matches!(
            SegmentReader::new(&b"NOTATRACE"[..]),
            Err(TraceStreamError::Decode(DecodeTraceError::BadHeader))
        ));
        // Valid header, truncated segment.
        let t = mixed_trace();
        let bytes = crate::encode::encode_trace(&t);
        let mut rd = SegmentReader::new(&bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            rd.next_segment(),
            Err(TraceStreamError::Decode(DecodeTraceError::Truncated))
        ));
    }
}
