//! Trace characterisation — the quantities the paper's trace table
//! reports: length, reference mix, OS fraction, context switches,
//! distinct pages touched.

use crate::record::RecordKind;
use crate::trace::Trace;
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Summary statistics of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// All records, markers included.
    pub records: u64,
    /// Instruction-fetch references.
    pub ifetch: u64,
    /// Data reads.
    pub reads: u64,
    /// Data writes.
    pub writes: u64,
    /// References made in kernel mode.
    pub kernel_refs: u64,
    /// References made in user mode.
    pub user_refs: u64,
    /// Context-switch markers.
    pub ctx_switches: u64,
    /// Interrupt/exception markers.
    pub interrupts: u64,
    /// Distinct virtual pages touched (I + D).
    pub distinct_pages: u64,
    /// Distinct pages touched by data references only.
    pub distinct_data_pages: u64,
    /// References per process id.
    pub refs_by_pid: BTreeMap<u8, u64>,
}

impl TraceStats {
    /// Computes statistics over a trace.
    pub fn of(trace: &Trace) -> TraceStats {
        let mut s = TraceStats::default();
        let mut pages = HashSet::new();
        let mut data_pages = HashSet::new();
        for r in trace.iter() {
            s.records += 1;
            match r.kind() {
                RecordKind::IFetch => s.ifetch += 1,
                RecordKind::Read => s.reads += 1,
                RecordKind::Write => s.writes += 1,
                RecordKind::CtxSwitch => s.ctx_switches += 1,
                RecordKind::Interrupt => s.interrupts += 1,
                RecordKind::SegmentMark => {}
            }
            if r.is_ref() {
                if r.is_kernel() {
                    s.kernel_refs += 1;
                } else {
                    s.user_refs += 1;
                }
                pages.insert(r.page());
                if r.kind().is_data() {
                    data_pages.insert(r.page());
                }
                *s.refs_by_pid.entry(r.pid()).or_insert(0) += 1;
            }
        }
        s.distinct_pages = pages.len() as u64;
        s.distinct_data_pages = data_pages.len() as u64;
        s
    }

    /// Total memory references.
    pub fn total_refs(&self) -> u64 {
        self.ifetch + self.reads + self.writes
    }

    /// Fraction of references made by the operating system (0–1).
    pub fn os_fraction(&self) -> f64 {
        if self.total_refs() == 0 {
            0.0
        } else {
            self.kernel_refs as f64 / self.total_refs() as f64
        }
    }

    /// Fraction of references that are instruction fetches.
    pub fn ifetch_fraction(&self) -> f64 {
        if self.total_refs() == 0 {
            0.0
        } else {
            self.ifetch as f64 / self.total_refs() as f64
        }
    }

    /// Fraction of references that are writes.
    pub fn write_fraction(&self) -> f64 {
        if self.total_refs() == 0 {
            0.0
        } else {
            self.writes as f64 / self.total_refs() as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "refs: {} (I {:.1}% / R {:.1}% / W {:.1}%)",
            self.total_refs(),
            100.0 * self.ifetch_fraction(),
            100.0 * self.reads as f64 / self.total_refs().max(1) as f64,
            100.0 * self.write_fraction(),
        )?;
        writeln!(
            f,
            "os fraction: {:.1}%   context switches: {}   interrupts: {}",
            100.0 * self.os_fraction(),
            self.ctx_switches,
            self.interrupts
        )?;
        write!(
            f,
            "distinct pages: {} ({} data)   pids: {}",
            self.distinct_pages,
            self.distinct_data_pages,
            self.refs_by_pid.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    #[test]
    fn counts_and_fractions() {
        let mut t = Trace::new();
        for i in 0..6 {
            t.push(TraceRecord::new(RecordKind::IFetch, i * 512, 4, 1, false));
        }
        for i in 0..3 {
            t.push(TraceRecord::new(RecordKind::Read, 0x1000 + i, 4, 1, true));
        }
        t.push(TraceRecord::new(RecordKind::Write, 0x2000, 4, 2, false));
        t.push(TraceRecord::new(RecordKind::CtxSwitch, 0x9000, 0, 2, true));
        let s = t.stats();
        assert_eq!(s.total_refs(), 10);
        assert_eq!(s.ifetch, 6);
        assert_eq!(s.reads, 3);
        assert_eq!(s.writes, 1);
        assert_eq!(s.kernel_refs, 3);
        assert_eq!(s.user_refs, 7);
        assert_eq!(s.ctx_switches, 1);
        assert!((s.os_fraction() - 0.3).abs() < 1e-9);
        assert_eq!(s.distinct_pages, 6 + 1 + 1);
        assert_eq!(s.distinct_data_pages, 2);
        assert_eq!(s.refs_by_pid[&1], 9);
        assert_eq!(s.refs_by_pid[&2], 1);
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::new().stats();
        assert_eq!(s.total_refs(), 0);
        assert_eq!(s.os_fraction(), 0.0);
        assert!(!s.to_string().is_empty());
    }
}
