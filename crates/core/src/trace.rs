//! In-memory traces: a record sequence with segment boundaries.

use crate::record::{RecordKind, TraceRecord};
use crate::stats::TraceStats;
use std::fmt;

/// An address trace: records in capture order, with the indices where
/// stitched segments begin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
    segment_starts: Vec<usize>,
    /// Running count of I/D reference records, maintained on every
    /// mutation so [`Trace::ref_count`] (hit per row by the experiment
    /// tables and on every `Display`) never rescans the record vector.
    ref_count: usize,
}

impl Trace {
    /// An empty trace (one implicit segment).
    pub fn new() -> Trace {
        Trace {
            records: Vec::new(),
            segment_starts: vec![0],
            ref_count: 0,
        }
    }

    /// An empty trace with record storage preallocated — the extraction
    /// path knows the exact record count up front.
    pub fn with_capacity(records: usize) -> Trace {
        Trace {
            records: Vec::with_capacity(records),
            segment_starts: vec![0],
            ref_count: 0,
        }
    }

    /// Number of records (markers included).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record.
    pub fn push(&mut self, r: TraceRecord) {
        self.ref_count += r.is_ref() as usize;
        self.records.push(r);
    }

    /// Appends another trace as a new segment (the stitch operation),
    /// separated by a [`RecordKind::SegmentMark`]. Stitching into an
    /// empty trace extends the implicit first segment rather than
    /// opening a second one (no mark, no new boundary).
    pub fn stitch(&mut self, other: Trace) {
        if !self.records.is_empty() {
            self.records
                .push(TraceRecord::new(RecordKind::SegmentMark, 0, 0, 0, false));
            self.segment_starts.push(self.records.len());
        }
        self.ref_count += other.ref_count;
        self.records.extend(other.records);
    }

    /// Number of stitched segments.
    pub fn segments(&self) -> usize {
        self.segment_starts.len()
    }

    /// Opens a new segment at the current end of the trace, without
    /// inserting a [`RecordKind::SegmentMark`] — used when rebuilding a
    /// trace whose records (marks included) already exist, e.g. decoding
    /// the archival segment format.
    pub(crate) fn begin_segment(&mut self) {
        self.segment_starts.push(self.records.len());
    }

    /// Iterates over the record slice of each segment, in order.
    /// Concatenating the slices reproduces [`Trace::records`] exactly
    /// (stitch marks live at the tail of the segment they terminate).
    pub fn segment_slices(&self) -> impl Iterator<Item = &[TraceRecord]> + '_ {
        self.segment_starts.iter().enumerate().map(|(i, &start)| {
            let end = self
                .segment_starts
                .get(i + 1)
                .copied()
                .unwrap_or(self.records.len());
            &self.records[start..end]
        })
    }

    /// Iterates over all records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// The records as a slice.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates over memory references only (I and D records).
    pub fn refs(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        self.records.iter().copied().filter(|r| r.is_ref())
    }

    /// Total number of memory references (cached, O(1)).
    pub fn ref_count(&self) -> usize {
        self.ref_count
    }

    /// Iterates over user-mode references only — what a pre-ATUM
    /// user-level tracer would have seen. Allocation-free; see
    /// [`Trace::user_only`] for an owning form.
    pub fn user_refs(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        self.records
            .iter()
            .copied()
            .filter(|r| r.is_ref() && !r.is_kernel())
    }

    /// Iterates over one process's references only (kernel references
    /// stamped with that pid included). Allocation-free; see
    /// [`Trace::pid_only`] for an owning form.
    pub fn pid_refs(&self, pid: u8) -> impl Iterator<Item = TraceRecord> + '_ {
        self.records
            .iter()
            .copied()
            .filter(move |r| r.is_ref() && r.pid() == pid)
    }

    /// A [`TraceSource`](crate::stream::TraceSource) over the whole
    /// trace, markers included — the streaming/batched form the
    /// analysis passes consume.
    pub fn source(&self) -> crate::stream::MemTraceSource<'_> {
        crate::stream::MemTraceSource::new(self)
    }

    /// A [`TraceSource`](crate::stream::TraceSource) yielding
    /// [`Trace::user_refs`] in chunks — the streaming form the analysis
    /// passes consume.
    pub fn user_source(&self) -> crate::stream::FilteredTraceSource<'_> {
        crate::stream::FilteredTraceSource::user(self)
    }

    /// A [`TraceSource`](crate::stream::TraceSource) yielding
    /// [`Trace::pid_refs`] in chunks.
    pub fn pid_source(&self, pid: u8) -> crate::stream::FilteredTraceSource<'_> {
        crate::stream::FilteredTraceSource::pid(self, pid)
    }

    /// A new trace containing only user-mode references, for callers
    /// that need ownership ([`Trace::user_refs`] is the allocation-free
    /// form).
    pub fn user_only(&self) -> Trace {
        self.user_refs().collect()
    }

    /// A new trace containing only references from one process, for
    /// callers that need ownership ([`Trace::pid_refs`] is the
    /// allocation-free form).
    pub fn pid_only(&self, pid: u8) -> Trace {
        self.pid_refs(pid).collect()
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        let before = self.records.len();
        self.records.extend(iter);
        self.ref_count += self.records[before..].iter().filter(|r| r.is_ref()).count();
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceRecord>>(iter: T) -> Trace {
        let mut t = Trace::new();
        t.extend(iter);
        t
    }
}

impl From<Vec<TraceRecord>> for Trace {
    fn from(records: Vec<TraceRecord>) -> Trace {
        let ref_count = records.iter().filter(|r| r.is_ref()).count();
        Trace {
            records,
            segment_starts: vec![0],
            ref_count,
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace: {} records ({} refs) in {} segment(s)",
            self.len(),
            self.ref_count(),
            self.segments()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: RecordKind, addr: u32, pid: u8, kernel: bool) -> TraceRecord {
        TraceRecord::new(kind, addr, 4, pid, kernel)
    }

    #[test]
    fn push_and_filter() {
        let mut t = Trace::new();
        t.push(rec(RecordKind::IFetch, 0x100, 1, false));
        t.push(rec(RecordKind::Read, 0x200, 1, false));
        t.push(rec(RecordKind::Write, 0x300, 1, true));
        t.push(rec(RecordKind::CtxSwitch, 0x9000, 2, true));
        assert_eq!(t.len(), 4);
        assert_eq!(t.ref_count(), 3);
        assert_eq!(t.user_only().len(), 2);
        assert_eq!(t.pid_only(1).len(), 3);
        assert_eq!(t.pid_only(2).len(), 0, "markers excluded");
    }

    #[test]
    fn stitch_inserts_marks() {
        let mut a: Trace = vec![rec(RecordKind::Read, 1, 0, false)]
            .into_iter()
            .collect();
        let b: Trace = vec![rec(RecordKind::Read, 2, 0, false)]
            .into_iter()
            .collect();
        a.stitch(b);
        assert_eq!(a.segments(), 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a.records()[1].kind(), RecordKind::SegmentMark);
        assert_eq!(a.ref_count(), 2, "marks are not references");
    }

    #[test]
    fn stitch_into_empty_adds_no_mark() {
        let mut a = Trace::new();
        a.stitch(
            vec![rec(RecordKind::Read, 2, 0, false)]
                .into_iter()
                .collect(),
        );
        assert_eq!(a.len(), 1);
        // The implicit first segment absorbs the stitched records: no
        // mark was inserted, so no second segment exists.
        assert_eq!(a.segments(), 1);

        // A second stitch does open a new segment.
        a.stitch(
            vec![rec(RecordKind::Read, 3, 0, false)]
                .into_iter()
                .collect(),
        );
        assert_eq!(a.segments(), 2);
        assert_eq!(a.records()[1].kind(), RecordKind::SegmentMark);
    }

    #[test]
    fn cached_ref_count_tracks_every_mutation_path() {
        let mut t = Trace::new();
        t.push(rec(RecordKind::IFetch, 0x100, 1, false));
        t.push(rec(RecordKind::CtxSwitch, 0x9000, 2, true));
        t.extend(vec![
            rec(RecordKind::Read, 0x200, 1, false),
            rec(RecordKind::SegmentMark, 0, 0, false),
        ]);
        t.stitch(
            vec![rec(RecordKind::Write, 0x300, 1, true)]
                .into_iter()
                .collect(),
        );
        assert_eq!(t.ref_count(), t.refs().count());
        assert_eq!(t.user_only().ref_count(), t.user_only().refs().count());
        assert_eq!(t.pid_only(1).ref_count(), t.pid_only(1).refs().count());
    }

    #[test]
    fn segment_slices_cover_records_exactly() {
        let mut t: Trace = vec![rec(RecordKind::Read, 1, 0, false)]
            .into_iter()
            .collect();
        t.stitch(
            vec![rec(RecordKind::Read, 2, 0, false)]
                .into_iter()
                .collect(),
        );
        t.stitch(Trace::new());
        let slices: Vec<&[TraceRecord]> = t.segment_slices().collect();
        assert_eq!(slices.len(), t.segments());
        let flat: Vec<TraceRecord> = slices.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(flat, t.records());
        // The mark terminating segment 1 sits at the tail of its slice.
        assert_eq!(slices[0].last().unwrap().kind(), RecordKind::SegmentMark);
    }

    #[test]
    fn filtered_iterators_match_owning_forms() {
        let mut t = Trace::new();
        t.push(rec(RecordKind::IFetch, 0x100, 1, false));
        t.push(rec(RecordKind::Write, 0x300, 1, true));
        t.push(rec(RecordKind::Read, 0x200, 2, false));
        t.push(rec(RecordKind::CtxSwitch, 0x9000, 2, true));
        assert_eq!(
            t.user_refs().collect::<Vec<_>>(),
            t.user_only().records().to_vec()
        );
        assert_eq!(
            t.pid_refs(1).collect::<Vec<_>>(),
            t.pid_only(1).records().to_vec()
        );
    }

    #[test]
    fn display() {
        let t = Trace::new();
        assert!(t.to_string().contains("0 records"));
    }
}
