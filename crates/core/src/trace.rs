//! In-memory traces: a record sequence with segment boundaries.

use crate::record::{RecordKind, TraceRecord};
use crate::stats::TraceStats;
use std::fmt;

/// An address trace: records in capture order, with the indices where
/// stitched segments begin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
    segment_starts: Vec<usize>,
    /// Running count of I/D reference records, maintained on every
    /// mutation so [`Trace::ref_count`] (hit per row by the experiment
    /// tables and on every `Display`) never rescans the record vector.
    ref_count: usize,
}

impl Trace {
    /// An empty trace (one implicit segment).
    pub fn new() -> Trace {
        Trace {
            records: Vec::new(),
            segment_starts: vec![0],
            ref_count: 0,
        }
    }

    /// An empty trace with record storage preallocated — the extraction
    /// path knows the exact record count up front.
    pub fn with_capacity(records: usize) -> Trace {
        Trace {
            records: Vec::with_capacity(records),
            segment_starts: vec![0],
            ref_count: 0,
        }
    }

    /// Number of records (markers included).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record.
    pub fn push(&mut self, r: TraceRecord) {
        self.ref_count += r.is_ref() as usize;
        self.records.push(r);
    }

    /// Appends another trace as a new segment (the stitch operation),
    /// separated by a [`RecordKind::SegmentMark`]. Stitching into an
    /// empty trace extends the implicit first segment rather than
    /// opening a second one (no mark, no new boundary).
    pub fn stitch(&mut self, other: Trace) {
        if !self.records.is_empty() {
            self.records
                .push(TraceRecord::new(RecordKind::SegmentMark, 0, 0, 0, false));
            self.segment_starts.push(self.records.len());
        }
        self.ref_count += other.ref_count;
        self.records.extend(other.records);
    }

    /// Number of stitched segments.
    pub fn segments(&self) -> usize {
        self.segment_starts.len()
    }

    /// Iterates over all records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// The records as a slice.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates over memory references only (I and D records).
    pub fn refs(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        self.records.iter().copied().filter(|r| r.is_ref())
    }

    /// Total number of memory references (cached, O(1)).
    pub fn ref_count(&self) -> usize {
        self.ref_count
    }

    /// A new trace containing only user-mode references — what a
    /// pre-ATUM user-level tracer would have seen.
    pub fn user_only(&self) -> Trace {
        let records: Vec<TraceRecord> = self
            .records
            .iter()
            .copied()
            .filter(|r| r.is_ref() && !r.is_kernel())
            .collect();
        Trace {
            ref_count: records.len(),
            records,
            segment_starts: vec![0],
        }
    }

    /// A new trace containing only references from one process (kernel
    /// references stamped with that pid included).
    pub fn pid_only(&self, pid: u8) -> Trace {
        let records: Vec<TraceRecord> = self
            .records
            .iter()
            .copied()
            .filter(|r| r.is_ref() && r.pid() == pid)
            .collect();
        Trace {
            ref_count: records.len(),
            records,
            segment_starts: vec![0],
        }
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        let before = self.records.len();
        self.records.extend(iter);
        self.ref_count += self.records[before..].iter().filter(|r| r.is_ref()).count();
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceRecord>>(iter: T) -> Trace {
        let mut t = Trace::new();
        t.extend(iter);
        t
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace: {} records ({} refs) in {} segment(s)",
            self.len(),
            self.ref_count(),
            self.segments()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: RecordKind, addr: u32, pid: u8, kernel: bool) -> TraceRecord {
        TraceRecord::new(kind, addr, 4, pid, kernel)
    }

    #[test]
    fn push_and_filter() {
        let mut t = Trace::new();
        t.push(rec(RecordKind::IFetch, 0x100, 1, false));
        t.push(rec(RecordKind::Read, 0x200, 1, false));
        t.push(rec(RecordKind::Write, 0x300, 1, true));
        t.push(rec(RecordKind::CtxSwitch, 0x9000, 2, true));
        assert_eq!(t.len(), 4);
        assert_eq!(t.ref_count(), 3);
        assert_eq!(t.user_only().len(), 2);
        assert_eq!(t.pid_only(1).len(), 3);
        assert_eq!(t.pid_only(2).len(), 0, "markers excluded");
    }

    #[test]
    fn stitch_inserts_marks() {
        let mut a: Trace = vec![rec(RecordKind::Read, 1, 0, false)]
            .into_iter()
            .collect();
        let b: Trace = vec![rec(RecordKind::Read, 2, 0, false)]
            .into_iter()
            .collect();
        a.stitch(b);
        assert_eq!(a.segments(), 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a.records()[1].kind(), RecordKind::SegmentMark);
        assert_eq!(a.ref_count(), 2, "marks are not references");
    }

    #[test]
    fn stitch_into_empty_adds_no_mark() {
        let mut a = Trace::new();
        a.stitch(
            vec![rec(RecordKind::Read, 2, 0, false)]
                .into_iter()
                .collect(),
        );
        assert_eq!(a.len(), 1);
        // The implicit first segment absorbs the stitched records: no
        // mark was inserted, so no second segment exists.
        assert_eq!(a.segments(), 1);

        // A second stitch does open a new segment.
        a.stitch(
            vec![rec(RecordKind::Read, 3, 0, false)]
                .into_iter()
                .collect(),
        );
        assert_eq!(a.segments(), 2);
        assert_eq!(a.records()[1].kind(), RecordKind::SegmentMark);
    }

    #[test]
    fn cached_ref_count_tracks_every_mutation_path() {
        let mut t = Trace::new();
        t.push(rec(RecordKind::IFetch, 0x100, 1, false));
        t.push(rec(RecordKind::CtxSwitch, 0x9000, 2, true));
        t.extend(vec![
            rec(RecordKind::Read, 0x200, 1, false),
            rec(RecordKind::SegmentMark, 0, 0, false),
        ]);
        t.stitch(
            vec![rec(RecordKind::Write, 0x300, 1, true)]
                .into_iter()
                .collect(),
        );
        assert_eq!(t.ref_count(), t.refs().count());
        assert_eq!(t.user_only().ref_count(), t.user_only().refs().count());
        assert_eq!(t.pid_only(1).ref_count(), t.pid_only(1).refs().count());
    }

    #[test]
    fn display() {
        let t = Trace::new();
        assert!(t.to_string().contains("0 records"));
    }
}
