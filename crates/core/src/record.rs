//! The trace-record format.
//!
//! Each record is two longwords, written by the patch microcode as two
//! physical stores — the "fat but fast" layout a microcode patch can
//! afford (compaction happens at extraction time, in [`crate::encode`]):
//!
//! ```text
//! low longword   address (virtual)
//! high longword:
//!   31:28  record kind
//!   27     kernel-mode flag
//!   18:16  reference size in bytes (1, 2 or 4)
//!   15:8   process id
//!   other  zero
//! ```

use std::fmt;

/// Kind of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum RecordKind {
    /// Instruction-stream longword fetch.
    IFetch = 1,
    /// Data read.
    Read = 2,
    /// Data write.
    Write = 3,
    /// Context switch (`ldpctx`); the address is the new PCB base and the
    /// pid field is the incoming process.
    CtxSwitch = 4,
    /// Exception or interrupt entry; the address is the SCB vector offset.
    Interrupt = 5,
    /// Segment boundary inserted by the host when stitching drained
    /// samples together (never written by microcode).
    SegmentMark = 6,
}

impl RecordKind {
    /// Decodes the 4-bit kind field.
    pub fn from_bits(bits: u32) -> Option<RecordKind> {
        Some(match bits {
            1 => RecordKind::IFetch,
            2 => RecordKind::Read,
            3 => RecordKind::Write,
            4 => RecordKind::CtxSwitch,
            5 => RecordKind::Interrupt,
            6 => RecordKind::SegmentMark,
            _ => return None,
        })
    }

    /// Whether this record is an actual memory reference (I or D).
    pub fn is_ref(self) -> bool {
        matches!(
            self,
            RecordKind::IFetch | RecordKind::Read | RecordKind::Write
        )
    }

    /// Whether this record is a data reference.
    pub fn is_data(self) -> bool {
        matches!(self, RecordKind::Read | RecordKind::Write)
    }
}

impl fmt::Display for RecordKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecordKind::IFetch => "I",
            RecordKind::Read => "R",
            RecordKind::Write => "W",
            RecordKind::CtxSwitch => "CTX",
            RecordKind::Interrupt => "INT",
            RecordKind::SegmentMark => "SEG",
        })
    }
}

/// Bit positions in the high longword (shared with the patch microcode).
pub(crate) mod meta {
    /// Kind field shift.
    pub const KIND_SHIFT: u32 = 28;
    /// Kernel-mode flag.
    pub const KERNEL_BIT: u32 = 1 << 27;
    /// Size field shift.
    pub const SIZE_SHIFT: u32 = 16;
    /// Size field mask (pre-shift).
    pub const SIZE_MASK: u32 = 0x7;
    /// Pid field shift.
    pub const PID_SHIFT: u32 = 8;
    /// Pid field mask (pre-shift).
    pub const PID_MASK: u32 = 0xFF;
}

/// One parsed trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Virtual address (or marker payload).
    pub addr: u32,
    /// Packed metadata (see module docs).
    pub meta: u32,
}

impl TraceRecord {
    /// Builds a record from its fields (host-side; microcode builds them
    /// with ALU ops).
    pub fn new(kind: RecordKind, addr: u32, size: u32, pid: u8, kernel: bool) -> TraceRecord {
        let mut meta = (kind as u32) << meta::KIND_SHIFT
            | (size & meta::SIZE_MASK) << meta::SIZE_SHIFT
            | (pid as u32) << meta::PID_SHIFT;
        if kernel {
            meta |= meta::KERNEL_BIT;
        }
        TraceRecord { addr, meta }
    }

    /// Parses the two raw longwords from the buffer; `None` if the kind
    /// field is invalid (corrupt buffer).
    pub fn from_raw(addr: u32, meta: u32) -> Option<TraceRecord> {
        RecordKind::from_bits(meta >> meta::KIND_SHIFT)?;
        Some(TraceRecord { addr, meta })
    }

    /// The record kind.
    pub fn kind(self) -> RecordKind {
        RecordKind::from_bits(self.meta >> meta::KIND_SHIFT).expect("validated at construction")
    }

    /// Whether the reference was made in kernel mode.
    pub fn is_kernel(self) -> bool {
        self.meta & meta::KERNEL_BIT != 0
    }

    /// Reference size in bytes (0 for markers).
    pub fn size(self) -> u32 {
        (self.meta >> meta::SIZE_SHIFT) & meta::SIZE_MASK
    }

    /// The process id stamped into the record.
    pub fn pid(self) -> u8 {
        ((self.meta >> meta::PID_SHIFT) & meta::PID_MASK) as u8
    }

    /// Whether this is an I/D memory reference.
    pub fn is_ref(self) -> bool {
        self.kind().is_ref()
    }

    /// The virtual page number of the reference.
    pub fn page(self) -> u32 {
        self.addr >> atum_arch::PAGE_SHIFT
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<3} {:#010x} pid={:<3} {} sz={}",
            self.kind(),
            self.addr,
            self.pid(),
            if self.is_kernel() { 'k' } else { 'u' },
            self.size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_fields() {
        let r = TraceRecord::new(RecordKind::Write, 0x8000_1234, 4, 7, true);
        assert_eq!(r.kind(), RecordKind::Write);
        assert_eq!(r.addr, 0x8000_1234);
        assert_eq!(r.size(), 4);
        assert_eq!(r.pid(), 7);
        assert!(r.is_kernel());
        assert!(r.is_ref());
        let parsed = TraceRecord::from_raw(r.addr, r.meta).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn marker_records() {
        let r = TraceRecord::new(RecordKind::CtxSwitch, 0x9000, 0, 3, true);
        assert!(!r.is_ref());
        assert_eq!(r.pid(), 3);
        assert!(!RecordKind::Interrupt.is_ref());
        assert!(RecordKind::Read.is_data());
        assert!(!RecordKind::IFetch.is_data());
    }

    #[test]
    fn bad_kind_rejected() {
        assert_eq!(TraceRecord::from_raw(0, 0), None);
        assert_eq!(TraceRecord::from_raw(0, 0xF << 28), None);
    }

    #[test]
    fn page_extraction() {
        let r = TraceRecord::new(RecordKind::Read, 0x0000_0A04, 4, 0, false);
        assert_eq!(r.page(), 5);
    }

    #[test]
    fn display_is_informative() {
        let s = TraceRecord::new(RecordKind::IFetch, 0x1000, 4, 2, false).to_string();
        assert!(s.contains("0x00001000"));
        assert!(s.contains("pid=2"));
    }
}
