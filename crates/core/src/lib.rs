//! # atum-core — ATUM address tracing via control-store patches
//!
//! This crate is the reproduction of the paper's contribution: capture a
//! **complete-system address trace** — every instruction fetch, data read
//! and data write, from user programs, the kernel, interrupt handlers and
//! every process in a multiprogrammed mix — by *patching the CPU's
//! microcode* so each memory-reference micro-routine also deposits a
//! record into a region of physical memory the operating system does not
//! know exists.
//!
//! Concretely ([`patch`]):
//!
//! * the `XferRead`, `XferWrite` and `XferIFetch` entry slots are
//!   re-pointed at routines that log `{address, type, size, mode, pid}`
//!   and then tail-jump to the stock transfer code;
//! * the `ldpctx` opcode dispatch is wrapped to read the incoming
//!   process's PID out of its PCB, stamp it into the trace-control
//!   register and emit a context-switch marker;
//! * the exception-dispatch entry is wrapped to emit an interrupt/
//!   exception marker carrying the SCB vector.
//!
//! Control lives in four privileged registers (`TRCTL`/`TRBASE`/`TRPTR`/
//! `TRLIM` — microcode scratch on the real 8200, poked from the console).
//! When the buffer fills, the patch sets the FULL bit and halts the
//! processor; the host drains the region ([`Tracer::drain`]) and resumes —
//! the paper's trace-sample *stitching* ([`CaptureSession`]).
//!
//! Nothing here calls back into the machine: an unpatched machine has no
//! tracer, and the patched machine's only extra behaviour is more
//! micro-ops, which is exactly how the slowdown is measured.
//!
//! ## Quickstart
//!
//! ```
//! use atum_core::{RecordKind, Tracer};
//! use atum_machine::{Machine, MemLayout};
//!
//! let img = atum_asm::assemble(
//!     ".org 0x1000\nstart: movl #3, r0\nloop: sobgtr r0, loop\n halt\n",
//! ).unwrap();
//! let mut m = Machine::new(MemLayout::small());
//! for (a, b) in img.segments() { m.write_phys(*a, b).unwrap(); }
//! m.set_pc(0x1000);
//!
//! let tracer = Tracer::attach(&mut m).unwrap();
//! tracer.set_enabled(&mut m, true);
//! m.run(100_000);
//! let trace = tracer.extract(&m).unwrap();
//! assert!(trace.iter().any(|r| r.kind() == RecordKind::IFetch));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod encode;
pub mod patch;
mod record;
mod stats;
mod stitch;
mod stream;
mod trace;
mod tracer;

pub use batch::{broadcast_batches, RecordBatch, BATCH_TARGET};
pub use encode::{decode_trace, encode_trace, DecodeTraceError, SegmentHeader};
pub use patch::{PatchSet, PatchStyle};
pub use record::{RecordKind, TraceRecord};
pub use stats::TraceStats;
pub use stitch::{Capture, CaptureSession, CaptureStreamError, StreamedCapture};
pub use stream::{
    FilteredTraceSource, MemTraceSource, SegmentFileSource, SegmentReader, SegmentWriter,
    StreamStats, TraceSource, TraceStreamError,
};
pub use trace::Trace;
pub use tracer::{Tracer, TracerError};
