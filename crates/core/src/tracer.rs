//! Host-side tracer control: attach, enable, drain, extract.

use crate::patch::{trctl, PatchError, PatchSet};
use crate::record::TraceRecord;
use crate::trace::Trace;
use atum_arch::PrivReg;
use atum_machine::{Machine, MemError};
use std::fmt;

/// Errors from tracer operations.
///
/// Extraction failures are typed rather than stringly — the host drains
/// the buffer while a capture is live, and a scribbled trace pointer or a
/// corrupt record must surface as a diagnosable error (with the offending
/// register/record values) instead of aborting mid-capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracerError {
    /// Patch installation failed.
    Patch(PatchError),
    /// The machine's reserved region is too small for even one record.
    ReservedTooSmall,
    /// The trace write pointer read back from `TRPTR` does not lie on a
    /// record boundary inside the buffer — the register was scribbled, or
    /// the tracer was pointed at the wrong machine.
    BadTracePointer {
        /// The `TRPTR` value read back.
        trptr: u32,
        /// The buffer base this tracer attached with.
        base: u32,
        /// The buffer limit this tracer attached with.
        limit: u32,
    },
    /// The buffer region could not be read back from physical memory.
    Region(MemError),
    /// A buffered record failed to decode.
    CorruptRecord {
        /// Byte offset of the record from the buffer base.
        offset: u32,
        /// The undecodable meta longword.
        meta: u32,
    },
}

impl fmt::Display for TracerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TracerError::Patch(e) => write!(f, "patch installation failed: {e}"),
            TracerError::ReservedTooSmall => f.write_str("reserved region too small"),
            TracerError::BadTracePointer { trptr, base, limit } => write!(
                f,
                "trace pointer {trptr:#010x} invalid for buffer {base:#010x}..{limit:#010x}"
            ),
            TracerError::Region(e) => write!(f, "trace extraction failed: {e}"),
            TracerError::CorruptRecord { offset, meta } => write!(
                f,
                "corrupt record at buffer offset {offset:#x}: meta {meta:#010x}"
            ),
        }
    }
}

impl std::error::Error for TracerError {}

impl From<MemError> for TracerError {
    fn from(e: MemError) -> TracerError {
        TracerError::Region(e)
    }
}

impl From<PatchError> for TracerError {
    fn from(e: PatchError) -> TracerError {
        TracerError::Patch(e)
    }
}

fn decode_record(chunk: &[u8], i: usize) -> Result<TraceRecord, TracerError> {
    let addr = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    let meta = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
    TraceRecord::from_raw(addr, meta).ok_or(TracerError::CorruptRecord {
        offset: i as u32 * 8,
        meta,
    })
}

/// The attached ATUM tracer: owns the patch handle and the buffer bounds.
///
/// All control flows through the machine's privileged registers — the
/// same interface the console used on the 8200. The tracer holds no
/// machine reference; pass the machine to each operation.
#[derive(Debug)]
pub struct Tracer {
    patches: PatchSet,
    base: u32,
    limit: u32,
}

impl Tracer {
    /// Installs the patches and points the trace buffer at the machine's
    /// entire reserved region. Capture starts disabled.
    ///
    /// # Errors
    ///
    /// [`TracerError::Patch`] on double-install; [`TracerError::ReservedTooSmall`]
    /// if the reserved region cannot hold a record.
    pub fn attach(m: &mut Machine) -> Result<Tracer, TracerError> {
        let layout = m.memory().layout();
        Tracer::attach_region(m, layout.reserved_base(), layout.reserved_len())
    }

    /// Installs the patches with an explicit [`PatchStyle`] over the whole
    /// reserved region (the A1 patch-cost ablation).
    ///
    /// # Errors
    ///
    /// As [`Tracer::attach`].
    ///
    /// [`PatchStyle`]: crate::patch::PatchStyle
    pub fn attach_with_style(
        m: &mut Machine,
        style: crate::patch::PatchStyle,
    ) -> Result<Tracer, TracerError> {
        let layout = m.memory().layout();
        Tracer::attach_region_with_style(m, layout.reserved_base(), layout.reserved_len(), style)
    }

    /// Installs the patches with an explicit buffer region (used by the
    /// buffer-size experiments).
    ///
    /// # Errors
    ///
    /// As [`Tracer::attach`].
    pub fn attach_region(m: &mut Machine, base: u32, len: u32) -> Result<Tracer, TracerError> {
        Tracer::attach_region_with_style(m, base, len, crate::patch::PatchStyle::Scratch)
    }

    /// Installs the patches with an explicit region and style. The spill
    /// style reserves the 32 bytes at the buffer limit as its scratch
    /// line, shrinking the record capacity accordingly.
    ///
    /// # Errors
    ///
    /// As [`Tracer::attach`].
    pub fn attach_region_with_style(
        m: &mut Machine,
        base: u32,
        mut len: u32,
        style: crate::patch::PatchStyle,
    ) -> Result<Tracer, TracerError> {
        if style == crate::patch::PatchStyle::Spill {
            len = len.saturating_sub(32);
        }
        if len < 8 {
            return Err(TracerError::ReservedTooSmall);
        }
        let patches = PatchSet::install_with_style(m.control_store_mut(), style)?;
        let limit = base + len;
        m.write_prv(PrivReg::Trbase, base);
        m.write_prv(PrivReg::Trptr, base);
        m.write_prv(PrivReg::Trlim, limit);
        m.write_prv(PrivReg::Trctl, 0);
        Ok(Tracer {
            patches,
            base,
            limit,
        })
    }

    /// The installed patch set (for footprint reporting).
    pub fn patches(&self) -> &PatchSet {
        &self.patches
    }

    /// Buffer capacity in records.
    pub fn capacity_records(&self) -> u32 {
        (self.limit - self.base) / 8
    }

    /// Turns capture on or off (the TRCTL enable bit).
    pub fn set_enabled(&self, m: &mut Machine, on: bool) {
        let mut v = m.read_prv(PrivReg::Trctl);
        if on {
            v |= trctl::ENABLE;
        } else {
            v &= !trctl::ENABLE;
        }
        m.write_prv(PrivReg::Trctl, v);
    }

    /// Whether capture is enabled.
    pub fn is_enabled(&self, m: &Machine) -> bool {
        m.read_prv(PrivReg::Trctl) & trctl::ENABLE != 0
    }

    /// Whether the microcode has flagged the buffer full.
    pub fn is_full(&self, m: &Machine) -> bool {
        m.read_prv(PrivReg::Trctl) & trctl::FULL != 0
    }

    /// Stamps the current process id into TRCTL (the boot path; `ldpctx`
    /// keeps it up to date afterwards).
    pub fn set_pid(&self, m: &mut Machine, pid: u8) {
        let v = m.read_prv(PrivReg::Trctl);
        let v = (v & !(trctl::PID_MASK << trctl::PID_SHIFT)) | ((pid as u32) << trctl::PID_SHIFT);
        m.write_prv(PrivReg::Trctl, v);
    }

    /// Number of records currently in the buffer. A `TRPTR` below the
    /// buffer base (a scribbled register) reads as zero rather than
    /// wrapping; [`Tracer::extract`] reports it as an error.
    pub fn pending_records(&self, m: &Machine) -> u32 {
        m.read_prv(PrivReg::Trptr).saturating_sub(self.base) / 8
    }

    /// Reads the buffered records without disturbing the machine.
    ///
    /// # Errors
    ///
    /// [`TracerError::BadTracePointer`] if `TRPTR` is outside the buffer
    /// or off a record boundary; [`TracerError::Region`] if the region
    /// read fails; [`TracerError::CorruptRecord`] if a record does not
    /// decode.
    pub fn extract(&self, m: &Machine) -> Result<Trace, TracerError> {
        let bytes = self.checked_buffer(m)?;
        let mut trace = Trace::with_capacity(bytes.len() / 8);
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            trace.push(decode_record(chunk, i)?);
        }
        Ok(trace)
    }

    /// Reads the buffered records into a caller-owned vector (cleared
    /// first) — the streaming drain path's allocation-free form: the
    /// capture loop reuses one vector across every drain.
    ///
    /// # Errors
    ///
    /// As [`Tracer::extract`].
    pub fn extract_into(&self, m: &Machine, out: &mut Vec<TraceRecord>) -> Result<(), TracerError> {
        let bytes = self.checked_buffer(m)?;
        out.clear();
        out.reserve(bytes.len() / 8);
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            out.push(decode_record(chunk, i)?);
        }
        Ok(())
    }

    /// Validates `TRPTR` and borrows the filled buffer region in place
    /// (no host-side byte copy).
    fn checked_buffer<'m>(&self, m: &'m Machine) -> Result<&'m [u8], TracerError> {
        let ptr = m.read_prv(PrivReg::Trptr);
        if ptr < self.base || ptr > self.limit || !(ptr - self.base).is_multiple_of(8) {
            return Err(TracerError::BadTracePointer {
                trptr: ptr,
                base: self.base,
                limit: self.limit,
            });
        }
        Ok(m.memory().slice(self.base, ptr - self.base)?)
    }

    /// Extracts the buffer, resets the write pointer and clears the FULL
    /// flag — the console's drain operation during stitched captures.
    ///
    /// # Errors
    ///
    /// As [`Tracer::extract`].
    pub fn drain(&self, m: &mut Machine) -> Result<Trace, TracerError> {
        let t = self.extract(m)?;
        self.reset_buffer(m);
        Ok(t)
    }

    /// Drains into a caller-owned vector (cleared first), resetting the
    /// write pointer and FULL flag — the streaming capture loop's drain.
    ///
    /// # Errors
    ///
    /// As [`Tracer::extract`].
    pub fn drain_into(
        &self,
        m: &mut Machine,
        out: &mut Vec<TraceRecord>,
    ) -> Result<(), TracerError> {
        self.extract_into(m, out)?;
        self.reset_buffer(m);
        Ok(())
    }

    fn reset_buffer(&self, m: &mut Machine) {
        m.write_prv(PrivReg::Trptr, self.base);
        let v = m.read_prv(PrivReg::Trctl) & !trctl::FULL;
        m.write_prv(PrivReg::Trctl, v);
    }

    /// Detaches: disables capture and restores the stock dispatch targets.
    pub fn detach(self, m: &mut Machine) {
        self.set_enabled(m, false);
        self.patches.uninstall(m.control_store_mut());
    }
}
