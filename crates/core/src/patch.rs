//! The ATUM control-store patches.
//!
//! [`PatchSet::install`] appends five routines to the writable control
//! store and re-points the patchable indirections:
//!
//! | Hook | Stock target | Patch |
//! |---|---|---|
//! | `Entry::XferRead` | `xfer.read` | `atum.read` — log `{R, addr}` |
//! | `Entry::XferWrite` | `xfer.write` | `atum.write` — log `{W, addr}` |
//! | `Entry::XferIFetch` | `xfer.ifetch` | `atum.ifetch` — log `{I, addr}` |
//! | opcode `ldpctx` | `i.ldpctx` | `atum.ldpctx` — stamp PID, log `{CTX}` |
//! | `Entry::ExcDispatch` | `exc.entry` | `atum.exc` — log `{INT, vector}` |
//!
//! Every patch ends with a tail-jump to the stock routine it displaced,
//! so behaviour is unchanged except for the logging micro-ops. The shared
//! logger (`atum.log`) costs ~20 micro-ops per reference including two
//! physical stores — that, times the reference count, *is* the ATUM
//! slowdown, measurable as patched/unpatched microcycles.
//!
//! Register discipline: patches use only the `P0`–`P7` scratch registers
//! (never touched by stock microcode) plus MAR/MDR, which they save and
//! restore around the record stores. ALU ops use `CcEffect::None`, so the
//! architectural condition codes are untouched.

use crate::record::{meta, RecordKind};
use atum_arch::{Opcode, PrivReg};
use atum_ucode::{AluOp, ControlStore, Entry, MicroAsm, MicroCond, MicroOp, MicroReg, Target};
use std::fmt;

/// TRCTL bit assignments.
pub mod trctl {
    /// Capture enabled.
    pub const ENABLE: u32 = 1 << 0;
    /// Buffer full; set by microcode, cleared by the host after draining.
    pub const FULL: u32 = 1 << 1;
    /// Shift of the current-pid field.
    pub const PID_SHIFT: u32 = 8;
    /// Mask of the current-pid field (pre-shift).
    pub const PID_MASK: u32 = 0xFF;
}

/// How the patch manages its working registers — the A1 cost ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PatchStyle {
    /// Use the spare `P0`–`P7` micro-scratch registers (SVX reserves
    /// them for patches). The streamlined, cheap variant.
    #[default]
    Scratch,
    /// Model the 8200's constraints: no spare micro-registers, so the
    /// logger spills and restores its working set through a physical
    /// scratch line (placed at `TRLIM`) and pays a microtrap-style
    /// entry/exit sequence. Roughly the slowdown band the paper reports.
    Spill,
}

/// Error installing the patches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchError {
    /// The control store already contains an ATUM patch set.
    AlreadyInstalled,
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::AlreadyInstalled => f.write_str("ATUM patches already installed"),
        }
    }
}

impl std::error::Error for PatchError {}

/// Handle to an installed patch set: remembers the displaced stock
/// targets and the patch footprint.
#[derive(Debug, Clone)]
pub struct PatchSet {
    stock_read: u32,
    stock_write: u32,
    stock_ifetch: u32,
    stock_ldpctx: u32,
    stock_exc: u32,
    words: u32,
}

impl PatchSet {
    /// Installs the ATUM patches into a control store with the default
    /// (scratch-register) style.
    ///
    /// # Errors
    ///
    /// [`PatchError::AlreadyInstalled`] if a patch set is already present.
    pub fn install(cs: &mut ControlStore) -> Result<PatchSet, PatchError> {
        PatchSet::install_with_style(cs, PatchStyle::Scratch)
    }

    /// Installs the ATUM patches with an explicit [`PatchStyle`].
    ///
    /// # Errors
    ///
    /// [`PatchError::AlreadyInstalled`] if a patch set is already present.
    pub fn install_with_style(
        cs: &mut ControlStore,
        style: PatchStyle,
    ) -> Result<PatchSet, PatchError> {
        if cs.symbol("atum.log").is_some() {
            return Err(PatchError::AlreadyInstalled);
        }
        let before = cs.len();
        let stock_read = cs.entry(Entry::XferRead);
        let stock_write = cs.entry(Entry::XferWrite);
        let stock_ifetch = cs.entry(Entry::XferIFetch);
        let stock_ldpctx = cs.opcode_target(Opcode::Ldpctx.to_byte());
        let stock_exc = cs.entry(Entry::ExcDispatch);

        build_logger(cs, style);
        let read = build_ref_stub(cs, "atum.read", RecordKind::Read, None, stock_read);
        let write = build_ref_stub(cs, "atum.write", RecordKind::Write, None, stock_write);
        let ifetch = build_ref_stub(cs, "atum.ifetch", RecordKind::IFetch, Some(4), stock_ifetch);
        let ldpctx = build_ldpctx(cs, stock_ldpctx);
        let exc = build_exc(cs, stock_exc);

        cs.set_entry(Entry::XferRead, read);
        cs.set_entry(Entry::XferWrite, write);
        cs.set_entry(Entry::XferIFetch, ifetch);
        cs.set_opcode_target(Opcode::Ldpctx.to_byte(), ldpctx);
        cs.set_entry(Entry::ExcDispatch, exc);

        Ok(PatchSet {
            stock_read,
            stock_write,
            stock_ifetch,
            stock_ldpctx,
            stock_exc,
            words: cs.len() - before,
        })
    }

    /// Removes the patches by re-pointing all hooks at the stock routines.
    /// (The patch words stay in the WCS, inert — as on real hardware until
    /// the next microcode load.)
    pub fn uninstall(&self, cs: &mut ControlStore) {
        cs.set_entry(Entry::XferRead, self.stock_read);
        cs.set_entry(Entry::XferWrite, self.stock_write);
        cs.set_entry(Entry::XferIFetch, self.stock_ifetch);
        cs.set_opcode_target(Opcode::Ldpctx.to_byte(), self.stock_ldpctx);
        cs.set_entry(Entry::ExcDispatch, self.stock_exc);
    }

    /// Number of micro-words the patch set added — the control-store
    /// footprint the paper reports.
    pub fn words(&self) -> u32 {
        self.words
    }
}

fn p(n: u8) -> MicroReg {
    MicroReg::P(n)
}

fn imm(v: u32) -> MicroReg {
    MicroReg::Imm(v)
}

/// The shared logger: P5 holds the pre-seeded high-word (kind and, for
/// fixed-size hooks, size). Stores the record, advances TRPTR, restores
/// MAR/MDR. On a full buffer: sets FULL, halts for host service, retries.
fn build_logger(cs: &mut ControlStore, style: PatchStyle) {
    let mut ua = MicroAsm::new();
    ua.global("atum.log");
    // Save the live MAR/MDR first — the caller's access happens after us,
    // and the spill prologue below needs MAR for its own stores.
    ua.mov(MicroReg::Mar, p(0));
    ua.mov(MicroReg::Mdr, p(6));
    if style == PatchStyle::Spill {
        // Microtrap entry: with no spare micro-registers, the 8200's
        // patch had to evacuate its working set to memory first. The
        // scratch line lives at TRLIM (the tracer reserves it).
        ua.op(MicroOp::ReadPr {
            num: imm(PrivReg::Trlim.number()),
            dst: p(2),
        });
        for i in 0..8u32 {
            ua.alu_l(AluOp::Add, p(2), imm(4 * i), MicroReg::Mar);
            ua.mov(p((i % 8) as u8), MicroReg::Mdr);
            ua.op(MicroOp::PhysWrite);
        }
        // Microtrap sequencing overhead (pipeline drain, dispatch ROM
        // hops) — modelled as straight-line micro-ops.
        for _ in 0..24 {
            ua.alu_l(AluOp::Add, p(7), imm(0), p(7));
        }
    }
    ua.label("begin");
    // Capacity check: TRPTR + 8 must not exceed TRLIM.
    ua.op(MicroOp::ReadPr {
        num: imm(PrivReg::Trptr.number()),
        dst: p(2),
    });
    ua.op(MicroOp::ReadPr {
        num: imm(PrivReg::Trlim.number()),
        dst: p(3),
    });
    ua.alu_l(AluOp::Add, p(2), imm(8), p(4));
    // Borrow (carry) set when TRLIM < TRPTR+8.
    ua.alu_l(AluOp::Sub, p(3), p(4), p(7));
    ua.jif(MicroCond::UCarry, "full");
    // Low longword: the virtual address (in MAR at hook time, saved in P0).
    ua.mov(p(2), MicroReg::Mar);
    ua.mov(p(0), MicroReg::Mdr);
    ua.op(MicroOp::PhysWrite);
    // High longword: seed | pid | kernel flag.
    ua.op(MicroOp::ReadPr {
        num: imm(PrivReg::Trctl.number()),
        dst: p(1),
    });
    ua.alu_l(AluOp::Lsr, imm(trctl::PID_SHIFT), p(1), p(7));
    ua.alu_l(AluOp::And, p(7), imm(trctl::PID_MASK), p(7));
    ua.alu_l(AluOp::Lsl, imm(meta::PID_SHIFT), p(7), p(7));
    ua.alu_l(AluOp::Or, p(5), p(7), p(5));
    ua.jif(MicroCond::UserMode, "notkernel");
    ua.alu_l(AluOp::Or, p(5), imm(meta::KERNEL_BIT), p(5));
    ua.label("notkernel");
    ua.alu_l(AluOp::Add, p(2), imm(4), MicroReg::Mar);
    ua.mov(p(5), MicroReg::Mdr);
    ua.op(MicroOp::PhysWrite);
    // Advance the pointer and restore the datapath.
    ua.op(MicroOp::WritePr {
        num: imm(PrivReg::Trptr.number()),
        src: p(4),
    });
    ua.mov(p(0), MicroReg::Mar);
    ua.mov(p(6), MicroReg::Mdr);
    if style == PatchStyle::Spill {
        // Microtrap exit: reload the spilled working set from the
        // scratch line (the memory traffic is what the cost model needs;
        // the values themselves are intact in this engine's P registers).
        ua.op(MicroOp::ReadPr {
            num: imm(PrivReg::Trlim.number()),
            dst: p(4),
        });
        for i in 0..8u32 {
            ua.alu_l(AluOp::Add, p(4), imm(4 * i), MicroReg::Mar);
            ua.op(MicroOp::PhysRead);
        }
        // Re-restore the caller's MAR/MDR after the reload sequence.
        ua.mov(p(0), MicroReg::Mar);
        ua.mov(p(6), MicroReg::Mdr);
    }
    ua.ret();
    // Buffer full: flag it, halt for the host, then retry from the top
    // once the console resumes us (TRPTR reset, FULL cleared).
    ua.label("full");
    ua.op(MicroOp::ReadPr {
        num: imm(PrivReg::Trctl.number()),
        dst: p(1),
    });
    ua.alu_l(AluOp::Or, p(1), imm(trctl::FULL), p(1));
    ua.op(MicroOp::WritePr {
        num: imm(PrivReg::Trctl.number()),
        src: p(1),
    });
    ua.op(MicroOp::Halt);
    ua.jmp("begin");
    ua.commit(cs).expect("atum.log");
}

/// A reference hook: enable check, seed the high word (size from the
/// operand-size latch unless fixed), log, tail-jump to the stock routine.
fn build_ref_stub(
    cs: &mut ControlStore,
    name: &str,
    kind: RecordKind,
    fixed_size: Option<u32>,
    stock: u32,
) -> u32 {
    let mut ua = MicroAsm::new();
    ua.global(name);
    ua.op(MicroOp::ReadPr {
        num: imm(PrivReg::Trctl.number()),
        dst: p(1),
    });
    ua.alu_l(AluOp::And, p(1), imm(trctl::ENABLE), p(7));
    ua.jif(MicroCond::UZero, "off");
    match fixed_size {
        Some(sz) => {
            ua.mov(
                imm((kind as u32) << meta::KIND_SHIFT | sz << meta::SIZE_SHIFT),
                p(5),
            );
        }
        None => {
            ua.mov(imm((kind as u32) << meta::KIND_SHIFT), p(5));
            ua.alu_l(
                AluOp::Lsl,
                imm(meta::SIZE_SHIFT),
                MicroReg::OSizeBytes,
                p(7),
            );
            ua.alu_l(AluOp::Or, p(5), p(7), p(5));
        }
    }
    ua.call("atum.log");
    ua.label("off");
    ua.op(MicroOp::Jump(Target::Abs(stock)));
    ua.commit(cs).expect(name)
}

/// The ldpctx wrapper: read the incoming PID from the PCB, stamp it into
/// TRCTL, log a context-switch marker, continue with the stock ldpctx.
fn build_ldpctx(cs: &mut ControlStore, stock: u32) -> u32 {
    let mut ua = MicroAsm::new();
    ua.global("atum.ldpctx");
    ua.op(MicroOp::ReadPr {
        num: imm(PrivReg::Trctl.number()),
        dst: p(1),
    });
    ua.alu_l(AluOp::And, p(1), imm(trctl::ENABLE), p(7));
    ua.jif(MicroCond::UZero, "off");
    // PID from PCB[PID] (physical, like all PCB traffic).
    ua.op(MicroOp::ReadPr {
        num: imm(PrivReg::Pcbb.number()),
        dst: p(2),
    });
    ua.alu_l(
        AluOp::Add,
        p(2),
        imm(atum_ucode::stock::pcb::PID),
        MicroReg::Mar,
    );
    ua.op(MicroOp::PhysRead);
    ua.alu_l(AluOp::And, MicroReg::Mdr, imm(0xFF), p(3));
    // TRCTL ← (TRCTL & ~pidfield) | pid << 8.
    ua.alu_l(AluOp::Lsl, imm(trctl::PID_SHIFT), p(3), p(3));
    ua.alu_l(
        AluOp::BicR,
        imm(trctl::PID_MASK << trctl::PID_SHIFT),
        p(1),
        p(4),
    );
    ua.alu_l(AluOp::Or, p(4), p(3), p(1));
    ua.op(MicroOp::WritePr {
        num: imm(PrivReg::Trctl.number()),
        src: p(1),
    });
    // Marker: address = PCB base, pid freshly stamped.
    ua.mov(p(2), MicroReg::Mar);
    ua.mov(
        imm((RecordKind::CtxSwitch as u32) << meta::KIND_SHIFT),
        p(5),
    );
    ua.call("atum.log");
    ua.label("off");
    ua.op(MicroOp::Jump(Target::Abs(stock)));
    ua.commit(cs).expect("atum.ldpctx")
}

/// The exception-dispatch wrapper: log an interrupt/exception marker
/// carrying the SCB vector, then run the stock entry flow.
fn build_exc(cs: &mut ControlStore, stock: u32) -> u32 {
    let mut ua = MicroAsm::new();
    ua.global("atum.exc");
    ua.op(MicroOp::ReadPr {
        num: imm(PrivReg::Trctl.number()),
        dst: p(1),
    });
    ua.alu_l(AluOp::And, p(1), imm(trctl::ENABLE), p(7));
    ua.jif(MicroCond::UZero, "off");
    ua.mov(MicroReg::ExcVec, MicroReg::Mar);
    ua.mov(
        imm((RecordKind::Interrupt as u32) << meta::KIND_SHIFT),
        p(5),
    );
    ua.call("atum.log");
    ua.label("off");
    ua.op(MicroOp::Jump(Target::Abs(stock)));
    ua.commit(cs).expect("atum.exc")
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_ucode::stock;

    #[test]
    fn install_repoints_all_hooks() {
        let mut cs = stock::build();
        let stock_read = cs.entry(Entry::XferRead);
        let ps = PatchSet::install(&mut cs).unwrap();
        assert_ne!(cs.entry(Entry::XferRead), stock_read);
        assert_eq!(cs.entry(Entry::XferRead), cs.symbol("atum.read").unwrap());
        assert_eq!(cs.entry(Entry::XferWrite), cs.symbol("atum.write").unwrap());
        assert_eq!(
            cs.entry(Entry::XferIFetch),
            cs.symbol("atum.ifetch").unwrap()
        );
        assert_eq!(
            cs.opcode_target(Opcode::Ldpctx.to_byte()),
            cs.symbol("atum.ldpctx").unwrap()
        );
        assert_eq!(cs.entry(Entry::ExcDispatch), cs.symbol("atum.exc").unwrap());
        assert_eq!(ps.words(), cs.patch_words());
        assert!(ps.words() > 30, "patch footprint is non-trivial");
        assert!(ps.words() < 200, "patch footprint stays modest");
    }

    #[test]
    fn double_install_rejected() {
        let mut cs = stock::build();
        let ps = PatchSet::install(&mut cs).unwrap();
        let words = cs.patch_words();
        assert_eq!(
            PatchSet::install(&mut cs).unwrap_err(),
            PatchError::AlreadyInstalled
        );
        // The rejected attempt must not have grown the WCS or moved any
        // hook: patch_words accounting stays exactly one install's worth.
        assert_eq!(cs.patch_words(), words);
        assert_eq!(cs.patch_words(), ps.words());
        assert_eq!(cs.entry(Entry::XferRead), cs.symbol("atum.read").unwrap());
    }

    #[test]
    fn uninstall_restores_stock_targets() {
        let mut cs = stock::build();
        let stock_read = cs.entry(Entry::XferRead);
        let stock_exc = cs.entry(Entry::ExcDispatch);
        let stock_ldpctx = cs.opcode_target(Opcode::Ldpctx.to_byte());
        let ps = PatchSet::install(&mut cs).unwrap();
        ps.uninstall(&mut cs);
        assert_eq!(cs.entry(Entry::XferRead), stock_read);
        assert_eq!(cs.entry(Entry::ExcDispatch), stock_exc);
        assert_eq!(cs.opcode_target(Opcode::Ldpctx.to_byte()), stock_ldpctx);
        // The words remain in the WCS, inert.
        assert_eq!(cs.patch_words(), ps.words());
    }

    #[test]
    fn patches_only_use_patch_scratch_for_state() {
        // The patch may read any register but must only *write* P regs,
        // MAR/MDR (restored) and privileged state.
        let mut cs = stock::build();
        let _ = PatchSet::install(&mut cs).unwrap();
        for addr in cs.stock_len()..cs.len() {
            if let MicroOp::Alu { dst, .. } | MicroOp::Mov { dst, .. } = cs.word(addr) {
                let ok = matches!(dst, MicroReg::P(_) | MicroReg::Mar | MicroReg::Mdr);
                assert!(ok, "patch word {addr} writes {dst}");
            }
        }
    }
}
