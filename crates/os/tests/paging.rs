//! Demand-zero paging tests: the MOSS page-fault handler materialises
//! lazy heap pages, traced fault activity shows up, and the failure
//! edges (out of frames, stray access) behave.

use atum_core::{RecordKind, Tracer};
use atum_machine::{Machine, RunExit};
use atum_os::{BootImage, SYSTEM_VA, USER_HEAP_VA};

fn boot(image: &BootImage) -> Machine {
    let mut m = Machine::new(image.memory_layout());
    image.load_into(&mut m).expect("load");
    m
}

fn kernel_long(image: &BootImage, m: &Machine, sym: &str) -> u32 {
    let pa = image.kernel().symbol(sym).expect("symbol") - SYSTEM_VA;
    u32::from_le_bytes(m.read_phys(pa, 4).unwrap().try_into().unwrap())
}

/// Writes then reads back a pattern across `pages` lazy heap pages.
fn heap_program(pages: u32) -> String {
    format!(
        "start: movl #{USER_HEAP_VA:#x}, r6\n\
         movl #{pages}, r7\n\
         wloop: movl r7, (r6)\n\
         movl r6, 4(r6)\n\
         addl2 #512, r6\n\
         sobgtr r7, wloop\n\
         ; read back and check\n\
         movl #{USER_HEAP_VA:#x}, r6\n\
         movl #{pages}, r7\n\
         rloop: cmpl (r6), r7\n\
         bneq bad\n\
         addl2 #512, r6\n\
         sobgtr r7, rloop\n\
         movl #'k', r0\n chmk #1\n chmk #0\n\
         bad: movl #'x', r0\n chmk #1\n chmk #0\n"
    )
}

#[test]
fn heap_pages_materialise_on_first_touch() {
    let image = BootImage::builder()
        .user_program(&heap_program(8))
        .lazy_heap_pages(16)
        .build()
        .unwrap();
    let mut m = boot(&image);
    assert_eq!(m.run(100_000_000), RunExit::Halted);
    assert_eq!(m.take_console_output(), b"k", "pattern survived paging");
    let pfaults = kernel_long(&image, &m, "pfaults");
    assert_eq!(pfaults, 8, "one demand fault per touched page");
    // The frame pool advanced by exactly 8 frames.
    let freemem = kernel_long(&image, &m, "freemem");
    assert!(freemem > 0);
}

#[test]
fn untouched_heap_pages_cost_nothing() {
    let image = BootImage::builder()
        .user_program("start: chmk #0\n")
        .lazy_heap_pages(32)
        .build()
        .unwrap();
    let mut m = boot(&image);
    assert_eq!(m.run(50_000_000), RunExit::Halted);
    assert_eq!(kernel_long(&image, &m, "pfaults"), 0);
}

#[test]
fn heap_pages_are_zero_filled() {
    let src = format!(
        "start: movl @#{USER_HEAP_VA:#x}, r3\n\
         tstl r3\n bneq bad\n\
         movl #'z', r0\n chmk #1\n chmk #0\n\
         bad: movl #'x', r0\n chmk #1\n chmk #0\n"
    );
    let image = BootImage::builder().user_program(&src).build().unwrap();
    let mut m = boot(&image);
    assert_eq!(m.run(50_000_000), RunExit::Halted);
    assert_eq!(m.take_console_output(), b"z");
}

#[test]
fn stray_access_beyond_heap_still_kills() {
    // Touch past the end of the lazy region: P0LR violation → killed.
    let image = BootImage::builder()
        .user_program(&format!(
            "start: movl #1, @#{:#x}\n movl #'x', r0\n chmk #1\n chmk #0\n",
            USER_HEAP_VA + 4 * 512
        ))
        .lazy_heap_pages(4)
        .build()
        .unwrap();
    let mut m = boot(&image);
    assert_eq!(m.run(50_000_000), RunExit::Halted);
    assert_eq!(m.take_console_output(), b"", "process died before printing");
}

#[test]
fn exhausted_frame_pool_kills_the_toucher() {
    let image = BootImage::builder()
        .user_program(&heap_program(8))
        .user_program("start: movl #'s', r0\n chmk #1\n chmk #0\n")
        .lazy_heap_pages(16)
        .build()
        .unwrap();
    let mut m = boot(&image);
    // Sabotage: empty the frame pool before running.
    let freemem_pa = image.kernel().symbol("freemem").unwrap() - SYSTEM_VA;
    let end = kernel_long(&image, &m, "freemem_end");
    m.write_phys(freemem_pa, &end.to_le_bytes()).unwrap();
    assert_eq!(m.run(100_000_000), RunExit::Halted);
    assert_eq!(
        m.take_console_output(),
        b"s",
        "heap toucher died, the frugal process survived"
    );
}

#[test]
fn traced_paging_shows_fault_markers_and_kernel_work() {
    let image = BootImage::builder()
        .user_program(&heap_program(6))
        .lazy_heap_pages(8)
        .build()
        .unwrap();
    let mut m = boot(&image);
    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_pid(&mut m, 0);
    tracer.set_enabled(&mut m, true);
    assert_eq!(m.run(1_000_000_000), RunExit::Halted);
    assert_eq!(m.take_console_output(), b"k");
    let trace = tracer.extract(&m).unwrap();
    // Translation-not-valid markers carry vector 0x24.
    let tnv = trace
        .iter()
        .filter(|r| r.kind() == RecordKind::Interrupt && r.addr == 0x24)
        .count();
    assert_eq!(tnv, 6, "one marker per demand fault");
    // The PTE writes by the handler are kernel data writes in the trace.
    assert!(trace
        .iter()
        .any(|r| r.kind() == RecordKind::Write && r.is_kernel()));
}

#[test]
fn two_processes_get_separate_heap_frames() {
    let prog = format!(
        "start: chmk #2\n movl r0, @#{USER_HEAP_VA:#x}\n chmk #3\n\
         movl @#{USER_HEAP_VA:#x}, r1\n chmk #2\n\
         cmpl r0, r1\n bneq bad\n\
         addl2 #'0', r0\n chmk #1\n chmk #0\n\
         bad: movl #'x', r0\n chmk #1\n chmk #0\n"
    );
    let image = BootImage::builder()
        .user_program(&prog)
        .user_program(&prog)
        .quantum(50_000_000) // yields drive the interleaving
        .build()
        .unwrap();
    let mut m = boot(&image);
    assert_eq!(m.run(200_000_000), RunExit::Halted);
    let mut out = m.take_console_output();
    out.sort_unstable();
    assert_eq!(
        out, b"12",
        "each process saw its own pid at the same heap VA"
    );
}
