//! MOSS system tests: boot, system calls, preemptive multiprogramming,
//! fault isolation — and the combination with the ATUM tracer that the
//! whole reproduction exists for.

use atum_core::Tracer;
use atum_machine::{Machine, RunExit};
use atum_os::{BootImage, KernelOptions, TbitMode};

fn boot(image: &BootImage) -> Machine {
    let mut m = Machine::new(image.memory_layout());
    image.load_into(&mut m).expect("load");
    m
}

fn run_to_halt(m: &mut Machine, budget: u64) {
    assert_eq!(m.run(budget), RunExit::Halted, "system did not halt");
}

#[test]
fn single_process_exits() {
    let image = BootImage::builder()
        .user_program("start: movl #5, r0\n chmk #0\n")
        .build()
        .unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 10_000_000);
    assert!(m.insns() > 50, "kernel boot + process ran");
}

#[test]
fn console_output_in_order() {
    let image = BootImage::builder()
        .user_program(
            "start: moval msg, r6\n\
             loop: movzbl (r6)+, r0\n beql done\n chmk #1\n brb loop\n\
             done: chmk #0\n\
             msg: .asciz \"MOSS lives\"\n",
        )
        .build()
        .unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 20_000_000);
    assert_eq!(m.take_console_output(), b"MOSS lives");
}

#[test]
fn getpid_returns_distinct_pids() {
    let prog = "start: chmk #2\n addl2 #'0', r0\n chmk #1\n chmk #0\n";
    let image = BootImage::builder()
        .user_program(prog)
        .user_program(prog)
        .user_program(prog)
        .quantum(1_000_000) // effectively no preemption
        .build()
        .unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 50_000_000);
    let mut out = m.take_console_output();
    out.sort_unstable();
    assert_eq!(out, b"123");
}

#[test]
fn yield_round_robins() {
    // Each process prints its pid digit then yields, five times.
    let prog = "start: chmk #2\n addl2 #'0', r0\n movl #5, r7\n\
                loop: chmk #1\n chmk #3\n sobgtr r7, loop\n chmk #0\n";
    let image = BootImage::builder()
        .user_program(prog)
        .user_program(prog)
        .quantum(100_000_000)
        .build()
        .unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 100_000_000);
    let out = String::from_utf8(m.take_console_output()).unwrap();
    assert_eq!(out, "1212121212", "strict alternation under yield");
}

#[test]
fn preemption_interleaves_compute_bound_processes() {
    // Two CPU-bound loops that each print a marker per outer iteration;
    // with a small quantum both make progress before either finishes.
    let prog_a = "start: movl #40, r6\n\
                  outer: movl #300, r7\n\
                  inner: sobgtr r7, inner\n\
                  movl #'a', r0\n chmk #1\n sobgtr r6, outer\n chmk #0\n";
    let prog_b = prog_a.replace("'a'", "'b'");
    let image = BootImage::builder()
        .user_program(prog_a)
        .user_program(&prog_b)
        .quantum(15_000)
        .build()
        .unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 400_000_000);
    let out = String::from_utf8(m.take_console_output()).unwrap();
    assert_eq!(out.matches('a').count(), 40);
    assert_eq!(out.matches('b').count(), 40);
    // Interleaved: a 'b' appears before the last 'a'.
    let first_b = out.find('b').unwrap();
    let last_a = out.rfind('a').unwrap();
    assert!(first_b < last_a, "no interleaving observed: {out}");
    assert!(m.counts().interrupts > 10, "timer preemptions happened");
}

#[test]
fn faulting_process_killed_others_survive() {
    let bad = "start: movl @#0x30000000, r0\n chmk #0\n"; // far outside P0 map
    let good = "start: movl #'g', r0\n chmk #1\n chmk #0\n";
    let image = BootImage::builder()
        .user_program(bad)
        .user_program(good)
        .build()
        .unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 50_000_000);
    assert_eq!(m.take_console_output(), b"g");
}

#[test]
fn divide_fault_kills_process() {
    let bad = "start: clrl r1\n divl2 r1, r2\n movl #'x', r0\n chmk #1\n chmk #0\n";
    let good = "start: movl #'k', r0\n chmk #1\n chmk #0\n";
    let image = BootImage::builder()
        .user_program(bad)
        .user_program(good)
        .build()
        .unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 50_000_000);
    assert_eq!(
        m.take_console_output(),
        b"k",
        "bad process died before printing"
    );
}

#[test]
fn null_dereference_faults() {
    let bad = "start: movl @#0, r0\n movl #'x', r0\n chmk #1\n chmk #0\n";
    let image = BootImage::builder().user_program(bad).build().unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 50_000_000);
    assert_eq!(m.take_console_output(), b"", "page 0 is a null guard");
}

#[test]
fn traced_mix_captures_os_and_all_pids() {
    let prog = "start: movl #30, r6\n\
                outer: movl #100, r7\n\
                inner: incl counter\n sobgtr r7, inner\n\
                chmk #3\n sobgtr r6, outer\n chmk #0\n\
                counter: .long 0";
    let image = BootImage::builder()
        .user_program(prog)
        .user_program(prog)
        .user_program(prog)
        .quantum(10_000)
        .build()
        .unwrap();
    let mut m = boot(&image);
    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_pid(&mut m, 0); // kernel boot runs as pid 0
    tracer.set_enabled(&mut m, true);
    run_to_halt(&mut m, 1_000_000_000);

    let trace = tracer.extract(&m).unwrap();
    let stats = trace.stats();

    // The headline completeness claims:
    assert!(stats.kernel_refs > 0, "OS references captured");
    assert!(stats.user_refs > 0, "user references captured");
    assert!(
        stats.os_fraction() > 0.05,
        "OS is a visible fraction: {:.3}",
        stats.os_fraction()
    );
    assert!(stats.ctx_switches >= 3, "every dispatch produced a marker");
    assert!(stats.interrupts > 0, "trap/interrupt markers present");
    // All three pids (plus kernel-boot pid 0) appear.
    for pid in [1u8, 2, 3] {
        assert!(
            stats.refs_by_pid.contains_key(&pid),
            "pid {pid} missing from trace"
        );
    }
    // User-only view loses every kernel reference (what pre-ATUM tracers
    // missed) but keeps all user ones.
    let user = trace.user_only();
    assert_eq!(user.stats().kernel_refs, 0);
    assert_eq!(user.stats().user_refs, stats.user_refs);

    // Consistency with the hardware counters.
    let c = m.counts();
    assert_eq!(stats.ifetch, c.ifetch);
    assert_eq!(stats.reads, c.data_reads);
    assert_eq!(stats.writes, c.data_writes);
}

#[test]
fn tbit_kernel_logs_trapped_pcs() {
    let image = BootImage::builder()
        .user_program("start: movl #10, r6\nloop: sobgtr r6, loop\n chmk #0\n")
        .kernel_options(KernelOptions {
            tbit: TbitMode::LogPc,
            swtrace_bytes: 8192,
        })
        .trace_trap_all(true)
        .build()
        .unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 100_000_000);
    // Read the software-trace count out of kernel memory.
    let count_va = image.kernel().symbol("swt_count").unwrap();
    let count_pa = count_va - atum_os::SYSTEM_VA;
    let bytes = m.read_phys(count_pa, 4).unwrap();
    let count = u32::from_le_bytes(bytes.try_into().unwrap());
    assert!(
        count >= 11,
        "one trace trap per user instruction, got {count}"
    );
}

#[test]
fn unknown_syscall_kills_the_caller() {
    let bad = "start: chmk #99\n movl #'x', r0\n chmk #1\n chmk #0\n";
    let good = "start: movl #'o', r0\n chmk #1\n chmk #0\n";
    let image = BootImage::builder()
        .user_program(bad)
        .user_program(good)
        .build()
        .unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 50_000_000);
    assert_eq!(m.take_console_output(), b"o");
}

#[test]
fn user_stack_supports_deep_recursion() {
    // fib(14) via calls needs a few KiB of user stack — exercise the P1
    // mapping depth under MOSS.
    let w = atum_workloads::fib_recursive("f", 14);
    let image = BootImage::builder()
        .user_program(&w.source)
        .build()
        .unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 2_000_000_000);
    assert_eq!(
        String::from_utf8(m.take_console_output()).unwrap(),
        w.expected_output
    );
}

#[test]
fn sixteen_processes_round_robin() {
    // The full process table: every slot runs and exits.
    let mut b = BootImage::builder().quantum(10_000);
    for _ in 0..atum_os::MAX_PROCS {
        b = b.user_program("start: chmk #2\n addl2 #'a', r0\n chmk #1\n chmk #0\n");
    }
    let image = b.build().unwrap();
    let mut m = boot(&image);
    run_to_halt(&mut m, 1_000_000_000);
    let mut out = m.take_console_output();
    out.sort_unstable();
    let want: Vec<u8> = (1..=16u8).map(|p| b'a' + p).collect();
    assert_eq!(out, want, "all sixteen pids reported in");
}
