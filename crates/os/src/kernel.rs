//! The MOSS kernel source (SVX assembly), generated with options.
//!
//! The kernel is linked at [`KERNEL_BASE_VA`] in system space and runs
//! entirely through the machine's microcode — every reference it makes is
//! visible to an attached ATUM tracer. The host pokes `nproc`, `quantum`
//! and the `pcbtab` entries after assembly (see [`crate::BootImage`]).
//!
//! [`KERNEL_BASE_VA`]: crate::KERNEL_BASE_VA

use std::fmt::Write as _;

/// What the T-bit (trace-trap) handler does — the hook the trap-driven
/// software-tracer baseline builds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TbitMode {
    /// Ignore trace traps (plain `rei`).
    #[default]
    Ignore,
    /// Log the trapped PC into the kernel's software-trace buffer — the
    /// classic pre-ATUM trap-per-instruction tracer. Slow by design.
    LogPc,
}

/// Kernel build options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOptions {
    /// T-bit handler behaviour.
    pub tbit: TbitMode,
    /// Size in bytes of the in-kernel software-trace buffer (only used by
    /// [`TbitMode::LogPc`]).
    pub swtrace_bytes: u32,
}

impl Default for KernelOptions {
    fn default() -> KernelOptions {
        KernelOptions {
            tbit: TbitMode::default(),
            swtrace_bytes: 64 * 1024,
        }
    }
}

/// Generates the kernel assembly source for the given options.
pub fn source(opts: &KernelOptions) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        r#"; ── MOSS: the micro operating system ──────────────────────────────
; Linked in system space; assembled by atum-asm; executed by the SVX
; microcode. The host boot-loader pokes nproc/quantum/pcbtab.

SCB     = 0x80000000        ; system-space view of the SCB page (phys 0)
PCBB    = 16                ; privileged register numbers
IPL     = 18
ICCS    = 24
ICR     = 25
TXDB    = 32

        .org {base:#x}

; ── Boot ──────────────────────────────────────────────────────────────
kstart:
        ; exception vectors
        movl    #vec_fatal,  @#SCB+0x04   ; machine check
        movl    #vec_fatal,  @#SCB+0x08   ; kernel stack invalid
        movl    #vec_kill,   @#SCB+0x10   ; reserved instruction
        movl    #vec_kill,   @#SCB+0x14   ; reserved operand
        movl    #vec_kill,   @#SCB+0x18   ; reserved addressing mode
        movl    #vec_killp,  @#SCB+0x20   ; access violation (has param)
        movl    #vec_pgflt,  @#SCB+0x24   ; translation not valid (param)
        movl    #vec_tbit,   @#SCB+0x28   ; trace trap
        movl    #vec_kill,   @#SCB+0x2C   ; breakpoint
        movl    #vec_killp,  @#SCB+0x30   ; arithmetic (param)
        movl    #vec_chmk,   @#SCB+0x40   ; system call
        movl    #vec_timer,  @#SCB+0xC0   ; interval timer

        ; state[i] = 1 for each loaded process
        clrl    r1
1:      moval   state, r2
        addl2   r1, r2
        movb    #1, (r2)
        aoblss  nproc, r1, 1b

        ; start the clock
        movl    quantum, r1
        mtpr    r1, #ICR
        mtpr    #0x41, #ICCS              ; run + interrupt enable

        ; dispatch process 0 (we are at boot IPL 31; the process PSL in
        ; its PCB carries IPL 0, so interrupts open when it starts)
        clrl    r0
        brw     dispatch

; ── Scheduler ─────────────────────────────────────────────────────────
; pick_next: r0 ← index of next runnable process after `cur` (round
; robin, may return cur itself), or -1 if none. Clobbers r1-r4.
pick_next:
        movl    nproc, r2
        movl    cur, r1
        movl    r2, r3
1:      incl    r1
        cmpl    r1, r2
        blss    2f
        clrl    r1
2:      moval   state, r4
        addl2   r1, r4
        tstb    (r4)
        bneq    3f
        sobgtr  r3, 1b
        movl    #-1, r0
        rsb
3:      movl    r1, r0
        rsb

; dispatch: switch to process r0 (stack must hold nothing the new
; context needs — ldpctx pushes its own PSL/PC frame for rei).
dispatch:
        movl    r0, cur
        moval   pcbtab, r1
        ashl    #2, r0, r2
        addl2   r2, r1
        mtpr    (r1), #PCBB
        ldpctx
        rei

; ── Interval timer: preemptive round robin ────────────────────────────
vec_timer:
        svpctx                    ; frame (PC,PSL) folds into the PCB
        bsbw    pick_next
        brw     dispatch          ; current is runnable, so r0 >= 0

; ── System calls ──────────────────────────────────────────────────────
; frame on entry: [code][PC][PSL], user registers live.
vec_chmk:
        mtpr    #31, #IPL         ; no preemption while switching
        pushr   #0b0110           ; save r1, r2
        movl    8(sp), r1         ; the chmk code
        tstl    r1
        beql    sys_exit
        cmpl    r1, #1
        beql    sys_putc
        cmpl    r1, #2
        beql    sys_getpid
        cmpl    r1, #3
        beql    sys_yield
        brb     sys_exit          ; unknown syscall kills the process

sys_putc:
        mtpr    r0, #TXDB
        brb     sys_ret
sys_getpid:
        movl    cur, r0
        incl    r0                ; pid = index + 1
sys_ret:
        popr    #0b0110
        addl2   #4, sp            ; drop the code
        rei

sys_yield:
        popr    #0b0110
        addl2   #4, sp            ; drop the code → frame is (PC,PSL)
        svpctx
        bsbw    pick_next
        brw     dispatch

sys_exit:
        popr    #0b0110
        addl2   #12, sp           ; drop the whole frame
reap:
        moval   state, r1
        addl2   cur, r1
        clrb    (r1)              ; mark dead
        bsbw    pick_next
        cmpl    r0, #-1
        bneq    dispatch
        halt                      ; nothing left to run

; ── Page fault: demand-zero paging for marked P0 pages ────────────────
; A PTE with the demand bit (bit 25) set and valid clear is a lazily
; allocated page: take a frame from the free list, validate the PTE,
; flush the stale TB entry, and restart the instruction.
vec_pgflt:
        mtpr    #31, #IPL
        pushr   #0b111110         ; save r1-r5
        movl    20(sp), r1        ; faulting VA (above the saved regs)
        ; only P0 can be demand-paged
        ashl    #-30, r1, r2
        tstl    r2
        bneq    pf_kill
        ; vpn, bounds-checked against P0LR
        bicl3   #0xC0000000, r1, r2
        ashl    #-9, r2, r2
        mfpr    #9, r3            ; P0LR
        cmpl    r2, r3
        bcc     pf_kill           ; vpn >= length
        ; PTE address (P0BR is physical; view it through system space)
        mfpr    #8, r3            ; P0BR
        ashl    #2, r2, r4
        addl2   r4, r3
        addl2   #0x80000000, r3
        movl    (r3), r4
        bitl    #0x02000000, r4   ; demand-zero marker?
        beql    pf_kill
        ; grab a frame
        movl    freemem, r5
        cmpl    r5, freemem_end
        bcc     pf_kill           ; out of physical memory
        addl3   #0x200, r5, r2
        movl    r2, freemem
        ; PTE ← valid | user-writable | pfn
        ashl    #-9, r5, r5
        bisl3   #0xE0000000, r5, r4
        movl    r4, (r3)
        mtpr    r1, #58           ; TBIS the faulting VA
        incl    pfaults
        popr    #0b111110
        addl2   #4, sp            ; drop the fault parameter
        rei                       ; restart the faulting instruction
pf_kill:
        popr    #0b111110
        addl2   #4, sp
        brw     vec_kill_common

; ── Faults: kill the offending process ────────────────────────────────
vec_killp:
        mtpr    #31, #IPL
        addl2   #4, sp            ; drop the fault parameter
        brb     vec_kill_common
vec_kill:
        mtpr    #31, #IPL
vec_kill_common:
        addl2   #8, sp            ; drop PC/PSL
        brw     reap

vec_fatal:
        halt

"#,
        base = crate::KERNEL_BASE_VA,
    );

    match opts.tbit {
        TbitMode::Ignore => {
            s.push_str(
                "; ── Trace trap: ignored in the stock kernel ─────────────────\n\
                 vec_tbit:\n        rei\n\n",
            );
        }
        TbitMode::LogPc => {
            // The buffer itself lives outside the kernel image (the boot
            // loader allocates it and pokes swt_base/swt_ptr/swt_limit),
            // so large buffers cannot collide with the physical layout.
            s.push_str(
                r#"; ── Trace trap: the pre-ATUM software tracer ─────────────────
; Logs the next PC of the traced process into the loader-provided
; buffer; a real trap tracer would also decode operands, costing more.
vec_tbit:
        pushr   #0b0110
        movl    swt_ptr, r1
        cmpl    r1, swt_limit
        bcc     1f                ; buffer full: drop (unsigned >=)
        movl    8(sp), r2         ; trapped PC from the frame
        movl    r2, (r1)+
        movl    r1, swt_ptr
        incl    swt_count
1:      popr    #0b0110
        rei

        .align  4
swt_base:  .long 0
swt_ptr:   .long 0
swt_limit: .long 0
swt_count: .long 0
"#,
            );
        }
    }

    s.push_str(
        r#"
; ── Kernel data (nproc/quantum/pcbtab poked by the boot loader) ───────
        .align  4
cur:     .long 0
nproc:   .long 0
quantum: .long 20000
freemem:     .long 0          ; next free frame (poked by the loader)
freemem_end: .long 0          ; frame-pool limit (poked by the loader)
pfaults:     .long 0          ; demand-zero faults served
pcbtab:  .space 64            ; up to 16 PCB physical addresses
state:   .space 16
        .align  4
        .space  2048          ; boot kernel stack
kstack_top:
"#,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_kernel_assembles() {
        let img = atum_asm::assemble(&source(&KernelOptions::default()))
            .unwrap_or_else(|e| panic!("kernel does not assemble: {e}"));
        for sym in [
            "kstart",
            "pick_next",
            "dispatch",
            "vec_timer",
            "vec_chmk",
            "vec_tbit",
            "vec_pgflt",
            "nproc",
            "quantum",
            "pcbtab",
            "state",
            "kstack_top",
            "freemem",
            "freemem_end",
            "pfaults",
        ] {
            assert!(img.symbol(sym).is_some(), "missing {sym}");
        }
        assert_eq!(img.base(), crate::KERNEL_BASE_VA);
        assert!(img.byte_len() < 16 * 1024, "kernel stays small");
    }

    #[test]
    fn tbit_kernel_assembles_with_pokeable_buffer_vars() {
        let img = atum_asm::assemble(&source(&KernelOptions {
            tbit: TbitMode::LogPc,
            swtrace_bytes: 4096,
        }))
        .unwrap();
        for sym in ["swt_base", "swt_ptr", "swt_limit", "swt_count"] {
            assert!(img.symbol(sym).is_some(), "missing {sym}");
        }
    }

    #[test]
    fn kernel_symbols_live_in_system_space() {
        let img = atum_asm::assemble(&source(&KernelOptions::default())).unwrap();
        for (name, addr) in img.symbols() {
            if name.starts_with(".L") {
                continue;
            }
            assert!(
                *addr >= crate::SYSTEM_VA || *addr < 0x100,
                "{name} at {addr:#x} outside system space"
            );
        }
    }
}
