//! # atum-os — MOSS, the micro operating system
//!
//! A small multiprogramming kernel **written in SVX assembly and executed
//! on the simulated CPU**. This is the load-bearing substrate for the
//! reproduction's completeness claims: operating-system references appear
//! in ATUM traces only because kernel code — scheduler, system calls,
//! interrupt handlers, context switches — actually runs on the traced
//! machine.
//!
//! MOSS provides:
//!
//! * boot: SCB vector setup, process-table initialisation, interval-timer
//!   programming, dispatch of the first process;
//! * preemptive round-robin scheduling off the interval timer, using
//!   `svpctx`/`ldpctx` (so the ATUM context-switch patch sees every
//!   switch);
//! * system calls via `chmk`: `exit`(0), `putc`(1, byte in R0),
//!   `getpid`(2, result in R0), `yield`(3);
//! * **demand-zero paging**: pages at [`USER_HEAP_VA`] are marked lazy by
//!   the loader and materialised by the kernel's translation-not-valid
//!   handler on first touch — fault-driven kernel activity in the traces;
//! * fault handling: a faulting process (outside the lazy heap) is killed
//!   and the next one scheduled; the machine halts when no process
//!   remains.
//!
//! The host side ([`BootImage`]) plays the console/boot-loader role the
//! VAX console played: it assembles the kernel and user programs, builds
//! page tables and PCBs in physical memory, pokes the kernel's process
//! table, and sets the boot registers. Everything after that is SVX code.
//!
//! ## Example
//!
//! ```
//! use atum_machine::Machine;
//!
//! let image = atum_os::BootImage::builder()
//!     .user_program("start: movl #'h', r0\n chmk #1\n movl #'i', r0\n chmk #1\n chmk #0\n")
//!     .build()
//!     .unwrap();
//! let mut m = Machine::new(image.memory_layout());
//! image.load_into(&mut m).unwrap();
//! m.run_until_halt(10_000_000).unwrap();
//! assert_eq!(m.take_console_output(), b"hi");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
mod loader;

pub use kernel::{KernelOptions, TbitMode};
pub use loader::{BootError, BootImage, BootImageBuilder, LoadedProcess};

/// System-space virtual address of physical 0 (identity system mapping).
pub const SYSTEM_VA: u32 = 0x8000_0000;
/// Virtual address the kernel image is linked at.
pub const KERNEL_BASE_VA: u32 = 0x8000_2000;
/// Lowest user virtual address (page 0 is a null guard).
pub const USER_BASE_VA: u32 = 0x0000_0200;
/// Initial user stack pointer (top of the P1 stack mapping).
pub const USER_STACK_TOP: u32 = 0x4001_0000;
/// Number of 512-byte pages in each user stack.
pub const USER_STACK_PAGES: u32 = 16;
/// Base virtual address of the demand-zero heap (P0): pages here are
/// materialised by the kernel's page-fault handler on first touch.
pub const USER_HEAP_VA: u32 = 0x0010_0000;
/// Software PTE bit marking a demand-zero (lazily allocated) page.
pub const PTE_DEMAND_ZERO: u32 = 1 << 25;
/// Maximum number of processes.
pub const MAX_PROCS: usize = 16;

/// MOSS system-call numbers.
pub mod syscalls {
    /// Terminate the calling process.
    pub const EXIT: u16 = 0;
    /// Write the low byte of R0 to the console.
    pub const PUTC: u16 = 1;
    /// Return the caller's pid in R0.
    pub const GETPID: u16 = 2;
    /// Yield the CPU to the next runnable process.
    pub const YIELD: u16 = 3;
}
