//! The boot loader: builds a complete bootable system in physical memory.
//!
//! Plays the role of the VAX console + VMB: assembles the kernel and the
//! user programs, lays out page tables, PCBs, stacks and process images
//! in physical memory, pokes the kernel's process table, and leaves the
//! machine ready to run at `kstart`. Everything it does is data placement
//! — no behaviour is implemented host-side.
//!
//! Physical layout:
//!
//! ```text
//! 0x0000_0000  SCB page (vectors written by the kernel at boot)
//! 0x0000_2000  kernel image (linked at 0x8000_2000)
//! 0x0004_0000  system page table (identity map of visible memory)
//! 0x0006_0000  bump allocator: process frames, page tables, stacks, PCBs
//! ```

use crate::kernel::{self, KernelOptions};
use crate::{KERNEL_BASE_VA, MAX_PROCS, SYSTEM_VA, USER_BASE_VA, USER_STACK_PAGES, USER_STACK_TOP};
use atum_arch::{CpuMode, PageProt, PrivReg, Psl, Pte, PAGE_SIZE};
use atum_asm::Image;
use atum_machine::{Machine, MemLayout};
use atum_ucode::stock::pcb;
use std::fmt;

const SCB_PHYS: u32 = 0;
const KERNEL_PHYS: u32 = KERNEL_BASE_VA - SYSTEM_VA;
const SYS_PT_PHYS: u32 = 0x0004_0000;
const ALLOC_BASE: u32 = 0x0006_0000;

/// Errors building or loading a boot image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootError {
    /// A user program failed to assemble.
    Asm(String),
    /// The kernel failed to assemble (a bug in this crate).
    Kernel(String),
    /// Too many processes.
    TooManyProcesses,
    /// A user image falls outside its P0 budget.
    ImageOutOfRange(String),
    /// Physical memory exhausted during layout.
    OutOfMemory,
    /// A write to machine memory failed during load.
    Load(String),
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::Asm(e) => write!(f, "user program: {e}"),
            BootError::Kernel(e) => write!(f, "kernel: {e}"),
            BootError::TooManyProcesses => write!(f, "more than {MAX_PROCS} processes"),
            BootError::ImageOutOfRange(e) => write!(f, "image out of range: {e}"),
            BootError::OutOfMemory => f.write_str("physical memory exhausted"),
            BootError::Load(e) => write!(f, "load failed: {e}"),
        }
    }
}

impl std::error::Error for BootError {}

/// One loaded process's layout, reported for inspection and tests.
#[derive(Debug, Clone)]
pub struct LoadedProcess {
    /// Process id (index + 1).
    pub pid: u8,
    /// Entry point VA.
    pub entry: u32,
    /// Physical address of the PCB.
    pub pcb_phys: u32,
    /// Pages of code/data mapped in P0.
    pub p0_pages: u32,
    /// Assembled image (symbols available to tests).
    pub image: Image,
}

/// A fully laid-out bootable system.
#[derive(Debug)]
pub struct BootImage {
    layout: MemLayout,
    kernel: Image,
    writes: Vec<(u32, Vec<u8>)>,
    processes: Vec<LoadedProcess>,
    boot_sp: u32,
    boot_pc: u32,
}

/// Builder for [`BootImage`].
#[derive(Debug)]
pub struct BootImageBuilder {
    programs: Vec<String>,
    layout: MemLayout,
    kernel_opts: KernelOptions,
    quantum: u32,
    extra_bss_pages: u32,
    lazy_heap_pages: u32,
    tbit_all: bool,
}

impl BootImage {
    /// Starts a builder.
    pub fn builder() -> BootImageBuilder {
        BootImageBuilder {
            programs: Vec::new(),
            layout: MemLayout::small(),
            kernel_opts: KernelOptions::default(),
            quantum: 20_000,
            extra_bss_pages: 4,
            lazy_heap_pages: 32,
            tbit_all: false,
        }
    }

    /// The memory layout the machine must be built with.
    pub fn memory_layout(&self) -> MemLayout {
        self.layout
    }

    /// The kernel image (symbol access for tests).
    pub fn kernel(&self) -> &Image {
        &self.kernel
    }

    /// The loaded processes.
    pub fn processes(&self) -> &[LoadedProcess] {
        &self.processes
    }

    /// Writes the image into a machine and sets the boot registers.
    ///
    /// # Errors
    ///
    /// [`BootError::Load`] if the machine is smaller than the layout the
    /// image was built for.
    pub fn load_into(&self, m: &mut Machine) -> Result<(), BootError> {
        for (pa, bytes) in &self.writes {
            m.write_phys(*pa, bytes)
                .map_err(|e| BootError::Load(e.to_string()))?;
        }
        m.write_prv(PrivReg::Scbb, SCB_PHYS);
        m.write_prv(PrivReg::Sbr, SYS_PT_PHYS);
        m.write_prv(PrivReg::Slr, self.layout.os_visible_bytes / PAGE_SIZE);
        m.write_prv(PrivReg::Mapen, 1);
        m.set_gpr(14, self.boot_sp);
        let mut psl = Psl::new(); // kernel, IPL 31
        psl.set_ipl(31);
        m.set_psl(psl);
        m.set_pc(self.boot_pc);
        Ok(())
    }
}

/// Bump allocator over the physical region above the fixed layout.
struct Bump {
    next: u32,
    limit: u32,
}

impl Bump {
    fn alloc_pages(&mut self, pages: u32) -> Result<u32, BootError> {
        let bytes = pages * PAGE_SIZE;
        if self.next + bytes > self.limit {
            return Err(BootError::OutOfMemory);
        }
        let at = self.next;
        self.next += bytes;
        Ok(at)
    }
}

impl BootImageBuilder {
    /// Adds a user program (SVX assembly; loaded at [`USER_BASE_VA`] and
    /// entered at its `start` symbol, or the image base if absent).
    pub fn user_program(mut self, source: &str) -> BootImageBuilder {
        self.programs.push(source.to_string());
        self
    }

    /// Adds several user programs.
    pub fn user_programs<I, S>(mut self, sources: I) -> BootImageBuilder
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for s in sources {
            self.programs.push(s.as_ref().to_string());
        }
        self
    }

    /// Overrides the physical memory layout (default [`MemLayout::small`]).
    pub fn memory_layout(mut self, layout: MemLayout) -> BootImageBuilder {
        self.layout = layout;
        self
    }

    /// Sets the scheduling quantum in microcycles (default 20 000).
    pub fn quantum(mut self, cycles: u32) -> BootImageBuilder {
        self.quantum = cycles;
        self
    }

    /// Sets kernel build options (T-bit handler behaviour).
    pub fn kernel_options(mut self, opts: KernelOptions) -> BootImageBuilder {
        self.kernel_opts = opts;
        self
    }

    /// Extra zeroed pages mapped after each user image (default 4).
    pub fn extra_bss_pages(mut self, pages: u32) -> BootImageBuilder {
        self.extra_bss_pages = pages;
        self
    }

    /// Demand-zero heap pages per process at [`crate::USER_HEAP_VA`]
    /// (default 32); 0 disables the lazy heap.
    pub fn lazy_heap_pages(mut self, pages: u32) -> BootImageBuilder {
        self.lazy_heap_pages = pages;
        self
    }

    /// Sets the T bit in every process PSL (used by the trap-driven
    /// software-tracer baseline).
    pub fn trace_trap_all(mut self, on: bool) -> BootImageBuilder {
        self.tbit_all = on;
        self
    }

    /// Builds the boot image.
    ///
    /// # Errors
    ///
    /// Any [`BootError`].
    pub fn build(self) -> Result<BootImage, BootError> {
        if self.programs.len() > MAX_PROCS {
            return Err(BootError::TooManyProcesses);
        }
        let kernel_src = kernel::source(&self.kernel_opts);
        let kernel =
            atum_asm::assemble(&kernel_src).map_err(|e| BootError::Kernel(e.to_string()))?;
        let mut writes: Vec<(u32, Vec<u8>)> = Vec::new();

        // Kernel image bytes, with nproc/quantum poked in place.
        let mut kbytes = kernel.flatten();
        let poke = |bytes: &mut Vec<u8>, img: &Image, sym: &str, value: u32| {
            let off = (img.symbol(sym).expect("kernel symbol") - img.base()) as usize;
            bytes[off..off + 4].copy_from_slice(&value.to_le_bytes());
        };
        poke(&mut kbytes, &kernel, "nproc", self.programs.len() as u32);
        poke(&mut kbytes, &kernel, "quantum", self.quantum);

        // System page table: identity map of all OS-visible memory.
        let visible_pages = self.layout.os_visible_bytes / PAGE_SIZE;
        let mut sys_pt = Vec::with_capacity((visible_pages * 4) as usize);
        for pfn in 0..visible_pages {
            sys_pt.extend_from_slice(&Pte::new(pfn, PageProt::KernelRw).0.to_le_bytes());
        }
        assert!(
            SYS_PT_PHYS + visible_pages * 4 <= ALLOC_BASE,
            "system page table overflows its slot"
        );
        writes.push((SYS_PT_PHYS, sys_pt));

        let mut bump = Bump {
            next: ALLOC_BASE,
            limit: self.layout.os_visible_bytes,
        };
        let mut processes = Vec::new();

        for (i, src) in self.programs.iter().enumerate() {
            let full = format!(".org {USER_BASE_VA:#x}\n{src}\n");
            let image = atum_asm::assemble(&full).map_err(|e| BootError::Asm(e.to_string()))?;
            if image.base() < USER_BASE_VA || image.end() > 0x0040_0000 {
                return Err(BootError::ImageOutOfRange(format!(
                    "process {i} occupies {:#x}..{:#x}",
                    image.base(),
                    image.end()
                )));
            }
            let first_page = image.base() >> 9;
            let last_page = (image.end().max(image.base() + 1) - 1) >> 9;
            let eager_pages = last_page + 1 + self.extra_bss_pages;
            let heap_vpn = crate::USER_HEAP_VA >> 9;
            let p0_pages = if self.lazy_heap_pages > 0 {
                assert!(
                    eager_pages <= heap_vpn,
                    "image too large: overlaps the heap region"
                );
                heap_vpn + self.lazy_heap_pages
            } else {
                eager_pages
            };

            // Frames for the eagerly mapped range; page 0 stays unmapped
            // as a null guard, and heap pages have no frames yet.
            let frames = bump.alloc_pages(eager_pages - 1)?;
            let flat = image.flatten();
            let img_off = image.base() - first_page * PAGE_SIZE;
            // Physical address of page 1 is `frames`; page k (k>=1) is at
            // frames + (k-1)*PAGE.
            let image_phys = frames + (first_page - 1) * PAGE_SIZE + img_off;
            writes.push((image_phys, flat));

            // P0 page table.
            let p0_pt = bump.alloc_pages(((p0_pages * 4).div_ceil(PAGE_SIZE)).max(1))?;
            let mut table = vec![0u8; (p0_pages * 4) as usize];
            for vpn in 1..eager_pages {
                let pfn = (frames >> 9) + (vpn - 1);
                table[(vpn * 4) as usize..(vpn * 4 + 4) as usize]
                    .copy_from_slice(&Pte::new(pfn, PageProt::AllRw).0.to_le_bytes());
            }
            // Lazy heap pages: invalid, marked demand-zero for the kernel.
            if self.lazy_heap_pages > 0 {
                for k in 0..self.lazy_heap_pages {
                    let vpn = heap_vpn + k;
                    table[(vpn * 4) as usize..(vpn * 4 + 4) as usize]
                        .copy_from_slice(&crate::PTE_DEMAND_ZERO.to_le_bytes());
                }
            }
            writes.push((p0_pt, table));

            // P1 stack: the top USER_STACK_PAGES pages below USER_STACK_TOP.
            let stack_frames = bump.alloc_pages(USER_STACK_PAGES)?;
            let p1_entries = (USER_STACK_TOP - 0x4000_0000) / PAGE_SIZE;
            let p1_pt = bump.alloc_pages(((p1_entries * 4).div_ceil(PAGE_SIZE)).max(1))?;
            let mut p1_table = vec![0u8; (p1_entries * 4) as usize];
            for k in 0..USER_STACK_PAGES {
                let vpn = p1_entries - USER_STACK_PAGES + k;
                let pfn = (stack_frames >> 9) + k;
                p1_table[(vpn * 4) as usize..(vpn * 4 + 4) as usize]
                    .copy_from_slice(&Pte::new(pfn, PageProt::AllRw).0.to_le_bytes());
            }
            writes.push((p1_pt, p1_table));

            // Kernel stack (8 pages) and the PCB.
            let kstack = bump.alloc_pages(8)?;
            let ksp_va = SYSTEM_VA + kstack + 8 * PAGE_SIZE;
            let pcb_phys = bump.alloc_pages(1)?;
            let entry = image.symbol("start").unwrap_or_else(|| image.base());
            let mut user_psl = Psl::new();
            user_psl.set_ipl(0);
            user_psl.set_mode(CpuMode::User);
            user_psl.set_prev_mode(CpuMode::User);
            if self.tbit_all {
                user_psl.set_t(true);
            }
            let mut pcb_bytes = vec![0u8; pcb::SIZE as usize];
            let put = |b: &mut Vec<u8>, off: u32, v: u32| {
                b[off as usize..off as usize + 4].copy_from_slice(&v.to_le_bytes());
            };
            put(&mut pcb_bytes, pcb::KSP, ksp_va);
            put(&mut pcb_bytes, pcb::USP, USER_STACK_TOP);
            put(&mut pcb_bytes, pcb::PC, entry);
            put(&mut pcb_bytes, pcb::PSL, user_psl.bits());
            put(&mut pcb_bytes, pcb::P0BR, p0_pt);
            put(&mut pcb_bytes, pcb::P0LR, p0_pages);
            put(&mut pcb_bytes, pcb::P1BR, p1_pt);
            put(&mut pcb_bytes, pcb::P1LR, p1_entries);
            put(&mut pcb_bytes, pcb::PID, i as u32 + 1);
            writes.push((pcb_phys, pcb_bytes));

            // Poke the PCB address into the kernel's table.
            let pcbtab_off =
                (kernel.symbol("pcbtab").expect("pcbtab") - kernel.base()) as usize + i * 4;
            kbytes[pcbtab_off..pcbtab_off + 4].copy_from_slice(&pcb_phys.to_le_bytes());

            processes.push(LoadedProcess {
                pid: i as u8 + 1,
                entry,
                pcb_phys,
                p0_pages,
                image,
            });
        }

        // The software-trace buffer for the T-bit kernel, outside the image.
        if self.kernel_opts.tbit == crate::kernel::TbitMode::LogPc {
            let pages = self.kernel_opts.swtrace_bytes.div_ceil(PAGE_SIZE).max(1);
            let buf_phys = bump.alloc_pages(pages)?;
            let base_va = SYSTEM_VA + buf_phys;
            poke(&mut kbytes, &kernel, "swt_base", base_va);
            poke(&mut kbytes, &kernel, "swt_ptr", base_va);
            poke(
                &mut kbytes,
                &kernel,
                "swt_limit",
                base_va + self.kernel_opts.swtrace_bytes,
            );
        }

        // The frame pool for demand paging: everything between the bump
        // allocator's high-water mark and the OS-visible limit.
        let pool_base = (bump.next + PAGE_SIZE - 1) & !(PAGE_SIZE - 1);
        poke(&mut kbytes, &kernel, "freemem", pool_base);
        poke(
            &mut kbytes,
            &kernel,
            "freemem_end",
            self.layout.os_visible_bytes,
        );

        // The kernel image must fit under the system page table region.
        if KERNEL_PHYS + kbytes.len() as u32 > SYS_PT_PHYS {
            return Err(BootError::ImageOutOfRange(format!(
                "kernel image of {} bytes overruns {:#x}",
                kbytes.len(),
                SYS_PT_PHYS
            )));
        }
        writes.push((KERNEL_PHYS, kbytes));

        let boot_sp = kernel.symbol("kstack_top").expect("kstack_top");
        let boot_pc = kernel.symbol("kstart").expect("kstart");
        Ok(BootImage {
            layout: self.layout,
            kernel,
            writes,
            processes,
            boot_sp,
            boot_pc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_system_builds() {
        let img = BootImage::builder().build().unwrap();
        assert_eq!(img.processes().len(), 0);
        assert!(img.kernel().symbol("kstart").is_some());
    }

    #[test]
    fn too_many_processes_rejected() {
        let mut b = BootImage::builder();
        for _ in 0..(MAX_PROCS + 1) {
            b = b.user_program("start: chmk #0\n");
        }
        assert_eq!(b.build().unwrap_err(), BootError::TooManyProcesses);
    }

    #[test]
    fn bad_user_program_reports_asm_error() {
        let err = BootImage::builder()
            .user_program("start: frobnicate r0\n")
            .build()
            .unwrap_err();
        assert!(matches!(err, BootError::Asm(_)));
    }

    #[test]
    fn process_layout_is_disjoint() {
        let img = BootImage::builder()
            .user_program("start: chmk #0\n buf: .space 4096\n")
            .user_program("start: chmk #0\n")
            .build()
            .unwrap();
        let ps = img.processes();
        assert_eq!(ps.len(), 2);
        assert_ne!(ps[0].pcb_phys, ps[1].pcb_phys);
        assert_eq!(ps[0].pid, 1);
        assert_eq!(ps[1].pid, 2);
        assert!(ps[0].p0_pages >= 9, "code + 4 KiB buffer + bss pages");
    }
}
