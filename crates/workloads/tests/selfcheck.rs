//! Runs every workload solo under MOSS and checks the printed checksum
//! against the Rust mirror — a full-stack correctness test (assembler →
//! microcode → machine → kernel → workload).

use atum_machine::{Machine, RunExit};
use atum_os::BootImage;
use atum_workloads::Workload;

fn run_solo(w: &Workload, budget: u64) -> String {
    let image = BootImage::builder()
        .user_program(&w.source)
        .build()
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let mut m = Machine::new(image.memory_layout());
    image.load_into(&mut m).unwrap();
    let exit = m.run(budget);
    assert_eq!(exit, RunExit::Halted, "{} did not halt", w.name);
    String::from_utf8(m.take_console_output()).unwrap()
}

#[test]
fn small_suite_checksums_match() {
    for w in atum_workloads::suite_small() {
        let out = run_solo(&w, 400_000_000);
        assert_eq!(out, w.expected_output, "workload {}", w.name);
    }
}

#[test]
fn matrix_scales() {
    for n in [4, 8, 12] {
        let w = atum_workloads::matrix("m", n);
        assert_eq!(run_solo(&w, 600_000_000), w.expected_output, "n={n}");
    }
}

#[test]
fn list_chase_varies_with_params() {
    let a = atum_workloads::list_chase("a", 64, 1_000);
    let b = atum_workloads::list_chase("b", 128, 1_000);
    assert_eq!(run_solo(&a, 200_000_000), a.expected_output);
    assert_eq!(run_solo(&b, 200_000_000), b.expected_output);
}

#[test]
fn mix_runs_multiprogrammed_and_all_checksums_appear() {
    let mix = atum_workloads::mix_std();
    let mut builder = BootImage::builder().quantum(8_000);
    for w in &mix {
        builder = builder.user_program(&w.source);
    }
    let image = builder.build().unwrap();
    let mut m = Machine::new(image.memory_layout());
    image.load_into(&mut m).unwrap();
    assert_eq!(m.run(4_000_000_000), RunExit::Halted);
    let out = String::from_utf8(m.take_console_output()).unwrap();
    // Output interleaving is scheduler-dependent, but each process prints
    // exactly two hex digits, and with putc being a single syscall per
    // character pairs can split. Check total length and that every
    // expected digit multiset appears.
    assert_eq!(out.len(), 2 * mix.len());
    let mut got: Vec<char> = out.chars().collect();
    let mut want: Vec<char> = mix.iter().flat_map(|w| w.expected_output.chars()).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "checksum digits scrambled or missing: {out}");
}
