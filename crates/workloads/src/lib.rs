//! # atum-workloads — parametric SVX benchmark programs
//!
//! Synthetic stand-ins for the paper's VMS workloads, chosen for their
//! *locality structure* rather than their function:
//!
//! | Workload | Paper analogue | Behaviour |
//! |---|---|---|
//! | [`matrix`] | circuit simulator / numeric code | dense row-major array sweeps |
//! | [`list_chase`] | Lisp runtime | pointer chasing over a scattered cycle |
//! | [`lexer`] | compiler front end | byte scanning, branchy classification |
//! | [`sort`] | utility / sort phase | shellsort with gap-strided accesses |
//! | [`block_copy`] | I/O staging | `movc3` block moves |
//! | [`fib_recursive`] | call-heavy code | deep `calls`/`ret` recursion |
//! | [`binary_search`] | index lookups | log-depth dependent probes |
//! | [`queue_sim`] | kernel queues | microcoded `insque`/`remque` churn |
//! | [`heap_walk`] | dynamic memory | demand-zero page faults + strided heap traffic |
//!
//! Every workload is **self-checking**: the program computes a checksum
//! on the simulated machine and prints it as two hex digits via the MOSS
//! `putc` syscall; [`Workload::expected_output`] holds the value computed
//! by a Rust mirror of the same algorithm. A mismatch means the machine,
//! microcode, assembler or kernel miscomputed — so every experiment run
//! doubles as a correctness test of the whole stack.
//!
//! ```
//! use atum_machine::Machine;
//!
//! let w = atum_workloads::matrix("m", 6);
//! let image = atum_os::BootImage::builder().user_program(&w.source).build().unwrap();
//! let mut m = Machine::new(image.memory_layout());
//! image.load_into(&mut m).unwrap();
//! m.run_until_halt(200_000_000).unwrap();
//! assert_eq!(String::from_utf8(m.take_console_output()).unwrap(), w.expected_output);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generators;

pub use generators::{
    binary_search, block_copy, fib_recursive, heap_walk, lexer, list_chase, matrix, queue_sim, sort,
};

/// A generated workload: source, identity and its expected console
/// output (the self-check checksum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Short name used in reports.
    pub name: String,
    /// SVX assembly source (loaded at the MOSS user base).
    pub source: String,
    /// Expected console output (two lowercase hex digits).
    pub expected_output: String,
}

/// The shared epilogue: prints the low byte of `r0` as two hex digits and
/// exits. Programs `brw print_exit` with the folded checksum in `r0`.
pub(crate) const EPILOGUE: &str = r#"
; ── shared epilogue: print r0 (byte) as hex, exit ──────────────────────
print_exit:
        movzbl  r0, r9
        ashl    #-4, r9, r0
        bicl2   #0xFFFFFFF0, r0
        moval   hexdigits, r1
        addl2   r0, r1
        movzbl  (r1), r0
        chmk    #1
        bicl3   #0xFFFFFFF0, r9, r0
        moval   hexdigits, r1
        addl2   r0, r1
        movzbl  (r1), r0
        chmk    #1
        chmk    #0
hexdigits: .ascii "0123456789abcdef"
        .align 4
"#;

/// Folds a 32-bit checksum into one byte, the same way the assembly
/// epilogue callers do (xor of all four bytes).
pub(crate) fn fold(v: u32) -> u8 {
    (v ^ (v >> 8) ^ (v >> 16) ^ (v >> 24)) as u8
}

/// The canonical fold sequence in assembly: folds `r8` into `r0` and
/// branches to the epilogue.
pub(crate) const FOLD_AND_PRINT: &str = r#"
        ; fold r8 into one byte in r0
        movl    r8, r0
        ashl    #-16, r8, r1
        xorl2   r1, r0
        ashl    #-8, r0, r1
        xorl2   r1, r0
        brw     print_exit
"#;

/// The LCG all workloads use for reproducible pseudo-random data
/// (`x ← x·1103515245 + 12345`, 32-bit wrap).
pub(crate) fn lcg(x: u32) -> u32 {
    x.wrapping_mul(1_103_515_245).wrapping_add(12_345)
}

/// The quick suite used by tests: small instances of every generator.
pub fn suite_small() -> Vec<Workload> {
    vec![
        matrix("matrix", 6),
        list_chase("list", 64, 2_000),
        lexer("lexer", 1_024, 1),
        sort("sort", 64),
        block_copy("copy", 512, 8),
        fib_recursive("fib", 12),
        binary_search("bsearch", 64, 500),
        queue_sim("queue", 16, 400),
        heap_walk("heap", 8, 3),
    ]
}

/// The standard suite used by the experiments: instances sized so each
/// touches tens of KiB and runs millions of references.
pub fn suite_standard() -> Vec<Workload> {
    vec![
        matrix("matrix", 20),
        list_chase("list", 2_048, 60_000),
        lexer("lexer", 16_384, 4),
        sort("sort", 1_024),
        block_copy("copy", 8_192, 24),
        fib_recursive("fib", 18),
        binary_search("bsearch", 2_048, 15_000),
        queue_sim("queue", 48, 30_000),
        heap_walk("heap", 30, 400),
    ]
}

/// The standard 4-process multiprogramming mix (numeric + pointer +
/// scanning + demand-paged heap), the shape of the paper's
/// multiprogrammed traces.
pub fn mix_std() -> Vec<Workload> {
    vec![
        matrix("matrix", 16),
        list_chase("list", 1_024, 40_000),
        lexer("lexer", 8_192, 3),
        heap_walk("heap", 24, 1_500),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_assemble() {
        for w in suite_small().into_iter().chain(suite_standard()) {
            let src = format!(".org 0x200\n{}\n", w.source);
            atum_asm::assemble(&src)
                .unwrap_or_else(|e| panic!("{} does not assemble: {e}", w.name));
            assert_eq!(w.expected_output.len(), 2, "{}", w.name);
        }
    }

    #[test]
    fn fold_matches_asm_semantics() {
        assert_eq!(fold(0x12345678), 0x12 ^ 0x34 ^ 0x56 ^ 0x78);
        assert_eq!(fold(0), 0);
        assert_eq!(fold(0xFF), 0xFF);
    }

    #[test]
    fn lcg_reference_values() {
        let mut x = 1u32;
        x = lcg(x);
        assert_eq!(x, 1_103_527_590);
    }

    #[test]
    fn names_are_unique_within_suites() {
        let suite = suite_standard();
        let names: std::collections::HashSet<_> = suite.iter().map(|w| &w.name).collect();
        assert_eq!(names.len(), suite.len());
    }
}
