//! The workload generators and their Rust mirrors.
//!
//! Each generator emits SVX assembly *and* computes the expected checksum
//! by mirroring the algorithm in Rust with identical wrapping arithmetic.

use crate::{fold, lcg, Workload, EPILOGUE, FOLD_AND_PRINT};

/// Dense integer matrix multiply (`n × n`), the numeric/"circuit
/// simulator" analogue: long sequential sweeps with high spatial locality.
pub fn matrix(name: &str, n: u32) -> Workload {
    assert!((2..=64).contains(&n), "matrix size out of range");
    let source = format!(
        r#"
start:
        ; init A[i][j] = i + 2j ; B[i][j] = i*j + 1
        clrl    r2
init_i: clrl    r3
init_j: mull3   #{n}, r2, r4
        addl2   r3, r4
        ashl    #2, r4, r4
        moval   A, r5
        addl2   r4, r5
        ashl    #1, r3, r6
        addl3   r2, r6, r7
        movl    r7, (r5)
        moval   B, r5
        addl2   r4, r5
        mull3   r2, r3, r7
        incl    r7
        movl    r7, (r5)
        aoblss  #{n}, r3, init_j
        aoblss  #{n}, r2, init_i

        ; C = A × B
        clrl    r2
mul_i:  clrl    r3
mul_j:  clrl    r8
        clrl    r4
mul_k:  mull3   #{n}, r2, r5
        addl2   r4, r5
        ashl    #2, r5, r5
        moval   A, r6
        addl2   r5, r6
        movl    (r6), r7
        mull3   #{n}, r4, r5
        addl2   r3, r5
        ashl    #2, r5, r5
        moval   B, r6
        addl2   r5, r6
        mull2   (r6), r7
        addl2   r7, r8
        aoblss  #{n}, r4, mul_k
        mull3   #{n}, r2, r5
        addl2   r3, r5
        ashl    #2, r5, r5
        moval   C, r6
        addl2   r5, r6
        movl    r8, (r6)
        aoblss  #{n}, r3, mul_j
        aoblss  #{n}, r2, mul_i

        ; checksum: xor of C
        clrl    r8
        movl    #{nn}, r2
        moval   C, r3
cksum:  xorl2   (r3)+, r8
        sobgtr  r2, cksum
{FOLD_AND_PRINT}
{EPILOGUE}
        .align 4
A:      .space {bytes}
B:      .space {bytes}
C:      .space {bytes}
"#,
        nn = n * n,
        bytes = n * n * 4,
    );

    // Rust mirror.
    let n = n as usize;
    let mut a = vec![0u32; n * n];
    let mut b = vec![0u32; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = (i + 2 * j) as u32;
            b[i * n + j] = (i * j + 1) as u32;
        }
    }
    let mut check = 0u32;
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0u32;
            for k in 0..n {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            check ^= acc;
        }
    }
    Workload {
        name: name.to_string(),
        source,
        expected_output: format!("{:02x}", fold(check)),
    }
}

/// Pointer chasing over a scattered cycle — the "Lisp runtime" analogue:
/// one dependent load per step, poor spatial locality.
pub fn list_chase(name: &str, nodes: u32, iters: u32) -> Workload {
    assert!(nodes >= 4, "too few nodes");
    // Stride must be coprime with the node count for a single cycle.
    let stride = {
        let mut s = nodes / 2 + 1;
        while gcd(s, nodes) != 1 {
            s += 1;
        }
        s
    };
    let source = format!(
        r#"
start:
        ; node[j]: next ← &node[(j + {stride}) mod {nodes}], value ← j
        clrl    r2
init:   addl3   #{stride}, r2, r3
        cmpl    r3, #{nodes}
        blss    1f
        subl2   #{nodes}, r3
1:      ashl    #3, r3, r4
        moval   nodes, r5
        addl2   r4, r5
        ashl    #3, r2, r4
        moval   nodes, r6
        addl2   r4, r6
        movl    r5, (r6)
        movl    r2, 4(r6)
        aoblss  #{nodes}, r2, init

        ; chase
        moval   nodes, r1
        clrl    r8
        movl    #{iters}, r2
chase:  addl2   4(r1), r8
        movl    (r1), r1
        sobgtr  r2, chase
{FOLD_AND_PRINT}
{EPILOGUE}
        .align 4
nodes:  .space {bytes}
"#,
        bytes = nodes * 8,
    );

    // Rust mirror.
    let mut sum = 0u32;
    let mut j = 0u32;
    for _ in 0..iters {
        sum = sum.wrapping_add(j);
        j = (j + stride) % nodes;
    }
    Workload {
        name: name.to_string(),
        source,
        expected_output: format!("{:02x}", fold(sum)),
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Byte scanning with branchy classification — the "compiler front end"
/// analogue: sequential byte loads, heavy conditional branching.
pub fn lexer(name: &str, text_len: u32, passes: u32) -> Workload {
    assert!(text_len >= 16 && passes >= 1);
    let source = format!(
        r#"
start:
        ; synthesise "text": letters with embedded spaces
        movl    #1, r7
        moval   buf, r1
        movl    #{text_len}, r2
fill:   mull2   #1103515245, r7
        addl2   #12345, r7
        ashl    #-16, r7, r3
        bicl3   #0xFFFFFFE0, r3, r4
        cmpl    r4, #26
        blss    1f
        movb    #32, (r1)+
        brb     2f
1:      addl2   #97, r4
        movb    r4, (r1)+
2:      sobgtr  r2, fill

        ; scan {passes} pass(es): count words, sum bytes
        clrl    r8
        movl    #{passes}, r9
pass:   moval   buf, r1
        movl    #{text_len}, r2
        clrl    r5
        clrl    r6
        clrl    r7
scan:   movzbl  (r1)+, r3
        addl2   r3, r6
        cmpl    r3, #32
        beql    sc_sp
        tstl    r7
        bneq    sc_nx
        incl    r5
        movl    #1, r7
        brb     sc_nx
sc_sp:  clrl    r7
sc_nx:  sobgtr  r2, scan
        mull3   #7, r5, r3
        addl2   r3, r8
        addl2   r6, r8
        sobgtr  r9, pass
{FOLD_AND_PRINT}
{EPILOGUE}
        .align 4
buf:    .space {text_len}
"#,
    );

    // Rust mirror.
    let mut x = 1u32;
    let mut text = Vec::with_capacity(text_len as usize);
    for _ in 0..text_len {
        x = lcg(x);
        let v = (x >> 16) & 31;
        text.push(if v >= 26 { 32u8 } else { 97 + v as u8 });
    }
    let mut check = 0u32;
    for _ in 0..passes {
        let mut words = 0u32;
        let mut sum = 0u32;
        let mut in_word = false;
        for &c in &text {
            sum = sum.wrapping_add(c as u32);
            if c == 32 {
                in_word = false;
            } else if !in_word {
                words += 1;
                in_word = true;
            }
        }
        check = check.wrapping_add(words.wrapping_mul(7)).wrapping_add(sum);
    }
    Workload {
        name: name.to_string(),
        source,
        expected_output: format!("{:02x}", fold(check)),
    }
}

/// Shellsort over pseudo-random longs — gap-strided array traffic.
pub fn sort(name: &str, n: u32) -> Workload {
    assert!(n >= 4);
    let source = format!(
        r#"
start:
        ; fill with LCG values
        movl    #7, r7
        moval   arr, r1
        movl    #{n}, r2
fill:   mull2   #1103515245, r7
        addl2   #12345, r7
        movl    r7, (r1)+
        sobgtr  r2, fill

        ; shellsort
        movl    #{n}, r9
        ashl    #-1, r9, r9
gaploop:
        tstl    r9
        beql    sorted
        movl    r9, r2
outer:  cmpl    r2, #{n}
        bgeq    gapnext
        ashl    #2, r2, r3
        moval   arr, r4
        addl2   r3, r4
        movl    (r4), r5
        movl    r2, r6
inner:  cmpl    r6, r9
        blss    insert
        subl3   r9, r6, r7
        ashl    #2, r7, r8
        moval   arr, r10
        addl2   r8, r10
        cmpl    (r10), r5
        bleq    insert
        ashl    #2, r6, r8
        moval   arr, r11
        addl2   r8, r11
        movl    (r10), (r11)
        movl    r7, r6
        brb     inner
insert: ashl    #2, r6, r8
        moval   arr, r10
        addl2   r8, r10
        movl    r5, (r10)
        incl    r2
        brb     outer
gapnext:
        ashl    #-1, r9, r9
        brb     gaploop
sorted:
        ; checksum: min xor max xor median
        movl    arr, r8
        xorl2   arr+{last_off}, r8
        xorl2   arr+{mid_off}, r8
{FOLD_AND_PRINT}
{EPILOGUE}
        .align 4
arr:    .space {bytes}
"#,
        last_off = (n - 1) * 4,
        mid_off = (n / 2) * 4,
        bytes = n * 4,
    );

    // Rust mirror (signed sort, like the assembly's cmpl/bleq).
    let mut x = 7u32;
    let mut arr: Vec<i32> = (0..n)
        .map(|_| {
            x = lcg(x);
            x as i32
        })
        .collect();
    arr.sort_unstable();
    let check = (arr[0] as u32) ^ (arr[(n - 1) as usize] as u32) ^ (arr[(n / 2) as usize] as u32);
    Workload {
        name: name.to_string(),
        source,
        expected_output: format!("{:02x}", fold(check)),
    }
}

/// Repeated `movc3` block moves — the I/O-staging analogue and a heavy
/// exercise of the microcoded string loop.
pub fn block_copy(name: &str, block: u32, iters: u32) -> Workload {
    assert!(block >= 16 && iters >= 1);
    let source = format!(
        r#"
start:
        ; fill the source block
        movl    #99, r7
        moval   src, r1
        movl    #{block}, r2
fill:   mull2   #1103515245, r7
        addl2   #12345, r7
        ashl    #-16, r7, r3
        movb    r3, (r1)+
        sobgtr  r2, fill

        ; copy back and forth (movc3 clobbers r0-r5)
        movl    #{iters}, r6
cp:     movc3   #{block}, src, dst
        movc3   #{block}, dst, src
        sobgtr  r6, cp

        ; checksum: xor of destination bytes
        clrl    r8
        moval   dst, r1
        movl    #{block}, r2
ck:     movzbl  (r1)+, r3
        xorl2   r3, r8
        sobgtr  r2, ck
{FOLD_AND_PRINT}
{EPILOGUE}
        .align 4
src:    .space {block}
dst:    .space {block}
"#,
    );

    // Rust mirror: the copies do not change the data, so the checksum is
    // the xor of the filled block.
    let mut x = 99u32;
    let mut check = 0u32;
    for _ in 0..block {
        x = lcg(x);
        check ^= (x >> 16) & 0xFF;
    }
    Workload {
        name: name.to_string(),
        source,
        expected_output: format!("{:02x}", fold(check)),
    }
}

/// Recursive Fibonacci through `calls`/`ret` — deep stack traffic and the
/// procedure-call microcode.
pub fn fib_recursive(name: &str, n: u32) -> Workload {
    assert!(n <= 24, "keep the run time sane");
    let source = format!(
        r#"
start:
        pushl   #{n}
        calls   #1, fib
        movl    r0, r8
{FOLD_AND_PRINT}

fib:    .word   0b1100          ; saves r2, r3
        movl    4(ap), r2
        cmpl    r2, #2
        bgeq    1f
        movl    r2, r0
        ret
1:      subl3   #1, r2, r3
        pushl   r3
        calls   #1, fib
        movl    r0, r3
        subl2   #2, r2
        pushl   r2
        calls   #1, fib
        addl2   r3, r0
        ret
{EPILOGUE}
"#,
    );

    fn fib(n: u32) -> u32 {
        if n < 2 {
            n
        } else {
            fib(n - 1).wrapping_add(fib(n - 2))
        }
    }
    Workload {
        name: name.to_string(),
        source,
        expected_output: format!("{:02x}", fold(fib(n))),
    }
}

/// Binary-search over a sorted table — the "database/index lookup"
/// analogue: log-depth dependent accesses with scattered locality.
pub fn binary_search(name: &str, n: u32, lookups: u32) -> Workload {
    assert!(
        n >= 8 && n.is_power_of_two(),
        "table size must be a power of two"
    );
    let source = format!(
        r#"
start:
        ; build a sorted table: arr[i] = 3*i + 1
        clrl    r2
        moval   arr, r1
fill:   mull3   #3, r2, r3
        incl    r3
        movl    r3, (r1)+
        aoblss  #{n}, r2, fill

        ; look up LCG-chosen keys; count hits
        movl    #42, r7           ; LCG state
        clrl    r8                ; hit counter / checksum accumulator
        movl    #{lookups}, r9
next:   mull2   #1103515245, r7
        addl2   #12345, r7
        ashl    #-16, r7, r3
        bicl3   #0xFFFF0000, r3, r3
        ; key = r3 % (3n) approximated by masking to < 4n then compare
        bicl3   #{keymask_inv}, r3, r3
        ; binary search for key r3 in arr[0..n)
        clrl    r4                ; lo
        movl    #{n}, r5          ; hi (exclusive)
search: cmpl    r4, r5
        bgeq    miss
        addl3   r4, r5, r6
        ashl    #-1, r6, r6       ; mid
        ashl    #2, r6, r0
        moval   arr, r1
        addl2   r0, r1
        cmpl    (r1), r3
        beql    hit
        blss    golow
        movl    r6, r5            ; arr[mid] > key: hi = mid
        brb     search
golow:  addl3   #1, r6, r4        ; lo = mid + 1
        brb     search
hit:    incl    r8
        addl2   r6, r8            ; fold the found index in
miss:   sobgtr  r9, next
{FOLD_AND_PRINT}
{EPILOGUE}
        .align 4
arr:    .space {bytes}
"#,
        keymask_inv = format_args!("{:#x}", !(4 * n - 1)),
        bytes = n * 4,
    );

    // Rust mirror.
    let mut x = 42u32;
    let arr: Vec<u32> = (0..n).map(|i| 3 * i + 1).collect();
    let mut check = 0u32;
    for _ in 0..lookups {
        x = lcg(x);
        let key = ((x >> 16) & 0xFFFF) & (4 * n - 1);
        let mut lo = 0u32;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match arr[mid as usize].cmp(&key) {
                std::cmp::Ordering::Equal => {
                    check = check.wrapping_add(1).wrapping_add(mid);
                    break;
                }
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Less => lo = mid + 1,
            }
        }
    }
    Workload {
        name: name.to_string(),
        source,
        expected_output: format!("{:02x}", fold(check)),
    }
}

/// A queue-discipline simulation built on the microcoded `insque`/
/// `remque` — the "kernel data structure" analogue (VMS schedulers lived
/// on these instructions).
pub fn queue_sim(name: &str, nodes: u32, ops: u32) -> Workload {
    assert!((2..=64).contains(&nodes));
    let source = format!(
        r#"
start:
        ; head is a self-linked empty queue
        moval   head, r6
        movl    r6, (r6)
        movl    r6, 4(r6)
        ; insert all nodes after head, stamping values
        clrl    r2
init:   ashl    #4, r2, r3        ; 16-byte nodes
        moval   pool, r4
        addl2   r3, r4
        movl    r2, 8(r4)         ; value field
        insque  (r4), (r6)
        aoblss  #{nodes}, r2, init

        ; rotate: remove the front entry (head's successor), fold its
        ; value, re-insert at the front or the back by the LCG's low bit
        movl    #7, r7            ; LCG
        clrl    r8
        movl    #{ops}, r9
rot:    movl    (r6), r4          ; front entry address
        remque  (r4), r1          ; r1 = removed entry
        addl2   8(r1), r8         ; fold its value
        mull2   #1103515245, r7
        addl2   #12345, r7
        blbs    r7, front
        movl    4(r6), r5         ; head's predecessor = back of queue
        insque  (r1), (r5)        ; re-insert at the back
        brb     1f
front:  insque  (r1), (r6)        ; re-insert at the front
1:      sobgtr  r9, rot
{FOLD_AND_PRINT}
{EPILOGUE}
        .align 4
head:   .long 0, 0
pool:   .space {bytes}
"#,
        bytes = nodes * 16,
    );

    // Rust mirror: a deque of node values; remove front, fold, re-insert
    // at front or back depending on the LCG's low bit.
    use std::collections::VecDeque;
    // insque (r4), (r6) inserts after head: the queue is LIFO from the
    // front. After init the front is node nodes-1 … back is node 0.
    let mut q: VecDeque<u32> = (0..nodes).rev().collect();
    let mut x = 7u32;
    let mut check = 0u32;
    for _ in 0..ops {
        let v = q.pop_front().expect("queue never empties");
        check = check.wrapping_add(v);
        x = lcg(x);
        if x & 1 != 0 {
            q.push_front(v);
        } else {
            q.push_back(v);
        }
    }
    Workload {
        name: name.to_string(),
        source,
        expected_output: format!("{:02x}", fold(check)),
    }
}

/// Strided writes and sums across the demand-zero heap — the "process
/// with dynamic memory" analogue: every first touch of a page is a
/// kernel page-fault service visible in complete traces.
pub fn heap_walk(name: &str, pages: u32, passes: u32) -> Workload {
    assert!(pages >= 1 && passes >= 1);
    let heap = 0x0010_0000u32; // atum_os::USER_HEAP_VA
    let source = format!(
        r#"
start:
        ; pass 1 writes fault every page in; later passes are warm
        clrl    r8
        movl    #{passes}, r9
pass:   movl    #{heap:#x}, r6
        movl    #{pages}, r7
page:   movl    r7, (r6)          ; first touch faults the page in
        addl2   #4, r6
        movl    r9, (r6)
        addl2   (r6), r8
        subl2   #4, r6
        addl2   (r6), r8
        addl2   #512, r6
        sobgtr  r7, page
        sobgtr  r9, pass
{FOLD_AND_PRINT}
{EPILOGUE}
"#,
    );

    // Rust mirror.
    let mut check = 0u32;
    for pass in (1..=passes).rev() {
        for page in (1..=pages).rev() {
            check = check.wrapping_add(pass).wrapping_add(page);
        }
    }
    Workload {
        name: name.to_string(),
        source,
        expected_output: format!("{:02x}", fold(check)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_is_coprime() {
        for nodes in [4u32, 64, 100, 1024, 2048] {
            let w = list_chase("x", nodes, 10);
            assert!(!w.source.is_empty());
        }
    }

    #[test]
    fn mirrors_are_deterministic() {
        assert_eq!(matrix("a", 6), matrix("a", 6));
        assert_eq!(sort("s", 64), sort("s", 64));
    }

    #[test]
    fn fib_expected_value() {
        // fib(12) = 144 → fold(144) = 0x90.
        assert_eq!(fib_recursive("f", 12).expected_output, "90");
    }
}
