//! Offline `serde_json` shim.
//!
//! The build container has no crates.io access, so — like the
//! `proptest` and `criterion` shims — this crate lives in-workspace and
//! exposes exactly the API subset the workspace uses: [`from_str`] into
//! a dynamically typed [`Value`], indexing with `value["key"]` /
//! `value[idx]`, and the `as_*` accessors. There is no serde data model
//! and no serializer; the workspace's JSON *producers* hand-roll their
//! output, this shim is the consuming side that validates it.
//!
//! The parser is a strict recursive-descent JSON reader: objects,
//! arrays, strings (with the standard escapes incl. `\uXXXX`), numbers,
//! booleans and null. Trailing garbage, trailing commas, unquoted keys
//! and comments are rejected, so a report that round-trips through this
//! shim is well-formed JSON for any real consumer too.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (integers up to 2^53 round-trip).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keyed by a `BTreeMap`: iteration order is
    /// deterministic, which the golden tests rely on.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `i64`, if this is a number with an integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self.as_i64() {
            Some(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    at: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// [`Error`] on malformed input or trailing non-whitespace.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &[u8], v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged; the
                    // input is &str so it is already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_before = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_before {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("unparseable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            from_str(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}, "f": 1e3}"#)
                .unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_i64(), Some(-3));
        assert_eq!(v["b"]["c"].as_str(), Some("x\ny"));
        assert_eq!(v["b"]["d"].as_bool(), Some(true));
        assert!(v["b"]["e"].is_null());
        assert_eq!(v["f"].as_f64(), Some(1000.0));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn escapes_round_trip() {
        let v = from_str(r#""\u0041\u00e9\ud83d\ude00\t\\\"""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀\t\\\""));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "1 2",
            "nul",
            "\"\\q\"",
            "01e",
            "--1",
            "{\"a\":1,}",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn object_iteration_is_deterministic() {
        let v = from_str(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().keys().map(|k| k.as_str()).collect();
        assert_eq!(keys, ["a", "m", "z"]);
    }
}
