//! Instruction-semantics tests: assemble SVX source with `atum-asm`, run
//! it on the microcoded machine (mapping disabled, kernel mode), and check
//! architectural state. Every instruction goes through the full
//! micro-engine path: prefetch buffer, specifier dispatch, xfer routines.

use atum_machine::{Machine, MemLayout, RunExit};

const ORG: u32 = 0x1000;

/// Assembles `src` at `ORG`, loads and runs it to a halt.
fn run(src: &str) -> Machine {
    let full = format!(".org {ORG:#x}\n{src}\n");
    let img = atum_asm::assemble(&full).unwrap_or_else(|e| panic!("asm: {e}\n{src}"));
    let mut m = Machine::new(MemLayout::small());
    for (addr, bytes) in img.segments() {
        m.write_phys(*addr, bytes).expect("load");
    }
    m.set_gpr(14, 0x8000); // a stack well away from the code
    m.set_pc(img.symbol("start").unwrap_or(ORG));
    let exit = m.run(2_000_000);
    assert_eq!(exit, RunExit::Halted, "program did not halt cleanly");
    m
}

fn psl_nzvc(m: &Machine) -> (bool, bool, bool, bool) {
    let p = m.psl();
    (p.n(), p.z(), p.v(), p.c())
}

// ── Moves and condition codes ─────────────────────────────────────────

#[test]
fn movl_literal_and_immediate() {
    let m = run("start: movl #5, r0\n movl #100000, r1\n movl #-3, r2\n halt");
    assert_eq!(m.gpr(0), 5);
    assert_eq!(m.gpr(1), 100_000);
    assert_eq!(m.gpr(2) as i32, -3);
    let (n, z, v, _) = psl_nzvc(&m);
    assert!(n && !z && !v, "last move was negative");
}

#[test]
fn movl_zero_sets_z() {
    let m = run("start: movl #0, r0\n halt");
    let (n, z, _, _) = psl_nzvc(&m);
    assert!(!n && z);
}

#[test]
fn movb_merges_into_register() {
    let m = run("start: movl #0x11223344, r0\n movb #0xAA, r0\n halt");
    assert_eq!(m.gpr(0), 0x1122_33AA, "byte write preserves upper bytes");
}

#[test]
fn movw_merges_into_register() {
    let m = run("start: movl #0x11223344, r0\n movw #0xBEEF, r0\n halt");
    assert_eq!(m.gpr(0), 0x1122_BEEF);
}

#[test]
fn movzbl_and_cvtbl() {
    let m = run(
        "start: movl #0xFFFFFF85, r1\n movzbl r1, r2\n cvtbl r1, r3\n \
         movzwl r1, r4\n cvtwl r1, r5\n halt",
    );
    assert_eq!(m.gpr(2), 0x85);
    assert_eq!(m.gpr(3), 0xFFFF_FF85);
    assert_eq!(m.gpr(4), 0xFF85);
    assert_eq!(m.gpr(5), 0xFFFF_FF85);
}

#[test]
fn cvtlb_truncates() {
    let m = run("start: movl #0x12345678, r1\n clrl r2\n cvtlb r1, r2\n cvtlw r1, r3\n halt");
    assert_eq!(m.gpr(2), 0x78);
    assert_eq!(m.gpr(3) & 0xFFFF, 0x5678);
}

#[test]
fn mcoml_and_mnegl() {
    let m = run("start: movl #0x0F0F0F0F, r1\n mcoml r1, r2\n movl #7, r3\n mnegl r3, r4\n halt");
    assert_eq!(m.gpr(2), 0xF0F0_F0F0);
    assert_eq!(m.gpr(4) as i32, -7);
}

#[test]
fn clr_family() {
    let m = run("start: movl #-1, r0\n movl #-1, r1\n movl #-1, r2\n \
         clrb r0\n clrw r1\n clrl r2\n halt");
    assert_eq!(m.gpr(0), 0xFFFF_FF00);
    assert_eq!(m.gpr(1), 0xFFFF_0000);
    assert_eq!(m.gpr(2), 0);
}

// ── Addressing modes ──────────────────────────────────────────────────

#[test]
fn register_deferred_and_displacement() {
    let m = run(
        "start: moval data, r1\n movl (r1), r2\n movl 4(r1), r3\n movl -4(r1), r4\n halt\n\
         .long 0x11\ndata: .long 0x22, 0x33",
    );
    assert_eq!(m.gpr(2), 0x22);
    assert_eq!(m.gpr(3), 0x33);
    assert_eq!(m.gpr(4), 0x11);
}

#[test]
fn autoincrement_and_autodecrement() {
    let m = run(
        "start: moval data, r5\n moval data, r1\n movl (r1)+, r2\n movl (r1)+, r3\n \
         movl -(r1), r4\n halt\ndata: .long 7, 8",
    );
    assert_eq!(m.gpr(2), 7);
    assert_eq!(m.gpr(3), 8);
    assert_eq!(m.gpr(4), 8, "autodec steps back to the second element");
    assert_eq!(m.gpr(1), m.gpr(5) + 4, "two increments, one decrement");
}

#[test]
fn autoinc_scales_by_operand_size() {
    let m = run(
        "start: moval data, r1\n movb (r1)+, r2\n movb (r1)+, r3\n halt\n\
         data: .byte 0x41, 0x42",
    );
    assert_eq!(m.gpr(2) & 0xFF, 0x41);
    assert_eq!(m.gpr(3) & 0xFF, 0x42);
}

#[test]
fn deferred_modes() {
    let m = run(
        "start: moval ptr, r1\n movl @(r1)+, r2\n moval ptr, r3\n movl @0(r3), r4\n \
         movl @#data, r5\n halt\n\
         ptr: .long data\ndata: .long 0x99",
    );
    assert_eq!(m.gpr(2), 0x99);
    assert_eq!(m.gpr(4), 0x99);
    assert_eq!(m.gpr(5), 0x99);
}

#[test]
fn pc_relative_modes() {
    let m = run("start: movl data, r1\n movl @dptr, r2\n halt\ndata: .long 0x77\ndptr: .long data");
    assert_eq!(m.gpr(1), 0x77);
    assert_eq!(m.gpr(2), 0x77);
}

#[test]
fn writes_through_modes() {
    let m = run("start: moval buf, r1\n movl #1, (r1)\n movl #2, 4(r1)\n \
         moval buf, r2\n movl #3, (r2)+\n movl @#buf2, r0\n movl #4, @#buf2\n \
         movl buf, r5\n movl buf+4, r6\n movl buf2, r7\n halt\n\
         buf: .long 0, 0\nbuf2: .long 9");
    assert_eq!(m.gpr(5), 3, "autoinc write overwrote (r1) write");
    assert_eq!(m.gpr(6), 2);
    assert_eq!(m.gpr(7), 4);
    assert_eq!(m.gpr(0), 9, "absolute read saw the original");
}

#[test]
fn unaligned_longword_access() {
    let m = run(
        "start: moval buf, r1\n movl #0xDEADBEEF, 1(r1)\n movl 1(r1), r2\n halt\n\
         buf: .long 0, 0",
    );
    assert_eq!(m.gpr(2), 0xDEAD_BEEF);
}

// ── Arithmetic ────────────────────────────────────────────────────────

#[test]
fn add_sub_three_operand() {
    let m = run("start: movl #10, r1\n movl #3, r2\n addl3 r1, r2, r3\n subl3 r2, r1, r4\n halt");
    assert_eq!(m.gpr(3), 13);
    assert_eq!(m.gpr(4), 7, "subl3 a,b,dst computes b - a");
}

#[test]
fn add_sub_two_operand() {
    let m = run("start: movl #10, r1\n addl2 #5, r1\n subl2 #3, r1\n halt");
    assert_eq!(m.gpr(1), 12);
}

#[test]
fn add_sets_carry_and_overflow() {
    let m = run("start: movl #-1, r1\n addl2 #1, r1\n halt");
    let (_, z, v, c) = psl_nzvc(&m);
    assert!(z && c && !v);
    let m = run("start: movl #0x7FFFFFFF, r1\n addl2 #1, r1\n halt");
    let (n, _, v, c) = psl_nzvc(&m);
    assert!(n && v && !c);
}

#[test]
fn mul_and_div() {
    let m = run(
        "start: movl #6, r1\n mull3 #7, r1, r2\n movl #100, r3\n divl3 #7, r3, r4\n \
         movl #100, r5\n divl2 #10, r5\n halt",
    );
    assert_eq!(m.gpr(2), 42);
    assert_eq!(m.gpr(4), 14);
    assert_eq!(m.gpr(5), 10);
}

#[test]
fn div_negative_truncates_toward_zero() {
    let m = run("start: movl #-7, r1\n divl3 #2, r1, r2\n halt");
    assert_eq!(m.gpr(2) as i32, -3);
}

#[test]
fn incl_decl() {
    let m = run("start: movl #5, r1\n incl r1\n incl r1\n decl r1\n halt");
    assert_eq!(m.gpr(1), 6);
}

#[test]
fn incl_memory_operand() {
    let m = run("start: incl counter\n incl counter\n movl counter, r1\n halt\ncounter: .long 40");
    assert_eq!(m.gpr(1), 42);
}

#[test]
fn ashl_shifts() {
    let m = run("start: movl #1, r1\n ashl #4, r1, r2\n movl #-16, r3\n ashl #-2, r3, r4\n halt");
    assert_eq!(m.gpr(2), 16);
    assert_eq!(m.gpr(4) as i32, -4, "negative count is arithmetic right");
}

#[test]
fn logic_ops() {
    let m = run(
        "start: movl #0b1100, r1\n bisl3 #0b0011, r1, r2\n bicl3 #0b0100, r1, r3\n \
         xorl3 #0b1111, r1, r4\n movl #0b1010, r5\n bisl2 #1, r5\n halt",
    );
    assert_eq!(m.gpr(2), 0b1111);
    assert_eq!(m.gpr(3), 0b1000, "bic clears mask bits");
    assert_eq!(m.gpr(4), 0b0011);
    assert_eq!(m.gpr(5), 0b1011);
}

#[test]
fn cmp_and_tst_flags() {
    let m = run("start: movl #5, r1\n cmpl r1, #5\n halt");
    let (_, z, _, _) = psl_nzvc(&m);
    assert!(z);
    let m = run("start: movl #3, r1\n cmpl r1, #5\n halt");
    let (n, z, _, c) = psl_nzvc(&m);
    assert!(n && !z && c, "3 < 5 signed and unsigned");
    let m = run("start: movl #-1, r1\n tstl r1\n halt");
    let (n, z, v, c) = psl_nzvc(&m);
    assert!(n && !z && !v && !c, "tst clears V and C");
}

#[test]
fn cmpb_uses_byte_width() {
    // 0x180 vs 0x80 equal at byte width.
    let m = run(
        "start: movl #0x180, r1\n movl #0x80, r2\n cmpb r1, r2\n beql 1f\n movl #1, r3\n1: halt",
    );
    assert_eq!(m.gpr(3), 0, "branch taken on byte equality");
}

#[test]
fn bitl_sets_z() {
    let m = run("start: movl #0b1100, r1\n bitl #0b0011, r1\n beql 1f\n movl #9, r2\n1: halt");
    assert_eq!(m.gpr(2), 0, "no common bits → Z → branch taken");
}

// ── Branches and loops ────────────────────────────────────────────────

#[test]
fn conditional_branch_matrix() {
    // Each case: (setup producing flags, branch, expect taken).
    let cases = [
        ("cmpl #1, #1", "beql", true),
        ("cmpl #1, #2", "beql", false),
        ("cmpl #1, #2", "bneq", true),
        ("cmpl #2, #1", "bgtr", true),
        ("cmpl #1, #1", "bgtr", false),
        ("cmpl #1, #1", "bgeq", true),
        ("cmpl #1, #2", "blss", true),
        ("cmpl #1, #1", "bleq", true),
        ("cmpl #-1, #1", "bgtru", true), // 0xFFFFFFFF unsigned-greater
        ("cmpl #-1, #1", "blss", true),
        ("cmpl #1, #-1", "blequ", true),
        ("cmpl #1, #2", "bcs", true), // borrow
        ("cmpl #2, #1", "bcc", true),
    ];
    for (setup, branch, taken) in cases {
        let src = format!("start: {setup}\n {branch} 1f\n movl #1, r9\n1: halt");
        let m = run(&src);
        let was_taken = m.gpr(9) == 0;
        assert_eq!(was_taken, taken, "{setup}; {branch}");
    }
}

#[test]
fn brw_and_relaxed_branches() {
    // Force a relaxed conditional branch across 300 bytes.
    let m = run(
        "start: movl #1, r1\n cmpl r1, #1\n beql far\n movl #99, r2\n .space 300\n\
         far: movl #5, r3\n halt",
    );
    assert_eq!(m.gpr(2), 0);
    assert_eq!(m.gpr(3), 5);
}

#[test]
fn sobgtr_loops() {
    let m = run("start: movl #5, r1\n clrl r2\nloop: addl2 r1, r2\n sobgtr r1, loop\n halt");
    assert_eq!(m.gpr(2), 15, "5+4+3+2+1");
    assert_eq!(m.gpr(1), 0);
}

#[test]
fn sobgeq_runs_once_more() {
    let m = run("start: movl #2, r1\n clrl r2\nloop: incl r2\n sobgeq r1, loop\n halt");
    assert_eq!(m.gpr(2), 3, "iterates for 2,1,0");
}

#[test]
fn aoblss_loops() {
    let m = run("start: clrl r1\n clrl r2\nloop: addl2 #2, r2\n aoblss #4, r1, loop\n halt");
    assert_eq!(m.gpr(1), 4);
    assert_eq!(m.gpr(2), 8);
}

#[test]
fn blbs_blbc() {
    let m = run(
        "start: movl #5, r1\n blbs r1, 1f\n movl #9, r2\n1: blbc r1, 2f\n movl #3, r3\n2: halt",
    );
    assert_eq!(m.gpr(2), 0, "low bit set → taken");
    assert_eq!(m.gpr(3), 3, "blbc not taken");
}

#[test]
fn bsb_rsb() {
    let m = run("start: bsbb sub\n movl #2, r2\n halt\n\
         sub: movl #1, r1\n rsb");
    assert_eq!(m.gpr(1), 1);
    assert_eq!(m.gpr(2), 2);
}

#[test]
fn jsb_with_deferred_target_and_jmp() {
    let m = run("start: jsb @vec\n movl #2, r2\n jmp end\n movl #99, r3\n\
         end: halt\n\
         sub: movl #1, r1\n rsb\n\
         vec: .long sub");
    assert_eq!(m.gpr(1), 1);
    assert_eq!(m.gpr(2), 2);
    assert_eq!(m.gpr(3), 0);
}

// ── Stack, calls ──────────────────────────────────────────────────────

#[test]
fn push_pop() {
    let m = run("start: pushl #11\n pushl #22\n popl r1\n popl r2\n halt");
    assert_eq!(m.gpr(1), 22);
    assert_eq!(m.gpr(2), 11);
}

#[test]
fn pushal_pushes_address() {
    let m = run("start: pushal data\n popl r1\n movl (r1), r2\n halt\ndata: .long 0xCAFE");
    assert_eq!(m.gpr(2), 0xCAFE);
}

#[test]
fn calls_ret_with_register_save() {
    let m = run("start: movl #111, r2\n movl #222, r3\n \
         pushl #41\n calls #1, proc\n halt\n\
         proc: .word 0b1100       ; save r2, r3\n\
         movl 4(ap), r0\n incl r0\n movl #0, r2\n movl #0, r3\n ret");
    assert_eq!(m.gpr(0), 42, "argument fetched through AP");
    assert_eq!(m.gpr(2), 111, "r2 restored by ret");
    assert_eq!(m.gpr(3), 222, "r3 restored by ret");
}

#[test]
fn calls_cleans_arguments_and_restores_sp() {
    let m = run(
        "start: movl sp, r6\n pushl #1\n pushl #2\n calls #2, proc\n \
         subl3 sp, r6, r7\n halt\n\
         proc: .word 0\n ret",
    );
    assert_eq!(m.gpr(7), 0, "SP fully restored after ret");
}

#[test]
fn nested_calls() {
    let m = run("start: calls #0, outer\n halt\n\
         outer: .word 0b10   ; saves r1\n\
         movl #5, r1\n calls #0, inner\n addl3 r1, r0, r0\n ret\n\
         inner: .word 0b10\n movl #100, r1\n movl r1, r0\n ret");
    // inner returns r0=100 (r1 restored to 5), outer adds 5 → 105.
    assert_eq!(m.gpr(0), 105);
}

#[test]
fn pushr_popr() {
    let m = run("start: movl #1, r1\n movl #2, r2\n movl #3, r3\n \
         pushr #0b1110\n clrl r1\n clrl r2\n clrl r3\n popr #0b1110\n halt");
    assert_eq!(m.gpr(1), 1);
    assert_eq!(m.gpr(2), 2);
    assert_eq!(m.gpr(3), 3);
}

// ── String, queue, bit-field ──────────────────────────────────────────

#[test]
fn movc3_copies() {
    let m = run("start: movl dst, r4 ; preload to prove it changes\n \
         movc3 #5, src, dst\n halt\n\
         src: .ascii \"HELLO\"\n .space 3\ndst: .space 8, 0xEE");
    assert_eq!(m.gpr(0), 0, "R0 cleared");
    assert!(m.psl().z(), "movc3 leaves Z set");
    // R3 is one past the destination end; read the copy back from memory.
    let dst = m.gpr(3) - 5;
    assert_eq!(m.read_phys(dst, 5).unwrap(), b"HELLO");
    assert_eq!(m.read_phys(dst + 5, 1).unwrap(), vec![0xEE], "no overrun");
}

#[test]
fn movc3_leaves_cursors() {
    let m = run("start: movc3 #3, src, dst\n halt\nsrc: .ascii \"abc\"\n .space 1\ndst: .space 4");
    // R1 = src end, R3 = dst end; check via distance.
    assert_eq!(m.gpr(3) - m.gpr(1), 4, "dst is 4 past src here");
}

#[test]
fn cmpc3_equal_and_differing() {
    let m = run("start: cmpc3 #3, a, b\n beql 1f\n movl #9, r5\n1: halt\n\
         a: .ascii \"abc\"\nb: .ascii \"abc\"");
    assert_eq!(m.gpr(5), 0, "equal strings set Z");
    assert_eq!(m.gpr(0), 0, "R0 = remaining = 0");

    let m = run("start: cmpc3 #3, a, b\n blss 1f\n movl #9, r5\n1: halt\n\
         a: .ascii \"abd\"\nb: .ascii \"abq\"");
    assert_eq!(m.gpr(5), 0, "d < q at the mismatch");
    assert_eq!(m.gpr(0), 1, "one byte remained at mismatch");
}

#[test]
fn locc_finds_byte() {
    let m = run("start: locc #'l', #5, str\n halt\nstr: .ascii \"hello\"");
    assert_eq!(m.gpr(0), 3, "bytes remaining at the first l");
    assert!(!m.psl().z());
    let m = run("start: locc #'z', #5, str\n halt\nstr: .ascii \"hello\"");
    assert_eq!(m.gpr(0), 0);
    assert!(m.psl().z(), "not found sets Z");
}

#[test]
fn insque_remque_round_trip() {
    let m = run(
        "start: moval head, r0\n movl r0, (r0)\n movl r0, 4(r0)   ; empty queue\n\
         insque e1, head\n bneq bad\n                              ; was empty → Z\n\
         insque e2, e1\n beql bad\n\
         remque @head, r3\n\
         movl head, r4\n halt\n\
         bad: movl #1, r9\n halt\n\
         head: .long 0, 0\n\
         e1: .long 0, 0\n\
         e2: .long 0, 0",
    );
    assert_eq!(m.gpr(9), 0);
    // After inserting e1 then e2-after-e1 and removing the head's first
    // element (e1), head should point at e2.
    let e1 = m.gpr(3);
    let head = m.gpr(4);
    assert_ne!(e1, head);
    assert_eq!(head, e1 + 8, "e2 follows e1 in the image");
}

#[test]
fn extzv_extracts() {
    let m = run(
        "start: extzv #4, #8, word, r1\n extzv #0, #4, word, r2\n halt\n\
         word: .long 0xABCD1234",
    );
    assert_eq!(m.gpr(1), 0x23);
    assert_eq!(m.gpr(2), 0x4);
}

#[test]
fn insv_inserts() {
    let m = run("start: insv #0xF, #4, #8, word\n movl word, r1\n halt\n\
         word: .long 0xABCD1234");
    assert_eq!(m.gpr(1), 0xABCD_10F4, "bits 4..12 replaced with 0x0F");
}

#[test]
fn extzv_rejects_wide_fields() {
    // size 30 > 24 → reserved operand fault; with no SCB the machine
    // ends up machine-checking into a triple fault — any non-halt exit.
    let full = format!(".org {ORG:#x}\nstart: extzv #0, #30, w, r1\n halt\nw: .long 0\n");
    let img = atum_asm::assemble(&full).unwrap();
    let mut m = Machine::new(MemLayout::small());
    for (addr, bytes) in img.segments() {
        m.write_phys(*addr, bytes).unwrap();
    }
    m.set_gpr(14, 0x8000);
    m.set_pc(ORG);
    // With SCBB = 0 the reserved-operand fault vectors through longword
    // 0x14 (which holds 0) and lands on opcode 0x00 = HALT at address 0.
    let exit = m.run(100_000);
    assert_eq!(exit, RunExit::Halted);
    assert!(
        m.pc() <= 4,
        "vectored to the null handler, pc={:#x}",
        m.pc()
    );
    assert_eq!(m.gpr(1), 0, "destination untouched");
    assert!(m.counts().exceptions >= 1);
}

// ── Reference counting sanity ─────────────────────────────────────────

#[test]
fn counts_track_references() {
    let m = run("start: movl data, r1\n movl r1, out\n halt\ndata: .long 5\nout: .long 0");
    let c = m.counts();
    assert!(c.ifetch >= 2, "several istream longwords fetched");
    assert_eq!(c.data_reads, 1);
    assert_eq!(c.data_writes, 1);
    assert!(m.cycles() > 0);
    // halt stops before its own boundary, so only the two moves count.
    assert_eq!(m.insns(), 2);
}

#[test]
fn console_output() {
    // MTPR of 'A' (65) to TXDB (32).
    let mut m = run("start: mtpr #65, #32\n mtpr #66, #32\n halt");
    assert_eq!(m.take_console_output(), b"AB");
}
