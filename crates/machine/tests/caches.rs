//! Invalidation edges of the machine's two derived caches: the
//! address-translation micro-cache (the `XlateCache` shadowing the TB)
//! and the predecoded `FastImage` keyed on the control-store version.
//!
//! The micro-cache is invisible by design — same faults, same TB stats,
//! same microcycle counts — so these tests pin the *behavioural*
//! consequences of each invalidation edge: a stale-permissive entry
//! surviving `Tbis`, a mapping-register write, or TBIA would show up
//! here as a read hitting the wrong frame or sailing past a protection
//! downgrade.
//!
//! Unlike the mapping tests in `system.rs`, the P0 page table here lives
//! *inside* the identity-mapped region, so the guest can rewrite its own
//! PTEs while the affected translations are hot.

use atum_arch::{PageProt, PrivReg, Pte};
use atum_machine::{Machine, MemLayout, RunExit};
use atum_ucode::MicroOp;

const ORG: u32 = 0x1000;
const SCB: u32 = 0x6000;
const KSTACK: u32 = 0x8000;
/// P0 page table, placed at page 56 so it is guest-writable through the
/// identity mapping.
const P0_TABLE: u32 = 0x7000;
/// Alternate P0 table for the mapping-register-write test (page 52).
const ALT_TABLE: u32 = 0x6800;
/// Pages 0..64 cover everything up to the kernel stack top at 0x8000.
const PAGES: u32 = 64;

fn load(src: &str) -> Machine {
    let full = format!(".org {ORG:#x}\n{src}\n");
    let img = atum_asm::assemble(&full).unwrap_or_else(|e| panic!("asm: {e}"));
    let mut m = Machine::new(MemLayout::small());
    for (addr, bytes) in img.segments() {
        m.write_phys(*addr, bytes).expect("load");
    }
    for (name, addr) in img.symbols() {
        if let Some(off) = name.strip_prefix("handler_at_") {
            let off = u32::from_str_radix(off, 16).expect("vector offset");
            m.write_phys(SCB + off, &addr.to_le_bytes()).unwrap();
        }
    }
    m.write_prv(PrivReg::Scbb, SCB);
    m.set_gpr(14, KSTACK);
    m.set_pc(img.symbol("start").expect("start"));
    m
}

/// Identity-maps pages 0..`PAGES` through a table the guest itself can
/// reach (and rewrite) at VA = PA = `P0_TABLE`.
fn setup_guest_visible_mapping(m: &mut Machine) {
    for vpn in 0..PAGES {
        let pte = Pte::new(vpn, PageProt::AllRw);
        m.write_phys(P0_TABLE + vpn * 4, &pte.0.to_le_bytes())
            .unwrap();
    }
    m.write_prv(PrivReg::P0br, P0_TABLE);
    m.write_prv(PrivReg::P0lr, PAGES);
}

/// The PTE slot for a P0 virtual address, as a guest-visible address.
fn pte_va(va: u32) -> u32 {
    P0_TABLE + (va >> 9) * 4
}

// ── Translation micro-cache invalidation edges ────────────────────────

/// `Tbis` on a hot page: the guest remaps vpn 32 from its identity frame
/// to frame 33 while the translation is held by both the TB and the
/// micro-cache. Before the invalidate, the old frame is (architecturally)
/// still visible; after `mtpr va, #58`, the next access must re-walk and
/// land in the new frame.
#[test]
fn tbis_drops_hot_translation_after_frame_change() {
    let remap = Pte::new(33, PageProt::AllRw).0;
    let src = format!(
        "start: mtpr #1, #56\n\
         movl #0xBEEF, @#0x4200       ; fill frame 33 via its own page\n\
         movl #0x5A5A, @#0x4000       ; page 32 hot (write, then read)\n\
         movl @#0x4000, r1\n\
         movl #{remap:#x}, @#{pte:#x} ; remap vpn 32 -> frame 33\n\
         movl @#0x4000, r2            ; not yet invalidated: old frame\n\
         mtpr #0x4000, #58            ; TBIS\n\
         movl @#0x4000, r3            ; re-walk: new frame\n halt",
        pte = pte_va(0x4000),
    );
    let mut m = load(&src);
    setup_guest_visible_mapping(&mut m);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.gpr(1), 0x5A5A);
    assert_eq!(m.gpr(2), 0x5A5A, "PTE edits need an invalidate to be seen");
    assert_eq!(m.gpr(3), 0xBEEF, "TBIS forced a re-walk to the new frame");
}

/// `Tbis` is a *single*-entry invalidate, and a protection downgrade must
/// not be masked by a stale-permissive cached translation. Both pages are
/// downgraded to no-access in memory; only page 32 is TBIS'd. Page 33
/// still reads fine off its hot (stale, architecturally legal) entry,
/// while the very next access to page 32 takes the access violation.
#[test]
fn tbis_is_single_entry_and_honours_protection_downgrade() {
    let noaccess = Pte::new(32, PageProt::NoAccess).0;
    let noaccess33 = Pte::new(33, PageProt::NoAccess).0;
    let src = format!(
        "start: mtpr #1, #56\n\
         movl #0xAAAA, @#0x4000       ; page 32 hot\n\
         movl #0xBBBB, @#0x4200       ; page 33 hot\n\
         movl #{noaccess:#x}, @#{pte32:#x}\n\
         movl #{noaccess33:#x}, @#{pte33:#x}\n\
         mtpr #0x4000, #58            ; TBIS page 32 only\n\
         movl @#0x4200, r2            ; page 33 untouched: still readable\n\
         movl @#0x4000, r1            ; page 32 re-walks: violates\n halt\n\
         handler_at_20: popl r7\n movl #1, r9\n halt",
        pte32 = pte_va(0x4000),
        pte33 = pte_va(0x4200),
    );
    let mut m = load(&src);
    setup_guest_visible_mapping(&mut m);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.gpr(2), 0xBBBB, "TBIS must not flush unrelated entries");
    assert_eq!(m.gpr(9), 1, "downgraded page faulted after TBIS");
    assert_eq!(m.gpr(7), 0x4000, "fault parameter is the downgraded VA");
    assert_eq!(m.gpr(1), 0, "the violating read never completed");
}

/// A mapping-register write flushes the micro-cache but — like the real
/// machine — not the TB: right after `mtpr table2, #p0br` the hot
/// translation still resolves through the *old* table (the micro-cache
/// must refill from the TB, not from the new table), and only TBIA
/// completes the switch.
#[test]
fn mapping_register_write_takes_effect_at_the_next_tb_invalidate() {
    let src = format!(
        "start: mtpr #1, #56\n\
         movl #0xBEEF, @#0x4200       ; fill frame 33\n\
         movl #0x5A5A, @#0x4000       ; page 32 hot\n\
         movl @#0x4000, r1\n\
         mtpr #{alt:#x}, #8           ; P0BR -> alternate table\n\
         movl @#0x4000, r2            ; TB still hot: old frame\n\
         mtpr #0, #57                 ; TBIA\n\
         movl @#0x4000, r3            ; re-walk via new table: frame 33\n halt",
        alt = ALT_TABLE,
    );
    let mut m = load(&src);
    setup_guest_visible_mapping(&mut m);
    // Alternate table: identity, except vpn 32 points at frame 33.
    for vpn in 0..PAGES {
        let pfn = if vpn == 32 { 33 } else { vpn };
        let pte = Pte::new(pfn, PageProt::AllRw);
        m.write_phys(ALT_TABLE + vpn * 4, &pte.0.to_le_bytes())
            .unwrap();
    }
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.gpr(1), 0x5A5A);
    assert_eq!(m.gpr(2), 0x5A5A, "P0BR write alone leaves the TB hot");
    assert_eq!(m.gpr(3), 0xBEEF, "TBIA re-walked through the new table");
    assert!(m.tlb_stats().full_flushes >= 1);
}

/// TBIA while hot: no stale translation survives a full invalidate — the
/// remapped PTE is honoured on the very next access.
#[test]
fn tbia_drops_every_hot_translation() {
    let remap = Pte::new(33, PageProt::AllRw).0;
    let src = format!(
        "start: mtpr #1, #56\n\
         movl #0xBEEF, @#0x4200\n\
         movl #0x5A5A, @#0x4000\n\
         movl @#0x4000, r1\n\
         movl #{remap:#x}, @#{pte:#x}\n\
         mtpr #0, #57                 ; TBIA\n\
         movl @#0x4000, r2\n halt",
        pte = pte_va(0x4000),
    );
    let mut m = load(&src);
    setup_guest_visible_mapping(&mut m);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.gpr(1), 0x5A5A);
    assert_eq!(m.gpr(2), 0xBEEF, "no stale translation survived TBIA");
    assert!(m.tlb_stats().misses >= 2, "re-walk after the flush");
}

// ── FastImage staleness ───────────────────────────────────────────────

/// The predecoded image is keyed on [`atum_ucode::ControlStore::version`]:
/// mutating the store bumps the version, and the next `fast_image()`
/// access rebuilds rather than serving the stale predecode. The machine
/// still runs correctly on the rebuilt image.
#[test]
fn fast_image_rebuilds_on_control_store_version_bump() {
    let mut m = load("start: movl #7, r1\n halt");
    let v0 = m.control_store().version();
    let len0 = {
        let img = m.fast_image();
        assert_eq!(img.version, v0);
        img.ops.len()
    };
    m.control_store_mut()
        .append_routine("test.pad", vec![MicroOp::Ret]);
    let v1 = m.control_store().version();
    assert!(v1 > v0, "store mutation must bump the version");
    let img = m.fast_image();
    assert_eq!(img.version, v1, "image rebuilt against the new version");
    assert_eq!(img.ops.len(), len0 + 1, "rebuilt image covers the new word");
    assert_eq!(m.run(100_000), RunExit::Halted);
    assert_eq!(m.gpr(1), 7, "machine still executes on the rebuilt image");
}
