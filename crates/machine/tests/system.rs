//! System-level machine tests: exception vectoring, traps, interrupts,
//! memory management, mode switching, context switching and fault
//! restartability — the behaviours the MOSS kernel is built on.

use atum_arch::{PageProt, PrivReg, Psl, Pte};
use atum_machine::{Machine, MemLayout, RunExit};

const ORG: u32 = 0x1000;
const SCB: u32 = 0x6000;
const KSTACK: u32 = 0x8000;

/// Assembles and loads `src` (which must define `start`), points SCBB at a
/// zeroed SCB page, and sets up a kernel stack. Does not run.
fn load(src: &str) -> Machine {
    let full = format!(".org {ORG:#x}\n{src}\n");
    let img = atum_asm::assemble(&full).unwrap_or_else(|e| panic!("asm: {e}"));
    let mut m = Machine::new(MemLayout::small());
    for (addr, bytes) in img.segments() {
        m.write_phys(*addr, bytes).expect("load");
    }
    // Wire any `vec_<name>` symbols into the SCB.
    for (name, addr) in img.symbols() {
        if let Some(off) = name.strip_prefix("handler_at_") {
            let off = u32::from_str_radix(off, 16).expect("vector offset");
            m.write_phys(SCB + off, &addr.to_le_bytes()).unwrap();
        }
    }
    m.write_prv(PrivReg::Scbb, SCB);
    m.set_gpr(14, KSTACK);
    m.set_pc(img.symbol("start").expect("start"));
    m
}

fn run(src: &str) -> Machine {
    let mut m = load(src);
    assert_eq!(m.run(5_000_000), RunExit::Halted, "did not halt");
    m
}

// ── Traps and faults ──────────────────────────────────────────────────

#[test]
fn chmk_traps_with_code_and_rei_returns() {
    let m = run("start: chmk #42\n movl #7, r2\n halt\n\
         handler_at_40: popl r1      ; parameter (the chmk code)\n rei");
    assert_eq!(m.gpr(1), 42, "handler saw the chmk code");
    assert_eq!(m.gpr(2), 7, "rei resumed after the chmk");
}

#[test]
fn reserved_opcode_faults() {
    let m = run("start: .byte 0xFF\n halt\n\
         handler_at_10: movl #1, r9\n halt");
    assert_eq!(m.gpr(9), 1);
    assert_eq!(m.counts().exceptions, 1);
}

#[test]
fn divide_by_zero_traps_with_code() {
    let m = run("start: movl #10, r1\n clrl r2\n divl3 r2, r1, r3\n halt\n\
         handler_at_30: popl r8\n rei");
    assert_eq!(m.gpr(8), 2, "arithmetic trap code 2 = divide by zero");
    assert_eq!(m.gpr(3), 0, "destination untouched");
}

#[test]
fn bpt_traps() {
    let m = run("start: bpt\n movl #5, r1\n halt\n\
         handler_at_2c: movl #1, r9\n rei");
    assert_eq!(m.gpr(9), 1);
    assert_eq!(m.gpr(1), 5, "trap PC was past the bpt");
}

#[test]
fn fault_pushes_faulting_pc_and_restarts() {
    // Read through r1 pointing outside physical memory; the handler fixes
    // r1 to a valid buffer and reis — the instruction must restart and
    // succeed, proving the PC pushed was the *faulting* instruction's and
    // that autoincrement side effects were rolled back.
    let m = run("start: movl #0x00700000, r1   ; beyond 4 MiB of memory\n\
         movl (r1)+, r2\n halt\n\
         handler_at_24: popl r7        ; faulting VA parameter\n\
         moval data, r1                ; repair\n rei\n\
         data: .long 0xFEED");
    assert_eq!(m.gpr(7), 0x0070_0000, "fault parameter is the VA");
    assert_eq!(m.gpr(2), 0xFEED, "instruction restarted after repair");
}

#[test]
fn autoincrement_rolled_back_on_fault() {
    let m = run("start: movl #0x00700000, r1\n movl (r1)+, r2\n halt\n\
         handler_at_24: popl r7        ; discard the VA parameter\n\
         movl r1, r6                   ; observe r1 inside the handler\n\
         moval data, r1\n rei\n\
         data: .long 1");
    assert_eq!(m.gpr(6), 0x0070_0000, "autoincrement was unwound");
}

#[test]
fn trace_bit_single_steps() {
    // Kernel enables T in the PSL it reis to; each subsequent instruction
    // then takes a trace trap. The handler counts them and clears T after
    // three, letting the program finish.
    let m = run("start: clrl r6\n\
         pushal traced\n                ; PC\n\
         mfpr #18, r0                   ; current IPL (reuse as scratch)\n\
         movl (sp), r1\n popl r1\n\
         pushl #0x10                    ; PSL with T set, kernel, IPL 0\n\
         pushl r1\n rei\n\
         traced: incl r2\n incl r2\n incl r2\n incl r2\n halt\n\
         handler_at_28: incl r6\n cmpl r6, #3\n bneq 1f\n\
         bicl2 #0x10, 4(sp)             ; clear T in the saved PSL\n\
         1: rei");
    assert_eq!(m.gpr(6), 3, "three trace traps");
    assert_eq!(m.gpr(2), 4, "program still completed");
}

// ── Interrupts ────────────────────────────────────────────────────────

#[test]
fn interval_timer_interrupts() {
    let m = run("start: clrl r6\n\
         mtpr #500, #25      ; ICR: every 500 cycles\n\
         mtpr #0x41, #24     ; ICCS: run + interrupt enable\n\
         mtpr #0, #18        ; IPL 0 opens the gate\n\
         loop: cmpl r6, #3\n blss loop\n\
         mtpr #0, #24        ; stop the clock\n halt\n\
         handler_at_c0: incl r6\n rei");
    assert_eq!(m.gpr(6), 3);
    assert_eq!(m.counts().interrupts, 3);
}

#[test]
fn timer_blocked_above_its_ipl() {
    // At IPL 31 the timer must never deliver.
    let mut m = load(
        "start: mtpr #200, #25\n mtpr #0x41, #24\n\
         movl #2000, r1\n loop: sobgtr r1, loop\n halt\n\
         handler_at_c0: incl r6\n rei",
    );
    assert_eq!(m.run(5_000_000), RunExit::Halted);
    assert_eq!(m.gpr(6), 0);
    assert_eq!(m.counts().interrupts, 0);
}

#[test]
fn software_interrupt_via_sirr() {
    let m = run("start: mtpr #3, #19     ; request soft IRQ level 3\n\
         movl #1, r1            ; still blocked: boot IPL is 31\n\
         mtpr #0, #18           ; open the gate\n\
         movl #2, r2\n halt\n\
         handler_at_8c: movl r1, r7\n incl r6\n rei");
    assert_eq!(m.gpr(6), 1, "delivered exactly once");
    assert_eq!(m.gpr(7), 1, "delivery waited for the IPL drop");
}

#[test]
fn interrupt_priority_nesting() {
    // A level-2 handler requests level 5 mid-flight; level 5 preempts it
    // because the handler runs at IPL 2.
    let m = run("start: clrl r6\n clrl r7\n\
         mtpr #2, #19\n mtpr #0, #18\n\
         movl #1, r9\n halt\n\
         handler_at_88: movl #1, r6\n\
         mtpr #5, #19          ; higher level preempts immediately\n\
         movl r7, r8           ; r8 records whether 5 already ran\n\
         rei\n\
         handler_at_94: movl #1, r7\n rei");
    assert_eq!(m.gpr(6), 1);
    assert_eq!(m.gpr(7), 1);
    assert_eq!(m.gpr(8), 1, "level 5 ran before level 2 finished");
}

// ── Mode switching ────────────────────────────────────────────────────

/// PSL image for user mode, IPL 0.
fn user_psl() -> u32 {
    let mut p = Psl::new();
    p.set_ipl(0);
    p.set_mode(atum_arch::CpuMode::User);
    p.bits()
}

#[test]
fn rei_to_user_and_chmk_back() {
    let src = format!(
        "start: mtpr #0x7000, #3     ; USP\n\
         pushl #{psl:#x}\n pushal user\n rei\n\
         user: movl #5, r1\n chmk #9\n\
         unreachable: halt\n\
         handler_at_40: popl r2      ; code\n movl r1, r3\n halt",
        psl = user_psl()
    );
    let m = run(&src);
    assert_eq!(m.gpr(2), 9);
    assert_eq!(m.gpr(3), 5, "user computation visible in kernel");
    assert!(m.is_kernel());
}

#[test]
fn user_mode_halt_is_privileged() {
    let src = format!(
        "start: mtpr #0x7000, #3\n pushl #{psl:#x}\n pushal user\n rei\n\
         user: halt\n\
         handler_at_10: movl #1, r9\n halt",
        psl = user_psl()
    );
    let m = run(&src);
    assert_eq!(m.gpr(9), 1, "user halt vectored to reserved-instruction");
}

#[test]
fn user_mode_mtpr_is_privileged() {
    let src = format!(
        "start: mtpr #0x7000, #3\n pushl #{psl:#x}\n pushal user\n rei\n\
         user: mtpr #0, #18\n\
         handler_at_10: movl #1, r9\n halt",
        psl = user_psl()
    );
    let m = run(&src);
    assert_eq!(m.gpr(9), 1);
}

#[test]
fn stack_pointers_bank_on_mode_switch() {
    let src = format!(
        "start: mtpr #0x7000, #3\n pushl #{psl:#x}\n pushal user\n rei\n\
         user: pushl #77\n chmk #0\n\
         handler_at_40: popl r1        ; code\n\
         mfpr #3, r2                  ; user SP after its push\n\
         movl sp, r3                  ; kernel SP\n halt",
        psl = user_psl()
    );
    let m = run(&src);
    assert_eq!(m.gpr(2), 0x7000 - 4, "USP reflects the user push");
    assert!(m.gpr(3) <= KSTACK, "kernel stack in use for the trap");
    let user_word = m.read_phys(0x7000 - 4, 4).unwrap();
    assert_eq!(u32::from_le_bytes(user_word.try_into().unwrap()), 77);
}

// ── Memory management ─────────────────────────────────────────────────

/// Builds identity page tables: P0 covering `pages` pages with `p0_prot`,
/// system space mapping the same physical range at 0x8000_0000.
fn setup_mapping(m: &mut Machine, pages: u32, p0_prot: PageProt) {
    let p0_table = 0x0010_0000u32;
    let sys_table = 0x0011_0000u32;
    for vpn in 0..pages {
        let pte = Pte::new(vpn, p0_prot);
        m.write_phys(p0_table + vpn * 4, &pte.0.to_le_bytes())
            .unwrap();
        let spte = Pte::new(vpn, PageProt::KernelRw);
        m.write_phys(sys_table + vpn * 4, &spte.0.to_le_bytes())
            .unwrap();
    }
    m.write_prv(PrivReg::P0br, p0_table);
    m.write_prv(PrivReg::P0lr, pages);
    m.write_prv(PrivReg::Sbr, sys_table);
    m.write_prv(PrivReg::Slr, pages);
}

#[test]
fn mapping_translates_and_system_alias_works() {
    let mut m = load(
        "start: mtpr #1, #56          ; MAPEN\n\
         movl #0xABCD, @#0x80002000   ; write via system alias\n\
         movl @#0x2000, r1            ; read via P0 identity\n halt",
    );
    setup_mapping(&mut m, 64, PageProt::AllRw);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.gpr(1), 0xABCD);
    assert!(m.tlb_stats().misses > 0, "walks happened");
    assert!(m.counts().pte_reads > 0);
}

#[test]
fn user_write_to_kernel_page_violates() {
    let user = user_psl();
    let src = format!(
        "start: mtpr #1, #56\n mtpr #0x7000, #3\n\
         pushl #{user:#x}\n pushal user\n rei\n\
         user: movl #1, @#0x3000\n halt\n\
         handler_at_20: popl r7\n movl #1, r9\n halt"
    );
    let mut m = load(&src);
    setup_mapping(&mut m, 64, PageProt::KernelRwUserR);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.gpr(9), 1, "access violation taken");
    assert_eq!(m.gpr(7), 0x3000, "VA parameter pushed");
}

#[test]
fn user_read_of_user_readable_page_is_fine() {
    let user = user_psl();
    let src = format!(
        "start: mtpr #1, #56\n mtpr #0x7000, #3\n\
         movl #0x5A5A, @#0x3000\n\
         pushl #{user:#x}\n pushal user\n rei\n\
         user: movl @#0x3000, r1\n chmk #0\n\
         handler_at_40: popl r0\n halt"
    );
    let mut m = load(&src);
    setup_mapping(&mut m, 64, PageProt::KernelRwUserR);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.gpr(1), 0x5A5A);
}

#[test]
fn invalid_pte_page_faults_with_va() {
    let mut m = load(
        "start: mtpr #1, #56\n movl @#0x9000, r1\n halt\n\
         handler_at_24: popl r7\n movl #1, r9\n halt",
    );
    // Map 64 pages (up to 0x8000, covering code and the kernel stack);
    // VA 0x9000 is page 72 — beyond P0LR.
    setup_mapping(&mut m, 64, PageProt::AllRw);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.gpr(9), 1);
    assert_eq!(m.gpr(7), 0x9000);
}

#[test]
fn modify_bit_set_on_first_write() {
    let mut m = load(
        "start: mtpr #1, #56\n\
         movl @#0x2000, r1            ; read: M stays clear\n\
         movl #1, @#0x2200\n halt     ; write to the next page: M set",
    );
    setup_mapping(&mut m, 64, PageProt::AllRw);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    let p0_table = 0x0010_0000u32;
    let read_pte = Pte(u32::from_le_bytes(
        m.read_phys(p0_table + (0x2000 >> 9) * 4, 4)
            .unwrap()
            .try_into()
            .unwrap(),
    ));
    let write_pte = Pte(u32::from_le_bytes(
        m.read_phys(p0_table + (0x2200 >> 9) * 4, 4)
            .unwrap()
            .try_into()
            .unwrap(),
    ));
    assert!(!read_pte.modified());
    assert!(write_pte.modified());
}

#[test]
fn tbia_flushes_translation_buffer() {
    let mut m = load(
        "start: mtpr #1, #56\n\
         movl @#0x2000, r1\n movl @#0x2000, r2\n\
         mtpr #0, #57                 ; TBIA\n\
         movl @#0x2000, r3\n halt",
    );
    setup_mapping(&mut m, 64, PageProt::AllRw);
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    let s = m.tlb_stats();
    assert!(s.full_flushes >= 1);
    assert!(s.misses >= 2, "re-walk after the flush");
}

// ── Context switching ─────────────────────────────────────────────────

#[test]
fn svpctx_ldpctx_round_trip() {
    // PCB A at 0x9000, PCB B at 0x9100. The program pretends to be inside
    // an exception frame (pushes PSL/PC), saves into A, loads B (prepared
    // by the host) and reis into `ctxb`.
    let psl_kernel_ipl0 = {
        let mut p = Psl::new();
        p.set_ipl(0);
        p.bits()
    };
    let src = format!(
        "start: mtpr #0x9000, #16     ; PCBB = A\n\
         movl #0x1111, r1\n movl #0x2222, r2\n\
         pushl #{psl:#x}\n pushal resume_a\n\
         svpctx\n\
         mtpr #0x9100, #16           ; PCBB = B\n\
         ldpctx\n rei\n\
         resume_a: movl #0xAAAA, r9\n halt\n\
         ctxb: movl r1, r5\n movl r2, r6\n halt",
        psl = psl_kernel_ipl0
    );
    let mut m = load(&src);

    // Prepare PCB B by hand: registers, PC = ctxb, PSL kernel IPL 0.
    let img = atum_asm::assemble(&format!(".org {ORG:#x}\n{src}\n")).unwrap();
    let ctxb = img.symbol("ctxb").unwrap();
    let pcb_b = 0x9100u32;
    let mut pcb = vec![0u8; 92];
    pcb[0..4].copy_from_slice(&0x7800u32.to_le_bytes()); // KSP
    pcb[8 + 4..8 + 8].copy_from_slice(&0xB001u32.to_le_bytes()); // R1
    pcb[8 + 8..8 + 12].copy_from_slice(&0xB002u32.to_le_bytes()); // R2
    pcb[64..68].copy_from_slice(&ctxb.to_le_bytes()); // PC
    pcb[68..72].copy_from_slice(&psl_kernel_ipl0.to_le_bytes()); // PSL
    m.write_phys(pcb_b, &pcb).unwrap();

    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.gpr(5), 0xB001, "context B registers loaded");
    assert_eq!(m.gpr(6), 0xB002);
    assert_eq!(m.gpr(9), 0, "context A not resumed");

    // Context A's PCB captured the live values.
    let pcb_a = m.read_phys(0x9000, 92).unwrap();
    let r1 = u32::from_le_bytes(pcb_a[12..16].try_into().unwrap());
    let r2 = u32::from_le_bytes(pcb_a[16..20].try_into().unwrap());
    let pc = u32::from_le_bytes(pcb_a[64..68].try_into().unwrap());
    assert_eq!(r1, 0x1111);
    assert_eq!(r2, 0x2222);
    assert_eq!(pc, img.symbol("resume_a").unwrap());
}

#[test]
fn ldpctx_flushes_process_tlb_entries() {
    let mut m = load(
        "start: mtpr #1, #56\n\
         movl @#0x2000, r1            ; P0 entry cached\n\
         movl @#0x80002000, r2        ; system entry cached\n\
         mtpr #0x9000, #16\n ldpctx\n\
         halt",
    );
    setup_mapping(&mut m, 64, PageProt::AllRw);
    // A PCB that "loads" the same context back (identity round trip).
    let mut pcb = vec![0u8; 92];
    pcb[0..4].copy_from_slice(&(KSTACK - 0x100).to_le_bytes());
    pcb[64..68].copy_from_slice(&ORG.to_le_bytes());
    pcb[68..72].copy_from_slice(&Psl::new().bits().to_le_bytes());
    pcb[72..76].copy_from_slice(&0x0010_0000u32.to_le_bytes()); // P0BR
    pcb[76..80].copy_from_slice(&64u32.to_le_bytes()); // P0LR
    m.write_phys(0x9000, &pcb).unwrap();
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert!(m.tlb_stats().proc_flushes >= 1);
}

// ── Fatal paths ───────────────────────────────────────────────────────

#[test]
fn triple_fault_detected() {
    // SCBB points at an unmapped region and the kernel stack is outside
    // memory: exception entry faults, its machine check faults again.
    let mut m = Machine::new(MemLayout::small());
    m.write_phys(0x100, &[0xFF]).unwrap(); // reserved opcode
    m.write_prv(PrivReg::Scbb, 0x6000);
    m.set_gpr(14, 0x00F0_0000); // kernel stack outside the 4 MiB
    m.set_pc(0x100);
    assert_eq!(m.run(100_000), RunExit::TripleFault);
}

#[test]
fn cycle_limit_exit() {
    let mut m = load("start: brb start");
    assert_eq!(m.run(10_000), RunExit::CycleLimit);
    assert!(m.cycles() >= 10_000);
}
