//! Device behaviour and failure-injection tests: console I/O, timer
//! control, micro-architecture error paths, and fault-handling edges.

use atum_arch::Opcode;
use atum_machine::{Machine, MemLayout, RunExit};
use atum_ucode::{Entry, MicroAsm, MicroOp, MicroReg};

const ORG: u32 = 0x1000;

fn load(src: &str) -> Machine {
    let full = format!(".org {ORG:#x}\n{src}\n");
    let img = atum_asm::assemble(&full).unwrap();
    let mut m = Machine::new(MemLayout::small());
    for (addr, bytes) in img.segments() {
        m.write_phys(*addr, bytes).unwrap();
    }
    m.set_gpr(14, 0x8000);
    m.set_pc(img.symbol("start").unwrap_or(ORG));
    m
}

// ── Console ───────────────────────────────────────────────────────────

#[test]
fn console_receive_path() {
    // Poll RXCS (35) until a byte is available, read RXDB (34), echo it.
    let mut m = load(
        "start:\n\
         poll: mfpr #35, r1\n tstl r1\n beql poll\n \
         mfpr #34, r2\n mtpr r2, #32\n halt",
    );
    m.push_console_input(b'Q');
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.take_console_output(), b"Q");
}

#[test]
fn console_input_consumed_in_order() {
    let mut m = load(
        "start: movl #3, r6\n\
         loop: mfpr #34, r2\n mtpr r2, #32\n sobgtr r6, loop\n halt",
    );
    for b in b"abc" {
        m.push_console_input(*b);
    }
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.take_console_output(), b"abc");
    // Empty queue reads as 0.
    let mut m = load("start: mfpr #34, r2\n mtpr r2, #32\n halt");
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.take_console_output(), vec![0]);
}

#[test]
fn txcs_always_ready() {
    let mut m = load("start: mfpr #33, r1\n halt");
    assert_eq!(m.run(100_000), RunExit::Halted);
    assert_eq!(m.gpr(1) & 0x80, 0x80);
}

// ── Timer control edges ───────────────────────────────────────────────

#[test]
fn timer_pending_bit_clearable() {
    // Run the clock with interrupts *disabled*: the pending bit latches
    // in ICCS, is visible to MFPR, and clears on a write-1.
    let mut m = load(
        "start: mtpr #100, #25\n mtpr #1, #24     ; run, no IE\n\
         movl #400, r1\n 1: sobgtr r1, 1b\n\
         mfpr #24, r2                            ; pending visible\n\
         mtpr #0x80, #24                         ; stop clock + clear pending\n\
         mfpr #24, r3\n halt",
    );
    assert_eq!(m.run(10_000_000), RunExit::Halted);
    assert_eq!(m.gpr(2) & 0x80, 0x80, "pending latched");
    assert_eq!(m.gpr(3) & 0x80, 0, "pending cleared by write-1");
    assert_eq!(m.counts().interrupts, 0, "IE off: never delivered");
}

#[test]
fn stopping_the_clock_stops_ticks() {
    let mut m = load(
        "start: mtpr #200, #25\n mtpr #0x41, #24\n mtpr #0, #18\n\
         spin1: cmpl r6, #2\n blss spin1\n\
         mtpr #0, #24          ; stop\n\
         movl r6, r7\n\
         movl #5000, r1\n 1: sobgtr r1, 1b\n\
         movl r6, r8\n halt\n",
    );
    // Interrupt handler: SCBB defaults to 0; install vector by hand.
    let img = atum_asm::assemble(".org 0x3000\nhandler: incl r6\n rei\n").unwrap();
    for (a, b) in img.segments() {
        m.write_phys(*a, b).unwrap();
    }
    m.write_phys(0xC0, &0x3000u32.to_le_bytes()).unwrap();
    assert_eq!(m.run(50_000_000), RunExit::Halted);
    assert_eq!(m.gpr(7), m.gpr(8), "no ticks after the clock stops");
    assert!(m.gpr(7) >= 2);
}

// ── Micro-architecture error paths ────────────────────────────────────

#[test]
fn micro_stack_overflow_detected() {
    let mut m = Machine::new(MemLayout::small());
    // A micro-routine that calls itself forever.
    let addr = {
        let cs = m.control_store_mut();
        let mut ua = MicroAsm::new();
        ua.global("test.recurse");
        ua.call("test.recurse");
        ua.ret();
        ua.commit(cs).unwrap()
    };
    m.control_store_mut().set_entry(Entry::Fetch, addr);
    m.set_pc(0);
    match m.run(100_000) {
        RunExit::MicroError(msg) => assert!(msg.contains("overflow"), "{msg}"),
        other => panic!("expected micro-stack overflow, got {other:?}"),
    }
}

#[test]
fn micro_stack_underflow_detected() {
    let mut m = Machine::new(MemLayout::small());
    let addr = {
        let cs = m.control_store_mut();
        let mut ua = MicroAsm::new();
        ua.global("test.underflow");
        ua.ret();
        ua.commit(cs).unwrap()
    };
    m.control_store_mut().set_entry(Entry::Fetch, addr);
    m.set_pc(0);
    match m.run(100_000) {
        RunExit::MicroError(msg) => assert!(msg.contains("underflow"), "{msg}"),
        other => panic!("expected micro-stack underflow, got {other:?}"),
    }
}

#[test]
fn bad_dynamic_size_latch_detected() {
    let mut m = Machine::new(MemLayout::small());
    let addr = {
        let cs = m.control_store_mut();
        let mut ua = MicroAsm::new();
        ua.global("test.badsize");
        ua.op(MicroOp::SetSizeDyn(MicroReg::Imm(3)));
        ua.op(MicroOp::Halt);
        ua.commit(cs).unwrap()
    };
    m.control_store_mut().set_entry(Entry::Fetch, addr);
    m.set_pc(0);
    assert!(matches!(m.run(1_000), RunExit::MicroError(_)));
}

#[test]
fn custom_microroutine_via_patch_api() {
    // Install a replacement for the NOP opcode that increments T0-visible
    // state (a GPR) — the WCS mechanism exercised outside the tracer.
    let mut m = Machine::new(MemLayout::small());
    let addr = {
        let cs = m.control_store_mut();
        let mut ua = MicroAsm::new();
        ua.global("test.fastnop");
        ua.op(MicroOp::Alu {
            op: atum_ucode::AluOp::Add,
            a: MicroReg::Gpr(11),
            b: MicroReg::Imm(1),
            dst: MicroReg::Gpr(11),
            cc: atum_ucode::CcEffect::None,
            size: atum_arch::DataSize::Long,
        });
        ua.decode_next();
        ua.commit(cs).unwrap()
    };
    m.control_store_mut()
        .set_opcode_target(Opcode::Nop.to_byte(), addr);
    m.write_phys(0x200, &[1, 1, 1, 0]).unwrap(); // nop nop nop halt
    m.set_pc(0x200);
    assert_eq!(m.run(100_000), RunExit::Halted);
    assert_eq!(m.gpr(11), 3, "patched nop counted its executions");
}

// ── Fault-path edges ──────────────────────────────────────────────────

#[test]
fn jumping_into_unmapped_space_faults_with_pc_param() {
    let mut m = load("start: jmp @#0x00700000\n halt");
    // SCB: translation-invalid vector → handler.
    let img = atum_asm::assemble(".org 0x3000\nh: popl r7\n movl #1, r9\n halt\n").unwrap();
    for (a, b) in img.segments() {
        m.write_phys(*a, b).unwrap();
    }
    m.write_phys(0x24, &0x3000u32.to_le_bytes()).unwrap();
    assert_eq!(m.run(1_000_000), RunExit::Halted);
    assert_eq!(m.gpr(9), 1);
    assert_eq!(m.gpr(7), 0x0070_0000, "faulting I-fetch VA reported");
}

#[test]
fn movc3_restarts_cleanly_after_fault() {
    // Copy that starts with an unmapped destination; the handler maps it
    // by swapping in a valid pointer and the instruction restarts with
    // its side effects rolled back.
    let mut m = load(
        "start: moval src, r6\n movl #0x00700000, r7\n\
         movc3 #8, (r6), (r7)\n\
         movl dst, r4\n halt\n\
         h: popl r1\n moval dst, r7\n rei\n\
         src: .ascii \"ABCDEFGH\"\ndst: .space 8",
    );
    let img = atum_asm::assemble(&format!(
        ".org {ORG:#x}\nstart: moval src, r6\n movl #0x00700000, r7\n\
         movc3 #8, (r6), (r7)\n\
         movl dst, r4\n halt\n\
         h: popl r1\n moval dst, r7\n rei\n\
         src: .ascii \"ABCDEFGH\"\ndst: .space 8\n"
    ))
    .unwrap();
    m.write_phys(0x24, &img.symbol("h").unwrap().to_le_bytes())
        .unwrap();
    assert_eq!(m.run(5_000_000), RunExit::Halted);
    assert_eq!(
        &m.gpr(4).to_le_bytes(),
        b"ABCD",
        "copy completed after repair"
    );
}

#[test]
fn halted_machine_stays_halted_until_resume() {
    let mut m = load("start: halt\n movl #7, r1\n halt");
    assert_eq!(m.run(100_000), RunExit::Halted);
    assert_eq!(m.gpr(1), 0);
    assert_eq!(m.run(100_000), RunExit::Halted, "still halted");
    assert_eq!(m.gpr(1), 0, "no progress without resume");
    m.resume();
    assert_eq!(m.run(100_000), RunExit::Halted);
    assert_eq!(m.gpr(1), 7, "resumed past the first halt");
}

// ── Instruction-buffer semantics ──────────────────────────────────────

#[test]
fn self_modifying_code_visible_after_branch() {
    // VAX rule: writes into the instruction stream are only guaranteed
    // visible after a branch (which refills the prefetch buffer). Patch
    // a downstream `movl #1, r9` into `movl #2, r9`, branch to it, and
    // observe the new value.
    let mut m = load(
        "start: movb #2, patch+1    ; rewrite the literal operand\n\
         brb target                 ; branch flushes the prefetch buffer\n\
         target:\n\
         patch: movl #1, r9\n\
         halt",
    );
    assert_eq!(m.run(100_000), RunExit::Halted);
    assert_eq!(m.gpr(9), 2, "patched instruction executed");
}

#[test]
fn prefetch_buffer_may_hide_adjacent_store() {
    // The write lands in the same prefetch longword the CPU is executing
    // from; with no intervening branch the stale byte may execute. This
    // documents the (VAX-authentic) behaviour rather than demanding it:
    // either the old or the new literal is acceptable, nothing else.
    let mut m = load(
        "start: movb #7, next+1\n\
         next: movl #1, r9\n\
         halt",
    );
    assert_eq!(m.run(100_000), RunExit::Halted);
    assert!(
        m.gpr(9) == 1 || m.gpr(9) == 7,
        "saw {} — neither stale nor updated literal",
        m.gpr(9)
    );
}

// ── Stepping API ──────────────────────────────────────────────────────

#[test]
fn step_insns_stops_at_instruction_granularity() {
    let mut m = load("start: movl #1, r1\n movl #2, r2\n movl #3, r3\n halt");
    assert_eq!(m.step_insns(1, 1_000_000), None);
    assert_eq!(m.gpr(1), 1);
    assert_eq!(m.gpr(2), 0, "second insn not yet executed");
    assert_eq!(m.step_insns(1, 1_000_000), None);
    assert_eq!(m.gpr(2), 2);
    // Run to the halt.
    assert_eq!(m.step_insns(10, 1_000_000), Some(RunExit::Halted));
    assert_eq!(m.gpr(3), 3);
}

#[test]
fn step_insns_reports_cycle_limit() {
    let mut m = load("start: brb start");
    assert_eq!(m.step_insns(1_000_000, 5_000), Some(RunExit::CycleLimit));
}
