//! Memory management: translation buffer and hardware PTE walk.
//!
//! VAX-style single-level page tables per region (see [`atum_arch::mem`]).
//! The translation buffer is a direct-mapped array of [`TB_ENTRIES`]
//! entries tagged by global VPN; process-region entries (P0/P1) carry a
//! `per_process` flag so `ldpctx`'s `TbFlushProc` can drop exactly them,
//! which is what makes multiprogramming visible to the TLB studies.
//!
//! This TB is the *functional* one inside the machine; the evaluation's
//! TLB experiments run trace-driven simulations in `atum-cache` instead
//! (the paper's methodology — traces first, memory-system studies after).

use atum_arch::{Exception, PageProt, Pte, Region, VirtAddr, PAGE_SHIFT};

/// Number of translation-buffer entries.
pub const TB_ENTRIES: usize = 256;

/// Access intent for a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read (instruction fetch or data load).
    Read,
    /// Write (data store).
    Write,
}

#[derive(Debug, Clone, Copy, Default)]
struct TbEntry {
    valid: bool,
    tag: u32,
    pte: Pte,
    per_process: bool,
}

/// Translation-buffer statistics (functional TB, not the studied one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed and walked.
    pub misses: u64,
    /// Entries dropped by process flushes.
    pub proc_flushes: u64,
    /// Entries dropped by full flushes.
    pub full_flushes: u64,
}

/// The translation buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<TbEntry>,
    stats: TlbStats,
}

impl Tlb {
    /// An empty TB.
    pub fn new() -> Tlb {
        Tlb {
            entries: vec![TbEntry::default(); TB_ENTRIES],
            stats: TlbStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Records a hit without probing (the translation micro-cache fronts
    /// the TB; its hits are, by construction, TB hits, and the statistics
    /// must not notice the shortcut).
    #[inline]
    pub(crate) fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Looks up a global VPN; hit returns the cached PTE.
    pub fn lookup(&mut self, gvpn: u32) -> Option<Pte> {
        let e = &self.entries[(gvpn as usize) % TB_ENTRIES];
        if e.valid && e.tag == gvpn {
            self.stats.hits += 1;
            Some(e.pte)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Installs a translation.
    pub fn insert(&mut self, gvpn: u32, pte: Pte, per_process: bool) {
        self.entries[(gvpn as usize) % TB_ENTRIES] = TbEntry {
            valid: true,
            tag: gvpn,
            pte,
            per_process,
        };
    }

    /// Updates the cached PTE for a VPN if present (modify-bit setting).
    pub fn update(&mut self, gvpn: u32, pte: Pte) {
        let e = &mut self.entries[(gvpn as usize) % TB_ENTRIES];
        if e.valid && e.tag == gvpn {
            e.pte = pte;
        }
    }

    /// Invalidates everything.
    pub fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
        self.stats.full_flushes += 1;
    }

    /// Invalidates per-process (P0/P1) entries only.
    pub fn flush_process(&mut self) {
        for e in &mut self.entries {
            if e.per_process {
                e.valid = false;
            }
        }
        self.stats.proc_flushes += 1;
    }

    /// Invalidates the entry covering one virtual address.
    pub fn flush_single(&mut self, va: u32) {
        let gvpn = va >> PAGE_SHIFT;
        let e = &mut self.entries[(gvpn as usize) % TB_ENTRIES];
        if e.valid && e.tag == gvpn {
            e.valid = false;
        }
    }
}

impl Default for Tlb {
    fn default() -> Tlb {
        Tlb::new()
    }
}

// ── The translation micro-cache ───────────────────────────────────────

/// One pre-resolved translation: the page's physical base plus the
/// protection needed to re-check access rights under the *current* CPU
/// mode (mode can change between installs, so the decision itself is
/// never cached).
#[derive(Debug, Clone, Copy)]
pub(crate) struct XcEntry {
    valid: bool,
    tag: u32,
    pa_base: u32,
    prot: PageProt,
    /// The PTE's modified bit was set at install time, so a write hit
    /// needs no modify-bit write-back.
    write_ok: bool,
}

impl Default for XcEntry {
    fn default() -> XcEntry {
        XcEntry {
            valid: false,
            tag: 0,
            pa_base: 0,
            prot: PageProt::NoAccess,
            write_ok: false,
        }
    }
}

/// A host-side direct-mapped VPN → (frame base, protection) array in
/// front of [`Machine::translate`]: the aligned in-page hit path does no
/// PTE walk, no TB probe and builds no `Result`.
///
/// **Correctness invariant:** a valid entry is always a shadow of the
/// *current* content of the TB slot with the same index ([`TB_ENTRIES`]
/// entries, same `gvpn % N` index function). `Machine::translate`
/// invalidates the slot whenever the TB slot's tag changes and installs
/// only on full success, so a micro-cache hit is exactly the set of
/// accesses the TB would also have served — microcycle counts, PTE-read
/// counts and TB statistics cannot tell the two paths apart. A stale
/// *conservative* entry (invalid, or missing a permission the TB would
/// grant) merely falls back to the slow path; a stale *permissive* entry
/// can never exist.
///
/// [`Machine::translate`]: crate::Machine
#[derive(Debug, Clone)]
pub(crate) struct XlateCache {
    entries: Vec<XcEntry>,
}

impl XlateCache {
    pub(crate) fn new() -> XlateCache {
        XlateCache {
            entries: vec![XcEntry::default(); TB_ENTRIES],
        }
    }

    /// Read probe: frame base if present and readable in `mode`.
    #[inline]
    pub(crate) fn probe_read(&self, gvpn: u32, mode: atum_arch::CpuMode) -> Option<u32> {
        let e = &self.entries[(gvpn as usize) % TB_ENTRIES];
        if e.valid && e.tag == gvpn && e.prot.allows_read(mode) {
            Some(e.pa_base)
        } else {
            None
        }
    }

    /// Write probe: frame base if present, writable in `mode`, and the
    /// modified bit needs no write-back.
    #[inline]
    pub(crate) fn probe_write(&self, gvpn: u32, mode: atum_arch::CpuMode) -> Option<u32> {
        let e = &self.entries[(gvpn as usize) % TB_ENTRIES];
        if e.valid && e.tag == gvpn && e.write_ok && e.prot.allows_write(mode) {
            Some(e.pa_base)
        } else {
            None
        }
    }

    /// Installs a translation (only ever called after a fully successful
    /// `Machine::translate`, which is what keeps the shadow invariant).
    #[inline]
    pub(crate) fn install(&mut self, gvpn: u32, pa_base: u32, prot: PageProt, write_ok: bool) {
        self.entries[(gvpn as usize) % TB_ENTRIES] = XcEntry {
            valid: true,
            tag: gvpn,
            pa_base,
            prot,
            write_ok,
        };
    }

    /// Invalidates the slot that covers `gvpn`, whatever its tag (used
    /// when the TB slot's content changes under it).
    #[inline]
    pub(crate) fn invalidate_slot(&mut self, gvpn: u32) {
        self.entries[(gvpn as usize) % TB_ENTRIES].valid = false;
    }

    /// Drops everything (TB flushes and mapping-register writes).
    pub(crate) fn flush_all(&mut self) {
        for e in &mut self.entries {
            e.valid = false;
        }
    }
}

/// Outcome of a hardware walk: the PTE plus how many PTE reads it took
/// (cycle accounting).
#[derive(Debug, Clone, Copy)]
pub struct WalkResult {
    /// The page-table entry found.
    pub pte: Pte,
    /// PTE memory reads performed.
    pub pte_reads: u32,
}

/// Walks the page tables for `va`. `read_phys` reads physical longwords.
///
/// # Errors
///
/// `TranslationInvalid` for out-of-bounds VPNs, invalid PTEs, the reserved
/// region, or page tables pointing outside physical memory.
pub fn walk<F>(
    va: VirtAddr,
    base_len: impl Fn(Region) -> (u32, u32),
    mut read_phys: F,
) -> Result<WalkResult, Exception>
where
    F: FnMut(u32) -> Option<u32>,
{
    let region = va.region();
    if region == Region::Reserved {
        return Err(Exception::TranslationInvalid(va));
    }
    let (base, len) = base_len(region);
    let vpn = va.vpn();
    if vpn >= len {
        return Err(Exception::TranslationInvalid(va));
    }
    let pte_pa = base.wrapping_add(vpn * 4);
    let raw = read_phys(pte_pa).ok_or(Exception::TranslationInvalid(va))?;
    let pte = Pte(raw);
    if !pte.valid() {
        return Err(Exception::TranslationInvalid(va));
    }
    Ok(WalkResult { pte, pte_reads: 1 })
}

/// Protection check for a translated access.
pub fn check_access(
    pte: Pte,
    kind: AccessKind,
    mode: atum_arch::CpuMode,
    va: VirtAddr,
) -> Result<(), Exception> {
    let prot: PageProt = pte.prot();
    let ok = match kind {
        AccessKind::Read => prot.allows_read(mode),
        AccessKind::Write => prot.allows_write(mode),
    };
    if ok {
        Ok(())
    } else {
        Err(Exception::AccessViolation(va))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_arch::CpuMode;

    fn pte(pfn: u32, prot: PageProt) -> u32 {
        Pte::new(pfn, prot).0
    }

    #[test]
    fn tlb_hit_miss_and_flush() {
        let mut tlb = Tlb::new();
        assert_eq!(tlb.lookup(5), None);
        tlb.insert(5, Pte::new(9, PageProt::AllRw), true);
        assert_eq!(tlb.lookup(5).unwrap().pfn(), 9);
        tlb.flush_process();
        assert_eq!(tlb.lookup(5), None);
        tlb.insert(5, Pte::new(9, PageProt::AllRw), false);
        tlb.flush_process();
        assert!(tlb.lookup(5).is_some(), "system entries survive");
        tlb.flush_all();
        assert_eq!(tlb.lookup(5), None);
        let s = tlb.stats();
        assert_eq!(s.proc_flushes, 2);
        assert_eq!(s.full_flushes, 1);
    }

    #[test]
    fn tlb_flush_single() {
        let mut tlb = Tlb::new();
        tlb.insert(0x8000_0200 >> 9, Pte::new(1, PageProt::AllRw), false);
        tlb.flush_single(0x8000_0200);
        assert_eq!(tlb.lookup(0x8000_0200 >> 9), None);
    }

    #[test]
    fn tlb_conflicting_tags_evict() {
        let mut tlb = Tlb::new();
        let a = 3;
        let b = 3 + TB_ENTRIES as u32; // same slot
        tlb.insert(a, Pte::new(1, PageProt::AllRw), false);
        tlb.insert(b, Pte::new(2, PageProt::AllRw), false);
        assert_eq!(tlb.lookup(a), None);
        assert_eq!(tlb.lookup(b).unwrap().pfn(), 2);
    }

    #[test]
    fn walk_valid_mapping() {
        // One-entry system table at PA 0x1000 mapping VPN 0 → PFN 7.
        let table = move |pa: u32| {
            if pa == 0x1000 {
                Some(pte(7, PageProt::KernelRw))
            } else {
                None
            }
        };
        let r = walk(
            VirtAddr(0x8000_0004),
            |region| {
                assert_eq!(region, Region::System);
                (0x1000, 1)
            },
            table,
        )
        .unwrap();
        assert_eq!(r.pte.pfn(), 7);
        assert_eq!(r.pte_reads, 1);
    }

    #[test]
    fn walk_length_violation() {
        let err = walk(VirtAddr(0x8000_0200), |_| (0x1000, 1), |_| Some(0)).unwrap_err();
        assert!(matches!(err, Exception::TranslationInvalid(_)));
    }

    #[test]
    fn walk_invalid_pte() {
        let err = walk(VirtAddr(0x8000_0000), |_| (0x1000, 1), |_| Some(0)).unwrap_err();
        assert!(matches!(err, Exception::TranslationInvalid(_)));
    }

    #[test]
    fn walk_reserved_region() {
        let err = walk(VirtAddr(0xC000_0000), |_| (0, 0), |_| Some(0)).unwrap_err();
        assert!(matches!(err, Exception::TranslationInvalid(_)));
    }

    #[test]
    fn access_checks() {
        let p = Pte::new(1, PageProt::KernelRwUserR);
        let va = VirtAddr(0x100);
        assert!(check_access(p, AccessKind::Read, CpuMode::User, va).is_ok());
        assert!(check_access(p, AccessKind::Write, CpuMode::User, va).is_err());
        assert!(check_access(p, AccessKind::Write, CpuMode::Kernel, va).is_ok());
    }
}
