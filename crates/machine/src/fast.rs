//! The capture-path fast engine: a predecoded view of the control store.
//!
//! [`FastImage::build`] walks the sealed [`ControlStore`] once and lowers
//! every [`MicroOp`] into a [`DecOp`]: operand selectors become slot
//! indices into the unified register file (see [`crate::regs::slots`]),
//! `Target::Entry` indirections become absolute control-store addresses,
//! size selectors become `Option<DataSize>`, and constant privileged
//! register numbers become resolved [`PrivReg`]s. The image also snapshots
//! the opcode and specifier dispatch tables so a dispatch is a flat array
//! load.
//!
//! The image is keyed on [`ControlStore::version`]: any mutation of the
//! store (a WCS append, an entry or dispatch repoint) moves the counter
//! and the next `run`/`step_insns` rebuilds. Between mutations the image
//! is exactly equivalent to interpreting the store directly — the
//! differential suite in `crates/bench/tests/fast_equiv.rs` pins this
//! dynamically, and the lowering-equivalence pass in `atum-mclint`
//! re-derives every [`DecOp`] from its source [`MicroOp`] statically.
//! The types here are public (read-only: all construction goes through
//! [`FastImage::build`]) so that external verifiers can inspect the image.

use atum_arch::{DataSize, PrivReg};
use atum_ucode::{
    AluOp, CcEffect, ControlStore, FaultKind, MicroCond, MicroOp, MicroReg, RefClass, SizeSel,
    SpecTable, Target,
};

use crate::regs::slots;

/// A pre-resolved source operand.
///
/// Immediates are deliberately *not* representable here: `dec_op` hoists
/// every `MicroReg::Imm` into a dedicated `*I*` [`DecOp`] variant, which
/// keeps this enum (and with it every generic op) two bytes wide. The
/// whole `DecOp` stays within 12 bytes — small enough that the predecoded
/// image of a patched control store lives comfortably in L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// A slot in the unified register file.
    Slot(u8),
    /// The PSL image.
    Psl,
    /// The GPR selected by the `RegNum` latch.
    GprIdx,
    /// Current operand size in bytes.
    OSizeBytes,
    /// Current operand size mask.
    OSizeMask,
}

/// A pre-resolved destination operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dst {
    /// A plain slot (micro-temporaries, patch scratch, MAR/MDR, latches).
    Slot(u8),
    /// A general register: logged for rollback, PC write invalidates the
    /// prefetch buffer.
    Gpr(u8),
    /// The GPR selected by the `RegNum` latch.
    GprIdx,
    /// The PSL image.
    Psl,
    /// A slot written through an 8-bit mask (`Spec`/`OpReg`).
    MaskedFF(u8),
    /// A slot written through a 4-bit mask (`RegNum`).
    MaskedF(u8),
    /// A write the micro-assembler should never emit (immediates and the
    /// read-only size views); dropped, with a debug assertion.
    ReadOnly,
}

/// One predecoded micro-op. Mirrors [`MicroOp`] 1:1 by control-store
/// address, with every static indirection already resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecOp {
    /// Slot→slot move — the dominant micro-op in the stock fetch/decode
    /// routines, specialized so it executes with no selector dispatch.
    MovSS {
        /// Source slot.
        src: u8,
        /// Destination slot.
        dst: u8,
    },
    /// Immediate→slot move.
    MovIS {
        /// Immediate value.
        imm: u32,
        /// Destination slot.
        dst: u8,
    },
    /// RegNum-selected GPR → slot (register-mode operand fetch).
    MovGIS {
        /// Destination slot.
        dst: u8,
    },
    /// Slot → RegNum-selected GPR (register-mode result write-back).
    MovSGI {
        /// Source slot.
        src: u8,
    },
    /// Slot → the RegNum latch (4-bit masked; the decode loop's
    /// specifier crack).
    MovSMF {
        /// Source slot.
        src: u8,
        /// Destination slot (the RegNum latch).
        dst: u8,
    },
    /// Slot → fixed GPR.
    MovSG {
        /// Source slot.
        src: u8,
        /// Destination GPR number.
        gpr: u8,
    },
    /// ALU with both sources and the destination in plain slots.
    AluSS {
        /// Operation.
        op: AluOp,
        /// First input slot.
        a: u8,
        /// Second input slot.
        b: u8,
        /// Destination slot.
        dst: u8,
        /// PSL condition-code effect.
        cc: CcEffect,
        /// Operation size.
        size: DataSize,
    },
    /// ALU with an immediate `a` source.
    AluIS {
        /// Operation.
        op: AluOp,
        /// Immediate first input.
        imm: u32,
        /// Second input slot.
        b: u8,
        /// Destination slot.
        dst: u8,
        /// PSL condition-code effect.
        cc: CcEffect,
        /// Operation size.
        size: DataSize,
    },
    /// ALU with an immediate `b` source.
    AluSI {
        /// Operation.
        op: AluOp,
        /// First input slot.
        a: u8,
        /// Immediate second input.
        imm: u32,
        /// Destination slot.
        dst: u8,
        /// PSL condition-code effect.
        cc: CcEffect,
        /// Operation size.
        size: DataSize,
    },
    /// General move, for the operand shapes not specialized above.
    /// Immediate operands get their own variants (see [`Src`]).
    Mov {
        /// Source selector.
        src: Src,
        /// Destination selector.
        dst: Dst,
    },
    /// General immediate move.
    MovID {
        /// Immediate value.
        imm: u32,
        /// Destination selector.
        dst: Dst,
    },
    /// General ALU op.
    Alu {
        /// Operation.
        op: AluOp,
        /// First input.
        a: Src,
        /// Second input.
        b: Src,
        /// Destination selector.
        dst: Dst,
        /// PSL condition-code effect.
        cc: CcEffect,
        /// Operation size.
        size: DataSize,
    },
    /// General ALU op with an immediate `a` source.
    AluID {
        /// Operation.
        op: AluOp,
        /// Immediate first input.
        imm: u32,
        /// Second input.
        b: Src,
        /// Destination selector.
        dst: Dst,
        /// PSL condition-code effect.
        cc: CcEffect,
        /// Operation size.
        size: DataSize,
    },
    /// General ALU op with an immediate `b` source.
    AluDI {
        /// Operation.
        op: AluOp,
        /// First input.
        a: Src,
        /// Immediate second input.
        imm: u32,
        /// Destination selector.
        dst: Dst,
        /// PSL condition-code effect.
        cc: CcEffect,
        /// Operation size.
        size: DataSize,
    },
    /// An ALU op whose operands were both immediates: the result and the
    /// micro-flags (packed `z n c v divz` in bits 0..5) are computed at
    /// decode time.
    AluConst {
        /// The constant-folded result.
        result: u32,
        /// Micro-flags, packed `z n c v divz` in bits 0..5.
        fbits: u8,
        /// PSL condition-code effect.
        cc: CcEffect,
        /// Destination selector.
        dst: Dst,
    },
    /// Latches the operand size.
    SetSize(DataSize),
    /// Latches the operand size from a register holding 1, 2 or 4.
    SetSizeDyn(Src),
    /// `SetSizeDyn` of a constant that is not 1/2/4: hits the reference
    /// path's "bad dynamic size latch" error when executed.
    SetSizeBad,
    /// Virtual-memory read; `size: None` means "use the osize latch".
    Read {
        /// Reference classification (for tracing).
        class: RefClass,
        /// Resolved transfer size, or `None` for the osize latch.
        size: Option<DataSize>,
    },
    /// Virtual-memory write; `size: None` means "use the osize latch".
    Write {
        /// Resolved transfer size, or `None` for the osize latch.
        size: Option<DataSize>,
    },
    /// Physical longword read.
    PhysRead,
    /// Physical longword write.
    PhysWrite,
    /// Unconditional jump to a resolved control-store address.
    Jump(u32),
    /// `JumpIf` on `UZero`, specialized so the flag test inlines into the
    /// dispatch arm (with [`DecOp::JumpUNotZero`] and
    /// [`DecOp::JumpRegNumIsPc`], the conditions that dominate the stock
    /// decode loop).
    JumpUZero(u32),
    /// `JumpIf` on `UNotZero` (specialized; see [`DecOp::JumpUZero`]).
    JumpUNotZero(u32),
    /// `JumpIf` on `RegNumIsPc` (specialized; see [`DecOp::JumpUZero`]).
    JumpRegNumIsPc(u32),
    /// Conditional jump (the conditions not specialized above).
    JumpIf {
        /// Condition.
        cond: MicroCond,
        /// Resolved target address.
        target: u32,
    },
    /// Micro-subroutine call to a resolved address.
    Call(u32),
    /// Return from micro-subroutine.
    Ret,
    /// Jump through the opcode dispatch table on `OpReg`.
    DispatchOpcode,
    /// Jump through a specifier dispatch table (by table index).
    DispatchSpec(u8),
    /// End of architectural instruction.
    DecodeNext,
    /// `PC ← PC + 1` without invalidating the prefetch buffer.
    AdvancePc,
    /// Raise a fault/trap from microcode.
    Fault(FaultKind),
    /// Privileged read with the register number known at decode time.
    ReadPrK {
        /// The resolved privileged register.
        reg: PrivReg,
        /// Destination selector.
        dst: Dst,
    },
    /// Privileged read with a dynamic register number.
    ReadPr {
        /// Register-number source.
        num: Src,
        /// Destination selector.
        dst: Dst,
    },
    /// `ReadPr` with a constant register number that names no register:
    /// faults `ReservedOperand` when executed, exactly like the reference
    /// path.
    ReadPrBad,
    /// Privileged write with the register number known at decode time.
    WritePrK {
        /// The resolved privileged register.
        reg: PrivReg,
        /// Value source.
        src: Src,
    },
    /// Privileged write with both the register number and the value known
    /// at decode time.
    WritePrKI {
        /// The resolved privileged register.
        reg: PrivReg,
        /// Immediate value.
        imm: u32,
    },
    /// Privileged write with a dynamic register number.
    WritePr {
        /// Register-number source.
        num: Src,
        /// Value source.
        src: Src,
    },
    /// Privileged write of an immediate through a dynamic register number.
    WritePrI {
        /// Register-number source.
        num: Src,
        /// Immediate value.
        imm: u32,
    },
    /// `WritePr` with a constant register number that names no register
    /// (see [`DecOp::ReadPrBad`]).
    WritePrBad,
    /// Invalidate the whole translation buffer.
    TbFlushAll,
    /// Invalidate per-process translation-buffer entries.
    TbFlushProc,
    /// Halt the processor.
    Halt,
}

/// The predecoded control store plus snapshots of its dispatch tables.
#[derive(Debug)]
pub struct FastImage {
    /// The [`ControlStore::version`] this image was built from.
    pub version: u64,
    /// One [`DecOp`] per control-store word, same addressing.
    pub ops: Vec<DecOp>,
    /// Snapshot of the opcode dispatch table.
    pub opcode_table: [u32; 256],
    /// Snapshots of the four specifier dispatch tables.
    pub spec_tables: [[u32; 16]; SpecTable::COUNT],
}

impl FastImage {
    /// A placeholder that can never match a real store version (versions
    /// count up from zero), forcing a build on first use.
    pub(crate) fn empty() -> FastImage {
        FastImage {
            version: u64::MAX,
            ops: Vec::new(),
            opcode_table: [0; 256],
            spec_tables: [[0; 16]; SpecTable::COUNT],
        }
    }

    /// Predecodes the whole store.
    pub fn build(cs: &ControlStore) -> FastImage {
        let mut opcode_table = [0u32; 256];
        for (i, slot) in opcode_table.iter_mut().enumerate() {
            *slot = cs.opcode_target(i as u8);
        }
        let mut spec_tables = [[0u32; 16]; SpecTable::COUNT];
        for table in [
            SpecTable::Read,
            SpecTable::Write,
            SpecTable::Modify,
            SpecTable::Addr,
        ] {
            for nibble in 0..16u8 {
                spec_tables[table.index()][nibble as usize] = cs.spec_target(table, nibble);
            }
        }
        FastImage {
            version: cs.version(),
            ops: cs.words().iter().map(|&op| dec_op(op, cs)).collect(),
            opcode_table,
            spec_tables,
        }
    }
}

fn dec_target(t: Target, cs: &ControlStore) -> u32 {
    match t {
        Target::Abs(a) => a,
        Target::Entry(e) => cs.entry(e),
    }
}

fn dec_size(s: SizeSel) -> Option<DataSize> {
    match s {
        SizeSel::Fixed(s) => Some(s),
        SizeSel::OSize => None,
    }
}

/// Decodes a non-immediate source; `MicroReg::Imm` yields `Err(value)`
/// and the caller picks an immediate-carrying [`DecOp`] variant.
fn dec_src(r: MicroReg) -> Result<Src, u32> {
    Ok(match r {
        MicroReg::Imm(v) => return Err(v),
        MicroReg::Gpr(n) => Src::Slot((slots::GPR0 + (n & 0xF) as usize) as u8),
        MicroReg::T(n) => Src::Slot((slots::T0 + (n & 0xF) as usize) as u8),
        MicroReg::P(n) => Src::Slot((slots::P0 + (n & 0x7) as usize) as u8),
        MicroReg::Mar => Src::Slot(slots::MAR as u8),
        MicroReg::Mdr => Src::Slot(slots::MDR as u8),
        MicroReg::Psl => Src::Psl,
        MicroReg::Spec => Src::Slot(slots::SPEC as u8),
        MicroReg::OpReg => Src::Slot(slots::OPREG as u8),
        MicroReg::RegNum => Src::Slot(slots::REGNUM as u8),
        MicroReg::GprIdx => Src::GprIdx,
        MicroReg::OSizeBytes => Src::OSizeBytes,
        MicroReg::OSizeMask => Src::OSizeMask,
        MicroReg::IbData => Src::Slot(slots::IBDATA as u8),
        MicroReg::IbCnt => Src::Slot(slots::IBCNT as u8),
        MicroReg::ExcVec => Src::Slot(slots::EXCVEC as u8),
        MicroReg::ExcParam => Src::Slot(slots::EXCPARAM as u8),
        MicroReg::ExcFlags => Src::Slot(slots::EXCFLAGS as u8),
        MicroReg::ExcPc => Src::Slot(slots::EXCPC as u8),
        MicroReg::ExcIpl => Src::Slot(slots::EXCIPL as u8),
    })
}

fn dec_dst(r: MicroReg) -> Dst {
    match r {
        MicroReg::Gpr(n) => Dst::Gpr(n & 0xF),
        MicroReg::GprIdx => Dst::GprIdx,
        MicroReg::T(n) => Dst::Slot((slots::T0 + (n & 0xF) as usize) as u8),
        MicroReg::P(n) => Dst::Slot((slots::P0 + (n & 0x7) as usize) as u8),
        MicroReg::Mar => Dst::Slot(slots::MAR as u8),
        MicroReg::Mdr => Dst::Slot(slots::MDR as u8),
        MicroReg::Psl => Dst::Psl,
        MicroReg::Spec => Dst::MaskedFF(slots::SPEC as u8),
        MicroReg::OpReg => Dst::MaskedFF(slots::OPREG as u8),
        MicroReg::RegNum => Dst::MaskedF(slots::REGNUM as u8),
        MicroReg::IbData => Dst::Slot(slots::IBDATA as u8),
        MicroReg::IbCnt => Dst::Slot(slots::IBCNT as u8),
        MicroReg::ExcVec => Dst::Slot(slots::EXCVEC as u8),
        MicroReg::ExcParam => Dst::Slot(slots::EXCPARAM as u8),
        MicroReg::ExcFlags => Dst::Slot(slots::EXCFLAGS as u8),
        MicroReg::ExcPc => Dst::Slot(slots::EXCPC as u8),
        MicroReg::ExcIpl => Dst::Slot(slots::EXCIPL as u8),
        MicroReg::Imm(_) | MicroReg::OSizeBytes | MicroReg::OSizeMask => Dst::ReadOnly,
    }
}

fn dec_op(op: MicroOp, cs: &ControlStore) -> DecOp {
    match op {
        MicroOp::Mov { src, dst } => match (dec_src(src), dec_dst(dst)) {
            (Ok(Src::Slot(src)), Dst::Slot(dst)) => DecOp::MovSS { src, dst },
            (Err(imm), Dst::Slot(dst)) => DecOp::MovIS { imm, dst },
            (Ok(Src::GprIdx), Dst::Slot(dst)) => DecOp::MovGIS { dst },
            (Ok(Src::Slot(src)), Dst::GprIdx) => DecOp::MovSGI { src },
            (Ok(Src::Slot(src)), Dst::MaskedF(dst)) => DecOp::MovSMF { src, dst },
            (Ok(Src::Slot(src)), Dst::Gpr(gpr)) => DecOp::MovSG { src, gpr },
            (Ok(src), dst) => DecOp::Mov { src, dst },
            (Err(imm), dst) => DecOp::MovID { imm, dst },
        },
        MicroOp::Alu {
            op,
            a,
            b,
            dst,
            cc,
            size,
        } => match (dec_src(a), dec_src(b), dec_dst(dst)) {
            (Ok(Src::Slot(a)), Ok(Src::Slot(b)), Dst::Slot(dst)) => DecOp::AluSS {
                op,
                a,
                b,
                dst,
                cc,
                size,
            },
            (Err(imm), Ok(Src::Slot(b)), Dst::Slot(dst)) => DecOp::AluIS {
                op,
                imm,
                b,
                dst,
                cc,
                size,
            },
            (Ok(Src::Slot(a)), Err(imm), Dst::Slot(dst)) => DecOp::AluSI {
                op,
                a,
                imm,
                dst,
                cc,
                size,
            },
            (Ok(a), Ok(b), dst) => DecOp::Alu {
                op,
                a,
                b,
                dst,
                cc,
                size,
            },
            (Err(imm), Ok(b), dst) => DecOp::AluID {
                op,
                imm,
                b,
                dst,
                cc,
                size,
            },
            (Ok(a), Err(imm), dst) => DecOp::AluDI {
                op,
                a,
                imm,
                dst,
                cc,
                size,
            },
            (Err(av), Err(bv), dst) => {
                // Both operands constant: fold the whole ALU op now.
                let (result, f) = crate::engine::alu_exec(op, av, bv, size);
                let fbits = f.z as u8
                    | (f.n as u8) << 1
                    | (f.c as u8) << 2
                    | (f.v as u8) << 3
                    | (f.divz as u8) << 4;
                DecOp::AluConst {
                    result,
                    fbits,
                    cc,
                    dst,
                }
            }
        },
        MicroOp::SetSize(s) => DecOp::SetSize(s),
        MicroOp::SetSizeDyn(r) => match dec_src(r) {
            Ok(src) => DecOp::SetSizeDyn(src),
            // A constant dynamic-size latch folds to the fixed form (an
            // out-of-range constant keeps the runtime error path).
            Err(1) => DecOp::SetSize(DataSize::Byte),
            Err(2) => DecOp::SetSize(DataSize::Word),
            Err(4) => DecOp::SetSize(DataSize::Long),
            Err(_) => DecOp::SetSizeBad,
        },
        MicroOp::Read { class, size } => DecOp::Read {
            class,
            size: dec_size(size),
        },
        MicroOp::Write { size } => DecOp::Write {
            size: dec_size(size),
        },
        MicroOp::PhysRead => DecOp::PhysRead,
        MicroOp::PhysWrite => DecOp::PhysWrite,
        MicroOp::Jump(t) => DecOp::Jump(dec_target(t, cs)),
        MicroOp::JumpIf { cond, target } => {
            let target = dec_target(target, cs);
            match cond {
                MicroCond::UZero => DecOp::JumpUZero(target),
                MicroCond::UNotZero => DecOp::JumpUNotZero(target),
                MicroCond::RegNumIsPc => DecOp::JumpRegNumIsPc(target),
                cond => DecOp::JumpIf { cond, target },
            }
        }
        MicroOp::Call(t) => DecOp::Call(dec_target(t, cs)),
        MicroOp::Ret => DecOp::Ret,
        MicroOp::DispatchOpcode => DecOp::DispatchOpcode,
        MicroOp::DispatchSpec(table) => DecOp::DispatchSpec(table.index() as u8),
        MicroOp::DecodeNext => DecOp::DecodeNext,
        MicroOp::AdvancePc => DecOp::AdvancePc,
        MicroOp::Fault(kind) => DecOp::Fault(kind),
        // A constant register number that actually names a register
        // resolves at decode time; an invalid constant still faults
        // ReservedOperand at run time, exactly like the reference path.
        MicroOp::ReadPr { num, dst } => match dec_src(num) {
            Err(n) => match PrivReg::from_number(n) {
                Some(reg) => DecOp::ReadPrK {
                    reg,
                    dst: dec_dst(dst),
                },
                None => DecOp::ReadPrBad,
            },
            Ok(num) => DecOp::ReadPr {
                num,
                dst: dec_dst(dst),
            },
        },
        MicroOp::WritePr { num, src } => match (dec_src(num), dec_src(src)) {
            (Err(n), src) => match (PrivReg::from_number(n), src) {
                (Some(reg), Ok(src)) => DecOp::WritePrK { reg, src },
                (Some(reg), Err(imm)) => DecOp::WritePrKI { reg, imm },
                (None, _) => DecOp::WritePrBad,
            },
            (Ok(num), Ok(src)) => DecOp::WritePr { num, src },
            (Ok(num), Err(imm)) => DecOp::WritePrI { num, imm },
        },
        MicroOp::TbFlushAll => DecOp::TbFlushAll,
        MicroOp::TbFlushProc => DecOp::TbFlushProc,
        MicroOp::Halt => DecOp::Halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_ucode::Entry;

    #[test]
    fn decop_is_small() {
        assert!(
            std::mem::size_of::<DecOp>() <= 12,
            "DecOp grew to {} bytes",
            std::mem::size_of::<DecOp>()
        );
    }

    #[test]
    fn build_is_one_to_one_and_version_keyed() {
        let cs = atum_ucode::stock::build();
        let img = FastImage::build(&cs);
        assert_eq!(img.ops.len(), cs.len() as usize);
        assert_eq!(img.version, cs.version());
        assert_eq!(
            img.opcode_table[0x12],
            cs.opcode_target(0x12),
            "dispatch tables are snapshotted"
        );
    }

    #[test]
    fn empty_image_never_matches_a_store() {
        let cs = atum_ucode::stock::build();
        assert_ne!(FastImage::empty().version, cs.version());
    }

    #[test]
    fn entry_targets_resolve_to_current_slots() {
        let mut cs = atum_ucode::stock::build();
        let v0 = cs.version();
        let addr = cs.append_routine(
            "test.patch",
            vec![MicroOp::Jump(Target::Entry(Entry::Fetch))],
        );
        cs.set_entry(Entry::XferRead, addr);
        assert!(cs.version() > v0, "mutations move the version counter");
        let img = FastImage::build(&cs);
        match img.ops[addr as usize] {
            DecOp::Jump(t) => assert_eq!(t, cs.entry(Entry::Fetch)),
            ref other => panic!("expected jump, got {other:?}"),
        }
    }

    #[test]
    fn constant_priv_reg_numbers_resolve() {
        let mut cs = ControlStore::new();
        cs.append_routine(
            "t",
            vec![
                MicroOp::ReadPr {
                    num: MicroReg::Imm(PrivReg::Sbr.number()),
                    dst: MicroReg::T(0),
                },
                MicroOp::WritePr {
                    num: MicroReg::T(1),
                    src: MicroReg::T(0),
                },
                MicroOp::Halt,
            ],
        );
        let img = FastImage::build(&cs);
        assert!(matches!(
            img.ops[0],
            DecOp::ReadPrK {
                reg: PrivReg::Sbr,
                ..
            }
        ));
        assert!(matches!(img.ops[1], DecOp::WritePr { .. }));
    }
}
