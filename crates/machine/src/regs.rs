//! The micro-register file and the privileged-register file.

use atum_arch::{DataSize, Psl};

/// Micro-flags latched by every ALU operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct UFlags {
    /// Result zero.
    pub z: bool,
    /// Result negative (at the operation size).
    pub n: bool,
    /// Carry / borrow out.
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
    /// Divide by zero happened.
    pub divz: bool,
}

/// Slot indices into the unified micro-register file.
///
/// The capture-path fast engine predecodes every static [`MicroReg`]
/// operand selector down to one of these indices at control-store seal
/// time, so the per-microcycle operand fetch is a single array access
/// instead of a 20-way selector decode. The layout is load-bearing:
/// the 16 GPRs sit at the bottom so an architectural register number is
/// its own slot index (`GprIdx` and the register-change log rely on it).
///
/// [`MicroReg`]: atum_ucode::MicroReg
pub mod slots {
    /// First general register (R15 = PC = slot 15).
    pub const GPR0: usize = 0;
    /// First micro-temporary.
    pub const T0: usize = 16;
    /// First patch-scratch register.
    pub const P0: usize = 32;
    /// Memory address register.
    pub const MAR: usize = 40;
    /// Memory data register.
    pub const MDR: usize = 41;
    /// Current specifier byte.
    pub const SPEC: usize = 42;
    /// Current opcode byte.
    pub const OPREG: usize = 43;
    /// Register-number latch.
    pub const REGNUM: usize = 44;
    /// Prefetch-buffer data.
    pub const IBDATA: usize = 45;
    /// Prefetch-buffer valid byte count.
    pub const IBCNT: usize = 46;
    /// Exception vector latch.
    pub const EXCVEC: usize = 47;
    /// Exception parameter latch.
    pub const EXCPARAM: usize = 48;
    /// Exception flags latch.
    pub const EXCFLAGS: usize = 49;
    /// PC to push for the pending exception.
    pub const EXCPC: usize = 50;
    /// IPL for interrupt entry.
    pub const EXCIPL: usize = 51;
    /// Number of slots, padded to a power of two so a predecoded slot
    /// index masked with `COUNT - 1` needs no bounds check (slots 52–63
    /// are unreachable: the predecoder only emits the indices above).
    pub const COUNT: usize = 64;
    /// Index mask (`COUNT` is a power of two).
    pub const MASK: u8 = (COUNT - 1) as u8;
}

/// The datapath register file: one dense slot array (see [`slots`]) plus
/// the three registers that are not plain 32-bit latches (PSL, operand
/// size, micro-flags).
#[derive(Debug, Clone)]
pub struct RegFile {
    /// The unified slot file: GPRs, micro-temporaries, patch scratch,
    /// MAR/MDR and the decode/exception latches.
    pub file: [u32; slots::COUNT],
    /// The PSL.
    pub psl: Psl,
    /// Operand-size latch.
    pub osize: DataSize,
    /// Micro-flags.
    pub uflags: UFlags,
}

impl RegFile {
    /// Boot-state register file.
    pub fn new() -> RegFile {
        RegFile {
            file: [0; slots::COUNT],
            psl: Psl::new(),
            osize: DataSize::Long,
            uflags: UFlags::default(),
        }
    }

    /// A general register's value (R15 = PC).
    #[inline]
    pub fn gpr(&self, n: usize) -> u32 {
        self.file[slots::GPR0 + (n & 0xF)]
    }

    /// A micro-temporary's value.
    #[inline]
    pub fn t(&self, n: usize) -> u32 {
        self.file[slots::T0 + (n & 0xF)]
    }

    /// A patch-scratch register's value.
    #[inline]
    pub fn p(&self, n: usize) -> u32 {
        self.file[slots::P0 + (n & 0x7)]
    }
}

impl Default for RegFile {
    fn default() -> RegFile {
        RegFile::new()
    }
}

/// The privileged (internal processor) register file.
///
/// `read` needs the [`RegFile`] only for registers derived from live
/// device state elsewhere; the stack-pointer latches live here.
#[derive(Debug, Clone, Default)]
pub struct PrvFile {
    /// Kernel stack pointer latch.
    pub ksp: u32,
    /// User stack pointer latch.
    pub usp: u32,
    /// P0 page-table base (physical).
    pub p0br: u32,
    /// P0 page-table length (entries).
    pub p0lr: u32,
    /// P1 page-table base (physical).
    pub p1br: u32,
    /// P1 page-table length (entries).
    pub p1lr: u32,
    /// System page-table base (physical).
    pub sbr: u32,
    /// System page-table length (entries).
    pub slr: u32,
    /// Process control block base (physical).
    pub pcbb: u32,
    /// System control block base (physical).
    pub scbb: u32,
    /// Software interrupt summary (pending levels bitmask).
    pub sisr: u32,
    /// Interval clock control/status.
    pub iccs: u32,
    /// Interval clock reload value.
    pub icr: u32,
    /// Memory-management enable.
    pub mapen: u32,
    /// ATUM trace control.
    pub trctl: u32,
    /// ATUM trace buffer base.
    pub trbase: u32,
    /// ATUM trace write pointer.
    pub trptr: u32,
    /// ATUM trace buffer limit.
    pub trlim: u32,
}

impl PrvFile {
    /// Boot-state privileged registers.
    pub fn new() -> PrvFile {
        PrvFile::default()
    }

    /// Reads a register's stored value (side-effect-free registers only;
    /// the engine handles IPL/console/TBI specially).
    pub fn read(&self, reg: atum_arch::PrivReg, regs: &RegFile) -> u32 {
        use atum_arch::PrivReg::*;
        match reg {
            Ksp => self.ksp,
            Usp => self.usp,
            P0br => self.p0br,
            P0lr => self.p0lr,
            P1br => self.p1br,
            P1lr => self.p1lr,
            Sbr => self.sbr,
            Slr => self.slr,
            Pcbb => self.pcbb,
            Scbb => self.scbb,
            Ipl => regs.psl.ipl() as u32,
            Sirr => 0,
            Sisr => self.sisr,
            Iccs => self.iccs,
            Icr => self.icr,
            Txdb => 0,
            Txcs => 0x80, // always ready
            Rxdb => 0,    // engine overrides with queued input
            Rxcs => 0,    // engine overrides with availability
            Trctl => self.trctl,
            Trbase => self.trbase,
            Trptr => self.trptr,
            Trlim => self.trlim,
            Mapen => self.mapen,
            Tbia | Tbis => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_state_is_zeroed() {
        let r = RegFile::new();
        assert!(r.file.iter().all(|&v| v == 0));
        assert_eq!(r.osize, DataSize::Long);
        assert!(r.psl.is_kernel());
    }

    #[test]
    fn prv_reads_reflect_stores() {
        let mut p = PrvFile::new();
        p.sbr = 0x1000;
        p.trctl = 0x501;
        let r = RegFile::new();
        assert_eq!(p.read(atum_arch::PrivReg::Sbr, &r), 0x1000);
        assert_eq!(p.read(atum_arch::PrivReg::Trctl, &r), 0x501);
        assert_eq!(p.read(atum_arch::PrivReg::Ipl, &r), 31);
        assert_eq!(p.read(atum_arch::PrivReg::Txcs, &r), 0x80);
    }
}
