//! The micro-register file and the privileged-register file.

use atum_arch::{DataSize, Psl};

/// Micro-flags latched by every ALU operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct UFlags {
    /// Result zero.
    pub z: bool,
    /// Result negative (at the operation size).
    pub n: bool,
    /// Carry / borrow out.
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
    /// Divide by zero happened.
    pub divz: bool,
}

/// The datapath register file.
#[derive(Debug, Clone)]
pub struct RegFile {
    /// Architectural general registers (R15 = PC).
    pub gpr: [u32; 16],
    /// Micro-temporaries.
    pub t: [u32; 16],
    /// Patch scratch.
    pub p: [u32; 8],
    /// Memory address register.
    pub mar: u32,
    /// Memory data register.
    pub mdr: u32,
    /// Current specifier byte.
    pub spec: u32,
    /// Current opcode byte.
    pub opreg: u32,
    /// Register-number latch.
    pub regnum: u32,
    /// Prefetch-buffer data.
    pub ibdata: u32,
    /// Prefetch-buffer valid byte count.
    pub ibcnt: u32,
    /// Exception latches.
    pub excvec: u32,
    /// Exception parameter.
    pub excparam: u32,
    /// Exception flags.
    pub excflags: u32,
    /// PC to push for the pending exception.
    pub excpc: u32,
    /// IPL for interrupt entry.
    pub excipl: u32,
    /// The PSL.
    pub psl: Psl,
    /// Operand-size latch.
    pub osize: DataSize,
    /// Micro-flags.
    pub uflags: UFlags,
}

impl RegFile {
    /// Boot-state register file.
    pub fn new() -> RegFile {
        RegFile {
            gpr: [0; 16],
            t: [0; 16],
            p: [0; 8],
            mar: 0,
            mdr: 0,
            spec: 0,
            opreg: 0,
            regnum: 0,
            ibdata: 0,
            ibcnt: 0,
            excvec: 0,
            excparam: 0,
            excflags: 0,
            excpc: 0,
            excipl: 0,
            psl: Psl::new(),
            osize: DataSize::Long,
            uflags: UFlags::default(),
        }
    }
}

impl Default for RegFile {
    fn default() -> RegFile {
        RegFile::new()
    }
}

/// The privileged (internal processor) register file.
///
/// `read` needs the [`RegFile`] only for registers derived from live
/// device state elsewhere; the stack-pointer latches live here.
#[derive(Debug, Clone, Default)]
pub struct PrvFile {
    /// Kernel stack pointer latch.
    pub ksp: u32,
    /// User stack pointer latch.
    pub usp: u32,
    /// P0 page-table base (physical).
    pub p0br: u32,
    /// P0 page-table length (entries).
    pub p0lr: u32,
    /// P1 page-table base (physical).
    pub p1br: u32,
    /// P1 page-table length (entries).
    pub p1lr: u32,
    /// System page-table base (physical).
    pub sbr: u32,
    /// System page-table length (entries).
    pub slr: u32,
    /// Process control block base (physical).
    pub pcbb: u32,
    /// System control block base (physical).
    pub scbb: u32,
    /// Software interrupt summary (pending levels bitmask).
    pub sisr: u32,
    /// Interval clock control/status.
    pub iccs: u32,
    /// Interval clock reload value.
    pub icr: u32,
    /// Memory-management enable.
    pub mapen: u32,
    /// ATUM trace control.
    pub trctl: u32,
    /// ATUM trace buffer base.
    pub trbase: u32,
    /// ATUM trace write pointer.
    pub trptr: u32,
    /// ATUM trace buffer limit.
    pub trlim: u32,
}

impl PrvFile {
    /// Boot-state privileged registers.
    pub fn new() -> PrvFile {
        PrvFile::default()
    }

    /// Reads a register's stored value (side-effect-free registers only;
    /// the engine handles IPL/console/TBI specially).
    pub fn read(&self, reg: atum_arch::PrivReg, regs: &RegFile) -> u32 {
        use atum_arch::PrivReg::*;
        match reg {
            Ksp => self.ksp,
            Usp => self.usp,
            P0br => self.p0br,
            P0lr => self.p0lr,
            P1br => self.p1br,
            P1lr => self.p1lr,
            Sbr => self.sbr,
            Slr => self.slr,
            Pcbb => self.pcbb,
            Scbb => self.scbb,
            Ipl => regs.psl.ipl() as u32,
            Sirr => 0,
            Sisr => self.sisr,
            Iccs => self.iccs,
            Icr => self.icr,
            Txdb => 0,
            Txcs => 0x80, // always ready
            Rxdb => 0,    // engine overrides with queued input
            Rxcs => 0,    // engine overrides with availability
            Trctl => self.trctl,
            Trbase => self.trbase,
            Trptr => self.trptr,
            Trlim => self.trlim,
            Mapen => self.mapen,
            Tbia | Tbis => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_state_is_zeroed() {
        let r = RegFile::new();
        assert!(r.gpr.iter().all(|&v| v == 0));
        assert_eq!(r.osize, DataSize::Long);
        assert!(r.psl.is_kernel());
    }

    #[test]
    fn prv_reads_reflect_stores() {
        let mut p = PrvFile::new();
        p.sbr = 0x1000;
        p.trctl = 0x501;
        let r = RegFile::new();
        assert_eq!(p.read(atum_arch::PrivReg::Sbr, &r), 0x1000);
        assert_eq!(p.read(atum_arch::PrivReg::Trctl, &r), 0x501);
        assert_eq!(p.read(atum_arch::PrivReg::Ipl, &r), 31);
        assert_eq!(p.read(atum_arch::PrivReg::Txcs, &r), 0x80);
    }
}
