//! The micro-engine: executes micro-ops from the control store.
//!
//! One `match` arm per [`MicroOp`]. Cycle accounting comes from the shared
//! model in [`atum_ucode::cost`]: memory micro-ops cost
//! `BASE + MEM_EXTRA` (= 2) microcycles, PTE-walk reads `PTE_READ` (= 2)
//! each, everything else `BASE` (= 1) — a deliberately simple model, but
//! patched-vs-stock *ratios* (the paper's slowdown numbers) are
//! insensitive to the absolute constants. The static cost pass in
//! `atum-mclint` sums the same constants over control-store paths, so its
//! bounds are bounds on what these engines report.
//!
//! Two interpreters share this accounting model and all architectural
//! helpers:
//!
//! * the **reference engine** ([`Machine::step_micro`]) re-reads the
//!   control store word by word and decodes every operand selector per
//!   microcycle — slow, obviously correct, kept as the oracle;
//! * the **fast engine** (`Machine::run_fast_inner`) runs the
//!   predecoded [`DecOp`] image (see [`crate::fast`]), probes the
//!   translation micro-cache before [`Machine::translate`], and uses the
//!   single-bounds-check longword accessors of [`PhysMemory`].
//!
//! Every fast-path shortcut is cycle-neutral by construction: a
//! micro-cache hit is exactly a TB hit (and is recorded as one), the
//! aligned longword accessors fail on exactly the addresses the byte-loop
//! accessors fail on, and the predecoded image resolves only indirections
//! that cannot change while the store version is constant. The
//! differential suite in `crates/bench/tests/fast_equiv.rs` runs both
//! engines in lockstep to pin the equivalence.
//!
//! [`PhysMemory`]: crate::PhysMemory

use crate::fast::{DecOp, Dst, Src};
use crate::mmu::{self, AccessKind};
use crate::regs::slots;
use crate::Machine;
use atum_arch::exc::{ArithKind, ScbVector, IPL_TIMER};
use atum_arch::mem::PAGE_OFFSET_MASK;
use atum_arch::{
    DataSize, Exception, ExceptionClass, PrivReg, Psl, Region, VirtAddr, PAGE_SHIFT, PAGE_SIZE,
};
use atum_ucode::{
    cost, AluOp, CcEffect, Entry, FaultKind, MicroCond, MicroOp, MicroReg, RefClass, SizeSel,
    Target,
};

/// Maximum micro-subroutine nesting (also the inline micro-stack's
/// backing-array size; the stack pointer is `Machine::usp`).
pub(crate) const MICRO_STACK_LIMIT: usize = 64;

/// How a [`Machine::run`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The `halt` micro-op executed (HALT instruction, or a patch halting
    /// for host service, e.g. trace-buffer full).
    Halted,
    /// The cycle budget ran out.
    CycleLimit,
    /// Unrecoverable: a third nested exception during exception entry.
    TripleFault,
    /// Unrecoverable micro-architecture error (bad microcode).
    MicroError(&'static str),
}

impl std::fmt::Display for RunExit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunExit::Halted => f.write_str("halted"),
            RunExit::CycleLimit => f.write_str("cycle limit reached"),
            RunExit::TripleFault => f.write_str("triple fault"),
            RunExit::MicroError(m) => write!(f, "micro-architecture error: {m}"),
        }
    }
}

/// Reference and event counters — the "hardware monitor" view used by the
/// slowdown and completeness accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefCounts {
    /// Instruction-stream longword fetches.
    pub ifetch: u64,
    /// Data reads.
    pub data_reads: u64,
    /// Data writes.
    pub data_writes: u64,
    /// PTE reads performed by the hardware walker.
    pub pte_reads: u64,
    /// Exceptions taken (faults and traps).
    pub exceptions: u64,
    /// Interrupts delivered.
    pub interrupts: u64,
}

impl RefCounts {
    /// Total architectural memory references (I + D).
    pub fn total_refs(&self) -> u64 {
        self.ifetch + self.data_reads + self.data_writes
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AluFlags {
    pub(crate) z: bool,
    pub(crate) n: bool,
    pub(crate) c: bool,
    pub(crate) v: bool,
    pub(crate) divz: bool,
}

impl Machine {
    /// Executes micro-ops until halt, a fatal condition, or `max_cycles`
    /// additional microcycles have elapsed.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        let deadline = self.cycles.saturating_add(max_cycles);
        if self.tier == crate::EngineTier::Reference {
            loop {
                if self.halted {
                    return RunExit::Halted;
                }
                if self.cycles >= deadline {
                    return RunExit::CycleLimit;
                }
                if let Some(exit) = self.step_micro() {
                    if exit == RunExit::Halted {
                        self.halted = true;
                    }
                    return exit;
                }
            }
        }
        if self.halted {
            return RunExit::Halted;
        }
        // An instruction target of u64::MAX never triggers, so the fast
        // loop always produces a real exit here.
        let exit = self
            .run_fast(deadline, u64::MAX)
            .unwrap_or(RunExit::CycleLimit);
        if exit == RunExit::Halted {
            self.halted = true;
        }
        exit
    }

    /// Runs until `n` more architectural instructions complete (or another
    /// exit happens first). Returns the exit if one occurred.
    pub fn step_insns(&mut self, n: u64, max_cycles: u64) -> Option<RunExit> {
        let target = self.insns + n;
        let deadline = self.cycles.saturating_add(max_cycles);
        if self.tier == crate::EngineTier::Reference {
            while self.insns < target {
                if self.halted {
                    return Some(RunExit::Halted);
                }
                if self.cycles >= deadline {
                    return Some(RunExit::CycleLimit);
                }
                if let Some(exit) = self.step_micro() {
                    if exit == RunExit::Halted {
                        self.halted = true;
                    }
                    return Some(exit);
                }
            }
            return None;
        }
        if self.insns >= target {
            return None;
        }
        if self.halted {
            return Some(RunExit::Halted);
        }
        let exit = self.run_fast(deadline, target);
        if exit == Some(RunExit::Halted) {
            self.halted = true;
        }
        exit
    }

    /// Drives the fast engine until a real exit, the cycle deadline, or
    /// `insn_target` completed instructions (`None` return). The image is
    /// moved out of `self` for the duration so the hot loop can hold a
    /// direct slice reference while the architectural helpers still take
    /// `&mut self`.
    fn run_fast(&mut self, deadline: u64, insn_target: u64) -> Option<RunExit> {
        self.ensure_fast();
        let superblocks = self.tier == crate::EngineTier::Superblock;
        if superblocks {
            self.ensure_superblocks();
        }
        let fast = std::mem::replace(&mut self.fast, crate::fast::FastImage::empty());
        let exit = if superblocks {
            let mut sbc = std::mem::replace(&mut self.sblocks, crate::superblock::SbCache::empty());
            let exit = self.run_fast_inner::<true>(&fast, &mut sbc, deadline, insn_target);
            self.sblocks = sbc;
            exit
        } else {
            let mut sbc = crate::superblock::SbCache::empty();
            self.run_fast_inner::<false>(&fast, &mut sbc, deadline, insn_target)
        };
        self.fast = fast;
        exit
    }

    /// The fast hot loop: the predecoded interpreter with the micro-PC
    /// and the cycle counter held in locals, synced to `self` around
    /// every helper that can observe or modify them — the virtual memory
    /// ops (a PTE walk charges cycles), exception entry (rewrites the
    /// micro-PC), the instruction boundary (timer check reads cycles),
    /// and privileged-register writes (ICCS/ICR arm the timer relative
    /// to the current cycle).
    ///
    /// Check order per micro-op matches the reference loops in
    /// [`Machine::run`]/[`Machine::step_insns`] exactly: instruction
    /// target first (`None`), then the cycle deadline, then one
    /// predecoded step.
    ///
    /// With `SB` set (the superblock tier) the loop probes the
    /// superblock cache at every dispatch point — function entry, the
    /// opcode/specifier dispatches, and the instruction boundary — and
    /// when a hot block exists there dispatches it whole through
    /// [`Machine::sb_exec`]; a guard exit or a cold probe falls back to
    /// the per-op path below, which runs until the next dispatch point
    /// re-probes. With `SB` clear the probes compile out entirely and
    /// this is exactly the PR 4 fast engine.
    fn run_fast_inner<const SB: bool>(
        &mut self,
        fast: &crate::fast::FastImage,
        sbc: &mut crate::superblock::SbCache,
        deadline: u64,
        insn_target: u64,
    ) -> Option<RunExit> {
        let mut upc = self.upc;
        let mut cycles = self.cycles;
        let mut usp = self.usp;
        let mut uf = self.regs.uflags;
        // Mirror the loop locals into `self` (before a helper that needs
        // the architectural counters) and back (after one that may have
        // changed them). The micro-flags live in a local too, but no
        // helper reads or writes them, so they sync only on loop exit.
        macro_rules! sync {
            () => {{
                self.upc = upc;
                self.cycles = cycles;
                self.usp = usp;
            }};
        }
        macro_rules! reload {
            () => {{
                upc = self.upc;
                cycles = self.cycles;
                usp = self.usp;
            }};
        }
        // `insns` moves only inside `boundary()`, so the instruction-target
        // compare runs once on entry and after each boundary instead of on
        // every micro-op; the exit points (and their priority over the
        // deadline) are exactly the reference loop's.
        if self.insns >= insn_target {
            return None;
        }
        // The superblock probe: dispatch cached blocks at the current
        // micro-PC until the cache goes cold there (then fall through to
        // the per-op loop) or a block produces a run exit. `Chain` keeps
        // probing at the updated micro-PC — which both links blocks
        // end-to-end and heats up the profiling counter at every chain
        // target — and always follows at least one executed, cycle-charged
        // step, so the chain loop cannot spin.
        macro_rules! sb_probe {
            ($run:lifetime) => {{
                if SB {
                    loop {
                        let fetch_entry = sbc.fetch_entry();
                        let Some(sb) = sbc.probe(upc, fast, self.sb_epoch) else {
                            break;
                        };
                        match self.sb_exec(
                            sb,
                            fetch_entry,
                            deadline,
                            insn_target,
                            &mut upc,
                            &mut cycles,
                            &mut usp,
                            &mut uf,
                        ) {
                            crate::superblock::SbExit::Chain => continue,
                            crate::superblock::SbExit::Fallback => break,
                            crate::superblock::SbExit::Exit(e) => break $run e,
                        }
                    }
                }
            }};
        }
        // One predecoded micro-op: deadline check, fetch, execute. Factored
        // as a macro so the loop below can instantiate it twice — two
        // dispatch sites give the branch predictor two contexts for the
        // op-kind indirect jump, which is the fast loop's main stall.
        // Semantics are per-uop and identical at both sites.
        macro_rules! dispatch_one {
            ($run:lifetime) => {{
            if cycles >= deadline {
                break $run Some(RunExit::CycleLimit);
            }
            let Some(&op) = fast.ops.get(upc as usize) else {
                break $run Some(RunExit::MicroError("micro-PC outside control store"));
            };
            upc += 1;
            cycles += cost::BASE;
            match op {
                DecOp::MovSS { src, dst } => {
                    self.regs.file[(dst & slots::MASK) as usize] =
                        self.regs.file[(src & slots::MASK) as usize];
                }
                DecOp::MovIS { imm, dst } => {
                    self.regs.file[(dst & slots::MASK) as usize] = imm;
                }
                DecOp::MovGIS { dst } => {
                    self.regs.file[(dst & slots::MASK) as usize] =
                        self.regs.file[(self.regs.file[slots::REGNUM] & 0xF) as usize];
                }
                DecOp::MovSGI { src } => {
                    let v = self.regs.file[(src & slots::MASK) as usize];
                    let n = (self.regs.file[slots::REGNUM] & 0xF) as u8;
                    self.log_gpr(n);
                    self.regs.file[n as usize] = v;
                    if n == 15 {
                        self.regs.file[slots::IBCNT] = 0;
                    }
                }
                DecOp::MovSMF { src, dst } => {
                    self.regs.file[(dst & slots::MASK) as usize] =
                        self.regs.file[(src & slots::MASK) as usize] & 0xF;
                }
                DecOp::MovSG { src, gpr } => {
                    let v = self.regs.file[(src & slots::MASK) as usize];
                    let n = gpr & 0xF;
                    self.log_gpr(n);
                    self.regs.file[n as usize] = v;
                    if n == 15 {
                        self.regs.file[slots::IBCNT] = 0;
                    }
                }
                DecOp::AluSS {
                    op,
                    a,
                    b,
                    dst,
                    cc,
                    size,
                } => {
                    let av = self.regs.file[(a & slots::MASK) as usize];
                    let bv = self.regs.file[(b & slots::MASK) as usize];
                    self.alu_to_slot(op, av, bv, dst, cc, size, &mut uf);
                }
                DecOp::AluIS {
                    op,
                    imm,
                    b,
                    dst,
                    cc,
                    size,
                } => {
                    let bv = self.regs.file[(b & slots::MASK) as usize];
                    self.alu_to_slot(op, imm, bv, dst, cc, size, &mut uf);
                }
                DecOp::AluSI {
                    op,
                    a,
                    imm,
                    dst,
                    cc,
                    size,
                } => {
                    let av = self.regs.file[(a & slots::MASK) as usize];
                    self.alu_to_slot(op, av, imm, dst, cc, size, &mut uf);
                }
                DecOp::Mov { src, dst } => {
                    let v = self.src(src);
                    self.wdst(dst, v);
                }
                DecOp::MovID { imm, dst } => self.wdst(dst, imm),
                DecOp::Alu {
                    op,
                    a,
                    b,
                    dst,
                    cc,
                    size,
                } => {
                    let av = self.src(a);
                    let bv = self.src(b);
                    self.alu_generic(op, av, bv, dst, cc, size, &mut uf);
                }
                DecOp::AluID {
                    op,
                    imm,
                    b,
                    dst,
                    cc,
                    size,
                } => {
                    let bv = self.src(b);
                    self.alu_generic(op, imm, bv, dst, cc, size, &mut uf);
                }
                DecOp::AluDI {
                    op,
                    a,
                    imm,
                    dst,
                    cc,
                    size,
                } => {
                    let av = self.src(a);
                    self.alu_generic(op, av, imm, dst, cc, size, &mut uf);
                }
                DecOp::AluConst {
                    result,
                    fbits,
                    cc,
                    dst,
                } => {
                    let flags = AluFlags {
                        z: fbits & 1 != 0,
                        n: fbits & 2 != 0,
                        c: fbits & 4 != 0,
                        v: fbits & 8 != 0,
                        divz: fbits & 16 != 0,
                    };
                    uf = crate::regs::UFlags {
                        z: flags.z,
                        n: flags.n,
                        c: flags.c,
                        v: flags.v,
                        divz: flags.divz,
                    };
                    self.apply_cc(cc, flags);
                    self.wdst(dst, result);
                }
                DecOp::SetSize(s) => self.regs.osize = s,
                DecOp::SetSizeDyn(r) => {
                    let v = self.src(r);
                    self.regs.osize = match v {
                        1 => DataSize::Byte,
                        2 => DataSize::Word,
                        4 => DataSize::Long,
                        _ => break $run Some(RunExit::MicroError("bad dynamic size latch")),
                    };
                }
                DecOp::SetSizeBad => {
                    break $run Some(RunExit::MicroError("bad dynamic size latch"))
                }
                DecOp::Read { class, size } => {
                    cycles += cost::MEM_EXTRA;
                    let size = size.unwrap_or(self.regs.osize);
                    sync!();
                    match self.vread_fast(size, class) {
                        Ok(()) => reload!(),
                        Err(e) => {
                            let r = self.enter_exception(e);
                            reload!();
                            if let Err(x) = r {
                                break $run Some(x);
                            }
                        }
                    }
                }
                DecOp::Write { size } => {
                    cycles += cost::MEM_EXTRA;
                    let size = size.unwrap_or(self.regs.osize);
                    sync!();
                    match self.vwrite_fast(size) {
                        Ok(()) => reload!(),
                        Err(e) => {
                            let r = self.enter_exception(e);
                            reload!();
                            if let Err(x) = r {
                                break $run Some(x);
                            }
                        }
                    }
                }
                DecOp::PhysRead => {
                    cycles += cost::MEM_EXTRA;
                    match self.mem.read_u32(self.regs.file[slots::MAR]) {
                        Some(v) => self.regs.file[slots::MDR] = v,
                        None => {
                            sync!();
                            let r = self.enter_exception(Exception::MachineCheck);
                            reload!();
                            if let Err(x) = r {
                                break $run Some(x);
                            }
                        }
                    }
                }
                DecOp::PhysWrite => {
                    cycles += cost::MEM_EXTRA;
                    let v = self.regs.file[slots::MDR];
                    if self.mem.write_u32(self.regs.file[slots::MAR], v).is_none() {
                        sync!();
                        let r = self.enter_exception(Exception::MachineCheck);
                        reload!();
                        if let Err(x) = r {
                            break $run Some(x);
                        }
                    }
                }
                DecOp::Jump(t) => upc = t,
                DecOp::JumpUZero(t) => {
                    if uf.z {
                        upc = t;
                    }
                }
                DecOp::JumpUNotZero(t) => {
                    if !uf.z {
                        upc = t;
                    }
                }
                DecOp::JumpRegNumIsPc(t) => {
                    if self.regs.file[slots::REGNUM] & 0xF == 15 {
                        upc = t;
                    }
                }
                DecOp::JumpIf { cond, target } => {
                    // `cond` against the loop-local micro-flags; the PSL
                    // conditions read `self` directly (the PSL is not
                    // mirrored into a local).
                    if self.eval_ucond(cond, &uf) {
                        upc = target;
                    }
                }
                DecOp::Call(t) => {
                    if usp >= MICRO_STACK_LIMIT {
                        break $run Some(RunExit::MicroError("micro-stack overflow"));
                    }
                    self.ustack[usp] = upc;
                    usp += 1;
                    upc = t;
                }
                DecOp::Ret => {
                    if usp == 0 {
                        break $run Some(RunExit::MicroError("micro-stack underflow"));
                    }
                    usp -= 1;
                    upc = self.ustack[usp];
                }
                DecOp::DispatchOpcode => {
                    upc = fast.opcode_table[(self.regs.file[slots::OPREG] & 0xFF) as usize];
                    if SB {
                        continue $run;
                    }
                }
                DecOp::DispatchSpec(table) => {
                    upc = fast.spec_tables[table as usize]
                        [((self.regs.file[slots::SPEC] >> 4) & 0xF) as usize];
                    if SB {
                        continue $run;
                    }
                }
                DecOp::DecodeNext => {
                    sync!();
                    let r = self.boundary();
                    reload!();
                    if let Some(x) = r {
                        break $run Some(x);
                    }
                    if self.insns >= insn_target {
                        break $run None;
                    }
                    if SB {
                        continue $run;
                    }
                }
                DecOp::AdvancePc => {
                    self.log_gpr(15);
                    self.regs.file[15] = self.regs.file[15].wrapping_add(1);
                }
                DecOp::Fault(kind) => {
                    let exc = self.fault_to_exception(kind);
                    sync!();
                    let r = self.enter_exception(exc);
                    reload!();
                    if let Err(x) = r {
                        break $run Some(x);
                    }
                }
                DecOp::ReadPrK { reg, dst } => {
                    let v = self.read_prv_fixed(reg);
                    self.wdst(dst, v);
                }
                DecOp::ReadPr { num, dst } => {
                    let n = self.src(num);
                    match self.read_prv_dyn(n) {
                        Ok(v) => self.wdst(dst, v),
                        Err(e) => {
                            sync!();
                            let r = self.enter_exception(e);
                            reload!();
                            if let Err(x) = r {
                                break $run Some(x);
                            }
                        }
                    }
                }
                DecOp::ReadPrBad => {
                    sync!();
                    let r = self.enter_exception(Exception::ReservedOperand);
                    reload!();
                    if let Err(x) = r {
                        break $run Some(x);
                    }
                }
                DecOp::WritePrK { reg, src } => {
                    let v = self.src(src);
                    if !self.write_prv_plain(reg, v) {
                        sync!();
                        self.write_prv_internal(reg, v);
                    }
                }
                DecOp::WritePrKI { reg, imm } => {
                    if !self.write_prv_plain(reg, imm) {
                        sync!();
                        self.write_prv_internal(reg, imm);
                    }
                }
                DecOp::WritePr { num, src } => {
                    let n = self.src(num);
                    let v = self.src(src);
                    match PrivReg::from_number(n) {
                        Some(reg) => {
                            sync!();
                            self.write_prv_internal(reg, v);
                        }
                        None => {
                            sync!();
                            let r = self.enter_exception(Exception::ReservedOperand);
                            reload!();
                            if let Err(x) = r {
                                break $run Some(x);
                            }
                        }
                    }
                }
                DecOp::WritePrI { num, imm } => {
                    let n = self.src(num);
                    match PrivReg::from_number(n) {
                        Some(reg) => {
                            sync!();
                            self.write_prv_internal(reg, imm);
                        }
                        None => {
                            sync!();
                            let r = self.enter_exception(Exception::ReservedOperand);
                            reload!();
                            if let Err(x) = r {
                                break $run Some(x);
                            }
                        }
                    }
                }
                DecOp::WritePrBad => {
                    sync!();
                    let r = self.enter_exception(Exception::ReservedOperand);
                    reload!();
                    if let Err(x) = r {
                        break $run Some(x);
                    }
                }
                DecOp::TbFlushAll => {
                    self.tlb.flush_all();
                    self.xc.flush_all();
                    self.tb_event();
                }
                DecOp::TbFlushProc => {
                    self.tlb.flush_process();
                    self.xc.flush_all();
                    self.tb_event();
                }
                DecOp::Halt => break $run Some(RunExit::Halted),
            }
            }};
        }
        // The outer loop head is the probe point: reached on entry and
        // again (via `continue 'run`) after every dispatch/boundary when
        // `SB` is set. The inner loop is the per-op path and only leaves
        // through the labeled breaks/continues above.
        let exit = 'run: loop {
            sb_probe!('run);
            loop {
                dispatch_one!('run);
                dispatch_one!('run);
            }
        };
        self.upc = upc;
        self.cycles = cycles;
        self.usp = usp;
        self.regs.uflags = uf;
        exit
    }

    /// Executes one superblock against the fast loop's mirrored locals.
    ///
    /// Per-op equivalence rests on three invariants:
    ///
    /// * **Entry deadline fusion.** Element `k` of a block entered at
    ///   cycle count `c` executes per-op iff `c + cyc_before(k) <
    ///   deadline`, so the single pre-check `c + total_cost <= deadline`
    ///   passes iff the per-op loop would have executed *every* charge
    ///   of the block; otherwise the block falls back at its head
    ///   without executing anything and the per-op loop replays it with
    ///   identical partial accounting.
    /// * **Cycle reconstruction.** During the block the live cycle count
    ///   is `entry + op.cyc + extra`, where `extra` accumulates the
    ///   data-dependent PTE-walk charges; it is materialized only where
    ///   the per-op loop would observe it (guard exits, the `sync!`
    ///   before memory helpers and the boundary, and run exits). After
    ///   any `extra` growth the remaining-budget check re-establishes
    ///   the entry invariant or falls back at the next element.
    /// * **Exit addresses.** Every exit publishes the micro-PC the
    ///   per-op loop would hold at the same point: the element's address
    ///   on a pre-execution fallback, address + 1 after a fault or
    ///   micro-stack error, the guard target on a taken guard.
    ///
    /// The elements are raw [`DecOp`]s, so this is the same single
    /// jump-table dispatch as the per-op loop — minus the per-op
    /// deadline check, fetch, micro-PC increment and cycle charge. The
    /// pure arms are copied verbatim from `dispatch_one!`; the
    /// control-flow arms replace micro-PC updates with block exits.
    ///
    /// `inline(never)`: the call cost amortises over a whole block, and
    /// keeping this body (with its own copy of the op jump table) out of
    /// `run_fast_inner` keeps the per-op loop compact.
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn sb_exec(
        &mut self,
        sb: &crate::superblock::Superblock,
        fetch_entry: u32,
        deadline: u64,
        insn_target: u64,
        upc: &mut u32,
        cycles: &mut u64,
        usp: &mut usize,
        uf: &mut crate::regs::UFlags,
    ) -> crate::superblock::SbExit {
        use crate::superblock::SbExit;
        let entry = *cycles;
        if entry + sb.total_cost as u64 > deadline {
            *upc = sb.head;
            return SbExit::Fallback;
        }
        let mut extra: u64 = 0;
        // Exit a block at a taken guard: publish the reconstructed cycle
        // count and chain at the branch target.
        macro_rules! guard_exit {
            ($op:expr, $target:expr) => {{
                *cycles = entry + $op.cyc as u64 + extra;
                *upc = $target;
                return SbExit::Chain;
            }};
        }
        for op in &sb.ops {
            match op.op {
                DecOp::MovSS { src, dst } => {
                    self.regs.file[(dst & slots::MASK) as usize] =
                        self.regs.file[(src & slots::MASK) as usize];
                }
                DecOp::MovIS { imm, dst } => {
                    self.regs.file[(dst & slots::MASK) as usize] = imm;
                }
                DecOp::MovGIS { dst } => {
                    self.regs.file[(dst & slots::MASK) as usize] =
                        self.regs.file[(self.regs.file[slots::REGNUM] & 0xF) as usize];
                }
                DecOp::MovSGI { src } => {
                    let v = self.regs.file[(src & slots::MASK) as usize];
                    let n = (self.regs.file[slots::REGNUM] & 0xF) as u8;
                    self.log_gpr(n);
                    self.regs.file[n as usize] = v;
                    if n == 15 {
                        self.regs.file[slots::IBCNT] = 0;
                    }
                }
                DecOp::MovSMF { src, dst } => {
                    self.regs.file[(dst & slots::MASK) as usize] =
                        self.regs.file[(src & slots::MASK) as usize] & 0xF;
                }
                DecOp::MovSG { src, gpr } => {
                    let v = self.regs.file[(src & slots::MASK) as usize];
                    let n = gpr & 0xF;
                    self.log_gpr(n);
                    self.regs.file[n as usize] = v;
                    if n == 15 {
                        self.regs.file[slots::IBCNT] = 0;
                    }
                }
                DecOp::AluSS {
                    op,
                    a,
                    b,
                    dst,
                    cc,
                    size,
                } => {
                    let av = self.regs.file[(a & slots::MASK) as usize];
                    let bv = self.regs.file[(b & slots::MASK) as usize];
                    self.alu_to_slot(op, av, bv, dst, cc, size, uf);
                }
                DecOp::AluIS {
                    op,
                    imm,
                    b,
                    dst,
                    cc,
                    size,
                } => {
                    let bv = self.regs.file[(b & slots::MASK) as usize];
                    self.alu_to_slot(op, imm, bv, dst, cc, size, uf);
                }
                DecOp::AluSI {
                    op,
                    a,
                    imm,
                    dst,
                    cc,
                    size,
                } => {
                    let av = self.regs.file[(a & slots::MASK) as usize];
                    self.alu_to_slot(op, av, imm, dst, cc, size, uf);
                }
                DecOp::Mov { src, dst } => {
                    let v = self.src(src);
                    self.wdst(dst, v);
                }
                DecOp::MovID { imm, dst } => self.wdst(dst, imm),
                DecOp::Alu {
                    op,
                    a,
                    b,
                    dst,
                    cc,
                    size,
                } => {
                    let av = self.src(a);
                    let bv = self.src(b);
                    self.alu_generic(op, av, bv, dst, cc, size, uf);
                }
                DecOp::AluID {
                    op,
                    imm,
                    b,
                    dst,
                    cc,
                    size,
                } => {
                    let bv = self.src(b);
                    self.alu_generic(op, imm, bv, dst, cc, size, uf);
                }
                DecOp::AluDI {
                    op,
                    a,
                    imm,
                    dst,
                    cc,
                    size,
                } => {
                    let av = self.src(a);
                    self.alu_generic(op, av, imm, dst, cc, size, uf);
                }
                DecOp::AluConst {
                    result,
                    fbits,
                    cc,
                    dst,
                } => {
                    let flags = AluFlags {
                        z: fbits & 1 != 0,
                        n: fbits & 2 != 0,
                        c: fbits & 4 != 0,
                        v: fbits & 8 != 0,
                        divz: fbits & 16 != 0,
                    };
                    *uf = crate::regs::UFlags {
                        z: flags.z,
                        n: flags.n,
                        c: flags.c,
                        v: flags.v,
                        divz: flags.divz,
                    };
                    self.apply_cc(cc, flags);
                    self.wdst(dst, result);
                }
                DecOp::SetSize(s) => self.regs.osize = s,
                DecOp::AdvancePc => {
                    self.log_gpr(15);
                    self.regs.file[15] = self.regs.file[15].wrapping_add(1);
                }
                DecOp::ReadPrK { reg, dst } => {
                    let v = self.read_prv_fixed(reg);
                    self.wdst(dst, v);
                }
                DecOp::WritePrK { reg, src } => {
                    let v = self.src(src);
                    let plain = self.write_prv_plain(reg, v);
                    debug_assert!(plain, "non-plain priv write inside a superblock");
                }
                DecOp::WritePrKI { reg, imm } => {
                    let plain = self.write_prv_plain(reg, imm);
                    debug_assert!(plain, "non-plain priv write inside a superblock");
                }
                DecOp::JumpUZero(t) => {
                    if uf.z {
                        guard_exit!(op, t);
                    }
                }
                DecOp::JumpUNotZero(t) => {
                    if !uf.z {
                        guard_exit!(op, t);
                    }
                }
                DecOp::JumpRegNumIsPc(t) => {
                    if self.regs.file[slots::REGNUM] & 0xF == 15 {
                        guard_exit!(op, t);
                    }
                }
                DecOp::JumpIf { cond, target } => {
                    if self.eval_ucond(cond, uf) {
                        guard_exit!(op, target);
                    }
                }
                DecOp::Read { class, size } => {
                    let size = size.unwrap_or(self.regs.osize);
                    self.cycles = entry + op.cyc as u64 + extra;
                    match self.vread_fast(size, class) {
                        Ok(()) => {
                            // A PTE walk charged cycles inside the
                            // helper; fold it into `extra` and make sure
                            // the rest of the block still fits the
                            // deadline, else resume per-op right here.
                            extra = self.cycles - (entry + op.cyc as u64);
                            if self.cycles + (sb.total_cost - op.cyc) as u64 > deadline {
                                *cycles = self.cycles;
                                *upc = op.upc + 1;
                                return SbExit::Fallback;
                            }
                        }
                        Err(e) => {
                            self.upc = op.upc + 1;
                            self.usp = *usp;
                            return self.sb_exception(e, upc, cycles, usp);
                        }
                    }
                }
                DecOp::Write { size } => {
                    let size = size.unwrap_or(self.regs.osize);
                    self.cycles = entry + op.cyc as u64 + extra;
                    match self.vwrite_fast(size) {
                        Ok(()) => {
                            extra = self.cycles - (entry + op.cyc as u64);
                            if self.cycles + (sb.total_cost - op.cyc) as u64 > deadline {
                                *cycles = self.cycles;
                                *upc = op.upc + 1;
                                return SbExit::Fallback;
                            }
                        }
                        Err(e) => {
                            self.upc = op.upc + 1;
                            self.usp = *usp;
                            return self.sb_exception(e, upc, cycles, usp);
                        }
                    }
                }
                DecOp::PhysRead => match self.mem.read_u32(self.regs.file[slots::MAR]) {
                    Some(v) => self.regs.file[slots::MDR] = v,
                    None => {
                        self.upc = op.upc + 1;
                        self.cycles = entry + op.cyc as u64 + extra;
                        self.usp = *usp;
                        return self.sb_exception(Exception::MachineCheck, upc, cycles, usp);
                    }
                },
                DecOp::PhysWrite => {
                    let v = self.regs.file[slots::MDR];
                    if self.mem.write_u32(self.regs.file[slots::MAR], v).is_none() {
                        self.upc = op.upc + 1;
                        self.cycles = entry + op.cyc as u64 + extra;
                        self.usp = *usp;
                        return self.sb_exception(Exception::MachineCheck, upc, cycles, usp);
                    }
                }
                DecOp::Call(_) => {
                    if *usp >= MICRO_STACK_LIMIT {
                        *cycles = entry + op.cyc as u64 + extra;
                        *upc = op.upc + 1;
                        return SbExit::Exit(Some(RunExit::MicroError("micro-stack overflow")));
                    }
                    // Formation followed the callee, so the pushed
                    // return address is statically the call site + 1.
                    self.ustack[*usp] = op.upc + 1;
                    *usp += 1;
                }
                DecOp::Ret => {
                    if *usp == 0 {
                        *cycles = entry + op.cyc as u64 + extra;
                        *upc = op.upc + 1;
                        return SbExit::Exit(Some(RunExit::MicroError("micro-stack underflow")));
                    }
                    // The popped address is the matching `Call`
                    // element's push, which is where formation
                    // continued — the block's next element already sits
                    // there.
                    *usp -= 1;
                }
                DecOp::DecodeNext => {
                    self.upc = op.upc + 1;
                    self.cycles = entry + op.cyc as u64 + extra;
                    let r = self.boundary();
                    *upc = self.upc;
                    *cycles = self.cycles;
                    *usp = self.usp;
                    if let Some(x) = r {
                        return SbExit::Exit(Some(x));
                    }
                    if self.insns >= insn_target {
                        return SbExit::Exit(None);
                    }
                    if *upc != fetch_entry {
                        // A trap or interrupt redirected the micro-PC.
                        return SbExit::Chain;
                    }
                }
                // Formation never admits any other op into a block.
                _ => debug_assert!(false, "non-block op inside a superblock"),
            }
        }
        *cycles = entry + sb.total_cost as u64 + extra;
        *upc = sb.exit_upc;
        SbExit::Chain
    }

    /// The exception tail shared by the faultable superblock steps:
    /// mirrors the per-op `enter_exception` + `reload!` sequence (the
    /// locals must be published to `self` *before* calling this).
    #[inline(never)]
    fn sb_exception(
        &mut self,
        e: Exception,
        upc: &mut u32,
        cycles: &mut u64,
        usp: &mut usize,
    ) -> crate::superblock::SbExit {
        let r = self.enter_exception(e);
        *upc = self.upc;
        *cycles = self.cycles;
        *usp = self.usp;
        match r {
            Err(x) => crate::superblock::SbExit::Exit(Some(x)),
            Ok(()) => crate::superblock::SbExit::Chain,
        }
    }

    /// Evaluates a micro-branch condition against the fast loop's local
    /// micro-flags (the PSL conditions read `self` directly). Shared by
    /// the per-op `JumpIf` arm and superblock guards.
    #[inline(always)]
    fn eval_ucond(&self, cond: MicroCond, uf: &crate::regs::UFlags) -> bool {
        let psl = self.regs.psl;
        match cond {
            MicroCond::UZero => uf.z,
            MicroCond::UNotZero => !uf.z,
            MicroCond::UNeg => uf.n,
            MicroCond::UPos => !uf.n,
            MicroCond::UCarry => uf.c,
            MicroCond::UNoCarry => !uf.c,
            MicroCond::UOvf => uf.v,
            MicroCond::UDivZero => uf.divz,
            MicroCond::USLess => uf.n != uf.v,
            MicroCond::USLeq => (uf.n != uf.v) || uf.z,
            MicroCond::RegNumIsPc => self.regs.file[slots::REGNUM] & 0xF == 15,
            MicroCond::UserMode => !psl.is_kernel(),
            MicroCond::KernelMode => psl.is_kernel(),
            MicroCond::ArchEql => psl.z(),
            MicroCond::ArchNeq => !psl.z(),
            MicroCond::ArchGtr => !(psl.n() || psl.z()),
            MicroCond::ArchLeq => psl.n() || psl.z(),
            MicroCond::ArchGeq => !psl.n(),
            MicroCond::ArchLss => psl.n(),
            MicroCond::ArchGtru => !(psl.c() || psl.z()),
            MicroCond::ArchLequ => psl.c() || psl.z(),
            MicroCond::ArchVs => psl.v(),
            MicroCond::ArchVc => !psl.v(),
            MicroCond::ArchCs => psl.c(),
            MicroCond::ArchCc => !psl.c(),
        }
    }

    /// Executes one micro-op on the reference path. Returns `Some` on
    /// halt/fatal.
    fn step_micro(&mut self) -> Option<RunExit> {
        if self.upc >= self.cs.len() {
            return Some(RunExit::MicroError("micro-PC outside control store"));
        }
        let op = self.cs.word(self.upc);
        self.upc += 1;
        self.cycles += cost::BASE;
        match op {
            MicroOp::Mov { src, dst } => {
                let v = self.read_src(src);
                self.write_dst(dst, v);
            }
            MicroOp::Alu {
                op,
                a,
                b,
                dst,
                cc,
                size,
            } => {
                let av = self.read_src(a);
                let bv = self.read_src(b);
                let (result, flags) = alu_exec(op, av, bv, size);
                self.regs.uflags = crate::regs::UFlags {
                    z: flags.z,
                    n: flags.n,
                    c: flags.c,
                    v: flags.v,
                    divz: flags.divz,
                };
                self.apply_cc(cc, flags);
                self.write_dst(dst, result);
            }
            MicroOp::SetSize(s) => self.regs.osize = s,
            MicroOp::SetSizeDyn(r) => {
                let v = self.read_src(r);
                self.regs.osize = match v {
                    1 => DataSize::Byte,
                    2 => DataSize::Word,
                    4 => DataSize::Long,
                    _ => return Some(RunExit::MicroError("bad dynamic size latch")),
                };
            }
            MicroOp::Read { class, size } => {
                self.cycles += cost::MEM_EXTRA;
                let size = self.sel_size(size);
                if let Err(e) = self.vread(size, class) {
                    if let Err(x) = self.enter_exception(e) {
                        return Some(x);
                    }
                }
            }
            MicroOp::Write { size } => {
                self.cycles += cost::MEM_EXTRA;
                let size = self.sel_size(size);
                if let Err(e) = self.vwrite(size) {
                    if let Err(x) = self.enter_exception(e) {
                        return Some(x);
                    }
                }
            }
            MicroOp::PhysRead => {
                self.cycles += cost::MEM_EXTRA;
                match self.mem.read_le(self.regs.file[slots::MAR], 4) {
                    Some(v) => self.regs.file[slots::MDR] = v,
                    None => {
                        if let Err(x) = self.enter_exception(Exception::MachineCheck) {
                            return Some(x);
                        }
                    }
                }
            }
            MicroOp::PhysWrite => {
                self.cycles += cost::MEM_EXTRA;
                let v = self.regs.file[slots::MDR];
                if self
                    .mem
                    .write_le(self.regs.file[slots::MAR], 4, v)
                    .is_none()
                {
                    if let Err(x) = self.enter_exception(Exception::MachineCheck) {
                        return Some(x);
                    }
                }
            }
            MicroOp::Jump(t) => self.upc = self.resolve(t),
            MicroOp::JumpIf { cond, target } => {
                if self.cond(cond) {
                    self.upc = self.resolve(target);
                }
            }
            MicroOp::Call(t) => {
                if self.usp >= MICRO_STACK_LIMIT {
                    return Some(RunExit::MicroError("micro-stack overflow"));
                }
                self.ustack[self.usp] = self.upc;
                self.usp += 1;
                self.upc = self.resolve(t);
            }
            MicroOp::Ret => {
                if self.usp == 0 {
                    return Some(RunExit::MicroError("micro-stack underflow"));
                }
                self.usp -= 1;
                self.upc = self.ustack[self.usp];
            }
            MicroOp::DispatchOpcode => {
                self.upc = self.cs.opcode_target(self.regs.file[slots::OPREG] as u8);
            }
            MicroOp::DispatchSpec(table) => {
                self.upc = self
                    .cs
                    .spec_target(table, (self.regs.file[slots::SPEC] >> 4) as u8);
            }
            MicroOp::DecodeNext => return self.boundary(),
            MicroOp::AdvancePc => {
                self.log_gpr(15);
                self.regs.file[15] = self.regs.file[15].wrapping_add(1);
            }
            MicroOp::Fault(kind) => {
                let exc = self.fault_to_exception(kind);
                if let Err(x) = self.enter_exception(exc) {
                    return Some(x);
                }
            }
            MicroOp::ReadPr { num, dst } => {
                let n = self.read_src(num);
                match self.read_prv_dyn(n) {
                    Ok(v) => self.write_dst(dst, v),
                    Err(e) => {
                        if let Err(x) = self.enter_exception(e) {
                            return Some(x);
                        }
                    }
                }
            }
            MicroOp::WritePr { num, src } => {
                let n = self.read_src(num);
                let v = self.read_src(src);
                match PrivReg::from_number(n) {
                    Some(reg) => self.write_prv_internal(reg, v),
                    None => {
                        if let Err(x) = self.enter_exception(Exception::ReservedOperand) {
                            return Some(x);
                        }
                    }
                }
            }
            MicroOp::TbFlushAll => {
                self.tlb.flush_all();
                self.xc.flush_all();
                self.tb_event();
            }
            MicroOp::TbFlushProc => {
                self.tlb.flush_process();
                self.xc.flush_all();
                self.tb_event();
            }
            MicroOp::Halt => return Some(RunExit::Halted),
        }
        None
    }

    // ── The fast engine’s operand helpers ─────────────────────────────

    /// ALU execute with the result going to a plain slot (the
    /// specialized `Alu*` forms).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn alu_to_slot(
        &mut self,
        op: AluOp,
        av: u32,
        bv: u32,
        dst: u8,
        cc: CcEffect,
        size: DataSize,
        uf: &mut crate::regs::UFlags,
    ) {
        let (result, flags) = alu_exec(op, av, bv, size);
        *uf = crate::regs::UFlags {
            z: flags.z,
            n: flags.n,
            c: flags.c,
            v: flags.v,
            divz: flags.divz,
        };
        self.apply_cc(cc, flags);
        self.regs.file[(dst & slots::MASK) as usize] = result;
    }

    /// ALU execute through the generic operand writers (the unspecialized
    /// `Alu`/`AluID`/`AluDI` forms).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn alu_generic(
        &mut self,
        op: AluOp,
        av: u32,
        bv: u32,
        dst: Dst,
        cc: CcEffect,
        size: DataSize,
        uf: &mut crate::regs::UFlags,
    ) {
        let (result, flags) = alu_exec(op, av, bv, size);
        *uf = crate::regs::UFlags {
            z: flags.z,
            n: flags.n,
            c: flags.c,
            v: flags.v,
            divz: flags.divz,
        };
        self.apply_cc(cc, flags);
        self.wdst(dst, result);
    }

    /// Predecoded source-operand fetch. Slot indices are masked with
    /// [`slots::MASK`] (the file is padded to a power of two) so the
    /// access compiles without a bounds check.
    #[inline(always)]
    fn src(&self, s: Src) -> u32 {
        match s {
            Src::Slot(i) => self.regs.file[(i & slots::MASK) as usize],
            Src::GprIdx => self.regs.file[(self.regs.file[slots::REGNUM] & 0xF) as usize],
            Src::Psl => self.regs.psl.bits(),
            Src::OSizeBytes => self.regs.osize.bytes(),
            Src::OSizeMask => self.regs.osize.mask(),
        }
    }

    /// Predecoded destination write.
    #[inline(always)]
    fn wdst(&mut self, d: Dst, v: u32) {
        match d {
            Dst::Slot(i) => self.regs.file[(i & slots::MASK) as usize] = v,
            Dst::Gpr(n) => {
                let n = n & 0xF;
                self.log_gpr(n);
                self.regs.file[n as usize] = v;
                if n == 15 {
                    self.regs.file[slots::IBCNT] = 0;
                }
            }
            Dst::GprIdx => {
                let n = (self.regs.file[slots::REGNUM] & 0xF) as u8;
                self.log_gpr(n);
                self.regs.file[n as usize] = v;
                if n == 15 {
                    self.regs.file[slots::IBCNT] = 0;
                }
            }
            Dst::Psl => self.regs.psl = Psl::from_bits(v),
            Dst::MaskedFF(i) => self.regs.file[(i & slots::MASK) as usize] = v & 0xFF,
            Dst::MaskedF(i) => self.regs.file[(i & slots::MASK) as usize] = v & 0xF,
            Dst::ReadOnly => debug_assert!(false, "write to read-only micro-register"),
        }
    }

    fn sel_size(&self, sel: SizeSel) -> DataSize {
        match sel {
            SizeSel::Fixed(s) => s,
            SizeSel::OSize => self.regs.osize,
        }
    }

    fn resolve(&self, t: Target) -> u32 {
        match t {
            Target::Abs(a) => a,
            Target::Entry(e) => self.cs.entry(e),
        }
    }

    pub(crate) fn read_src(&mut self, r: MicroReg) -> u32 {
        match r {
            MicroReg::Gpr(n) => self.regs.file[(n & 0xF) as usize],
            MicroReg::T(n) => self.regs.file[slots::T0 + (n & 0xF) as usize],
            MicroReg::P(n) => self.regs.file[slots::P0 + (n & 0x7) as usize],
            MicroReg::Mar => self.regs.file[slots::MAR],
            MicroReg::Mdr => self.regs.file[slots::MDR],
            MicroReg::Psl => self.regs.psl.bits(),
            MicroReg::Spec => self.regs.file[slots::SPEC],
            MicroReg::OpReg => self.regs.file[slots::OPREG],
            MicroReg::RegNum => self.regs.file[slots::REGNUM],
            MicroReg::GprIdx => self.regs.file[(self.regs.file[slots::REGNUM] & 0xF) as usize],
            MicroReg::OSizeBytes => self.regs.osize.bytes(),
            MicroReg::OSizeMask => self.regs.osize.mask(),
            MicroReg::IbData => self.regs.file[slots::IBDATA],
            MicroReg::IbCnt => self.regs.file[slots::IBCNT],
            MicroReg::ExcVec => self.regs.file[slots::EXCVEC],
            MicroReg::ExcParam => self.regs.file[slots::EXCPARAM],
            MicroReg::ExcFlags => self.regs.file[slots::EXCFLAGS],
            MicroReg::ExcPc => self.regs.file[slots::EXCPC],
            MicroReg::ExcIpl => self.regs.file[slots::EXCIPL],
            MicroReg::Imm(v) => v,
        }
    }

    pub(crate) fn write_dst(&mut self, r: MicroReg, v: u32) {
        match r {
            MicroReg::Gpr(n) => {
                let n = (n & 0xF) as usize;
                self.log_gpr(n as u8);
                self.regs.file[n] = v;
                if n == 15 {
                    self.regs.file[slots::IBCNT] = 0;
                }
            }
            MicroReg::GprIdx => {
                let n = (self.regs.file[slots::REGNUM] & 0xF) as usize;
                self.log_gpr(n as u8);
                self.regs.file[n] = v;
                if n == 15 {
                    self.regs.file[slots::IBCNT] = 0;
                }
            }
            MicroReg::T(n) => self.regs.file[slots::T0 + (n & 0xF) as usize] = v,
            MicroReg::P(n) => self.regs.file[slots::P0 + (n & 0x7) as usize] = v,
            MicroReg::Mar => self.regs.file[slots::MAR] = v,
            MicroReg::Mdr => self.regs.file[slots::MDR] = v,
            MicroReg::Psl => self.regs.psl = Psl::from_bits(v),
            MicroReg::Spec => self.regs.file[slots::SPEC] = v & 0xFF,
            MicroReg::OpReg => self.regs.file[slots::OPREG] = v & 0xFF,
            MicroReg::RegNum => self.regs.file[slots::REGNUM] = v & 0xF,
            MicroReg::IbData => self.regs.file[slots::IBDATA] = v,
            MicroReg::IbCnt => self.regs.file[slots::IBCNT] = v,
            MicroReg::ExcVec => self.regs.file[slots::EXCVEC] = v,
            MicroReg::ExcParam => self.regs.file[slots::EXCPARAM] = v,
            MicroReg::ExcFlags => self.regs.file[slots::EXCFLAGS] = v,
            MicroReg::ExcPc => self.regs.file[slots::EXCPC] = v,
            MicroReg::ExcIpl => self.regs.file[slots::EXCIPL] = v,
            MicroReg::Imm(_) | MicroReg::OSizeBytes | MicroReg::OSizeMask => {
                debug_assert!(false, "write to read-only micro-register {r}");
            }
        }
    }

    #[inline(always)]
    fn log_gpr(&mut self, n: u8) {
        let n = n & 0xF;
        let bit = 1u16 << n;
        if self.rlog_mask & bit == 0 {
            self.rlog_mask |= bit;
            self.rlog.push((n, self.regs.file[n as usize]));
        }
    }

    fn rollback(&mut self) {
        while let Some((n, old)) = self.rlog.pop() {
            self.regs.file[n as usize] = old;
        }
        self.rlog_mask = 0;
        self.regs.psl = self.psl_at_start;
        self.regs.file[slots::IBCNT] = 0;
    }

    fn apply_cc(&mut self, cc: CcEffect, f: AluFlags) {
        let psl = &mut self.regs.psl;
        match cc {
            CcEffect::None => {}
            CcEffect::Logic => {
                psl.set_n(f.n);
                psl.set_z(f.z);
                psl.set_v(false);
            }
            CcEffect::Test => {
                psl.set_n(f.n);
                psl.set_z(f.z);
                psl.set_v(false);
                psl.set_c(false);
            }
            CcEffect::Arith => {
                psl.set_cc(f.n, f.z, f.v, f.c);
            }
            // VAX CMP semantics: N is the *signed comparison* outcome
            // (sign of the subtraction corrected for overflow), V is
            // cleared, C is the unsigned comparison. This is what makes
            // `blss` after `cmpl` correct even when a-b overflows.
            CcEffect::Cmp => {
                psl.set_cc(f.n != f.v, f.z, false, f.c);
            }
        }
    }

    fn cond(&self, c: MicroCond) -> bool {
        let f = self.regs.uflags;
        let psl = self.regs.psl;
        match c {
            MicroCond::UZero => f.z,
            MicroCond::UNotZero => !f.z,
            MicroCond::UNeg => f.n,
            MicroCond::UPos => !f.n,
            MicroCond::UCarry => f.c,
            MicroCond::UNoCarry => !f.c,
            MicroCond::UOvf => f.v,
            MicroCond::UDivZero => f.divz,
            MicroCond::USLess => f.n != f.v,
            MicroCond::USLeq => (f.n != f.v) || f.z,
            MicroCond::RegNumIsPc => self.regs.file[slots::REGNUM] & 0xF == 15,
            MicroCond::UserMode => !psl.is_kernel(),
            MicroCond::KernelMode => psl.is_kernel(),
            MicroCond::ArchEql => psl.z(),
            MicroCond::ArchNeq => !psl.z(),
            MicroCond::ArchGtr => !(psl.n() || psl.z()),
            MicroCond::ArchLeq => psl.n() || psl.z(),
            MicroCond::ArchGeq => !psl.n(),
            MicroCond::ArchLss => psl.n(),
            MicroCond::ArchGtru => !(psl.c() || psl.z()),
            MicroCond::ArchLequ => psl.c() || psl.z(),
            MicroCond::ArchVs => psl.v(),
            MicroCond::ArchVc => !psl.v(),
            MicroCond::ArchCs => psl.c(),
            MicroCond::ArchCc => !psl.c(),
        }
    }

    fn fault_to_exception(&self, kind: FaultKind) -> Exception {
        match kind {
            FaultKind::ReservedInstruction => Exception::ReservedInstruction,
            FaultKind::ReservedOperand => Exception::ReservedOperand,
            FaultKind::ReservedAddrMode => Exception::ReservedAddrMode,
            FaultKind::Privileged => Exception::PrivilegedInstruction,
            FaultKind::Arithmetic => Exception::Arithmetic(match self.regs.file[slots::EXCPARAM] {
                1 => ArithKind::Overflow,
                _ => ArithKind::DivideByZero,
            }),
            FaultKind::Chmk => Exception::Chmk(self.regs.file[slots::EXCPARAM] as u16),
            FaultKind::Breakpoint => Exception::Breakpoint,
        }
    }

    /// Enters the exception micro-flow.
    ///
    /// # Errors
    ///
    /// Returns `Err(RunExit::TripleFault)` on a third nested exception.
    fn enter_exception(&mut self, exc: Exception) -> Result<(), RunExit> {
        self.counts.exceptions += 1;
        if self.exc_depth >= 2 {
            return Err(RunExit::TripleFault);
        }
        let exc = if self.exc_depth == 1 {
            Exception::MachineCheck
        } else {
            exc
        };
        self.exc_depth += 1;
        if exc.class() == ExceptionClass::Fault {
            self.rollback();
        }
        self.regs.file[slots::EXCVEC] = exc.vector();
        let (param, has_param) = match exc.parameter() {
            Some(p) => (p, 1),
            None => (0, 0),
        };
        self.regs.file[slots::EXCPARAM] = param;
        self.regs.file[slots::EXCFLAGS] = has_param;
        self.regs.file[slots::EXCPC] = if exc.class() == ExceptionClass::Fault {
            self.insn_pc
        } else {
            self.regs.file[15]
        };
        self.regs.file[slots::IBCNT] = 0;
        self.usp = 0;
        self.upc = self.cs.entry(Entry::ExcDispatch);
        Ok(())
    }

    fn enter_interrupt(&mut self, vector: u32, ipl: u8) {
        self.counts.interrupts += 1;
        self.exc_depth = 1;
        self.regs.file[slots::EXCVEC] = vector;
        self.regs.file[slots::EXCPARAM] = 0;
        self.regs.file[slots::EXCFLAGS] = 2;
        self.regs.file[slots::EXCIPL] = ipl as u32;
        self.regs.file[slots::EXCPC] = self.regs.file[15];
        self.regs.file[slots::IBCNT] = 0;
        self.usp = 0;
        self.upc = self.cs.entry(Entry::ExcDispatch);
    }

    /// Instruction-boundary duties (the `DecodeNext` micro-op).
    fn boundary(&mut self) -> Option<RunExit> {
        self.exc_depth = 0;
        self.rlog.clear();
        self.rlog_mask = 0;
        self.insns += 1;
        self.usp = 0;

        // Trace (T-bit) trap sequencing: TP set at the start of a traced
        // instruction fires here, before anything else.
        if self.regs.psl.tp() {
            let mut psl = self.regs.psl;
            psl.set_tp(false);
            self.regs.psl = psl;
            self.psl_at_start = psl;
            self.insn_pc = self.regs.file[15];
            if let Err(x) = self.enter_exception(Exception::TraceTrap) {
                return Some(x);
            }
            return None;
        }
        if self.regs.psl.t() {
            let mut psl = self.regs.psl;
            psl.set_tp(true);
            self.regs.psl = psl;
        }

        // Interval timer.
        if self.prv.iccs & 1 != 0 && self.cycles >= self.timer_deadline {
            self.timer_pending = true;
            self.prv.iccs |= 0x80;
            let icr = self.prv.icr.max(1) as u64;
            self.timer_deadline = self.cycles + icr;
        }

        // Interrupt arbitration, highest IPL first.
        let cur_ipl = self.regs.psl.ipl();
        if self.timer_pending && self.prv.iccs & 0x40 != 0 && IPL_TIMER > cur_ipl {
            self.timer_pending = false;
            self.prv.iccs &= !0x80;
            self.insn_pc = self.regs.file[15];
            self.psl_at_start = self.regs.psl;
            self.enter_interrupt(ScbVector::IntervalTimer.offset(), IPL_TIMER);
            return None;
        }
        if self.prv.sisr != 0 {
            let level = 31 - self.prv.sisr.leading_zeros();
            if level as u8 > cur_ipl && (1..=15).contains(&level) {
                self.prv.sisr &= !(1 << level);
                self.insn_pc = self.regs.file[15];
                self.psl_at_start = self.regs.psl;
                self.enter_interrupt(ScbVector::software(level as u8), level as u8);
                return None;
            }
        }

        self.insn_pc = self.regs.file[15];
        self.psl_at_start = self.regs.psl;
        self.upc = self.cs.entry(Entry::Fetch);
        None
    }

    // ── Virtual memory ────────────────────────────────────────────────

    /// Reference read path: per-access selector decode, no micro-cache.
    fn vread(&mut self, size: DataSize, class: RefClass) -> Result<(), Exception> {
        match class {
            RefClass::IFetch => self.counts.ifetch += 1,
            _ => self.counts.data_reads += 1,
        }
        let va = self.regs.file[slots::MAR];
        let n = size.bytes();
        if self.prv.mapen == 0 {
            self.regs.file[slots::MDR] = self
                .mem
                .read_le(va, n)
                .ok_or(Exception::TranslationInvalid(VirtAddr(va)))?;
            return Ok(());
        }
        if (va & PAGE_OFFSET_MASK) + n <= PAGE_SIZE {
            let pa = self.translate(va, AccessKind::Read)?;
            self.regs.file[slots::MDR] = self.mem.read_le(pa, n).ok_or(Exception::MachineCheck)?;
        } else {
            let mut v = 0u32;
            for i in 0..n {
                let pa = self.translate(va.wrapping_add(i), AccessKind::Read)?;
                let b = self.mem.read_u8(pa).ok_or(Exception::MachineCheck)?;
                v |= (b as u32) << (8 * i);
            }
            self.regs.file[slots::MDR] = v;
        }
        Ok(())
    }

    /// Reference write path.
    fn vwrite(&mut self, size: DataSize) -> Result<(), Exception> {
        self.counts.data_writes += 1;
        let va = self.regs.file[slots::MAR];
        let v = self.regs.file[slots::MDR];
        let n = size.bytes();
        if self.prv.mapen == 0 {
            self.mem
                .write_le(va, n, v)
                .ok_or(Exception::TranslationInvalid(VirtAddr(va)))?;
            return Ok(());
        }
        if (va & PAGE_OFFSET_MASK) + n <= PAGE_SIZE {
            let pa = self.translate(va, AccessKind::Write)?;
            self.mem.write_le(pa, n, v).ok_or(Exception::MachineCheck)?;
        } else {
            // Translate both pages first so a fault can't leave a torn
            // write behind.
            for i in 0..n {
                self.translate(va.wrapping_add(i), AccessKind::Write)?;
            }
            for i in 0..n {
                let pa = self.translate(va.wrapping_add(i), AccessKind::Write)?;
                self.mem
                    .write_u8(pa, (v >> (8 * i)) as u8)
                    .ok_or(Exception::MachineCheck)?;
            }
        }
        Ok(())
    }

    /// Fast read path: longword accessors when the transfer is a
    /// longword, translation micro-cache probe before the full
    /// [`Machine::translate`]. A micro-cache hit is by construction a TB
    /// hit, and is recorded as one ([`crate::Tlb`] `note_hit`), so the
    /// statistics and cycle counts match the reference path exactly.
    #[inline]
    fn vread_fast(&mut self, size: DataSize, class: RefClass) -> Result<(), Exception> {
        match class {
            RefClass::IFetch => self.counts.ifetch += 1,
            _ => self.counts.data_reads += 1,
        }
        let va = self.regs.file[slots::MAR];
        let n = size.bytes();
        if self.prv.mapen == 0 {
            let v = if n == 4 {
                self.mem.read_u32(va)
            } else {
                self.mem.read_le(va, n)
            };
            self.regs.file[slots::MDR] = v.ok_or(Exception::TranslationInvalid(VirtAddr(va)))?;
            return Ok(());
        }
        if (va & PAGE_OFFSET_MASK) + n <= PAGE_SIZE {
            let pa = match self.xc.probe_read(va >> PAGE_SHIFT, self.regs.psl.mode()) {
                Some(base) => {
                    self.tlb.note_hit();
                    base + (va & PAGE_OFFSET_MASK)
                }
                None => self.translate(va, AccessKind::Read)?,
            };
            let v = if n == 4 {
                self.mem.read_u32(pa)
            } else {
                self.mem.read_le(pa, n)
            };
            self.regs.file[slots::MDR] = v.ok_or(Exception::MachineCheck)?;
        } else {
            let mut v = 0u32;
            for i in 0..n {
                let pa = self.translate(va.wrapping_add(i), AccessKind::Read)?;
                let b = self.mem.read_u8(pa).ok_or(Exception::MachineCheck)?;
                v |= (b as u32) << (8 * i);
            }
            self.regs.file[slots::MDR] = v;
        }
        Ok(())
    }

    /// Fast write path (see [`Machine::vread_fast`]); the micro-cache hit
    /// additionally requires the modified bit to have been set at install
    /// time, so the modify-bit write-back always takes the full path.
    #[inline]
    fn vwrite_fast(&mut self, size: DataSize) -> Result<(), Exception> {
        self.counts.data_writes += 1;
        let va = self.regs.file[slots::MAR];
        let v = self.regs.file[slots::MDR];
        let n = size.bytes();
        if self.prv.mapen == 0 {
            let ok = if n == 4 {
                self.mem.write_u32(va, v)
            } else {
                self.mem.write_le(va, n, v)
            };
            ok.ok_or(Exception::TranslationInvalid(VirtAddr(va)))?;
            return Ok(());
        }
        if (va & PAGE_OFFSET_MASK) + n <= PAGE_SIZE {
            let pa = match self.xc.probe_write(va >> PAGE_SHIFT, self.regs.psl.mode()) {
                Some(base) => {
                    self.tlb.note_hit();
                    base + (va & PAGE_OFFSET_MASK)
                }
                None => self.translate(va, AccessKind::Write)?,
            };
            let ok = if n == 4 {
                self.mem.write_u32(pa, v)
            } else {
                self.mem.write_le(pa, n, v)
            };
            ok.ok_or(Exception::MachineCheck)?;
        } else {
            // Translate both pages first so a fault can't leave a torn
            // write behind.
            for i in 0..n {
                self.translate(va.wrapping_add(i), AccessKind::Write)?;
            }
            for i in 0..n {
                let pa = self.translate(va.wrapping_add(i), AccessKind::Write)?;
                self.mem
                    .write_u8(pa, (v >> (8 * i)) as u8)
                    .ok_or(Exception::MachineCheck)?;
            }
        }
        Ok(())
    }

    fn region_base_len(&self, region: Region) -> (u32, u32) {
        match region {
            Region::P0 => (self.prv.p0br, self.prv.p0lr),
            Region::P1 => (self.prv.p1br, self.prv.p1lr),
            Region::System => (self.prv.sbr, self.prv.slr),
            Region::Reserved => (0, 0),
        }
    }

    pub(crate) fn translate(&mut self, va: u32, kind: AccessKind) -> Result<u32, Exception> {
        let vaddr = VirtAddr(va);
        let gvpn = vaddr.global_vpn();
        let mode = self.regs.psl.mode();
        let mut pte = match self.tlb.lookup(gvpn) {
            Some(p) => p,
            None => {
                let bl = (
                    self.region_base_len(Region::P0),
                    self.region_base_len(Region::P1),
                    self.region_base_len(Region::System),
                );
                let mem = &self.mem;
                let r = mmu::walk(
                    vaddr,
                    |region| match region {
                        Region::P0 => bl.0,
                        Region::P1 => bl.1,
                        Region::System => bl.2,
                        Region::Reserved => (0, 0),
                    },
                    |pa| mem.read_le(pa, 4),
                )?;
                self.counts.pte_reads += r.pte_reads as u64;
                self.cycles += cost::PTE_READ * r.pte_reads as u64;
                // The insert may evict a different tag sharing the slot;
                // the micro-cache must not outlive the TB entry it
                // shadows.
                self.xc.invalidate_slot(gvpn);
                self.tlb
                    .insert(gvpn, r.pte, vaddr.region().is_per_process());
                r.pte
            }
        };
        mmu::check_access(pte, kind, mode, vaddr)?;
        if kind == AccessKind::Write && !pte.modified() {
            pte = pte.with_modified();
            let (base, _) = self.region_base_len(vaddr.region());
            let pte_pa = base.wrapping_add(vaddr.vpn() * 4);
            self.mem.write_le(pte_pa, 4, pte.0);
            self.xc.invalidate_slot(gvpn);
            self.tlb.update(gvpn, pte);
        }
        let pa = pte.frame_base() + vaddr.offset();
        if !self.mem.contains(pa, 1) {
            return Err(Exception::MachineCheck);
        }
        // Full success: shadow the TB entry in the micro-cache. `write_ok`
        // (modified bit already set) gates write hits so the modify-bit
        // write-back above still happens on the full path.
        self.xc
            .install(gvpn, pte.frame_base(), pte.prot(), pte.modified());
        Ok(pa)
    }

    // ── Privileged registers ──────────────────────────────────────────

    fn read_prv_fixed(&mut self, reg: PrivReg) -> u32 {
        match reg {
            PrivReg::Rxdb => self.console_in.pop_front().map_or(0, u32::from),
            PrivReg::Rxcs => {
                if self.console_in.is_empty() {
                    0
                } else {
                    0x80
                }
            }
            _ => self.prv.read(reg, &self.regs),
        }
    }

    fn read_prv_dyn(&mut self, num: u32) -> Result<u32, Exception> {
        let reg = PrivReg::from_number(num).ok_or(Exception::ReservedOperand)?;
        Ok(self.read_prv_fixed(reg))
    }

    /// The side-effect-free subset of [`Machine::write_prv_internal`]:
    /// plain latch stores that touch neither the cycle counter, the
    /// timer, the console nor any translation structure. Returns `false`
    /// when the register needs the full path (with the loop counters
    /// published first — ICCS/ICR arm the timer from `cycles`).
    #[inline(always)]
    fn write_prv_plain(&mut self, reg: PrivReg, v: u32) -> bool {
        match reg {
            PrivReg::Ksp => self.prv.ksp = v,
            PrivReg::Usp => self.prv.usp = v,
            PrivReg::Pcbb => self.prv.pcbb = v,
            PrivReg::Scbb => self.prv.scbb = v,
            PrivReg::Trctl => self.prv.trctl = v,
            PrivReg::Trbase => self.prv.trbase = v,
            PrivReg::Trptr => self.prv.trptr = v,
            PrivReg::Trlim => self.prv.trlim = v,
            _ => return false,
        }
        true
    }

    /// Records a TB/mapping event: bumps the superblock-cache epoch so
    /// no block formed before the event can dispatch after it. Called at
    /// exactly the points the translation micro-cache flushes (minus its
    /// per-slot self-maintenance inside [`Machine::translate`], which is
    /// not an architectural event).
    #[inline(always)]
    pub(crate) fn tb_event(&mut self) {
        self.sb_epoch = self.sb_epoch.wrapping_add(1);
    }

    pub(crate) fn write_prv_internal(&mut self, reg: PrivReg, v: u32) {
        match reg {
            PrivReg::Ksp => self.prv.ksp = v,
            PrivReg::Usp => self.prv.usp = v,
            PrivReg::P0br => {
                self.prv.p0br = v;
                self.xc.flush_all();
                self.tb_event();
            }
            PrivReg::P0lr => {
                self.prv.p0lr = v;
                self.xc.flush_all();
                self.tb_event();
            }
            PrivReg::P1br => {
                self.prv.p1br = v;
                self.xc.flush_all();
                self.tb_event();
            }
            PrivReg::P1lr => {
                self.prv.p1lr = v;
                self.xc.flush_all();
                self.tb_event();
            }
            PrivReg::Sbr => {
                self.prv.sbr = v;
                self.xc.flush_all();
                self.tb_event();
            }
            PrivReg::Slr => {
                self.prv.slr = v;
                self.xc.flush_all();
                self.tb_event();
            }
            PrivReg::Pcbb => self.prv.pcbb = v,
            PrivReg::Scbb => self.prv.scbb = v,
            PrivReg::Ipl => self.regs.psl.set_ipl((v & 31) as u8),
            PrivReg::Sirr => {
                if (1..=15).contains(&v) {
                    self.prv.sisr |= 1 << v;
                }
            }
            PrivReg::Sisr => self.prv.sisr = v & 0xFFFE,
            PrivReg::Iccs => {
                if v & 0x80 != 0 {
                    self.prv.iccs &= !0x80;
                    self.timer_pending = false;
                }
                let was_running = self.prv.iccs & 1 != 0;
                self.prv.iccs = (self.prv.iccs & 0x80) | (v & 0x41);
                if !was_running && v & 1 != 0 {
                    self.timer_deadline = self.cycles + self.prv.icr.max(1) as u64;
                }
            }
            PrivReg::Icr => {
                self.prv.icr = v;
                if self.prv.iccs & 1 != 0 {
                    self.timer_deadline = self.cycles + v.max(1) as u64;
                }
            }
            PrivReg::Txdb => self.console_out.push(v as u8),
            PrivReg::Txcs | PrivReg::Rxdb | PrivReg::Rxcs => {}
            PrivReg::Trctl => self.prv.trctl = v,
            PrivReg::Trbase => self.prv.trbase = v,
            PrivReg::Trptr => self.prv.trptr = v,
            PrivReg::Trlim => self.prv.trlim = v,
            PrivReg::Mapen => {
                self.prv.mapen = v & 1;
                self.xc.flush_all();
                self.tb_event();
            }
            PrivReg::Tbia => {
                self.tlb.flush_all();
                self.xc.flush_all();
                self.tb_event();
            }
            PrivReg::Tbis => {
                self.tlb.flush_single(v);
                self.xc.invalidate_slot(v >> PAGE_SHIFT);
                self.tb_event();
            }
        }
    }
}

// ── The ALU ───────────────────────────────────────────────────────────

#[inline(always)]
pub(crate) fn alu_exec(op: AluOp, a: u32, b: u32, size: DataSize) -> (u32, AluFlags) {
    let mask = size.mask();
    let sign = size.sign_bit();
    let am = a & mask;
    let bm = b & mask;
    let mut f = AluFlags::default();
    let result: u32 = match op {
        AluOp::Add => {
            let sum = am as u64 + bm as u64;
            let r = (sum as u32) & mask;
            f.c = sum > mask as u64;
            f.v = ((am ^ r) & (bm ^ r) & sign) != 0;
            r
        }
        AluOp::Sub => sub_flags(am, bm, mask, sign, &mut f),
        AluOp::RSub => sub_flags(bm, am, mask, sign, &mut f),
        AluOp::Mul => {
            let prod = sext(am, size) as i64 * sext(bm, size) as i64;
            let r = (prod as u32) & mask;
            f.v = prod != sext(r, size) as i64;
            r
        }
        AluOp::Div | AluOp::Rem => {
            let divisor = sext(am, size);
            let dividend = sext(bm, size);
            if divisor == 0 {
                f.divz = true;
                bm
            } else if dividend == i32::MIN && divisor == -1 && size == DataSize::Long {
                f.v = true;
                bm
            } else if op == AluOp::Div {
                (dividend.wrapping_div(divisor) as u32) & mask
            } else {
                (dividend.wrapping_rem(divisor) as u32) & mask
            }
        }
        AluOp::And => am & bm,
        AluOp::BicR => bm & !am,
        AluOp::Or => am | bm,
        AluOp::Xor => am ^ bm,
        AluOp::Ash => {
            let count = sext(am, DataSize::Long);
            if count >= 0 {
                let c = count.min(63) as u32;
                let shifted = if c >= 32 { 0 } else { bm << c } & mask;
                // V if any significant bits were lost.
                let back = if c >= 32 {
                    0
                } else {
                    ((sext(shifted, size) >> c) as u32) & mask
                };
                f.v = bm != 0 && (back != bm || c >= 32);
                shifted
            } else {
                // unsigned_abs: a count of i32::MIN must saturate, not
                // overflow the negation.
                let c = count.unsigned_abs().min(31);
                ((sext(bm, size) >> c) as u32) & mask
            }
        }
        AluOp::Lsr => {
            let c = am.min(63);
            if c >= 32 {
                0
            } else {
                (bm >> c) & mask
            }
        }
        AluOp::Lsl => {
            let c = am.min(63);
            if c >= 32 {
                0
            } else {
                (bm << c) & mask
            }
        }
        AluOp::Pass => bm,
        AluOp::Not => !bm & mask,
        AluOp::Neg => sub_flags(0, bm, mask, sign, &mut f),
        AluOp::SextB => (bm as u8 as i8 as i32 as u32) & mask,
        AluOp::SextW => (bm as u16 as i16 as i32 as u32) & mask,
    };
    f.z = result & mask == 0;
    f.n = result & sign != 0;
    (result, f)
}

#[inline(always)]
fn sub_flags(a: u32, b: u32, mask: u32, sign: u32, f: &mut AluFlags) -> u32 {
    // a - b with the VAX borrow convention: C set when b > a unsigned.
    let r = a.wrapping_sub(b) & mask;
    f.c = b > a;
    f.v = ((a ^ b) & (a ^ r) & sign) != 0;
    r
}

#[inline(always)]
fn sext(v: u32, size: DataSize) -> i32 {
    size.sign_extend(v) as i32
}

#[cfg(test)]
mod alu_tests {
    use super::*;

    fn run(op: AluOp, a: u32, b: u32) -> (u32, AluFlags) {
        alu_exec(op, a, b, DataSize::Long)
    }

    #[test]
    fn add_carry_and_overflow() {
        let (r, f) = run(AluOp::Add, 0xFFFF_FFFF, 1);
        assert_eq!(r, 0);
        assert!(f.c && f.z && !f.n);
        let (r, f) = run(AluOp::Add, 0x7FFF_FFFF, 1);
        assert_eq!(r, 0x8000_0000);
        assert!(f.v && f.n && !f.c);
    }

    #[test]
    fn sub_borrow() {
        let (r, f) = run(AluOp::Sub, 1, 2);
        assert_eq!(r, 0xFFFF_FFFF);
        assert!(f.c && f.n);
        let (_, f) = run(AluOp::Sub, 5, 5);
        assert!(f.z && !f.c);
    }

    #[test]
    fn rsub_is_reverse() {
        let (r, _) = run(AluOp::RSub, 2, 10);
        assert_eq!(r, 8);
    }

    #[test]
    fn byte_size_flags() {
        let (r, f) = alu_exec(AluOp::Add, 0x7F, 1, DataSize::Byte);
        assert_eq!(r, 0x80);
        assert!(f.v && f.n, "byte-size overflow detected");
        let (r, f) = alu_exec(AluOp::Add, 0xFF, 1, DataSize::Byte);
        assert_eq!(r, 0);
        assert!(f.c && f.z);
    }

    #[test]
    fn mul_overflow() {
        let (_, f) = run(AluOp::Mul, 0x10000, 0x10000);
        assert!(f.v);
        let (r, f) = run(AluOp::Mul, 6, 7);
        assert_eq!(r, 42);
        assert!(!f.v);
        let (r, _) = run(AluOp::Mul, 0xFFFF_FFFF, 5); // -1 * 5
        assert_eq!(r as i32, -5);
    }

    #[test]
    fn div_and_rem() {
        let (r, f) = run(AluOp::Div, 3, 10);
        assert_eq!(r, 3);
        assert!(!f.divz);
        let (r, _) = run(AluOp::Rem, 3, 10);
        assert_eq!(r, 1);
        let (r, _) = run(AluOp::Div, 0xFFFF_FFFE, 10); // 10 / -2
        assert_eq!(r as i32, -5);
        let (_, f) = run(AluOp::Div, 0, 10);
        assert!(f.divz);
        let (_, f) = run(AluOp::Div, 0xFFFF_FFFF, 0x8000_0000); // MIN / -1
        assert!(f.v);
    }

    #[test]
    fn ash_both_directions() {
        let (r, _) = run(AluOp::Ash, 4, 1);
        assert_eq!(r, 16);
        let (r, _) = run(AluOp::Ash, 0xFFFF_FFFE, 16); // >> 2
        assert_eq!(r, 4);
        let (r, _) = run(AluOp::Ash, 0xFFFF_FFFF, 0x8000_0000u32); // -1 arith
        assert_eq!(r, 0xC000_0000);
        let (_, f) = run(AluOp::Ash, 1, 0x4000_0000);
        assert!(f.v, "lost the sign bit");
    }

    #[test]
    fn logic_ops() {
        assert_eq!(run(AluOp::And, 0b1100, 0b1010).0, 0b1000);
        assert_eq!(run(AluOp::Or, 0b1100, 0b1010).0, 0b1110);
        assert_eq!(run(AluOp::Xor, 0b1100, 0b1010).0, 0b0110);
        assert_eq!(run(AluOp::BicR, 0b1100, 0b1010).0, 0b0010);
        assert_eq!(run(AluOp::Not, 0, 0).0, 0xFFFF_FFFF);
    }

    #[test]
    fn neg_carry_convention() {
        let (r, f) = run(AluOp::Neg, 0, 5);
        assert_eq!(r as i32, -5);
        assert!(f.c, "C set when operand nonzero");
        let (_, f) = run(AluOp::Neg, 0, 0);
        assert!(!f.c && f.z);
    }

    #[test]
    fn sign_extensions() {
        assert_eq!(run(AluOp::SextB, 0, 0x80).0, 0xFFFF_FF80);
        assert_eq!(run(AluOp::SextB, 0, 0x7F).0, 0x7F);
        assert_eq!(run(AluOp::SextW, 0, 0x8000).0, 0xFFFF_8000);
    }

    #[test]
    fn shifts_saturate() {
        assert_eq!(run(AluOp::Lsl, 40, 1).0, 0);
        assert_eq!(run(AluOp::Lsr, 40, 0xFFFF_FFFF).0, 0);
        assert_eq!(run(AluOp::Lsl, 4, 1).0, 16);
        assert_eq!(run(AluOp::Lsr, 4, 16).0, 1);
    }
}
